#include "src/core/degroot.h"

#include <utility>

#include "src/support/assert.h"

namespace opindyn {

DeGrootModel::DeGrootModel(const Graph& graph, std::vector<double> initial,
                           bool lazy)
    : AveragingProcess(graph, std::move(initial), /*alpha=*/0.0,
                       /*track_extrema=*/false),
      lazy_(lazy) {
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "DeGroot needs every node to have a neighbour");
  scratch_.resize(static_cast<std::size_t>(graph.node_count()));
}

void DeGrootModel::round_impl() {
  const Graph& g = graph();
  const std::vector<double>& values = state().values();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    double sum = 0.0;
    for (const NodeId v : g.neighbors(u)) {
      sum += values[static_cast<std::size_t>(v)];
    }
    const double mean = sum / static_cast<double>(g.degree(u));
    scratch_[static_cast<std::size_t>(u)] =
        lazy_ ? 0.5 * values[static_cast<std::size_t>(u)] + 0.5 * mean
              : mean;
  }
  OpinionState& s = mutable_state();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    s.set_value(u, scratch_[static_cast<std::size_t>(u)]);
  }
}

void DeGrootModel::round() {
  round_impl();
  advance_time(1);
}

NodeSelection DeGrootModel::step_recorded(Rng& /*rng*/) {
  round_impl();
  NodeSelection selection;  // a synchronous round has no chi(t)
  apply(selection);
  return selection;
}

void DeGrootModel::step_burst(Rng& /*rng*/, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  for (std::int64_t i = 0; i < n_steps; ++i) {
    round_impl();
  }
  advance_time(n_steps);
}

}  // namespace opindyn
