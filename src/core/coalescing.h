// Coalescing random walks -- the classical dual of the voter model
// (footnote 2 of the paper: "the voting time and the coalescence time
// have the same distribution"), which Section 5 generalises to the
// diffusion dual of the averaging processes.
//
// One walk starts on every node.  Each step uses the same selection law
// as the asynchronous voter model run backwards: a uniform node u and a
// uniform neighbour v are drawn, and every walk currently on u moves to
// v.  Walks on the same node therefore move together -- they have
// coalesced.  The process ends when one walk remains; the step count is
// the coalescence time.
//
// In this library's terms this is exactly CorrelatedWalks with alpha = 0
// and k = 1, plus termination detection; it is provided as its own small
// type because the voter-duality experiments want the merged-walk count
// trajectory.
#ifndef OPINDYN_CORE_COALESCING_H
#define OPINDYN_CORE_COALESCING_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class CoalescingWalks {
 public:
  /// Starts one walk per node.  `graph` must outlive this object.
  explicit CoalescingWalks(const Graph& graph);

  /// One voter-dual step: uniform node u, uniform neighbour v; all walks
  /// at u move to v.
  void step(Rng& rng);

  /// Number of distinct occupied nodes (= surviving walk clusters).
  int cluster_count() const noexcept { return clusters_; }
  bool coalesced() const noexcept { return clusters_ <= 1; }
  std::int64_t time() const noexcept { return time_; }

  /// Number of walks currently on node u.
  std::int64_t walks_at(NodeId u) const;

 private:
  const Graph* graph_;
  std::vector<std::int64_t> occupancy_;  // walks per node
  int clusters_ = 0;
  std::int64_t time_ = 0;
};

struct CoalescenceResult {
  std::int64_t steps = 0;
  bool coalesced = false;
};

/// Runs to full coalescence or max_steps.
CoalescenceResult run_to_coalescence(const Graph& graph, Rng& rng,
                                     std::int64_t max_steps);

}  // namespace opindyn

#endif  // OPINDYN_CORE_COALESCING_H
