#include "src/core/gossip_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/support/assert.h"

namespace opindyn {

GossipModel::GossipModel(const Graph& graph, std::vector<double> initial,
                         bool lazy)
    : AveragingProcess(graph, std::move(initial), /*alpha=*/0.5,
                       /*track_extrema=*/false),
      lazy_(lazy) {
  OPINDYN_EXPECTS(graph.edge_count() >= 1, "gossip needs >= 1 edge");
}

void GossipModel::apply_update(const NodeSelection& selection) {
  if (selection.is_noop()) {
    return;
  }
  OPINDYN_EXPECTS(selection.sample.size() == 1,
                  "gossip selection must name exactly one partner");
  const NodeId u = selection.node;
  const NodeId v = selection.sample.front();
  OPINDYN_EXPECTS(state().graph().has_edge(u, v),
                  "selection sample contains a non-neighbour");
  OpinionState& s = mutable_state();
  const double mean = 0.5 * (s.value(u) + s.value(v));
  s.set_value(u, mean);
  s.set_value(v, mean);
}

NodeSelection GossipModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (lazy_ && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  const Graph& g = graph();
  const auto arc = static_cast<ArcId>(
      rng.next_below(static_cast<std::uint64_t>(g.arc_count())));
  selection.node = g.arc_source(arc);
  selection.sample.assign(1, g.arc_target(arc));
  apply(selection);
  return selection;
}

void GossipModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  // Allocation-free loop with the exact step() draw order: [coin,]
  // next_below(arc_count).  The two set_value calls run the identical
  // arithmetic as apply_update, so the burst is bit-identical to
  // n_steps repeated step() calls.
  const Graph& g = graph();
  OpinionState& s = mutable_state();
  const auto arcs = static_cast<std::uint64_t>(g.arc_count());
  for (std::int64_t i = 0; i < n_steps; ++i) {
    if (lazy_ && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const auto arc = static_cast<ArcId>(rng.next_below(arcs));
    const NodeId u = g.arc_source(arc);
    const NodeId v = g.arc_target(arc);
    const double mean = 0.5 * (s.value(u) + s.value(v));
    s.set_value(u, mean);
    s.set_value(v, mean);
  }
  advance_time(n_steps);
}

GossipRunResult run_gossip_to_convergence(const Graph& graph,
                                          const std::vector<double>& initial,
                                          Rng& rng, double epsilon,
                                          std::int64_t max_steps) {
  OPINDYN_EXPECTS(epsilon > 0.0, "epsilon must be positive");
  GossipModel gossip(graph, initial);
  const double initial_average = gossip.state().average();
  GossipRunResult result;
  const std::int64_t interval =
      std::max<std::int64_t>(1, graph.node_count() / 4);
  while (gossip.time() < max_steps) {
    const std::int64_t burst = std::min(interval, max_steps - gossip.time());
    gossip.step_burst(rng, burst);
    if (gossip.state().phi_plain_exact() <= epsilon) {
      result.converged = true;
      break;
    }
  }
  result.steps = gossip.time();
  result.final_value = gossip.state().average();
  result.average_drift = std::abs(result.final_value - initial_average);
  return result;
}

}  // namespace opindyn
