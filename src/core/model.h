// The one configuration record for the paper's two averaging processes
// and the factory that instantiates either behind the common
// AveragingProcess interface.  Every harness -- the scenario engine, the
// bench shims, the tests -- describes "which model with which knobs"
// through this struct; replica scheduling itself lives in
// support/cell_scheduler.h (the historical core/montecarlo harness that
// used to bundle both is retired).
#ifndef OPINDYN_CORE_MODEL_H
#define OPINDYN_CORE_MODEL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/edge_model.h"
#include "src/core/node_model.h"
#include "src/core/process.h"
#include "src/graph/graph.h"

namespace opindyn {

enum class ModelKind { node, edge };

/// One configuration of either model (k is ignored for the EdgeModel).
struct ModelConfig {
  ModelKind kind = ModelKind::node;
  double alpha = 0.5;
  std::int64_t k = 1;
  bool lazy = false;
  SamplingMode sampling = SamplingMode::without_replacement;
  /// Degree-sorted value mirror inside bursts (bit-identical output;
  /// pays off on skewed-degree graphs, no-op on regular ones).
  bool reorder = false;
};

/// Builds the configured process over `graph` starting from `initial`.
std::unique_ptr<AveragingProcess> make_process(
    const Graph& graph, const ModelConfig& config,
    std::vector<double> initial);

}  // namespace opindyn

#endif  // OPINDYN_CORE_MODEL_H
