// The one configuration record for every dynamics rule in the repo and
// the factory that instantiates any of them behind the common
// AveragingProcess interface.  Every harness -- the scenario engine, the
// bench shims, the tests -- describes "which model with which knobs"
// through this struct; replica scheduling itself lives in
// support/cell_scheduler.h (the historical core/montecarlo harness that
// used to bundle both is retired).
//
// Two of the kinds are the paper's processes (node, edge); the other six
// are the comparison rules the price-of-simplicity discussion measures
// against: classical voter and pairwise gossip, synchronous DeGroot and
// Friedkin-Johnsen, the weighted-median mechanism (arXiv:1909.06474) and
// confidence-bounded Hegselmann-Krause updates (arXiv:1910.14465).
#ifndef OPINDYN_CORE_MODEL_H
#define OPINDYN_CORE_MODEL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/edge_model.h"
#include "src/core/node_model.h"
#include "src/core/process.h"
#include "src/graph/graph.h"

namespace opindyn {

enum class ModelKind {
  node,               // Definition 2.1 (k-neighbour mean)
  edge,               // Definition 2.3 (directed-arc pull)
  voter,              // classical voter: copy one neighbour's opinion
  gossip,             // pairwise gossip: both endpoints -> their mean
  degroot,            // synchronous DeGroot rounds
  friedkin_johnsen,   // synchronous FJ rounds with stubbornness
  weighted_median,    // median of a k-sample (arXiv:1909.06474)
  hegselmann_krause,  // confidence-bounded averaging (arXiv:1910.14465)
};

/// One configuration of any model.  Each kind honours a subset of the
/// knobs (see validate_model_config); make_process rejects non-default
/// values of knobs the kind ignores, so no setting is dropped silently.
struct ModelConfig {
  ModelKind kind = ModelKind::node;
  double alpha = 0.5;
  std::int64_t k = 1;
  bool lazy = false;
  SamplingMode sampling = SamplingMode::without_replacement;
  /// Degree-sorted value mirror inside bursts (bit-identical output;
  /// pays off on skewed-degree graphs, no-op on regular ones).
  bool reorder = false;
  /// Hegselmann-Krause confidence bound (must be set > 0 for that kind;
  /// meaningless -- and rejected -- everywhere else).
  double confidence = 0.0;
};

/// Canonical spelling of a kind ("node", "edge", "voter", ...).
std::string model_kind_name(ModelKind kind);

/// Every legal `model=` spelling, in enum order.
const std::vector<std::string>& model_kind_names();

/// Parses a `model=` spec value; unknown names throw with edit-distance
/// "did you mean" suggestions.
ModelKind parse_model_kind(const std::string& value);

/// Rejects configurations where a non-default knob would be silently
/// ignored by `config.kind` (e.g. k=/sampling= on edge, alpha= on
/// voter/gossip/weighted_median) with a one-line std::runtime_error.
/// Also enforces per-kind requirements (hegselmann_krause needs
/// confidence > 0).  make_process calls this; harnesses that want the
/// error before spawning replicas can call it early themselves.
void validate_model_config(const ModelConfig& config);

/// Returns `config` restricted to kind `kind`: the kind is forced and
/// every knob that kind ignores is reset to its default.  This is how
/// the cross-model comparison scenarios reuse one user config across
/// rule families without tripping validate_model_config.
ModelConfig config_for_kind(const ModelConfig& config, ModelKind kind);

/// Builds the configured process over `graph` starting from `initial`.
/// Throws (via validate_model_config) on contradictory knob settings.
std::unique_ptr<AveragingProcess> make_process(
    const Graph& graph, const ModelConfig& config,
    std::vector<double> initial);

}  // namespace opindyn

#endif  // OPINDYN_CORE_MODEL_H
