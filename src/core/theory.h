// Closed-form quantities from the paper's analysis, used by the benches to
// print the "paper prediction" column next to measurements and by the
// tests to verify exact identities.
//
// Contents map:
//   * expected_pi_norm_sq_after_step  -- the exact one-step identity
//     behind Prop. B.1 (Eq. 39), for both sampling modes.
//   * expected_sum_sq_after_step_edge -- the exact EdgeModel one-step
//     identity (Eq. 57 in Prop. D.1).
//   * node_model_rho / edge_model_rho -- per-step contraction factors of
//     E[phi] (Prop. B.1 / Prop. D.1.ii).
//   * convergence-time bounds of Theorems 2.2(1) / 2.4(1).
//   * variance_exact / envelopes -- Prop. 5.8 via Lemma 5.7's mu values.
//   * Corollary E.2's Cheeger-style bound and time-t variance envelopes.
#ifndef OPINDYN_CORE_THEORY_H
#define OPINDYN_CORE_THEORY_H

#include <cstdint>
#include <vector>

#include "src/core/node_model.h"
#include "src/core/qchain.h"
#include "src/graph/graph.h"

namespace opindyn {
namespace theory {

/// Exact E[ ||xi'||_pi^2 | xi ] after one (non-lazy) NodeModel step.
/// For SamplingMode::with_replacement this equals Eq. (39):
///   ||xi||_pi^2 - (2 a (1-a)/n) <xi,(I-P)xi>_pi
///                - ((1-a)^2/n)(1 - 1/k) <xi,(I-P^2)xi>_pi
/// with P the non-lazy walk matrix; for without_replacement the
/// neighbour-pair term uses the exact without-replacement cross moment.
double expected_pi_norm_sq_after_step(const Graph& graph,
                                      const std::vector<double>& xi,
                                      double alpha, std::int64_t k,
                                      SamplingMode mode);

/// Exact E[ sum_u xi_u'^2 | xi ] after one (non-lazy) EdgeModel step:
/// sum xi^2 - (alpha(1-alpha)/m) xi^T L xi  (Eq. 57).
double expected_sum_sq_after_step_edge(const Graph& graph,
                                       const std::vector<double>& xi,
                                       double alpha);

/// Per-step potential contraction factor rho for the lazy NodeModel
/// (Prop. B.1): E[phi(t+1)] <= (1 - rho) phi(t), with
/// rho = (1-a)(1-l2)[2a + (1-a)(1+l2)(1 - 1/k)] / n and l2 = lambda2 of
/// the lazy walk matrix, all divided by 2 for the laziness coin.
double node_model_rho(double lambda2_lazy_p, double alpha, std::int64_t k,
                      std::int64_t n, bool lazy);

/// Per-step contraction of E[phi_V] for the EdgeModel (Prop. D.1.ii):
/// rho = alpha(1-alpha) lambda2(L) / m, halved when lazy.
double edge_model_rho(double lambda2_laplacian, double alpha, std::int64_t m,
                      bool lazy);

/// Predicted eps-convergence time from a per-step factor: the smallest t
/// with (1-rho)^t * phi0 <= eps.
double steps_to_epsilon(double rho, double phi0, double eps);

/// Theorem 2.2(1) upper-bound scale: n log(n ||xi0||^2 / eps)/(1 - l2(P)).
double node_convergence_bound(std::int64_t n, double xi0_l2_squared,
                              double eps, double lambda2_lazy_p);

/// Theorem 2.4(1) upper-bound scale: m log(n ||xi0||^2 / eps)/lambda2(L).
double edge_convergence_bound(std::int64_t n, std::int64_t m,
                              double xi0_l2_squared, double eps,
                              double lambda2_laplacian);

/// Exact asymptotic Var(F) of Prop. 5.8 (d-regular graph, Avg(0) = 0,
/// error +-1/n^5):
///   (mu0 - mu+) sum_u xi_u^2 + (mu1 - mu+) sum_{(u,v) in E+} xi_u xi_v.
double variance_exact(const Graph& graph, double alpha, std::int64_t k,
                      const std::vector<double>& xi0);

/// Theta-envelope coefficients: Var(F) in
/// [lower_coeff, upper_coeff] * ||xi0||^2 (+-1/n^5).
/// upper = (mu0-mu+) - d(mu1-mu+); lower = (mu0-mu+) + d(mu1-mu+)
/// (which simplifies to 2(1-alpha)(d-k) ell and so degenerates at k = d;
/// the exact formula above stays tight there).
double variance_upper_coeff(std::int64_t n, std::int64_t d, std::int64_t k,
                            double alpha);
double variance_lower_coeff(std::int64_t n, std::int64_t d, std::int64_t k,
                            double alpha);

/// Corollary E.2(i): lambda_2(L) >= i(G)^2 / (2 d_max).
double cheeger_lambda2_lower_bound(double isoperimetric_number,
                                   std::int64_t max_degree);

/// Corollary E.2(ii): Var(M(t)) <= t (d_max K / 2m)^2 (NodeModel).
double node_var_m_time_bound(std::int64_t t, double discrepancy,
                             std::int64_t max_degree, std::int64_t m);

/// Corollary E.2(iii): Var(Avg(t)) <= t K^2 / n^2 (EdgeModel).
double edge_var_avg_time_bound(std::int64_t t, double discrepancy,
                               std::int64_t n);

/// sum_{(u,v) in E+} xi_u xi_v over directed arcs (= 2 * undirected sum).
double directed_edge_correlation(const Graph& graph,
                                 const std::vector<double>& xi);

/// xi^T L xi = sum_{{u,v} in E} (xi_u - xi_v)^2.
double laplacian_quadratic_form(const Graph& graph,
                                const std::vector<double>& xi);

}  // namespace theory
}  // namespace opindyn

#endif  // OPINDYN_CORE_THEORY_H
