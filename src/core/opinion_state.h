// The value vector xi(t) plus O(1)-per-update tracking of every quantity
// the paper's analysis monitors:
//
//   Avg(t)   = (1/n)       sum_u xi_u(t)                       (Eq. 1)
//   M(t)     = sum_u (d_u / 2m) xi_u(t)                        (Eq. 1)
//   phi(t)   = <xi,xi>_pi - <1,xi>_pi^2                        (Eq. 3)
//   phi_V(t) = sum_u xi_u^2 - (sum_u xi_u)^2 / n               (Prop. D.1)
//   K(t)     = max_u xi_u - min_u xi_u (discrepancy)
//
// Only one node changes per process step, so all running sums update in
// O(1).  Floating-point drift is controlled two ways: accumulators are
// rebuilt from scratch every `recompute_interval` updates, and
// `phi_exact()` evaluates the potential in centered two-pass form, which
// does not suffer the catastrophic cancellation of the S2 - S1^2 formula
// near convergence.  Extremum tracking (for K) is opt-in and lazy: an
// update that displaces the cached min/max merely invalidates them, and
// the next read rescans once.  Displacing an extremum needs the updated
// node to *hold* it (probability ~1/n per step), so tracking costs O(1)
// amortized per update with zero allocations -- the step kernels stay
// malloc-free.
#ifndef OPINDYN_CORE_OPINION_STATE_H
#define OPINDYN_CORE_OPINION_STATE_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/assert.h"

namespace opindyn {

class OpinionState {
 public:
  /// `graph` must outlive the state.  `initial.size() == node_count`.
  OpinionState(const Graph& graph, std::vector<double> initial,
               bool track_extrema = false);

  const Graph& graph() const noexcept { return *graph_; }
  NodeId node_count() const noexcept { return graph_->node_count(); }

  double value(NodeId u) const {
    OPINDYN_HOT_EXPECTS(u >= 0 && u < node_count(), "node id out of range");
    return values_[static_cast<std::size_t>(u)];
  }
  const std::vector<double>& values() const noexcept { return values_; }

  /// Replaces the value at u, updating all running statistics.  Inline:
  /// this is the one mutation every process step performs, so the burst
  /// kernels must not pay a call (or, in optimised builds, a range
  /// check) for it.
  void set_value(NodeId u, double x) {
    OPINDYN_HOT_EXPECTS(u >= 0 && u < node_count(), "node id out of range");
    const auto idx = static_cast<std::size_t>(u);
    const double old = values_[idx];
    const double pi = stationary_[idx];
    sum_ += x - old;
    sum_sq_ += x * x - old * old;
    wsum_ += pi * (x - old);
    wsum_sq_ += pi * (x * x - old * old);
    if (track_extrema_ && extrema_valid_) {
      // A node that held an extremum and stays on its side of it keeps
      // the cache valid (x <= min_ is the new min even if other nodes
      // share the old one); only an extremum holder moving inward hides
      // where the extremum went, so only that invalidates -- the next
      // read rescans once.  Near-converged states, where many nodes
      // share the extremal values, thus stay O(1) instead of rescanning
      // every step.
      bool displaced = false;
      if (old == min_) {
        if (x <= min_) {
          min_ = x;
        } else {
          displaced = true;
        }
      } else if (x < min_) {
        min_ = x;
      }
      if (old == max_) {
        if (x >= max_) {
          max_ = x;
        } else {
          displaced = true;
        }
      } else if (x > max_) {
        max_ = x;
      }
      if (displaced) {
        extrema_valid_ = false;
      }
    }
    values_[idx] = x;
    if (++updates_since_recompute_ >= recompute_interval_) {
      recompute();
    }
  }

  /// Plain average Avg(t).
  double average() const noexcept;
  /// Degree-weighted average M(t) = <1, xi>_pi -- the NodeModel martingale.
  double weighted_average() const noexcept { return wsum_; }
  /// Potential phi (Eq. 3), from running sums (fast, may lose precision
  /// near zero).
  double phi() const noexcept;
  /// Potential phi in centered two-pass form: exact at any magnitude.
  double phi_exact() const;
  /// phi_V of Prop. D.1 (unweighted analogue), from running sums.
  double phi_plain() const noexcept;
  /// phi_V in centered two-pass form.
  double phi_plain_exact() const;
  /// sum_u xi_u(t)^2.
  double l2_squared() const noexcept { return sum_sq_; }
  /// Discrepancy K(t) = max - min.  O(1) amortized when extremum
  /// tracking is on, O(n) otherwise.
  double discrepancy() const;
  double min_value() const;
  double max_value() const;

  bool tracks_extrema() const noexcept { return track_extrema_; }

  /// Rebuilds all accumulators from the value vector.
  void recompute();

  // --- Burst cursor -------------------------------------------------
  // The SIMD burst kernels update values by the thousand; going through
  // set_value would reload and re-store every accumulator through the
  // member pointer each step.  A BurstCursor holds the accumulators in
  // locals (registers) for the duration of a burst and performs the
  // EXACT arithmetic of set_value in the exact order, so flushing it
  // back is bit-identical to having called set_value throughout.  The
  // kernel owns the state between begin_burst and end_burst: it writes
  // values through mutable_values() itself and must not call any other
  // accessor in between.
  class BurstCursor {
   public:
    /// Bookkeeping for one value replacement (old -> x at a node with
    /// stationary probability pi), mirroring set_value line for line.
    /// Call BEFORE storing x.  Does NOT count the update: the kernels
    /// track the recompute cadence in bulk via the countdown below, so
    /// the hot loop carries no per-step counter check.  Track must
    /// equal the state's tracks_extrema() -- it is a template argument
    /// so the (majority) non-tracking kernels carry no per-step branch
    /// for it; the kernels dispatch one instantiation per value.
    template <bool Track>
    void update(double pi, double old, double x) noexcept {
      sum_ += x - old;
      sum_sq_ += x * x - old * old;
      wsum_ += pi * (x - old);
      wsum_sq_ += pi * (x * x - old * old);
      if (Track && valid_) {
        bool displaced = false;
        if (old == min_) {
          if (x <= min_) {
            min_ = x;
          } else {
            displaced = true;
          }
        } else if (x < min_) {
          min_ = x;
        }
        if (old == max_) {
          if (x >= max_) {
            max_ = x;
          } else {
            displaced = true;
          }
        } else if (x > max_) {
          max_ = x;
        }
        if (displaced) {
          valid_ = false;
        }
      }
    }

    /// Updates remaining until the periodic accumulator rebuild is due
    /// -- the same cadence as set_value's tail recompute.  A kernel
    /// chunk of c updates that fits (countdown() > c) settles with one
    /// advance(c); otherwise it checks advance_one() per update, and on
    /// true must make the value vector current, call recompute() on
    /// the state, and restart the cursor (begin_burst again).
    std::int64_t countdown() const noexcept { return countdown_; }
    void advance(std::int64_t n) noexcept { countdown_ -= n; }
    bool advance_one() noexcept { return --countdown_ <= 0; }

   private:
    friend class OpinionState;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double wsum_ = 0.0;
    double wsum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::int64_t countdown_ = 0;
    bool track_ = false;
    bool valid_ = false;
  };

  /// Snapshots the accumulators into a register-resident cursor.
  BurstCursor begin_burst() noexcept {
    BurstCursor c;
    c.sum_ = sum_;
    c.sum_sq_ = sum_sq_;
    c.wsum_ = wsum_;
    c.wsum_sq_ = wsum_sq_;
    c.min_ = min_;
    c.max_ = max_;
    c.countdown_ = recompute_interval_ - updates_since_recompute_;
    c.track_ = track_extrema_;
    c.valid_ = extrema_valid_;
    return c;
  }

  /// Writes a cursor's accumulators back.  The value vector must
  /// already hold every value the cursor accounted for.
  void end_burst(const BurstCursor& c) noexcept {
    sum_ = c.sum_;
    sum_sq_ = c.sum_sq_;
    wsum_ = c.wsum_;
    wsum_sq_ = c.wsum_sq_;
    min_ = c.min_;
    max_ = c.max_;
    updates_since_recompute_ = recompute_interval_ - c.countdown_;
    extrema_valid_ = c.valid_;
  }

  /// Raw storage for the burst kernels (paired with begin_burst /
  /// end_burst; all bookkeeping goes through the cursor).
  double* mutable_values() noexcept { return values_.data(); }
  const double* stationary_data() const noexcept {
    return stationary_.data();
  }

 private:
  /// Rescans the value vector into the cached extrema (tracking only).
  void refresh_extrema() const;

  const Graph* graph_;
  std::vector<double> values_;
  std::vector<double> stationary_;  // pi_u = d_u / 2m, cached per node
  bool track_extrema_;
  // Lazily maintained extrema cache; mutable because reads refresh it.
  mutable bool extrema_valid_ = false;
  mutable double min_ = 0.0;
  mutable double max_ = 0.0;

  double sum_ = 0.0;       // sum xi
  double sum_sq_ = 0.0;    // sum xi^2
  double wsum_ = 0.0;      // sum pi_u xi_u  (= M(t))
  double wsum_sq_ = 0.0;   // sum pi_u xi_u^2

  std::int64_t updates_since_recompute_ = 0;
  static constexpr std::int64_t recompute_interval_ = 1 << 20;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_OPINION_STATE_H
