// The value vector xi(t) plus O(1)-per-update tracking of every quantity
// the paper's analysis monitors:
//
//   Avg(t)   = (1/n)       sum_u xi_u(t)                       (Eq. 1)
//   M(t)     = sum_u (d_u / 2m) xi_u(t)                        (Eq. 1)
//   phi(t)   = <xi,xi>_pi - <1,xi>_pi^2                        (Eq. 3)
//   phi_V(t) = sum_u xi_u^2 - (sum_u xi_u)^2 / n               (Prop. D.1)
//   K(t)     = max_u xi_u - min_u xi_u (discrepancy)
//
// Only one node changes per process step, so all running sums update in
// O(1).  Floating-point drift is controlled two ways: accumulators are
// rebuilt from scratch every `recompute_interval` updates, and
// `phi_exact()` evaluates the potential in centered two-pass form, which
// does not suffer the catastrophic cancellation of the S2 - S1^2 formula
// near convergence.  Extremum tracking (for K) costs O(log n) per update
// and is opt-in.
#ifndef OPINDYN_CORE_OPINION_STATE_H
#define OPINDYN_CORE_OPINION_STATE_H

#include <cstdint>
#include <set>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

class OpinionState {
 public:
  /// `graph` must outlive the state.  `initial.size() == node_count`.
  OpinionState(const Graph& graph, std::vector<double> initial,
               bool track_extrema = false);

  const Graph& graph() const noexcept { return *graph_; }
  NodeId node_count() const noexcept { return graph_->node_count(); }

  double value(NodeId u) const;
  const std::vector<double>& values() const noexcept { return values_; }

  /// Replaces the value at u, updating all running statistics.
  void set_value(NodeId u, double x);

  /// Plain average Avg(t).
  double average() const noexcept;
  /// Degree-weighted average M(t) = <1, xi>_pi -- the NodeModel martingale.
  double weighted_average() const noexcept { return wsum_; }
  /// Potential phi (Eq. 3), from running sums (fast, may lose precision
  /// near zero).
  double phi() const noexcept;
  /// Potential phi in centered two-pass form: exact at any magnitude.
  double phi_exact() const;
  /// phi_V of Prop. D.1 (unweighted analogue), from running sums.
  double phi_plain() const noexcept;
  /// phi_V in centered two-pass form.
  double phi_plain_exact() const;
  /// sum_u xi_u(t)^2.
  double l2_squared() const noexcept { return sum_sq_; }
  /// Discrepancy K(t) = max - min.  O(1) when extremum tracking is on,
  /// O(n) otherwise.
  double discrepancy() const;
  double min_value() const;
  double max_value() const;

  bool tracks_extrema() const noexcept { return track_extrema_; }

  /// Rebuilds all accumulators from the value vector.
  void recompute();

 private:
  const Graph* graph_;
  std::vector<double> values_;
  bool track_extrema_;
  std::multiset<double> sorted_;

  double sum_ = 0.0;       // sum xi
  double sum_sq_ = 0.0;    // sum xi^2
  double wsum_ = 0.0;      // sum pi_u xi_u  (= M(t))
  double wsum_sq_ = 0.0;   // sum pi_u xi_u^2

  std::int64_t updates_since_recompute_ = 0;
  static constexpr std::int64_t recompute_interval_ = 1 << 20;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_OPINION_STATE_H
