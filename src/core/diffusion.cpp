#include "src/core/diffusion.h"

#include <algorithm>

#include "src/core/node_model.h"
#include "src/support/assert.h"

namespace opindyn {

DiffusionProcess::DiffusionProcess(const Graph& graph, double alpha)
    : graph_(&graph),
      alpha_(alpha),
      r_(Matrix::identity(static_cast<std::size_t>(graph.node_count()))) {
  OPINDYN_EXPECTS(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
}

void DiffusionProcess::apply(const NodeSelection& selection) {
  ++time_;
  if (selection.is_noop()) {
    return;
  }
  const NodeId u = selection.node;
  OPINDYN_EXPECTS(u >= 0 && u < graph_->node_count(),
                  "selection node out of range");
  const auto n = r_.cols();
  const auto k = static_cast<double>(selection.sample.size());
  const double share = (1.0 - alpha_) / k;
  double* row_u = r_.row(static_cast<std::size_t>(u));
  // R' = B R: sampled rows receive `share` of row u, then row u keeps
  // only its alpha fraction.  Must read the *old* row u, hence the order.
  for (const NodeId v : selection.sample) {
    OPINDYN_EXPECTS(graph_->has_edge(u, v),
                    "selection sample contains a non-neighbour");
    double* row_v = r_.row(static_cast<std::size_t>(v));
    for (std::size_t c = 0; c < n; ++c) {
      row_v[c] += share * row_u[c];
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    row_u[c] *= alpha_;
  }
}

void DiffusionProcess::apply_sequence(const SelectionSequence& sequence) {
  for (const NodeSelection& selection : sequence) {
    apply(selection);
  }
}

void DiffusionProcess::apply_reversed(const SelectionSequence& sequence) {
  for (auto it = sequence.rbegin(); it != sequence.rend(); ++it) {
    apply(*it);
  }
}

std::vector<double> DiffusionProcess::commodity_load(NodeId u) const {
  OPINDYN_EXPECTS(u >= 0 && u < graph_->node_count(), "node id out of range");
  std::vector<double> column(r_.rows());
  for (std::size_t i = 0; i < r_.rows(); ++i) {
    column[i] = r_.at(i, static_cast<std::size_t>(u));
  }
  return column;
}

std::vector<double> DiffusionProcess::costs(
    const std::vector<double>& cost_vector) const {
  return r_.left_multiply(cost_vector);
}

std::vector<double> DiffusionProcess::column_sums() const {
  std::vector<double> sums(r_.cols(), 0.0);
  for (std::size_t i = 0; i < r_.rows(); ++i) {
    const double* row = r_.row(i);
    for (std::size_t c = 0; c < r_.cols(); ++c) {
      sums[c] += row[c];
    }
  }
  return sums;
}

DualityCheck run_averaging_and_dual(const Graph& graph,
                                    const std::vector<double>& initial,
                                    double alpha, std::int64_t k,
                                    std::int64_t steps, std::uint64_t seed) {
  NodeModelParams params;
  params.alpha = alpha;
  params.k = k;
  NodeModel averaging(graph, initial, params);
  Rng rng(seed);
  SelectionSequence sequence;
  sequence.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t t = 0; t < steps; ++t) {
    sequence.push_back(averaging.step_recorded(rng));
  }

  DiffusionProcess diffusion(graph, alpha);
  diffusion.apply_reversed(sequence);

  DualityCheck check;
  check.averaging_result = averaging.state().values();
  check.diffusion_result = diffusion.costs(initial);
  check.max_difference = 0.0;
  for (std::size_t i = 0; i < check.averaging_result.size(); ++i) {
    check.max_difference =
        std::max(check.max_difference,
                 std::abs(check.averaging_result[i] -
                          check.diffusion_result[i]));
  }
  return check;
}

}  // namespace opindyn
