// Coordinated pairwise-averaging gossip (Boyd et al., "Randomized gossip
// algorithms"): a random directed arc (u, v) fires and BOTH endpoints
// move to (xi_u + xi_v)/2.  This is the "stronger communication model"
// the paper's introduction contrasts with: the update matrix is doubly
// stochastic, so the plain average is conserved exactly and Var(F) = 0
// -- the price the unilateral NodeModel/EdgeModel pay for simplicity is
// exactly the variance that this baseline does not have.
#ifndef OPINDYN_CORE_GOSSIP_MODEL_H
#define OPINDYN_CORE_GOSSIP_MODEL_H

#include <cstdint>
#include <vector>

#include "src/core/process.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class GossipModel final : public AveragingProcess {
 public:
  /// `lazy` adds the 1/2 no-op coin of the paper's lazy variants.
  GossipModel(const Graph& graph, std::vector<double> initial,
              bool lazy = false);

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

 protected:
  /// Two-sided update: BOTH selection.node and sample[0] move to their
  /// mean (the base rule only moves the selected node).
  void apply_update(const NodeSelection& selection) override;

 private:
  bool lazy_;
};

/// Source-compatible alias for the pre-refactor class name.
using PairwiseGossip = GossipModel;

struct GossipRunResult {
  std::int64_t steps = 0;
  bool converged = false;
  double final_value = 0.0;
  /// |final_value - Avg(0)| -- zero up to floating point, by double
  /// stochasticity.
  double average_drift = 0.0;
};

/// Runs until phi_V <= eps or max_steps.
GossipRunResult run_gossip_to_convergence(const Graph& graph,
                                          const std::vector<double>& initial,
                                          Rng& rng, double epsilon,
                                          std::int64_t max_steps);

}  // namespace opindyn

#endif  // OPINDYN_CORE_GOSSIP_MODEL_H
