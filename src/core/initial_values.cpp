#include "src/core/initial_values.h"

#include <algorithm>
#include <cmath>

#include "src/graph/algorithms.h"
#include "src/support/assert.h"

namespace opindyn {
namespace initial {

std::vector<double> constant(NodeId n, double value) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  return std::vector<double>(static_cast<std::size_t>(n), value);
}

std::vector<double> uniform(Rng& rng, NodeId n, double lo, double hi) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  OPINDYN_EXPECTS(hi >= lo, "need hi >= lo");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& v : values) {
    v = rng.next_double(lo, hi);
  }
  return values;
}

std::vector<double> gaussian(Rng& rng, NodeId n, double mean, double stddev) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  OPINDYN_EXPECTS(stddev >= 0.0, "need stddev >= 0");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& v : values) {
    v = mean + stddev * rng.next_gaussian();
  }
  return values;
}

std::vector<double> rademacher(Rng& rng, NodeId n) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& v : values) {
    v = rng.next_bool(0.5) ? 1.0 : -1.0;
  }
  return values;
}

std::vector<double> spike(NodeId n, NodeId node, double magnitude) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  OPINDYN_EXPECTS(node >= 0 && node < n, "spike node out of range");
  std::vector<double> values(static_cast<std::size_t>(n), 0.0);
  values[static_cast<std::size_t>(node)] = magnitude;
  return values;
}

std::vector<double> blocks(NodeId n, double magnitude) {
  OPINDYN_EXPECTS(n > 1, "blocks needs n > 1");
  OPINDYN_EXPECTS(magnitude > 0.0, "blocks magnitude must be positive");
  std::vector<double> values(static_cast<std::size_t>(n), magnitude);
  for (NodeId u = n / 2; u < n; ++u) {
    values[static_cast<std::size_t>(u)] = -magnitude;
  }
  return values;
}

std::vector<double> alternating(NodeId n) {
  OPINDYN_EXPECTS(n > 0, "need n > 0");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    values[static_cast<std::size_t>(u)] = (u % 2 == 0) ? 1.0 : -1.0;
  }
  return values;
}

std::vector<double> ramp(NodeId n, double magnitude) {
  OPINDYN_EXPECTS(n > 1, "ramp needs n > 1");
  OPINDYN_EXPECTS(magnitude > 0.0, "ramp magnitude must be positive");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    values[static_cast<std::size_t>(u)] =
        magnitude * static_cast<double>(u) / static_cast<double>(n - 1);
  }
  return values;
}

std::vector<double> scaled_eigenvector(const std::vector<double>& f2,
                                       double beta) {
  OPINDYN_EXPECTS(!f2.empty(), "eigenvector must be non-empty");
  std::vector<double> values = f2;
  for (double& v : values) {
    v *= beta;
  }
  return values;
}

void center_plain(std::vector<double>& values) {
  OPINDYN_EXPECTS(!values.empty(), "cannot center an empty vector");
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  for (double& v : values) {
    v -= mean;
  }
}

void center_degree_weighted(const Graph& graph, std::vector<double>& values) {
  const double m = degree_weighted_average(graph, values);
  for (double& v : values) {
    v -= m;
  }
}

double l2_squared(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) {
    sum += v * v;
  }
  return sum;
}

}  // namespace initial
}  // namespace opindyn
