#include "src/core/weighted_median_model.h"

#include <algorithm>

#include "src/core/burst_kernels.h"
#include "src/core/node_topology.h"
#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {
namespace {

/// The median burst kernel, instantiated per (k, sampling mode, extrema
/// tracking, topology) on the kernel-v2 pipelined loop skeleton
/// (burst_kernels.h).  Consumes the rng in EXACT step() order and picks
/// the identical order statistic through the shared lower_median_inplace
/// helper, so the result is bit-identical to n_steps repeated step()
/// calls.  Two shapes behind one contract, mirroring run_node_burst:
///
///  - Portable builds run a fused loop, software-pipelined in groups of
///    8 steps: the group's draws resolve to neighbour slots first, then
///    the applies walk the group in step order reading values live.
///  - OPINDYN_SIMD_AVX2 builds split each chunk into phases: serial
///    draws into SoA position buffers, a vpgatherdd adjacency
///    translation, then the sequential apply.
///
/// Unlike the mean rule there is no FP arithmetic at all -- the update
/// moves an existing value bit pattern -- so bit-identity reduces to
/// picking the same element, which the stable shared sort guarantees.
template <int K, SamplingMode Mode, bool Track, class Topo, class Sync>
void run_median_burst(Rng& rng, std::int64_t n_steps, bool lazy,
                      OpinionState& state, double* vals, NodeId n,
                      const Topo& topo, Sync&& sync) {
  const auto nn = static_cast<std::uint64_t>(n);
  auto cursor = state.begin_burst();
  const double uniform_pi = topo.stationary(0);
  const auto recompute_now = [&] {
    sync();
    state.recompute();
    cursor = state.begin_burst();
  };
#if !defined(OPINDYN_SIMD_AVX2)
  const NodeId* adj = topo.adjacency();
  // One full process step: draws in exact step() order, sampled values
  // read live in draw order (nothing is written until the step's draws
  // are all made, exactly like draw_selection + apply_update).
  const auto one_step = [&] {
    const auto u = static_cast<NodeId>(rng.next_below_nonzero(nn));
    const std::int64_t base = topo.row_base(u);
    const std::int32_t d = topo.degree(u);
    double m[K];
    if constexpr (Mode == SamplingMode::without_replacement) {
      // Floyd's subset draw, fused with the value gather; draw and
      // push order match sample_without_replacement exactly.
      std::int32_t picked[K];
      for (int i = 0; i < K; ++i) {
        const std::int32_t j = d - K + i;
        const auto t = static_cast<std::int32_t>(
            rng.next_below_nonzero(static_cast<std::uint64_t>(j) + 1));
        bool duplicate = false;
        for (int q = 0; q < i; ++q) {
          duplicate |= picked[q] == t;
        }
        const std::int32_t idx = duplicate ? j : t;
        picked[i] = idx;
        m[i] = vals[static_cast<std::size_t>(
            adj[static_cast<std::size_t>(base + idx)])];
      }
    } else {
      for (int i = 0; i < K; ++i) {
        const auto idx = static_cast<std::int64_t>(
            rng.next_below_nonzero(static_cast<std::uint64_t>(d)));
        m[i] = vals[static_cast<std::size_t>(
            adj[static_cast<std::size_t>(base + idx)])];
      }
    }
    const double x = K == 1 ? m[0] : lower_median_inplace(m, K);
    const std::int32_t slot = topo.slot(u);
    const double old = vals[static_cast<std::size_t>(slot)];
    cursor.update<Track>(Topo::kUniformPi ? uniform_pi : topo.stationary(u),
                         old, x);
    vals[static_cast<std::size_t>(slot)] = x;
  };
  std::int64_t done = 0;
  while (done < n_steps) {
    const std::int64_t chunk =
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done);
    if (!lazy && cursor.countdown() > chunk) [[likely]] {
      // Software-pipelined 8-wide: each group's K+1 draws per step are
      // hoisted ahead of its applies (the xoshiro state chain is the
      // long pole); the apply phase then reads values in step order,
      // so draw order and apply order both stay exactly step()'s.
      constexpr int kGroup = 8;
      std::int64_t c = 0;
      for (; c + kGroup <= chunk; c += kGroup) {
        std::int32_t uslot[kGroup];
        std::int32_t nbr[kGroup * K];
        double pis[kGroup];
        for (int s = 0; s < kGroup; ++s) {
          const auto u = static_cast<NodeId>(rng.next_below_nonzero(nn));
          const std::int64_t base = topo.row_base(u);
          const std::int32_t d = topo.degree(u);
          if constexpr (Mode == SamplingMode::without_replacement) {
            std::int32_t picked[K];
            for (int i = 0; i < K; ++i) {
              const std::int32_t j = d - K + i;
              const auto t = static_cast<std::int32_t>(rng.next_below_nonzero(
                  static_cast<std::uint64_t>(j) + 1));
              bool duplicate = false;
              for (int q = 0; q < i; ++q) {
                duplicate |= picked[q] == t;
              }
              const std::int32_t idx = duplicate ? j : t;
              picked[i] = idx;
              nbr[s * K + i] = static_cast<std::int32_t>(
                  adj[static_cast<std::size_t>(base + idx)]);
            }
          } else {
            for (int i = 0; i < K; ++i) {
              const auto idx = static_cast<std::int64_t>(
                  rng.next_below_nonzero(static_cast<std::uint64_t>(d)));
              nbr[s * K + i] = static_cast<std::int32_t>(
                  adj[static_cast<std::size_t>(base + idx)]);
            }
          }
          uslot[s] = topo.slot(u);
          if constexpr (!Topo::kUniformPi) {
            pis[s] = topo.stationary(u);
          }
        }
        for (int s = 0; s < kGroup; ++s) {
          double m[K];
          for (int i = 0; i < K; ++i) {
            m[i] = vals[static_cast<std::size_t>(nbr[s * K + i])];
          }
          const double x = K == 1 ? m[0] : lower_median_inplace(m, K);
          const double old = vals[static_cast<std::size_t>(uslot[s])];
          cursor.update<Track>(Topo::kUniformPi ? uniform_pi : pis[s], old,
                               x);
          vals[static_cast<std::size_t>(uslot[s])] = x;
        }
      }
      for (; c < chunk; ++c) {
        one_step();
      }
      cursor.advance(chunk);
    } else {
      // Lazy runs (coin-dependent update count) and chunks straddling
      // the recompute threshold account per update, firing at exactly
      // the count where set_value's tail recompute would.
      for (std::int64_t c = 0; c < chunk; ++c) {
        if (lazy && rng.next_bool(0.5)) {
          continue;  // lazy no-op: consumes the coin, still counts a step
        }
        one_step();
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#else
  std::int32_t slots[burst::kChunkSteps];
  double pis[burst::kChunkSteps];
  std::int32_t pos[burst::kChunkSteps * K];
  std::int32_t nbr[burst::kChunkSteps * K];
  std::int64_t done = 0;
  while (done < n_steps) {
    const int chunk = static_cast<int>(
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done));
    // Phase A: serial draws, exact step() order.
    int emitted = 0;
    for (int c = 0; c < chunk; ++c) {
      if (lazy && rng.next_bool(0.5)) {
        continue;  // lazy no-op: consumes the coin, still counts a step
      }
      const auto u = static_cast<NodeId>(rng.next_below(nn));
      const std::int64_t base = topo.row_base(u);
      const std::int32_t d = topo.degree(u);
      std::int32_t* p = pos + emitted * K;
      if constexpr (Mode == SamplingMode::without_replacement) {
        std::int32_t picked[K];
        for (int i = 0; i < K; ++i) {
          const std::int32_t j = d - K + i;
          const auto t = static_cast<std::int32_t>(
              rng.next_below(static_cast<std::uint64_t>(j) + 1));
          bool duplicate = false;
          for (int q = 0; q < i; ++q) {
            duplicate |= picked[q] == t;
          }
          const std::int32_t idx = duplicate ? j : t;
          picked[i] = idx;
          p[i] = static_cast<std::int32_t>(base + idx);
        }
      } else {
        for (int i = 0; i < K; ++i) {
          p[i] = static_cast<std::int32_t>(
              base + static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(d))));
        }
      }
      slots[emitted] = topo.slot(u);
      if constexpr (!Topo::kUniformPi) {
        pis[emitted] = topo.stationary(u);
      }
      ++emitted;
    }
    // Phase B: translate the chunk's adjacency positions with
    // vpgatherdd; values are read live in phase C.
    burst::translate_indices(topo.adjacency(), pos, nbr, emitted * K);
    // Phase C: sequential apply picking the shared order statistic.
    const auto apply_entry = [&](int e) {
      double m[K];
      for (int i = 0; i < K; ++i) {
        m[i] = vals[static_cast<std::size_t>(nbr[e * K + i])];
      }
      const double x = K == 1 ? m[0] : lower_median_inplace(m, K);
      const std::int32_t slot = slots[e];
      const double old = vals[static_cast<std::size_t>(slot)];
      cursor.update<Track>(Topo::kUniformPi ? uniform_pi : pis[e], old, x);
      vals[static_cast<std::size_t>(slot)] = x;
    };
    if (cursor.countdown() > emitted) [[likely]] {
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
      }
      cursor.advance(emitted);
    } else {
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#endif
  state.end_burst(cursor);
}

template <SamplingMode Mode, bool Track, class Topo, class Sync>
bool dispatch_k(std::int64_t k, Rng& rng, std::int64_t n_steps, bool lazy,
                OpinionState& state, double* vals, NodeId n,
                const Topo& topo, Sync&& sync) {
  switch (k) {
    case 1:
      run_median_burst<1, Mode, Track>(rng, n_steps, lazy, state, vals, n,
                                       topo, sync);
      return true;
    case 2:
      run_median_burst<2, Mode, Track>(rng, n_steps, lazy, state, vals, n,
                                       topo, sync);
      return true;
    case 3:
      run_median_burst<3, Mode, Track>(rng, n_steps, lazy, state, vals, n,
                                       topo, sync);
      return true;
    case 4:
      run_median_burst<4, Mode, Track>(rng, n_steps, lazy, state, vals, n,
                                       topo, sync);
      return true;
    case 8:
      run_median_burst<8, Mode, Track>(rng, n_steps, lazy, state, vals, n,
                                       topo, sync);
      return true;
    default:
      return false;  // uncommon k: the generic loop handles it
  }
}

template <class Topo, class Sync>
bool dispatch_mode_k(SamplingMode mode, std::int64_t k, Rng& rng,
                     std::int64_t n_steps, bool lazy, OpinionState& state,
                     double* vals, NodeId n, const Topo& topo, Sync&& sync) {
  if (mode == SamplingMode::without_replacement) {
    return state.tracks_extrema()
               ? dispatch_k<SamplingMode::without_replacement, true>(
                     k, rng, n_steps, lazy, state, vals, n, topo, sync)
               : dispatch_k<SamplingMode::without_replacement, false>(
                     k, rng, n_steps, lazy, state, vals, n, topo, sync);
  }
  return state.tracks_extrema()
             ? dispatch_k<SamplingMode::with_replacement, true>(
                   k, rng, n_steps, lazy, state, vals, n, topo, sync)
             : dispatch_k<SamplingMode::with_replacement, false>(
                   k, rng, n_steps, lazy, state, vals, n, topo, sync);
}

bool has_specialised_k(std::int64_t k) noexcept {
  return k == 1 || k == 2 || k == 3 || k == 4 || k == 8;
}

}  // namespace

WeightedMedianModel::WeightedMedianModel(const Graph& graph,
                                         std::vector<double> initial,
                                         const WeightedMedianParams& params)
    : AveragingProcess(graph, std::move(initial), /*alpha=*/0.0,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(params.k >= 1, "k must be >= 1");
  if (params.sampling == SamplingMode::without_replacement) {
    OPINDYN_EXPECTS(params.k <= graph.min_degree(),
                    "k must be <= min degree for sampling without "
                    "replacement");
  }
  scratch_.reserve(static_cast<std::size_t>(params.k));
  sample_scratch_.resize(static_cast<std::size_t>(params.k));
  median_scratch_.resize(static_cast<std::size_t>(params.k));
}

NodeId WeightedMedianModel::draw_selection(Rng& rng) {
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph().node_count())));
  const auto row = graph().neighbors(u);
  const auto d = static_cast<std::int64_t>(row.size());
  const auto k = static_cast<std::size_t>(params_.k);
  if (params_.sampling == SamplingMode::without_replacement) {
    sample_without_replacement(rng, d, params_.k, scratch_);
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] = row[static_cast<std::size_t>(scratch_[i])];
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] = row[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(d)))];
    }
  }
  return u;
}

void WeightedMedianModel::apply_update(const NodeSelection& selection) {
  if (selection.is_noop()) {
    return;
  }
  const NodeId u = selection.node;
  const int k = static_cast<int>(selection.sample.size());
  median_scratch_.resize(selection.sample.size());
  for (int i = 0; i < k; ++i) {
    const NodeId v = selection.sample[static_cast<std::size_t>(i)];
    OPINDYN_EXPECTS(state().graph().has_edge(u, v),
                    "selection sample contains a non-neighbour");
    median_scratch_[static_cast<std::size_t>(i)] = state().value(v);
  }
  const double x = lower_median_inplace(median_scratch_.data(), k);
  mutable_state().set_value(u, x);
}

NodeSelection WeightedMedianModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  selection.node = draw_selection(rng);
  selection.sample.assign(sample_scratch_.begin(), sample_scratch_.end());
  apply(selection);
  return selection;
}

void WeightedMedianModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  const Graph& g = graph();
  if (!has_specialised_k(params_.k) ||
      g.arc_count() >= burst::kMaxChunkedArcs) {
    step_burst_generic(rng, n_steps);
    return;
  }
  OpinionState& state = mutable_state();
  const NodeId n = g.node_count();
  if (g.is_regular()) {
    NodeRegularTopo topo{g.adjacency_data(), g.min_degree(),
                         g.stationary(0)};
    dispatch_mode_k(params_.sampling, params_.k, rng, n_steps, params_.lazy,
                    state, state.mutable_values(), n, topo, [] {});
  } else {
    NodeIrregularTopo topo{g.offsets_data(), g.adjacency_data(),
                           state.stationary_data()};
    dispatch_mode_k(params_.sampling, params_.k, rng, n_steps, params_.lazy,
                    state, state.mutable_values(), n, topo, [] {});
  }
  advance_time(n_steps);
}

void WeightedMedianModel::step_burst_generic(Rng& rng,
                                             std::int64_t n_steps) {
  OpinionState& state = mutable_state();
  const double* values = state.values().data();
  const bool lazy = params_.lazy;
  const int k = static_cast<int>(params_.k);
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const NodeId u = draw_selection(rng);
    for (int i = 0; i < k; ++i) {
      median_scratch_[static_cast<std::size_t>(i)] =
          values[static_cast<std::size_t>(
              sample_scratch_[static_cast<std::size_t>(i)])];
    }
    const double x = lower_median_inplace(median_scratch_.data(), k);
    state.set_value(u, x);
  }
  advance_time(n_steps);
}

}  // namespace opindyn
