// Abstract interface shared by the two averaging processes of the paper
// (NodeModel, Definition 2.1; EdgeModel, Definition 2.3).  The experiment
// harness drives either through this interface; `step_recorded`/`apply`
// expose the selection sequence chi for the duality machinery of
// Section 5.
#ifndef OPINDYN_CORE_PROCESS_H
#define OPINDYN_CORE_PROCESS_H

#include <cstdint>
#include <memory>

#include "src/core/opinion_state.h"
#include "src/core/selection.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class AveragingProcess {
 public:
  virtual ~AveragingProcess() = default;

  AveragingProcess(const AveragingProcess&) = delete;
  AveragingProcess& operator=(const AveragingProcess&) = delete;

  /// Advances the process one time step using `rng` for all choices.
  void step(Rng& rng);

  /// Advances `n_steps` time steps.  Contract: consumes `rng` exactly as
  /// `n_steps` calls to step() would and leaves bit-identical state; the
  /// NodeModel/EdgeModel overrides run devirtualized, allocation-free
  /// inner loops, so every long-horizon harness (run_until_converged,
  /// the engine's replica bodies) should step through this.
  virtual void step_burst(Rng& rng, std::int64_t n_steps);

  /// Advances one step and returns the selection chi(t) that was made
  /// (empty sample = lazy no-op).  This is the recorded slow path the
  /// Section-5 duality replay machinery consumes.
  virtual NodeSelection step_recorded(Rng& rng) = 0;

  /// Applies a fixed selection deterministically (replay; Lemma 5.2).
  void apply(const NodeSelection& selection);

  /// Whether the process has reached its stopping condition at the
  /// current state.  The default is the paper's potential criterion
  /// phi(xi(t)) <= eps, evaluated with the exact centered recomputation
  /// (pi-weighted, or plain phi_V when `use_plain_potential` is set).
  /// Discrete-opinion rules override this with their own predicate
  /// (the voter model stops at distinct-opinion count 1).
  virtual bool converged(double epsilon, bool use_plain_potential) const;

  /// Number of steps taken so far (t).
  std::int64_t time() const noexcept { return time_; }

  const Graph& graph() const noexcept { return state_.graph(); }
  const OpinionState& state() const noexcept { return state_; }
  OpinionState& mutable_state() noexcept { return state_; }

  /// Weight (1 - alpha) given to the sampled neighbours.
  double alpha() const noexcept { return alpha_; }

 protected:
  /// `graph` must outlive the process.
  AveragingProcess(const Graph& graph, std::vector<double> initial,
                   double alpha, bool track_extrema);

  /// The update rule applied by apply(); the base implements the paper's
  /// mean rule xi_u <- alpha*xi_u + (1-alpha)*mean(sample).  Other rule
  /// families (voter copy, gossip two-sided average, median) override
  /// this so replay through apply() stays faithful to their dynamics.
  virtual void apply_update(const NodeSelection& selection);

  /// Bulk time advance for step_burst overrides (lazy no-ops count too).
  void advance_time(std::int64_t n) noexcept { time_ += n; }

 private:
  OpinionState state_;
  double alpha_;
  std::int64_t time_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_PROCESS_H
