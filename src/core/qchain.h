// The Q-chain of Section 5.3: the joint Markov chain of two correlated
// random walks driven by the shared B(t) matrices.  States are ordered
// pairs (x, y) in V x V; transitions follow Eqs. (14)-(21).  The chain is
// irreducible and aperiodic but NOT reversible (a pair can move from
// distance 0 to distance 2 in one step, never back in one step), so its
// stationary distribution cannot come from detailed balance -- Lemma 5.7
// instead gives it in closed form for d-regular graphs: it takes exactly
// three values mu_0 / mu_1 / mu_+ indexed by the distance class
// (Definition 5.6) of the pair.
//
// This module builds the exact dense transition matrix from the walk
// semantics (so it is independently testable against the closed form) and
// provides both the closed-form and the power-iteration stationary
// distributions.
#ifndef OPINDYN_CORE_QCHAIN_H
#define OPINDYN_CORE_QCHAIN_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/spectral/matrix.h"
#include "src/spectral/power_iteration.h"

namespace opindyn {

/// The three stationary values of Lemma 5.7 plus its auxiliary constants.
/// Valid for d-regular graphs with d >= 2, 1 <= k <= d, alpha in (0, 1).
struct QStationaryValues {
  double mu0 = 0.0;      ///< pairs at distance 0 (both walks together)
  double mu1 = 0.0;      ///< pairs at distance 1 (adjacent)
  double mu_plus = 0.0;  ///< pairs at distance >= 2
  double gamma = 0.0;    ///< k(1+alpha) - (1-alpha)
  double ell = 0.0;      ///< the normalising factor of Lemma 5.7
};

/// Lemma 5.7 closed form.
QStationaryValues q_stationary_closed_form(std::int64_t n, std::int64_t d,
                                           std::int64_t k, double alpha);

class QChain {
 public:
  /// Builds the exact n^2 x n^2 transition matrix.  Works for any
  /// connected graph with k <= min_degree (the closed form additionally
  /// requires regularity).  Memory is O(n^4); intended for n <= ~40.
  QChain(const Graph& graph, double alpha, std::int64_t k);

  const Graph& graph() const noexcept { return *graph_; }
  double alpha() const noexcept { return alpha_; }
  std::int64_t k() const noexcept { return k_; }

  /// Row/column index of pair state (x, y).
  std::size_t state_index(NodeId x, NodeId y) const;

  const Matrix& transition() const noexcept { return q_; }

  /// Stationary distribution over pair states per Lemma 5.7 (requires a
  /// regular graph with degree >= 2); indexed by state_index.
  std::vector<double> closed_form_stationary() const;

  /// max_s |(mu Q)_s - mu_s| for the closed-form mu: the direct numerical
  /// verification of Lemma 5.7 (should be ~1e-15).
  double closed_form_residual() const;

  /// Stationary distribution by left power iteration (works for any
  /// graph, including irregular ones where no closed form is known --
  /// the paper's Section 6 open problem).
  StationaryResult numerical_stationary(double tolerance = 1e-14,
                                        int max_iterations = 2000000) const;

  /// Predicted asymptotic second moment E[W~(a) W~(b)] of Lemma 5.5:
  /// sum_{u,v} mu(u,v) xi_u xi_v for a given stationary vector.
  double second_moment(const std::vector<double>& stationary,
                       const std::vector<double>& xi0) const;

 private:
  const Graph* graph_;
  double alpha_;
  std::int64_t k_;
  Matrix q_;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_QCHAIN_H
