// Extensions along the paper's Section 6 "future work" directions:
//
//  1. Higher moments of F via M-correlated random walks.  The paper's
//     two-walk Q-chain (Section 5.3) generalises: r walks driven by the
//     same B(t) matrices form a Markov chain on V^r, and the limiting
//     r-th moment of the convergence value is
//        E[F^r] = sum_{(u_1..u_r)} mu_r(u_1..u_r) xi_{u_1} ... xi_{u_r},
//     by the same duality + mixing argument as Lemma 5.5.  We build the
//     exact V^r transition matrix (NodeModel or EdgeModel selection law)
//     and extract mu_r by power iteration -- no closed form needed.
//
//  2. Concentration on irregular graphs.  Lemma 5.7's closed form needs
//     regularity, but the r = 2 chain itself does not: its numerical
//     stationary distribution yields the exact limiting Var(F) for ANY
//     connected graph (NodeModel: F concentrates around M(0); EdgeModel:
//     around Avg(0)).
//
// State spaces are n^r, so this is for small n (r = 2: n <= 64;
// r = 3: n <= 16).
#ifndef OPINDYN_CORE_MOMENTS_H
#define OPINDYN_CORE_MOMENTS_H

#include <cstdint>
#include <vector>

#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/spectral/matrix.h"
#include "src/spectral/power_iteration.h"

namespace opindyn {

class JointWalkChain {
 public:
  /// Builds the exact transition matrix of `walk_count` correlated walks
  /// under the given model's selection law.  `config.k` is used for
  /// ModelKind::node; laziness only rescales time and is ignored.
  JointWalkChain(const Graph& graph, const ModelConfig& config,
                 int walk_count);

  const Graph& graph() const noexcept { return *graph_; }
  int walk_count() const noexcept { return walk_count_; }
  const Matrix& transition() const noexcept { return q_; }

  /// Row/column index of a walk-position tuple (size = walk_count).
  std::size_t state_index(const std::vector<NodeId>& positions) const;

  /// Stationary distribution by power iteration.
  StationaryResult stationary(double tolerance = 1e-13,
                              int max_iterations = 4000000) const;

  /// sum over states of mu(state) * prod_j xi0[position_j]: the limiting
  /// E[F^r] (for xi0 centered at the model's martingale value).
  double moment(const std::vector<double>& stationary_distribution,
                const std::vector<double>& xi0) const;

 private:
  const Graph* graph_;
  ModelConfig config_;
  int walk_count_;
  Matrix q_;
};

/// Limiting Var(F) of the NodeModel on ANY connected graph (numerical
/// Q-chain; xi0 is centered to M(0) = 0 internally).  Extends
/// Theorem 2.2(2) beyond regular graphs.
double predicted_variance_any_graph(const Graph& graph, double alpha,
                                    std::int64_t k,
                                    const std::vector<double>& xi0);

/// Same for the EdgeModel (centering to Avg(0) = 0), extending
/// Theorem 2.4(2).
double predicted_variance_any_graph_edge(const Graph& graph, double alpha,
                                         const std::vector<double>& xi0);

/// Limiting r-th moment E[F^r] of the NodeModel (xi0 centered to M(0)).
/// r = 3 gives the third central moment -> skewness of F.
double predicted_moment(const Graph& graph, double alpha, std::int64_t k,
                        const std::vector<double>& xi0, int r);

}  // namespace opindyn

#endif  // OPINDYN_CORE_MOMENTS_H
