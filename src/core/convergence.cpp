#include "src/core/convergence.h"

#include <algorithm>

#include "src/service/cancel_token.h"
#include "src/support/assert.h"
#include "src/support/metrics.h"

namespace opindyn {

ConvergenceResult run_until_converged(AveragingProcess& process, Rng& rng,
                                      const ConvergenceOptions& options) {
  OPINDYN_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  OPINDYN_EXPECTS(options.max_steps >= 0, "max_steps must be >= 0");
  std::int64_t interval = options.check_interval;
  if (interval <= 0) {
    interval = std::max<std::int64_t>(1, process.graph().node_count() / 4);
  }

  ConvergenceResult result;
  const std::int64_t start_time = process.time();
  // The stop decision is the process's own predicate.  The default
  // (AveragingProcess::converged) always evaluates the centered two-pass
  // potential: the incremental accumulators drift by ~1e-16 * magnitude^2
  // per update, which would mask epsilons near machine precision.  The
  // exact form is O(n), and with a check interval of ~n/4 steps that
  // amortises to O(1) per step.  Discrete rules (voter) substitute their
  // own O(1) predicate via the converged() override.
  bool done = process.converged(options.epsilon, options.use_plain_potential);
  while (!done && process.time() - start_time < options.max_steps) {
    // Cooperative cancellation at the burst boundary: one thread_local
    // check per check-interval (never per step), and a cancelled run
    // stops only *between* bursts, so it can never emit bytes differing
    // from a prefix of the uncancelled run.
    cancel::poll();
    const std::int64_t burst = std::min(
        interval, options.max_steps - (process.time() - start_time));
    process.step_burst(rng, burst);
    done = process.converged(options.epsilon, options.use_plain_potential);
  }
  result.steps = process.time() - start_time;
  result.converged = done;
  result.final_phi = options.use_plain_potential
                         ? process.state().phi_plain_exact()
                         : process.state().phi_exact();
  result.final_value = process.state().weighted_average();
  // Observability: one counter bump per converged run (never per step);
  // a thread_local check + return when no metrics scope is active.
  metrics::count("engine.steps", result.steps);
  if (!result.converged) {
    metrics::count("engine.unconverged_runs", 1);
  }
  return result;
}

}  // namespace opindyn
