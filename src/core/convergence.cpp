#include "src/core/convergence.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

ConvergenceResult run_until_converged(AveragingProcess& process, Rng& rng,
                                      const ConvergenceOptions& options) {
  OPINDYN_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  OPINDYN_EXPECTS(options.max_steps >= 0, "max_steps must be >= 0");
  std::int64_t interval = options.check_interval;
  if (interval <= 0) {
    interval = std::max<std::int64_t>(1, process.graph().node_count() / 4);
  }

  // Always evaluate the centered two-pass potential: the incremental
  // accumulators drift by ~1e-16 * magnitude^2 per update, which would
  // mask epsilons near machine precision.  The exact form is O(n), and
  // with a check interval of ~n/4 steps that amortises to O(1) per step.
  const auto exact_phi = [&]() {
    return options.use_plain_potential ? process.state().phi_plain_exact()
                                       : process.state().phi_exact();
  };

  ConvergenceResult result;
  const std::int64_t start_time = process.time();
  // The fast accumulator check is a trigger; the exact centered form
  // confirms, so drift can delay but never fake a stop.
  if (exact_phi() <= options.epsilon) {
    result.converged = true;
    result.steps = 0;
    result.final_phi = exact_phi();
    result.final_value = process.state().weighted_average();
    return result;
  }
  while (process.time() - start_time < options.max_steps) {
    const std::int64_t burst =
        std::min(interval, options.max_steps - (process.time() - start_time));
    for (std::int64_t i = 0; i < burst; ++i) {
      process.step(rng);
    }
    if (exact_phi() <= options.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.steps = process.time() - start_time;
  result.final_phi = exact_phi();
  result.final_value = process.state().weighted_average();
  if (!result.converged) {
    result.converged = result.final_phi <= options.epsilon;
  }
  return result;
}

}  // namespace opindyn
