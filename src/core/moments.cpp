#include "src/core/moments.h"

#include <cmath>
#include <functional>

#include "src/core/initial_values.h"
#include "src/core/selection.h"
#include "src/graph/algorithms.h"
#include "src/support/assert.h"

namespace opindyn {

namespace {

std::size_t int_pow(std::size_t base, int exponent) {
  std::size_t result = 1;
  for (int i = 0; i < exponent; ++i) {
    result *= base;
  }
  return result;
}

}  // namespace

namespace {
// Validates the state-space size BEFORE the transition matrix is
// allocated (n^r doubles squared would otherwise be requested first).
std::size_t checked_state_count(const Graph& graph, int walk_count) {
  OPINDYN_EXPECTS(walk_count >= 1 && walk_count <= 4,
                  "walk count must be in [1, 4]");
  const std::size_t states = int_pow(
      static_cast<std::size_t>(graph.node_count()), walk_count);
  OPINDYN_EXPECTS(states <= 4096,
                  "joint chain limited to n^r <= 4096 states");
  return states;
}
}  // namespace

JointWalkChain::JointWalkChain(const Graph& graph, const ModelConfig& config,
                               int walk_count)
    : graph_(&graph),
      config_(config),
      walk_count_(walk_count),
      q_(checked_state_count(graph, walk_count),
         checked_state_count(graph, walk_count), 0.0) {
  OPINDYN_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0,
                  "need alpha in (0, 1)");
  const auto n = static_cast<std::size_t>(graph.node_count());
  const std::size_t states = int_pow(n, walk_count);

  // The one-step selection law of the chosen model, with exact
  // probabilities.
  const std::vector<WeightedSelection> selections =
      config.kind == ModelKind::node
          ? enumerate_node_selections(graph, config.k)
          : enumerate_edge_selections(graph);

  const double a = config.alpha;
  const double move_share =
      (1.0 - a);  // per-walk probability of leaving the selected node

  // Decode helper: state -> positions.
  std::vector<NodeId> positions(static_cast<std::size_t>(walk_count));
  for (std::size_t s = 0; s < states; ++s) {
    std::size_t rest = s;
    for (int j = walk_count - 1; j >= 0; --j) {
      positions[static_cast<std::size_t>(j)] =
          static_cast<NodeId>(rest % n);
      rest /= n;
    }
    for (const auto& ws : selections) {
      const NodeId u = ws.selection.node;
      const auto& sample = ws.selection.sample;
      const auto k = static_cast<double>(sample.size());
      // Walks sitting on u move independently: stay w.p. alpha, else
      // jump to a uniform member of the shared sample.  Enumerate the
      // joint outcome recursively over the walks at u.
      std::vector<int> movers;
      for (int j = 0; j < walk_count; ++j) {
        if (positions[static_cast<std::size_t>(j)] == u) {
          movers.push_back(j);
        }
      }
      if (movers.empty()) {
        q_.at(s, s) += ws.probability;
        continue;
      }
      std::vector<NodeId> next = positions;
      const std::function<void(std::size_t, double)> recurse =
          [&](std::size_t mover_index, double probability) {
            if (mover_index == movers.size()) {
              q_.at(s, state_index(next)) += ws.probability * probability;
              return;
            }
            const int j = movers[mover_index];
            // Stay.
            next[static_cast<std::size_t>(j)] = u;
            recurse(mover_index + 1, probability * a);
            // Jump to each sample member.
            for (const NodeId v : sample) {
              next[static_cast<std::size_t>(j)] = v;
              recurse(mover_index + 1, probability * move_share / k);
            }
            next[static_cast<std::size_t>(j)] = u;
          };
      recurse(0, 1.0);
    }
  }
  OPINDYN_ENSURES(q_.stochasticity_defect() < 1e-11,
                  "joint walk chain must be row-stochastic");
}

std::size_t JointWalkChain::state_index(
    const std::vector<NodeId>& positions) const {
  OPINDYN_EXPECTS(positions.size() ==
                      static_cast<std::size_t>(walk_count_),
                  "positions size must equal walk count");
  const auto n = static_cast<std::size_t>(graph_->node_count());
  std::size_t index = 0;
  for (const NodeId p : positions) {
    OPINDYN_EXPECTS(p >= 0 && p < graph_->node_count(),
                    "position out of range");
    index = index * n + static_cast<std::size_t>(p);
  }
  return index;
}

StationaryResult JointWalkChain::stationary(double tolerance,
                                            int max_iterations) const {
  return stationary_distribution(q_, tolerance, max_iterations);
}

double JointWalkChain::moment(
    const std::vector<double>& stationary_distribution,
    const std::vector<double>& xi0) const {
  const auto n = static_cast<std::size_t>(graph_->node_count());
  OPINDYN_EXPECTS(xi0.size() == n, "xi0 size must equal node count");
  OPINDYN_EXPECTS(stationary_distribution.size() == q_.rows(),
                  "stationary vector has wrong size");
  double total = 0.0;
  for (std::size_t s = 0; s < stationary_distribution.size(); ++s) {
    std::size_t rest = s;
    double product = 1.0;
    for (int j = 0; j < walk_count_; ++j) {
      product *= xi0[rest % n];
      rest /= n;
    }
    total += stationary_distribution[s] * product;
  }
  return total;
}

double predicted_variance_any_graph(const Graph& graph, double alpha,
                                    std::int64_t k,
                                    const std::vector<double>& xi0) {
  auto centered = xi0;
  initial::center_degree_weighted(graph, centered);
  ModelConfig config;
  config.kind = ModelKind::node;
  config.alpha = alpha;
  config.k = k;
  const JointWalkChain chain(graph, config, 2);
  const StationaryResult mu = chain.stationary();
  OPINDYN_ENSURES(mu.converged, "Q-chain power iteration did not converge");
  return chain.moment(mu.distribution, centered);
}

double predicted_variance_any_graph_edge(const Graph& graph, double alpha,
                                         const std::vector<double>& xi0) {
  auto centered = xi0;
  initial::center_plain(centered);
  ModelConfig config;
  config.kind = ModelKind::edge;
  config.alpha = alpha;
  const JointWalkChain chain(graph, config, 2);
  const StationaryResult mu = chain.stationary();
  OPINDYN_ENSURES(mu.converged, "Q-chain power iteration did not converge");
  return chain.moment(mu.distribution, centered);
}

double predicted_moment(const Graph& graph, double alpha, std::int64_t k,
                        const std::vector<double>& xi0, int r) {
  auto centered = xi0;
  initial::center_degree_weighted(graph, centered);
  ModelConfig config;
  config.kind = ModelKind::node;
  config.alpha = alpha;
  config.k = k;
  const JointWalkChain chain(graph, config, r);
  const StationaryResult mu = chain.stationary();
  OPINDYN_ENSURES(mu.converged, "chain power iteration did not converge");
  return chain.moment(mu.distribution, centered);
}

}  // namespace opindyn
