#include "src/core/friedkin_johnsen.h"

#include <cmath>
#include <utility>

#include "src/spectral/solve.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {

FriedkinJohnsenModel::FriedkinJohnsenModel(
    const Graph& graph, std::vector<double> private_opinions,
    double susceptibility)
    : AveragingProcess(graph, private_opinions, susceptibility,
                       /*track_extrema=*/false),
      private_(std::move(private_opinions)) {
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "FJ needs every node to have a neighbour");
  scratch_.resize(private_.size());
}

void FriedkinJohnsenModel::round_impl() {
  const Graph& g = graph();
  const double lambda = alpha();
  const std::vector<double>& expressed = state().values();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    double sum = 0.0;
    for (const NodeId v : g.neighbors(u)) {
      sum += expressed[static_cast<std::size_t>(v)];
    }
    const double social = sum / static_cast<double>(g.degree(u));
    scratch_[static_cast<std::size_t>(u)] =
        lambda * social +
        (1.0 - lambda) * private_[static_cast<std::size_t>(u)];
  }
  OpinionState& s = mutable_state();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    s.set_value(u, scratch_[static_cast<std::size_t>(u)]);
  }
}

void FriedkinJohnsenModel::round() {
  round_impl();
  advance_time(1);
}

NodeSelection FriedkinJohnsenModel::step_recorded(Rng& /*rng*/) {
  round_impl();
  NodeSelection selection;  // a synchronous round has no chi(t)
  apply(selection);
  return selection;
}

void FriedkinJohnsenModel::step_burst(Rng& /*rng*/, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  for (std::int64_t i = 0; i < n_steps; ++i) {
    round_impl();
  }
  advance_time(n_steps);
}

std::vector<double> FriedkinJohnsenModel::equilibrium() const {
  const auto n = static_cast<std::size_t>(graph().node_count());
  const double lambda = alpha();
  // A = I - lambda W; b = (1 - lambda) s.
  Matrix a = walk_matrix(graph());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = (r == c ? 1.0 : 0.0) - lambda * a.at(r, c);
    }
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = (1.0 - lambda) * private_[i];
  }
  return solve_dense(std::move(a), std::move(b));
}

double FriedkinJohnsenModel::distance_to(
    const std::vector<double>& point) const {
  const std::vector<double>& expressed = state().values();
  OPINDYN_EXPECTS(point.size() == expressed.size(), "size mismatch");
  double dist = 0.0;
  for (std::size_t i = 0; i < point.size(); ++i) {
    dist = std::max(dist, std::abs(expressed[i] - point[i]));
  }
  return dist;
}

RandomizedFJ::RandomizedFJ(const Graph& graph,
                           std::vector<double> private_opinions,
                           double susceptibility, std::int64_t k)
    : graph_(&graph),
      lambda_(susceptibility),
      k_(k),
      private_(std::move(private_opinions)),
      expressed_(private_) {
  OPINDYN_EXPECTS(private_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "private opinion vector size must equal node count");
  OPINDYN_EXPECTS(susceptibility >= 0.0 && susceptibility < 1.0,
                  "susceptibility must be in [0, 1)");
  OPINDYN_EXPECTS(k >= 1 && k <= graph.min_degree(),
                  "need 1 <= k <= min degree");
}

void RandomizedFJ::step(Rng& rng) {
  ++time_;
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph_->node_count())));
  const auto row = graph_->neighbors(u);
  sample_without_replacement(rng, static_cast<std::int64_t>(row.size()), k_,
                             scratch_);
  double sum = 0.0;
  for (const std::int32_t idx : scratch_) {
    sum += expressed_[static_cast<std::size_t>(
        row[static_cast<std::size_t>(idx)])];
  }
  const double social = sum / static_cast<double>(k_);
  expressed_[static_cast<std::size_t>(u)] =
      lambda_ * social +
      (1.0 - lambda_) * private_[static_cast<std::size_t>(u)];
}

}  // namespace opindyn
