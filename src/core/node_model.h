// The NodeModel (Definition 2.1): at each step a uniformly random node u
// samples k of its neighbours and moves its value to
// alpha*xi_u + (1-alpha)/k * sum of the sampled values.
//
// Options beyond the bare definition, each tied to a part of the paper:
//  * `lazy` -- the lazy variant of Section 4 (with probability 1/2 the
//    step is a no-op), which is the variant the convergence analysis
//    (Prop. B.1) is stated for.
//  * `SamplingMode` -- Definition 2.1 samples neighbours *without*
//    replacement, while the Appendix-B potential calculation (Lemma E.1.4)
//    treats the Y_i as independent, i.e. *with* replacement.  Both are
//    implemented so the difference (it only perturbs the (1 - 1/k)
//    cross-term) can be measured; the default follows Definition 2.1.
//  * alpha = 0, k = 1 reproduces the classical voter model's update rule
//    on numeric opinions.
#ifndef OPINDYN_CORE_NODE_MODEL_H
#define OPINDYN_CORE_NODE_MODEL_H

#include <optional>
#include <vector>

#include "src/core/process.h"
#include "src/graph/layout.h"

namespace opindyn {

enum class SamplingMode {
  without_replacement,  // Definition 2.1
  with_replacement,     // Appendix B analysis variant
};

struct NodeModelParams {
  double alpha = 0.5;
  std::int64_t k = 1;
  bool lazy = false;
  SamplingMode sampling = SamplingMode::without_replacement;
  /// Track max/min for O(1) discrepancy reads (costs O(log n) per step).
  bool track_extrema = false;
  /// Run bursts on a degree-sorted value mirror (graph/layout.h) so
  /// gathers on skewed graphs hit cache.  Observable behaviour is
  /// bit-identical; a no-op on regular graphs.
  bool reorder = false;
};

class NodeModel final : public AveragingProcess {
 public:
  /// Requires k <= min_degree for without-replacement sampling (every node
  /// must be able to draw k distinct neighbours).
  NodeModel(const Graph& graph, std::vector<double> initial,
            const NodeModelParams& params);

  NodeSelection step_recorded(Rng& rng) override;

  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const NodeModelParams& params() const noexcept { return params_; }

 private:
  /// Draws one step's updating node and its k-sample into the member
  /// scratch buffers (no allocation), consuming `rng` exactly as
  /// step_recorded does; returns the updating node u.
  NodeId draw_selection(Rng& rng);

  /// step_burst fallback for configurations without a specialised
  /// compile-time-k kernel.
  void step_burst_generic(Rng& rng, std::int64_t n_steps);

  NodeModelParams params_;
  std::vector<std::int32_t> scratch_;   // Floyd subset indices buffer
  std::vector<NodeId> sample_scratch_;  // sampled node ids, draw order
  // Reordering (params_.reorder): absent when off or identity.  The
  // mirror holds the value vector in layout order for the duration of
  // one step_burst call; values_ stays authoritative outside bursts.
  std::optional<GraphLayout> layout_;
  std::vector<double> mirror_;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_NODE_MODEL_H
