#include "src/core/voter_model.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/support/assert.h"

namespace opindyn {
namespace {

std::vector<double> to_values(const std::vector<int>& opinions) {
  std::vector<double> values(opinions.size());
  std::transform(opinions.begin(), opinions.end(), values.begin(),
                 [](int o) { return static_cast<double>(o); });
  return values;
}

}  // namespace

VoterModel::VoterModel(const Graph& graph, std::vector<double> opinions,
                       bool lazy)
    : AveragingProcess(graph, std::move(opinions), /*alpha=*/0.0,
                       /*track_extrema=*/false),
      lazy_(lazy) {
  // Dense-id the opinions so consensus detection is O(1) per step.
  const std::vector<double>& values = state().values();
  std::map<double, int> dense;
  opinion_ids_.resize(values.size());
  for (std::size_t u = 0; u < values.size(); ++u) {
    const auto [it, inserted] =
        dense.emplace(values[u], static_cast<int>(dense.size()));
    opinion_ids_[u] = it->second;
    (void)inserted;
  }
  counts_.assign(dense.size(), 0);
  for (const int id : opinion_ids_) {
    ++counts_[static_cast<std::size_t>(id)];
  }
  distinct_opinions_ = static_cast<int>(
      std::count_if(counts_.begin(), counts_.end(),
                    [](std::int64_t c) { return c > 0; }));
}

VoterModel::VoterModel(const Graph& graph, const std::vector<int>& opinions,
                       bool lazy)
    : VoterModel(graph, to_values(opinions), lazy) {}

void VoterModel::copy_opinion(NodeId u, NodeId v) {
  const auto ui = static_cast<std::size_t>(u);
  const auto vi = static_cast<std::size_t>(v);
  if (opinion_ids_[ui] == opinion_ids_[vi]) {
    return;
  }
  const auto old_id = static_cast<std::size_t>(opinion_ids_[ui]);
  const auto new_id = static_cast<std::size_t>(opinion_ids_[vi]);
  if (--counts_[old_id] == 0) {
    --distinct_opinions_;
  }
  ++counts_[new_id];
  opinion_ids_[ui] = opinion_ids_[vi];
  mutable_state().set_value(u, state().value(v));
}

void VoterModel::apply_update(const NodeSelection& selection) {
  if (selection.is_noop()) {
    return;
  }
  OPINDYN_EXPECTS(selection.sample.size() == 1,
                  "voter selection must sample exactly one neighbour");
  const NodeId v = selection.sample.front();
  OPINDYN_EXPECTS(state().graph().has_edge(selection.node, v),
                  "selection sample contains a non-neighbour");
  copy_opinion(selection.node, v);
}

NodeSelection VoterModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (lazy_ && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  const Graph& g = graph();
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(g.node_count())));
  const auto row = g.neighbors(u);
  const NodeId v = row[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(row.size())))];
  selection.node = u;
  selection.sample.assign(1, v);
  apply(selection);
  return selection;
}

void VoterModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  // Allocation-free loop with the exact step() draw order: [coin,]
  // next_below(n), next_below(deg(u)).  The update is a value copy, so
  // bit-identity with repeated step() is by construction.
  const Graph& g = graph();
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy_ && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto row = g.neighbors(u);
    const NodeId v = row[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(row.size())))];
    copy_opinion(u, v);
  }
  advance_time(n_steps);
}

bool VoterModel::converged(double /*epsilon*/,
                           bool /*use_plain_potential*/) const {
  return has_consensus();
}

VoterRunResult run_voter_to_consensus(const Graph& graph,
                                      const std::vector<int>& opinions,
                                      Rng& rng, std::int64_t max_steps) {
  VoterModel model(graph, opinions);
  VoterRunResult result;
  while (!model.has_consensus() && model.time() < max_steps) {
    model.step(rng);
  }
  result.steps = model.time();
  result.reached_consensus = model.has_consensus();
  result.winning_opinion = static_cast<int>(model.opinion(0));
  return result;
}

}  // namespace opindyn
