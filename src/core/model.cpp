#include "src/core/model.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/degroot.h"
#include "src/core/friedkin_johnsen.h"
#include "src/core/gossip_model.h"
#include "src/core/hegselmann_krause_model.h"
#include "src/core/voter_model.h"
#include "src/core/weighted_median_model.h"
#include "src/support/cli.h"

namespace opindyn {
namespace {

struct KnobSet {
  bool alpha = false;
  bool k = false;
  bool lazy = false;
  bool sampling = false;
  bool reorder = false;
  bool confidence = false;
};

/// Which knobs each kind honours; anything else set to a non-default
/// value is rejected by validate_model_config.
KnobSet knobs_for(ModelKind kind) {
  switch (kind) {
    case ModelKind::node:
      return {/*alpha=*/true, /*k=*/true, /*lazy=*/true, /*sampling=*/true,
              /*reorder=*/true, /*confidence=*/false};
    case ModelKind::edge:
      return {/*alpha=*/true, /*k=*/false, /*lazy=*/true,
              /*sampling=*/false, /*reorder=*/true, /*confidence=*/false};
    case ModelKind::voter:
    case ModelKind::gossip:
    case ModelKind::degroot:
      return {/*alpha=*/false, /*k=*/false, /*lazy=*/true,
              /*sampling=*/false, /*reorder=*/false, /*confidence=*/false};
    case ModelKind::friedkin_johnsen:
      return {/*alpha=*/true, /*k=*/false, /*lazy=*/false,
              /*sampling=*/false, /*reorder=*/false, /*confidence=*/false};
    case ModelKind::weighted_median:
      return {/*alpha=*/false, /*k=*/true, /*lazy=*/true, /*sampling=*/true,
              /*reorder=*/false, /*confidence=*/false};
    case ModelKind::hegselmann_krause:
      return {/*alpha=*/false, /*k=*/false, /*lazy=*/true,
              /*sampling=*/false, /*reorder=*/false, /*confidence=*/true};
  }
  throw std::runtime_error("unknown ModelKind");
}

[[noreturn]] void reject_knob(ModelKind kind, const std::string& knob) {
  throw std::runtime_error("model '" + model_kind_name(kind) +
                           "' does not use " + knob +
                           "=; remove it or pick a model that does");
}

}  // namespace

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::node:
      return "node";
    case ModelKind::edge:
      return "edge";
    case ModelKind::voter:
      return "voter";
    case ModelKind::gossip:
      return "gossip";
    case ModelKind::degroot:
      return "degroot";
    case ModelKind::friedkin_johnsen:
      return "friedkin_johnsen";
    case ModelKind::weighted_median:
      return "weighted_median";
    case ModelKind::hegselmann_krause:
      return "hegselmann_krause";
  }
  throw std::runtime_error("unknown ModelKind");
}

const std::vector<std::string>& model_kind_names() {
  static const std::vector<std::string> names = {
      "node",   "edge",    "voter",           "gossip",
      "degroot", "friedkin_johnsen", "weighted_median",
      "hegselmann_krause"};
  return names;
}

ModelKind parse_model_kind(const std::string& value) {
  const std::vector<std::string>& names = model_kind_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (value == names[i]) {
      return static_cast<ModelKind>(i);
    }
  }
  std::ostringstream message;
  message << "unknown model '" << value << "'";
  const std::vector<std::string> near = closest_matches(value, names);
  if (!near.empty()) {
    message << "; did you mean '" << near.front() << "'?";
  }
  message << " (known:";
  for (const std::string& name : names) {
    message << ' ' << name;
  }
  message << ')';
  throw std::runtime_error(message.str());
}

void validate_model_config(const ModelConfig& config) {
  const ModelConfig defaults;
  const KnobSet allowed = knobs_for(config.kind);
  if (!allowed.alpha && config.alpha != defaults.alpha) {
    reject_knob(config.kind, "alpha");
  }
  if (!allowed.k && config.k != defaults.k) {
    reject_knob(config.kind, "k");
  }
  if (!allowed.lazy && config.lazy != defaults.lazy) {
    reject_knob(config.kind, "lazy");
  }
  if (!allowed.sampling && config.sampling != defaults.sampling) {
    reject_knob(config.kind, "sampling");
  }
  if (!allowed.reorder && config.reorder != defaults.reorder) {
    reject_knob(config.kind, "reorder");
  }
  if (!allowed.confidence && config.confidence != defaults.confidence) {
    reject_knob(config.kind, "confidence");
  }
  if (config.kind == ModelKind::hegselmann_krause &&
      !(config.confidence > 0.0)) {
    throw std::runtime_error(
        "model 'hegselmann_krause' requires confidence= > 0");
  }
}

ModelConfig config_for_kind(const ModelConfig& config, ModelKind kind) {
  const ModelConfig defaults;
  const KnobSet allowed = knobs_for(kind);
  ModelConfig result = config;
  result.kind = kind;
  if (!allowed.alpha) {
    result.alpha = defaults.alpha;
  }
  if (!allowed.k) {
    result.k = defaults.k;
  }
  if (!allowed.lazy) {
    result.lazy = defaults.lazy;
  }
  if (!allowed.sampling) {
    result.sampling = defaults.sampling;
  }
  if (!allowed.reorder) {
    result.reorder = defaults.reorder;
  }
  if (!allowed.confidence) {
    result.confidence = defaults.confidence;
  }
  return result;
}

std::unique_ptr<AveragingProcess> make_process(const Graph& graph,
                                               const ModelConfig& config,
                                               std::vector<double> initial) {
  validate_model_config(config);
  switch (config.kind) {
    case ModelKind::node: {
      NodeModelParams params;
      params.alpha = config.alpha;
      params.k = config.k;
      params.lazy = config.lazy;
      params.sampling = config.sampling;
      params.reorder = config.reorder;
      return std::make_unique<NodeModel>(graph, std::move(initial), params);
    }
    case ModelKind::edge: {
      EdgeModelParams params;
      params.alpha = config.alpha;
      params.lazy = config.lazy;
      params.reorder = config.reorder;
      return std::make_unique<EdgeModel>(graph, std::move(initial), params);
    }
    case ModelKind::voter:
      return std::make_unique<VoterModel>(graph, std::move(initial),
                                          config.lazy);
    case ModelKind::gossip:
      return std::make_unique<GossipModel>(graph, std::move(initial),
                                           config.lazy);
    case ModelKind::degroot:
      return std::make_unique<DeGrootModel>(graph, std::move(initial),
                                            config.lazy);
    case ModelKind::friedkin_johnsen:
      return std::make_unique<FriedkinJohnsenModel>(
          graph, std::move(initial), config.alpha);
    case ModelKind::weighted_median: {
      WeightedMedianParams params;
      params.k = config.k;
      params.lazy = config.lazy;
      params.sampling = config.sampling;
      return std::make_unique<WeightedMedianModel>(graph, std::move(initial),
                                                   params);
    }
    case ModelKind::hegselmann_krause: {
      HegselmannKrauseParams params;
      params.confidence = config.confidence;
      params.lazy = config.lazy;
      return std::make_unique<HegselmannKrauseModel>(
          graph, std::move(initial), params);
    }
  }
  throw std::runtime_error("unknown ModelKind");
}

}  // namespace opindyn
