#include "src/core/model.h"

#include <utility>

namespace opindyn {

std::unique_ptr<AveragingProcess> make_process(const Graph& graph,
                                               const ModelConfig& config,
                                               std::vector<double> initial) {
  if (config.kind == ModelKind::node) {
    NodeModelParams params;
    params.alpha = config.alpha;
    params.k = config.k;
    params.lazy = config.lazy;
    params.sampling = config.sampling;
    params.reorder = config.reorder;
    return std::make_unique<NodeModel>(graph, std::move(initial), params);
  }
  EdgeModelParams params;
  params.alpha = config.alpha;
  params.lazy = config.lazy;
  params.reorder = config.reorder;
  return std::make_unique<EdgeModel>(graph, std::move(initial), params);
}

}  // namespace opindyn
