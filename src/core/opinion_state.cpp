#include "src/core/opinion_state.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

OpinionState::OpinionState(const Graph& graph, std::vector<double> initial,
                           bool track_extrema)
    : graph_(&graph),
      values_(std::move(initial)),
      track_extrema_(track_extrema) {
  OPINDYN_EXPECTS(values_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "initial value vector size must equal node count");
  stationary_.resize(values_.size());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    stationary_[static_cast<std::size_t>(u)] = graph.stationary(u);
  }
  recompute();
}

double OpinionState::average() const noexcept {
  return sum_ / static_cast<double>(node_count());
}

double OpinionState::phi() const noexcept { return wsum_sq_ - wsum_ * wsum_; }

double OpinionState::phi_exact() const {
  const double center = wsum_;
  double total = 0.0;
  for (NodeId u = 0; u < node_count(); ++u) {
    const double d = values_[static_cast<std::size_t>(u)] - center;
    total += stationary_[static_cast<std::size_t>(u)] * d * d;
  }
  return total;
}

double OpinionState::phi_plain() const noexcept {
  return sum_sq_ - sum_ * sum_ / static_cast<double>(node_count());
}

double OpinionState::phi_plain_exact() const {
  const double center = average();
  double total = 0.0;
  for (const double v : values_) {
    const double d = v - center;
    total += d * d;
  }
  return total;
}

double OpinionState::discrepancy() const {
  return max_value() - min_value();
}

double OpinionState::min_value() const {
  OPINDYN_EXPECTS(!values_.empty(), "empty state");
  if (track_extrema_) {
    if (!extrema_valid_) {
      refresh_extrema();
    }
    return min_;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double OpinionState::max_value() const {
  OPINDYN_EXPECTS(!values_.empty(), "empty state");
  if (track_extrema_) {
    if (!extrema_valid_) {
      refresh_extrema();
    }
    return max_;
  }
  return *std::max_element(values_.begin(), values_.end());
}

void OpinionState::refresh_extrema() const {
  double lo = values_[0];
  double hi = values_[0];
  for (const double v : values_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  min_ = lo;
  max_ = hi;
  extrema_valid_ = true;
}

void OpinionState::recompute() {
  sum_ = 0.0;
  sum_sq_ = 0.0;
  wsum_ = 0.0;
  wsum_sq_ = 0.0;
  for (NodeId u = 0; u < node_count(); ++u) {
    const double v = values_[static_cast<std::size_t>(u)];
    const double pi = stationary_[static_cast<std::size_t>(u)];
    sum_ += v;
    sum_sq_ += v * v;
    wsum_ += pi * v;
    wsum_sq_ += pi * v * v;
  }
  if (track_extrema_) {
    refresh_extrema();
  }
  updates_since_recompute_ = 0;
}

}  // namespace opindyn
