#include "src/core/opinion_state.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

OpinionState::OpinionState(const Graph& graph, std::vector<double> initial,
                           bool track_extrema)
    : graph_(&graph),
      values_(std::move(initial)),
      track_extrema_(track_extrema) {
  OPINDYN_EXPECTS(values_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "initial value vector size must equal node count");
  recompute();
}

double OpinionState::value(NodeId u) const {
  OPINDYN_EXPECTS(u >= 0 && u < node_count(), "node id out of range");
  return values_[static_cast<std::size_t>(u)];
}

void OpinionState::set_value(NodeId u, double x) {
  OPINDYN_EXPECTS(u >= 0 && u < node_count(), "node id out of range");
  const auto idx = static_cast<std::size_t>(u);
  const double old = values_[idx];
  const double pi = graph_->stationary(u);
  sum_ += x - old;
  sum_sq_ += x * x - old * old;
  wsum_ += pi * (x - old);
  wsum_sq_ += pi * (x * x - old * old);
  if (track_extrema_) {
    const auto it = sorted_.find(old);
    OPINDYN_ENSURES(it != sorted_.end(), "extremum multiset out of sync");
    sorted_.erase(it);
    sorted_.insert(x);
  }
  values_[idx] = x;
  if (++updates_since_recompute_ >= recompute_interval_) {
    recompute();
  }
}

double OpinionState::average() const noexcept {
  return sum_ / static_cast<double>(node_count());
}

double OpinionState::phi() const noexcept { return wsum_sq_ - wsum_ * wsum_; }

double OpinionState::phi_exact() const {
  const double center = wsum_;
  double total = 0.0;
  for (NodeId u = 0; u < node_count(); ++u) {
    const double d = values_[static_cast<std::size_t>(u)] - center;
    total += graph_->stationary(u) * d * d;
  }
  return total;
}

double OpinionState::phi_plain() const noexcept {
  return sum_sq_ - sum_ * sum_ / static_cast<double>(node_count());
}

double OpinionState::phi_plain_exact() const {
  const double center = average();
  double total = 0.0;
  for (const double v : values_) {
    const double d = v - center;
    total += d * d;
  }
  return total;
}

double OpinionState::discrepancy() const {
  return max_value() - min_value();
}

double OpinionState::min_value() const {
  OPINDYN_EXPECTS(!values_.empty(), "empty state");
  if (track_extrema_) {
    return *sorted_.begin();
  }
  return *std::min_element(values_.begin(), values_.end());
}

double OpinionState::max_value() const {
  OPINDYN_EXPECTS(!values_.empty(), "empty state");
  if (track_extrema_) {
    return *sorted_.rbegin();
  }
  return *std::max_element(values_.begin(), values_.end());
}

void OpinionState::recompute() {
  sum_ = 0.0;
  sum_sq_ = 0.0;
  wsum_ = 0.0;
  wsum_sq_ = 0.0;
  for (NodeId u = 0; u < node_count(); ++u) {
    const double v = values_[static_cast<std::size_t>(u)];
    const double pi = graph_->stationary(u);
    sum_ += v;
    sum_sq_ += v * v;
    wsum_ += pi * v;
    wsum_sq_ += pi * v * v;
  }
  if (track_extrema_) {
    sorted_.clear();
    sorted_.insert(values_.begin(), values_.end());
  }
  updates_since_recompute_ = 0;
}

}  // namespace opindyn
