#include "src/core/selection.h"

#include <cmath>
#include <functional>

#include "src/support/assert.h"

namespace opindyn {

namespace {

double binomial(std::int64_t n, std::int64_t k) {
  double result = 1.0;
  for (std::int64_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace

std::vector<WeightedSelection> enumerate_node_selections(const Graph& graph,
                                                         std::int64_t k) {
  OPINDYN_EXPECTS(k >= 1, "k must be >= 1");
  OPINDYN_EXPECTS(k <= graph.min_degree(),
                  "k must be <= the minimum degree");
  std::vector<WeightedSelection> result;
  const double node_prob = 1.0 / static_cast<double>(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const auto row = graph.neighbors(u);
    const auto d = static_cast<std::int64_t>(row.size());
    const double subset_prob = 1.0 / binomial(d, k);
    std::vector<NodeId> subset;
    // Recursive enumeration of all k-subsets of the neighbour row.
    const std::function<void(std::int64_t)> recurse =
        [&](std::int64_t next) {
          if (static_cast<std::int64_t>(subset.size()) == k) {
            result.push_back(
                {NodeSelection{u, subset}, node_prob * subset_prob});
            return;
          }
          const auto remaining =
              k - static_cast<std::int64_t>(subset.size());
          for (std::int64_t i = next; i <= d - remaining; ++i) {
            subset.push_back(row[static_cast<std::size_t>(i)]);
            recurse(i + 1);
            subset.pop_back();
          }
        };
    recurse(0);
  }
  return result;
}

std::vector<WeightedSelection> enumerate_node_selections_with_replacement(
    const Graph& graph, std::int64_t k) {
  OPINDYN_EXPECTS(k >= 1 && k <= 4,
                  "with-replacement enumeration limited to k <= 4");
  std::vector<WeightedSelection> result;
  const double node_prob = 1.0 / static_cast<double>(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const auto row = graph.neighbors(u);
    const auto d = static_cast<std::int64_t>(row.size());
    const double tuple_prob =
        1.0 / std::pow(static_cast<double>(d), static_cast<double>(k));
    std::vector<NodeId> tuple;
    const std::function<void()> recurse = [&]() {
      if (static_cast<std::int64_t>(tuple.size()) == k) {
        result.push_back({NodeSelection{u, tuple}, node_prob * tuple_prob});
        return;
      }
      for (std::int64_t i = 0; i < d; ++i) {
        tuple.push_back(row[static_cast<std::size_t>(i)]);
        recurse();
        tuple.pop_back();
      }
    };
    recurse();
  }
  return result;
}

std::vector<WeightedSelection> enumerate_edge_selections(const Graph& graph) {
  std::vector<WeightedSelection> result;
  const double arc_prob = 1.0 / static_cast<double>(graph.arc_count());
  result.reserve(static_cast<std::size_t>(graph.arc_count()));
  for (ArcId j = 0; j < graph.arc_count(); ++j) {
    result.push_back(
        {NodeSelection{graph.arc_source(j), {graph.arc_target(j)}},
         arc_prob});
  }
  return result;
}

}  // namespace opindyn
