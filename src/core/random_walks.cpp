#include "src/core/random_walks.h"

#include <numeric>

#include "src/support/assert.h"

namespace opindyn {

CorrelatedWalks::CorrelatedWalks(const Graph& graph, double alpha)
    : graph_(&graph), alpha_(alpha),
      positions_(static_cast<std::size_t>(graph.node_count())) {
  OPINDYN_EXPECTS(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
  std::iota(positions_.begin(), positions_.end(), 0);
}

CorrelatedWalks::CorrelatedWalks(const Graph& graph, double alpha,
                                 std::vector<NodeId> start_positions)
    : graph_(&graph), alpha_(alpha), positions_(std::move(start_positions)) {
  OPINDYN_EXPECTS(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
  OPINDYN_EXPECTS(!positions_.empty(), "need at least one walk");
  for (const NodeId p : positions_) {
    OPINDYN_EXPECTS(p >= 0 && p < graph.node_count(),
                    "start position out of range");
  }
}

void CorrelatedWalks::apply(const NodeSelection& selection, Rng& rng) {
  ++time_;
  if (selection.is_noop()) {
    return;
  }
  const NodeId u = selection.node;
  const auto k = static_cast<std::uint64_t>(selection.sample.size());
  for (NodeId& pos : positions_) {
    if (pos != u) {
      continue;
    }
    // Stay with probability alpha (the walk's share of B's diagonal);
    // otherwise jump to a uniform member of the shared sample.  Each
    // walk draws independently -- the correlation comes solely from the
    // shared (u, S).
    if (!rng.next_bool(alpha_)) {
      pos = selection.sample[static_cast<std::size_t>(rng.next_below(k))];
    }
  }
}

NodeId CorrelatedWalks::position(std::size_t walk) const {
  OPINDYN_EXPECTS(walk < positions_.size(), "walk index out of range");
  return positions_[walk];
}

double CorrelatedWalks::cost(std::size_t walk,
                             const std::vector<double>& xi0) const {
  const NodeId pos = position(walk);
  OPINDYN_EXPECTS(xi0.size() == static_cast<std::size_t>(graph_->node_count()),
                  "cost vector size must equal node count");
  return xi0[static_cast<std::size_t>(pos)];
}

}  // namespace opindyn
