#include "src/core/coalescing.h"

#include "src/support/assert.h"

namespace opindyn {

CoalescingWalks::CoalescingWalks(const Graph& graph)
    : graph_(&graph),
      occupancy_(static_cast<std::size_t>(graph.node_count()), 1),
      clusters_(graph.node_count()) {
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "coalescing walks need every node to have a neighbour");
}

void CoalescingWalks::step(Rng& rng) {
  ++time_;
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph_->node_count())));
  const auto ui = static_cast<std::size_t>(u);
  if (occupancy_[ui] == 0) {
    return;
  }
  const auto row = graph_->neighbors(u);
  const NodeId v = row[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(row.size())))];
  const auto vi = static_cast<std::size_t>(v);
  // All walks at u hop to v together; if v was occupied they merge.
  if (occupancy_[vi] > 0) {
    --clusters_;
  }
  occupancy_[vi] += occupancy_[ui];
  occupancy_[ui] = 0;
}

std::int64_t CoalescingWalks::walks_at(NodeId u) const {
  OPINDYN_EXPECTS(u >= 0 && u < graph_->node_count(), "node out of range");
  return occupancy_[static_cast<std::size_t>(u)];
}

CoalescenceResult run_to_coalescence(const Graph& graph, Rng& rng,
                                     std::int64_t max_steps) {
  CoalescingWalks walks(graph);
  while (!walks.coalesced() && walks.time() < max_steps) {
    walks.step(rng);
  }
  CoalescenceResult result;
  result.steps = walks.time();
  result.coalesced = walks.coalesced();
  return result;
}

}  // namespace opindyn
