// The EdgeModel (Definition 2.3): at each step a uniformly random
// *directed* edge (u, v) is drawn among all 2m arcs and u moves its value
// to alpha*xi_u + (1-alpha)*xi_v.  For d-regular graphs this coincides
// with the NodeModel at k = 1 (the remark after Theorem 2.4); for
// irregular graphs it is a genuinely different process whose martingale is
// the *plain* average Avg(t) (Prop. D.1.i).
#ifndef OPINDYN_CORE_EDGE_MODEL_H
#define OPINDYN_CORE_EDGE_MODEL_H

#include <optional>
#include <vector>

#include "src/core/process.h"
#include "src/graph/layout.h"

namespace opindyn {

struct EdgeModelParams {
  double alpha = 0.5;
  /// Lazy variant: with probability 1/2 the step is a no-op.
  bool lazy = false;
  bool track_extrema = false;
  /// Degree-sorted value mirror for bursts (see NodeModelParams).
  bool reorder = false;
};

class EdgeModel final : public AveragingProcess {
 public:
  EdgeModel(const Graph& graph, std::vector<double> initial,
            const EdgeModelParams& params);

  NodeSelection step_recorded(Rng& rng) override;

  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const EdgeModelParams& params() const noexcept { return params_; }

 private:
  /// Scalar fallback for graphs past the chunked kernels' 2m < 2^31
  /// index range.
  void step_burst_generic(Rng& rng, std::int64_t n_steps);

  EdgeModelParams params_;
  std::optional<GraphLayout> layout_;
  std::vector<double> mirror_;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_EDGE_MODEL_H
