#include "src/core/node_model.h"

#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {
namespace {

// Fused Floyd draw + neighbour gather + sum for compile-time k: the
// subset lives in registers and the values are read in one pass.  Draws
// and sum order match sample_without_replacement + the scratch gather
// exactly (Floyd pushes the chosen index -- t if fresh, else j -- in j
// order), so the rng stream and the floating-point result are
// bit-identical to the recorded path.
template <int K>
double draw_sum_without_replacement(Rng& rng, const NodeId* row,
                                    std::int64_t d, const double* values) {
  std::int32_t picked[K];
  double sum = 0.0;
  for (int i = 0; i < K; ++i) {
    const std::int64_t j = d - K + i;
    const auto t = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(j) + 1));
    bool duplicate = false;
    for (int p = 0; p < i; ++p) {
      duplicate |= picked[p] == t;
    }
    const std::int32_t idx = duplicate ? static_cast<std::int32_t>(j) : t;
    picked[i] = idx;
    sum += values[static_cast<std::size_t>(
        row[static_cast<std::size_t>(idx)])];
  }
  return sum;
}

template <int K>
double draw_sum_with_replacement(Rng& rng, const NodeId* row,
                                 std::int64_t d, const double* values) {
  double sum = 0.0;
  for (int i = 0; i < K; ++i) {
    sum += values[static_cast<std::size_t>(row[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(d)))])];
  }
  return sum;
}

/// The devirtualized inner loop, instantiated per (k, sampling mode).
template <int K, SamplingMode Mode>
void run_node_burst(Rng& rng, std::int64_t n_steps, bool lazy,
                    const Graph& g, OpinionState& state, double a) {
  // values() never reallocates under set_value, so one raw pointer
  // serves the whole burst; reads through it skip per-access checks.
  const double* values = state.values().data();
  const double one_minus_a = 1.0 - a;
  const double k_count = static_cast<double>(K);
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto row = g.neighbors(u);
    const auto d = static_cast<std::int64_t>(row.size());
    const double neighbour_sum =
        Mode == SamplingMode::without_replacement
            ? draw_sum_without_replacement<K>(rng, row.data(), d, values)
            : draw_sum_with_replacement<K>(rng, row.data(), d, values);
    const double neighbour_mean = neighbour_sum / k_count;
    state.set_value(u, a * values[static_cast<std::size_t>(u)] +
                           one_minus_a * neighbour_mean);
  }
}

template <SamplingMode Mode>
bool dispatch_node_burst(std::int64_t k, Rng& rng, std::int64_t n_steps,
                         bool lazy, const Graph& g, OpinionState& state,
                         double a) {
  switch (k) {
    case 1:
      run_node_burst<1, Mode>(rng, n_steps, lazy, g, state, a);
      return true;
    case 2:
      run_node_burst<2, Mode>(rng, n_steps, lazy, g, state, a);
      return true;
    case 3:
      run_node_burst<3, Mode>(rng, n_steps, lazy, g, state, a);
      return true;
    case 4:
      run_node_burst<4, Mode>(rng, n_steps, lazy, g, state, a);
      return true;
    case 8:
      run_node_burst<8, Mode>(rng, n_steps, lazy, g, state, a);
      return true;
    default:
      return false;  // uncommon k: the generic loop handles it
  }
}

}  // namespace

NodeModel::NodeModel(const Graph& graph, std::vector<double> initial,
                     const NodeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(params.k >= 1, "k must be >= 1");
  if (params.sampling == SamplingMode::without_replacement) {
    OPINDYN_EXPECTS(params.k <= graph.min_degree(),
                    "k must be <= min degree for sampling without "
                    "replacement");
  }
  scratch_.reserve(static_cast<std::size_t>(params.k));
  sample_scratch_.resize(static_cast<std::size_t>(params.k));
}

NodeId NodeModel::draw_selection(Rng& rng) {
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph().node_count())));
  const auto row = graph().neighbors(u);
  const auto d = static_cast<std::int64_t>(row.size());
  const auto k = static_cast<std::size_t>(params_.k);
  if (params_.sampling == SamplingMode::without_replacement) {
    sample_without_replacement(rng, d, params_.k, scratch_);
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] =
          row[static_cast<std::size_t>(scratch_[i])];
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] = row[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(d)))];
    }
  }
  return u;
}

NodeSelection NodeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  selection.node = draw_selection(rng);
  // The returned selection owns its copy (the duality replay API keeps
  // whole sequences alive); the draw itself stayed on the scratch.
  selection.sample.assign(sample_scratch_.begin(), sample_scratch_.end());
  apply(selection);
  return selection;
}

void NodeModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  const bool specialised =
      params_.sampling == SamplingMode::without_replacement
          ? dispatch_node_burst<SamplingMode::without_replacement>(
                params_.k, rng, n_steps, params_.lazy, graph(),
                mutable_state(), alpha())
          : dispatch_node_burst<SamplingMode::with_replacement>(
                params_.k, rng, n_steps, params_.lazy, graph(),
                mutable_state(), alpha());
  if (!specialised) {
    step_burst_generic(rng, n_steps);
    return;
  }
  advance_time(n_steps);
}

void NodeModel::step_burst_generic(Rng& rng, std::int64_t n_steps) {
  OpinionState& state = mutable_state();
  // values() never reallocates under set_value, so one raw pointer
  // serves the whole burst; reads through it skip per-access checks.
  const double* values = state.values().data();
  const double a = alpha();
  const double one_minus_a = 1.0 - a;
  const double k_count = static_cast<double>(params_.k);
  const bool lazy = params_.lazy;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const NodeId u = draw_selection(rng);
    double neighbour_sum = 0.0;
    for (const NodeId v : sample_scratch_) {
      neighbour_sum += values[static_cast<std::size_t>(v)];
    }
    const double neighbour_mean = neighbour_sum / k_count;
    state.set_value(u, a * values[static_cast<std::size_t>(u)] +
                           one_minus_a * neighbour_mean);
  }
  advance_time(n_steps);
}

}  // namespace opindyn
