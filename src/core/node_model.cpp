#include "src/core/node_model.h"

#include <algorithm>

#include "src/core/burst_kernels.h"
#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {
namespace {

// Topology policies: how a kernel instantiation finds a node's
// adjacency row, its value-storage slot and its stationary weight.
// All calls inline into the chunk loops.

/// Regular graph, natural order: row base is u * d (no offsets load)
/// and pi = d / 2m is one constant (bit-identical to the per-node
/// array, which was filled from the same expression).
struct NodeRegularTopo {
  static constexpr bool kUniformPi = true;
  const NodeId* adj;
  std::int32_t d;
  double pi;
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(u) * d;
  }
  std::int32_t degree(NodeId) const noexcept { return d; }
  std::int32_t slot(NodeId u) const noexcept { return u; }
  double stationary(NodeId) const noexcept { return pi; }
  const NodeId* adjacency() const noexcept { return adj; }
};

/// Irregular graph, natural order: CSR offsets + per-node pi.
struct NodeIrregularTopo {
  static constexpr bool kUniformPi = false;
  const std::uint32_t* offsets;
  const NodeId* adj;
  const double* pi;
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t degree(NodeId u) const noexcept {
    return static_cast<std::int32_t>(
        offsets[static_cast<std::size_t>(u) + 1] -
        offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t slot(NodeId u) const noexcept { return u; }
  double stationary(NodeId u) const noexcept {
    return pi[static_cast<std::size_t>(u)];
  }
  const NodeId* adjacency() const noexcept { return adj; }
};

/// Degree-sorted mirror (graph/layout.h): draws stay in original id
/// space, only value storage is permuted, so rows and rng consumption
/// are untouched and the translated adjacency array yields mirror
/// slots directly.
struct NodeReorderTopo {
  static constexpr bool kUniformPi = false;
  const std::uint32_t* offsets;
  const NodeId* adj_internal;
  const NodeId* to_internal;
  const double* pi;  // original order: pi depends on the node, not the slot
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t degree(NodeId u) const noexcept {
    return static_cast<std::int32_t>(
        offsets[static_cast<std::size_t>(u) + 1] -
        offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t slot(NodeId u) const noexcept {
    return to_internal[static_cast<std::size_t>(u)];
  }
  double stationary(NodeId u) const noexcept {
    return pi[static_cast<std::size_t>(u)];
  }
  const NodeId* adjacency() const noexcept { return adj_internal; }
};

/// The burst kernel, instantiated per (k, sampling mode, extrema
/// tracking, topology).  Track is compile-time because the per-step
/// extrema check otherwise survives in every non-tracking hot loop
/// (GCC does not unswitch it out) at ~4 uops plus two live min/max
/// registers per step.
/// Consumes the rng in EXACT step() order and performs set_value's
/// arithmetic through a register-resident cursor, so the result is
/// bit-identical to n_steps repeated step() calls.  Two shapes behind
/// one contract:
///
///  - Portable builds run a fused loop, software-pipelined in groups
///    of 8 steps: the group's draws (two serial rng calls per step at
///    K = 1) resolve to neighbour/target slots first, then the FP
///    applies walk the group in step order reading values live.  The
///    rng state chain is the long pole, so hoisting it ahead of the
///    accumulator chains is worth ~1.4x over a straight per-step loop.
///  - OPINDYN_SIMD_AVX2 builds split each chunk into phases (see
///    burst_kernels.h): serial draws into SoA position buffers, a
///    vpgatherdd adjacency translation, then the sequential apply.
///
/// Both consume the identical rng stream and apply in the identical
/// order; only instruction scheduling differs.  The recompute cadence
/// is counted per chunk through the cursor countdown: a chunk that
/// cannot reach the recompute threshold settles its bookkeeping with
/// one advance(), and only chunks straddling the threshold (or lazy
/// runs, whose update count is coin-dependent) check per update.
template <int K, SamplingMode Mode, bool Track, class Topo, class Sync>
void run_node_burst(Rng& rng, std::int64_t n_steps, bool lazy, double a,
                    OpinionState& state, double* vals, NodeId n,
                    const Topo& topo, Sync&& sync) {
  const double one_minus_a = 1.0 - a;
  const double k_count = static_cast<double>(K);
  const auto nn = static_cast<std::uint64_t>(n);
  auto cursor = state.begin_burst();
  const double uniform_pi = topo.stationary(0);
  const auto recompute_now = [&] {
    sync();  // mirror kernels make values_ current first
    state.recompute();
    cursor = state.begin_burst();
  };
#if !defined(OPINDYN_SIMD_AVX2)
  const NodeId* adj = topo.adjacency();
  // One full process step: draws in exact step() order, neighbour
  // values read live (nothing is written until after every draw of the
  // step, exactly like draw_selection + apply_update).
  const auto one_step = [&] {
    const auto u = static_cast<NodeId>(rng.next_below_nonzero(nn));
    const std::int64_t base = topo.row_base(u);
    const std::int32_t d = topo.degree(u);
    double sum = 0.0;
    if constexpr (Mode == SamplingMode::without_replacement) {
      // Floyd's subset draw, fused with the neighbour sum; draw and
      // accumulation order match sample_without_replacement exactly.
      std::int32_t picked[K];
      for (int i = 0; i < K; ++i) {
        const std::int32_t j = d - K + i;
        const auto t = static_cast<std::int32_t>(
            rng.next_below_nonzero(static_cast<std::uint64_t>(j) + 1));
        bool duplicate = false;
        for (int q = 0; q < i; ++q) {
          duplicate |= picked[q] == t;
        }
        const std::int32_t idx = duplicate ? j : t;
        picked[i] = idx;
        sum += vals[static_cast<std::size_t>(
            adj[static_cast<std::size_t>(base + idx)])];
      }
    } else {
      for (int i = 0; i < K; ++i) {
        const auto idx = static_cast<std::int64_t>(
            rng.next_below_nonzero(static_cast<std::uint64_t>(d)));
        sum += vals[static_cast<std::size_t>(
            adj[static_cast<std::size_t>(base + idx)])];
      }
    }
    // sum / 1.0 is bit-exactly sum, so k = 1 skips the division.
    const double mean = K == 1 ? sum : sum / k_count;
    const std::int32_t slot = topo.slot(u);
    const double old = vals[static_cast<std::size_t>(slot)];
    const double x = a * old + one_minus_a * mean;
    cursor.update<Track>(Topo::kUniformPi ? uniform_pi : topo.stationary(u),
                         old, x);
    vals[static_cast<std::size_t>(slot)] = x;
  };
  std::int64_t done = 0;
  while (done < n_steps) {
    const std::int64_t chunk =
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done);
    if (!lazy && cursor.countdown() > chunk) [[likely]] {
      // Software-pipelined 8-wide: each group's K+1 draws per step are
      // hoisted ahead of its applies.  A node step chains TWO serial
      // rng draws, so the xoshiro state chain is the long pole here;
      // hoisting lets the integer draw/Floyd work of the whole group
      // run ahead while the FP accumulator chains of the previous
      // group drain.  Draw order and apply order both stay exactly
      // step()'s, the draw phase reads no values, and the apply phase
      // reads them in step order -- bit-identical by the same argument
      // as the phase-split chunks.
      constexpr int kGroup = 8;
      std::int64_t c = 0;
      for (; c + kGroup <= chunk; c += kGroup) {
        std::int32_t uslot[kGroup];
        std::int32_t nbr[kGroup * K];
        double pis[kGroup];
        for (int s = 0; s < kGroup; ++s) {
          const auto u = static_cast<NodeId>(rng.next_below_nonzero(nn));
          const std::int64_t base = topo.row_base(u);
          const std::int32_t d = topo.degree(u);
          if constexpr (Mode == SamplingMode::without_replacement) {
            std::int32_t picked[K];
            for (int i = 0; i < K; ++i) {
              const std::int32_t j = d - K + i;
              const auto t = static_cast<std::int32_t>(rng.next_below_nonzero(
                  static_cast<std::uint64_t>(j) + 1));
              bool duplicate = false;
              for (int q = 0; q < i; ++q) {
                duplicate |= picked[q] == t;
              }
              const std::int32_t idx = duplicate ? j : t;
              picked[i] = idx;
              nbr[s * K + i] = static_cast<std::int32_t>(
                  adj[static_cast<std::size_t>(base + idx)]);
            }
          } else {
            for (int i = 0; i < K; ++i) {
              const auto idx = static_cast<std::int64_t>(
                  rng.next_below_nonzero(static_cast<std::uint64_t>(d)));
              nbr[s * K + i] = static_cast<std::int32_t>(
                  adj[static_cast<std::size_t>(base + idx)]);
            }
          }
          uslot[s] = topo.slot(u);
          if constexpr (!Topo::kUniformPi) {
            pis[s] = topo.stationary(u);
          }
        }
        for (int s = 0; s < kGroup; ++s) {
          double sum = 0.0;
          for (int i = 0; i < K; ++i) {
            sum += vals[static_cast<std::size_t>(nbr[s * K + i])];
          }
          const double mean = K == 1 ? sum : sum / k_count;
          const double old = vals[static_cast<std::size_t>(uslot[s])];
          const double x = a * old + one_minus_a * mean;
          cursor.update<Track>(Topo::kUniformPi ? uniform_pi : pis[s], old,
                               x);
          vals[static_cast<std::size_t>(uslot[s])] = x;
        }
      }
      for (; c < chunk; ++c) {
        one_step();
      }
      cursor.advance(chunk);
    } else {
      // Lazy runs (coin-dependent update count) and chunks straddling
      // the recompute threshold account per update, firing at exactly
      // the count where set_value's tail recompute would.
      for (std::int64_t c = 0; c < chunk; ++c) {
        if (lazy && rng.next_bool(0.5)) {
          continue;  // lazy no-op: consumes the coin, still counts a step
        }
        one_step();
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#else
  std::int32_t slots[burst::kChunkSteps];
  double pis[burst::kChunkSteps];
  std::int32_t pos[burst::kChunkSteps * K];
  std::int32_t nbr[burst::kChunkSteps * K];
  std::int64_t done = 0;
  while (done < n_steps) {
    const int chunk = static_cast<int>(
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done));
    // Phase A: serial draws, exact step() order.
    int emitted = 0;
    for (int c = 0; c < chunk; ++c) {
      if (lazy && rng.next_bool(0.5)) {
        continue;  // lazy no-op: consumes the coin, still counts a step
      }
      const auto u = static_cast<NodeId>(rng.next_below(nn));
      const std::int64_t base = topo.row_base(u);
      const std::int32_t d = topo.degree(u);
      std::int32_t* p = pos + emitted * K;
      if constexpr (Mode == SamplingMode::without_replacement) {
        // Floyd's subset draw, fused with position emission; draw and
        // push order match sample_without_replacement exactly.
        std::int32_t picked[K];
        for (int i = 0; i < K; ++i) {
          const std::int32_t j = d - K + i;
          const auto t = static_cast<std::int32_t>(
              rng.next_below(static_cast<std::uint64_t>(j) + 1));
          bool duplicate = false;
          for (int q = 0; q < i; ++q) {
            duplicate |= picked[q] == t;
          }
          const std::int32_t idx = duplicate ? j : t;
          picked[i] = idx;
          p[i] = static_cast<std::int32_t>(base + idx);
        }
      } else {
        for (int i = 0; i < K; ++i) {
          p[i] = static_cast<std::int32_t>(
              base + static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(d))));
        }
      }
      slots[emitted] = topo.slot(u);
      if constexpr (!Topo::kUniformPi) {
        pis[emitted] = topo.stationary(u);
      }
      ++emitted;
    }
    // Phase B: translate the chunk's adjacency positions with
    // vpgatherdd.  Neighbour VALUES are read live in phase C (exact
    // sequential semantics, nothing stale to manage): a value-prefetch
    // pass plus conflict screen measured slower than the live loads on
    // every tested core.
    burst::translate_indices(topo.adjacency(), pos, nbr, emitted * K);
    // Phase C: sequential apply with set_value's exact arithmetic.
    const auto apply_entry = [&](int e) {
      double sum = 0.0;
      if constexpr (K == 1) {
        sum += vals[static_cast<std::size_t>(nbr[e])];
      } else {
        for (int i = 0; i < K; ++i) {
          sum += vals[static_cast<std::size_t>(nbr[e * K + i])];
        }
      }
      // sum / 1.0 is bit-exactly sum, so k = 1 skips the division.
      const double mean = K == 1 ? sum : sum / k_count;
      const std::int32_t slot = slots[e];
      const double old = vals[static_cast<std::size_t>(slot)];
      const double x = a * old + one_minus_a * mean;
      cursor.update<Track>(Topo::kUniformPi ? uniform_pi : pis[e], old, x);
      vals[static_cast<std::size_t>(slot)] = x;
    };
    if (cursor.countdown() > emitted) [[likely]] {
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
      }
      cursor.advance(emitted);
    } else {
      // Recompute falls inside this chunk: per-update cadence check at
      // exactly the count where set_value's tail recompute would fire.
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#endif
  state.end_burst(cursor);
}

template <SamplingMode Mode, bool Track, class Topo, class Sync>
bool dispatch_k(std::int64_t k, Rng& rng, std::int64_t n_steps, bool lazy,
                double a, OpinionState& state, double* vals, NodeId n,
                const Topo& topo, Sync&& sync) {
  switch (k) {
    case 1:
      run_node_burst<1, Mode, Track>(rng, n_steps, lazy, a, state, vals, n,
                                     topo, sync);
      return true;
    case 2:
      run_node_burst<2, Mode, Track>(rng, n_steps, lazy, a, state, vals, n,
                                     topo, sync);
      return true;
    case 3:
      run_node_burst<3, Mode, Track>(rng, n_steps, lazy, a, state, vals, n,
                                     topo, sync);
      return true;
    case 4:
      run_node_burst<4, Mode, Track>(rng, n_steps, lazy, a, state, vals, n,
                                     topo, sync);
      return true;
    case 8:
      run_node_burst<8, Mode, Track>(rng, n_steps, lazy, a, state, vals, n,
                                     topo, sync);
      return true;
    default:
      return false;  // uncommon k: the generic loop handles it
  }
}

template <class Topo, class Sync>
bool dispatch_mode_k(SamplingMode mode, std::int64_t k, Rng& rng,
                     std::int64_t n_steps, bool lazy, double a,
                     OpinionState& state, double* vals, NodeId n,
                     const Topo& topo, Sync&& sync) {
  if (mode == SamplingMode::without_replacement) {
    return state.tracks_extrema()
               ? dispatch_k<SamplingMode::without_replacement, true>(
                     k, rng, n_steps, lazy, a, state, vals, n, topo, sync)
               : dispatch_k<SamplingMode::without_replacement, false>(
                     k, rng, n_steps, lazy, a, state, vals, n, topo, sync);
  }
  return state.tracks_extrema()
             ? dispatch_k<SamplingMode::with_replacement, true>(
                   k, rng, n_steps, lazy, a, state, vals, n, topo, sync)
             : dispatch_k<SamplingMode::with_replacement, false>(
                   k, rng, n_steps, lazy, a, state, vals, n, topo, sync);
}

bool has_specialised_k(std::int64_t k) noexcept {
  return k == 1 || k == 2 || k == 3 || k == 4 || k == 8;
}

}  // namespace

NodeModel::NodeModel(const Graph& graph, std::vector<double> initial,
                     const NodeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(params.k >= 1, "k must be >= 1");
  if (params.sampling == SamplingMode::without_replacement) {
    OPINDYN_EXPECTS(params.k <= graph.min_degree(),
                    "k must be <= min degree for sampling without "
                    "replacement");
  }
  scratch_.reserve(static_cast<std::size_t>(params.k));
  sample_scratch_.resize(static_cast<std::size_t>(params.k));
  if (params.reorder) {
    layout_ = GraphLayout::degree_sorted(graph);
    if (layout_->is_identity()) {
      layout_.reset();  // nothing to gain; keep the plain kernels
    } else {
      mirror_.resize(static_cast<std::size_t>(graph.node_count()));
    }
  }
}

NodeId NodeModel::draw_selection(Rng& rng) {
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph().node_count())));
  const auto row = graph().neighbors(u);
  const auto d = static_cast<std::int64_t>(row.size());
  const auto k = static_cast<std::size_t>(params_.k);
  if (params_.sampling == SamplingMode::without_replacement) {
    sample_without_replacement(rng, d, params_.k, scratch_);
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] =
          row[static_cast<std::size_t>(scratch_[i])];
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      sample_scratch_[i] = row[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(d)))];
    }
  }
  return u;
}

NodeSelection NodeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  selection.node = draw_selection(rng);
  // The returned selection owns its copy (the duality replay API keeps
  // whole sequences alive); the draw itself stayed on the scratch.
  selection.sample.assign(sample_scratch_.begin(), sample_scratch_.end());
  apply(selection);
  return selection;
}

void NodeModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  const Graph& g = graph();
  if (!has_specialised_k(params_.k) ||
      g.arc_count() >= burst::kMaxChunkedArcs) {
    step_burst_generic(rng, n_steps);
    return;
  }
  OpinionState& state = mutable_state();
  const NodeId n = g.node_count();
  const auto size = static_cast<std::size_t>(n);
  if (layout_) {
    layout_->scatter(state.values(), mirror_);
    NodeReorderTopo topo{g.offsets_data(),
                         layout_->adjacency_internal().data(),
                         layout_->to_internal().data(),
                         state.stationary_data()};
    auto sync = [this, &state, size] {
      layout_->gather(mirror_, {state.mutable_values(), size});
    };
    dispatch_mode_k(params_.sampling, params_.k, rng, n_steps, params_.lazy,
                    alpha(), state, mirror_.data(), n, topo, sync);
    layout_->gather(mirror_, {state.mutable_values(), size});
  } else if (g.is_regular()) {
    NodeRegularTopo topo{g.adjacency_data(), g.min_degree(),
                         g.stationary(0)};
    dispatch_mode_k(params_.sampling, params_.k, rng, n_steps, params_.lazy,
                    alpha(), state, state.mutable_values(), n, topo, [] {});
  } else {
    NodeIrregularTopo topo{g.offsets_data(), g.adjacency_data(),
                           state.stationary_data()};
    dispatch_mode_k(params_.sampling, params_.k, rng, n_steps, params_.lazy,
                    alpha(), state, state.mutable_values(), n, topo, [] {});
  }
  advance_time(n_steps);
}

void NodeModel::step_burst_generic(Rng& rng, std::int64_t n_steps) {
  OpinionState& state = mutable_state();
  // values() never reallocates under set_value, so one raw pointer
  // serves the whole burst; reads through it skip per-access checks.
  const double* values = state.values().data();
  const double a = alpha();
  const double one_minus_a = 1.0 - a;
  const double k_count = static_cast<double>(params_.k);
  const bool lazy = params_.lazy;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const NodeId u = draw_selection(rng);
    double neighbour_sum = 0.0;
    for (const NodeId v : sample_scratch_) {
      neighbour_sum += values[static_cast<std::size_t>(v)];
    }
    const double neighbour_mean = neighbour_sum / k_count;
    state.set_value(u, a * values[static_cast<std::size_t>(u)] +
                           one_minus_a * neighbour_mean);
  }
  advance_time(n_steps);
}

}  // namespace opindyn
