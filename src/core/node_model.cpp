#include "src/core/node_model.h"

#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {

NodeModel::NodeModel(const Graph& graph, std::vector<double> initial,
                     const NodeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(params.k >= 1, "k must be >= 1");
  if (params.sampling == SamplingMode::without_replacement) {
    OPINDYN_EXPECTS(params.k <= graph.min_degree(),
                    "k must be <= min degree for sampling without "
                    "replacement");
  }
  scratch_.reserve(static_cast<std::size_t>(params.k));
}

NodeSelection NodeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph().node_count())));
  selection.node = u;
  const auto row = graph().neighbors(u);
  const auto d = static_cast<std::int64_t>(row.size());
  selection.sample.reserve(static_cast<std::size_t>(params_.k));
  if (params_.sampling == SamplingMode::without_replacement) {
    sample_without_replacement(rng, d, params_.k, scratch_);
    for (const std::int32_t idx : scratch_) {
      selection.sample.push_back(row[static_cast<std::size_t>(idx)]);
    }
  } else {
    for (std::int64_t i = 0; i < params_.k; ++i) {
      selection.sample.push_back(
          row[static_cast<std::size_t>(
              rng.next_below(static_cast<std::uint64_t>(d)))]);
    }
  }
  apply(selection);
  return selection;
}

}  // namespace opindyn
