// The Friedkin-Johnsen model (Section 3, [29]): every agent keeps an
// immutable *private* opinion s_u and iterates its *expressed* opinion
//   z_u(t+1) = lambda * mean_{v ~ u} z_v(t) + (1 - lambda) * s_u,
// with susceptibility lambda in [0, 1).  Unlike the paper's averaging
// processes, FJ does NOT reach consensus: it converges to the unique
// equilibrium  z* = (1 - lambda) (I - lambda W)^{-1} s, where persistent
// disagreement remains.  Included as the stubborn-agent comparator the
// paper cites ([27] studies a limited-information randomised variant
// similar to the NodeModel); `RandomizedFJ` implements exactly that
// variant: one random node updates per step using k sampled neighbours.
//
// As an AveragingProcess, the OpinionState holds the *expressed*
// opinions, `alpha()` is the susceptibility lambda, one "step" is one
// synchronous round, and the rng is never consumed.
#ifndef OPINDYN_CORE_FRIEDKIN_JOHNSEN_H
#define OPINDYN_CORE_FRIEDKIN_JOHNSEN_H

#include <cstdint>
#include <vector>

#include "src/core/process.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class FriedkinJohnsenModel final : public AveragingProcess {
 public:
  /// `susceptibility` = lambda: weight on social influence (0 = fully
  /// stubborn, -> 1 approaches DeGroot consensus).
  FriedkinJohnsenModel(const Graph& graph,
                       std::vector<double> private_opinions,
                       double susceptibility);

  /// One synchronous round over all agents; counts one time step.
  void round();

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const std::vector<double>& expressed() const noexcept {
    return state().values();
  }
  const std::vector<double>& private_opinions() const noexcept {
    return private_;
  }
  std::int64_t rounds() const noexcept { return time(); }
  double susceptibility() const noexcept { return alpha(); }

  /// Exact equilibrium z* = (1-lambda)(I - lambda W)^{-1} s via a dense
  /// solve.  The iteration contracts toward this point at rate lambda.
  std::vector<double> equilibrium() const;

  /// max_u |z_u - z*_u| for a supplied equilibrium (avoids re-solving).
  double distance_to(const std::vector<double>& point) const;

 private:
  void round_impl();

  std::vector<double> private_;
  std::vector<double> scratch_;
};

/// Source-compatible alias for the pre-refactor class name.
using FriedkinJohnsen = FriedkinJohnsenModel;

/// The limited-information randomised FJ of [27]: per step, one uniform
/// node updates toward the average of k sampled neighbours' expressed
/// opinions blended with its private opinion.  Converges (in
/// expectation) to the same equilibrium as the synchronous model.
class RandomizedFJ {
 public:
  RandomizedFJ(const Graph& graph, std::vector<double> private_opinions,
               double susceptibility, std::int64_t k);

  void step(Rng& rng);

  const std::vector<double>& expressed() const noexcept {
    return expressed_;
  }
  std::int64_t time() const noexcept { return time_; }

 private:
  const Graph* graph_;
  double lambda_;
  std::int64_t k_;
  std::vector<double> private_;
  std::vector<double> expressed_;
  std::vector<std::int32_t> scratch_;
  std::int64_t time_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_FRIEDKIN_JOHNSEN_H
