// The Diffusion Process of Section 5.1 -- the time-reversed dual of the
// Averaging Process.
//
// State: the matrix R(t) = B(t) B(t-1) ... B(1), where B(t) (Eq. 4) moves
// a (1-alpha) fraction of the selected node's load in equal parts to its
// k sampled neighbours.  Column u of R(t) is the load vector of commodity
// u (one unit starts on node u), and the cost row W(t) = c R(t) with
// c = xi(0)^T.
//
// Proposition 5.1 / Lemma 5.2: if the Averaging Process runs on selection
// sequence chi and the Diffusion Process runs on the *reversed* sequence,
// then W(T) = xi(T)^T exactly.  `run_averaging_and_dual` performs that
// experiment end-to-end and is what the duality tests and the Fig. 1 /
// Fig. 4 benches call.
#ifndef OPINDYN_CORE_DIFFUSION_H
#define OPINDYN_CORE_DIFFUSION_H

#include <vector>

#include "src/core/selection.h"
#include "src/graph/graph.h"
#include "src/spectral/matrix.h"

namespace opindyn {

class DiffusionProcess {
 public:
  /// Starts at R(0) = I.  `graph` must outlive the process.
  DiffusionProcess(const Graph& graph, double alpha);

  /// Applies one step's B matrix for the given selection (in-place,
  /// O(n * (k+1)) row updates).  No-op selections are counted but change
  /// nothing.
  void apply(const NodeSelection& selection);

  /// Applies a whole sequence front to back.
  void apply_sequence(const SelectionSequence& sequence);

  /// Applies a sequence in reversed order (the chi^R of Prop. 5.1).
  void apply_reversed(const SelectionSequence& sequence);

  std::int64_t time() const noexcept { return time_; }
  const Graph& graph() const noexcept { return *graph_; }
  double alpha() const noexcept { return alpha_; }

  /// R(t) itself (n x n; column u = load vector of commodity u).
  const Matrix& load_matrix() const noexcept { return r_; }

  /// Load vector of commodity u (column u of R).
  std::vector<double> commodity_load(NodeId u) const;

  /// Cost row W(t) = cost^T R(t); cost is typically xi(0).
  std::vector<double> costs(const std::vector<double>& cost_vector) const;

  /// Column sums of R(t); each must stay exactly 1 (load conservation per
  /// commodity) -- exposed for invariant tests.
  std::vector<double> column_sums() const;

 private:
  const Graph* graph_;
  double alpha_;
  Matrix r_;
  std::int64_t time_ = 0;
};

struct DualityCheck {
  /// xi(T) from the forward Averaging Process.
  std::vector<double> averaging_result;
  /// W(T) from the Diffusion Process on the reversed sequence.
  std::vector<double> diffusion_result;
  /// max_u |xi_u(T) - W_u(T)|.
  double max_difference = 0.0;
};

/// Runs the NodeModel for `steps` steps (recording chi), then the
/// Diffusion Process on chi^R with cost = xi(0); returns both end states.
/// Exercises Proposition 5.1 end to end.
DualityCheck run_averaging_and_dual(const Graph& graph,
                                    const std::vector<double>& initial,
                                    double alpha, std::int64_t k,
                                    std::int64_t steps, std::uint64_t seed);

}  // namespace opindyn

#endif  // OPINDYN_CORE_DIFFUSION_H
