#include "src/core/montecarlo.h"

#include <algorithm>
#include <mutex>

#include "src/support/assert.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

namespace opindyn {

std::unique_ptr<AveragingProcess> make_process(const Graph& graph,
                                               const ModelConfig& config,
                                               std::vector<double> initial) {
  if (config.kind == ModelKind::node) {
    NodeModelParams params;
    params.alpha = config.alpha;
    params.k = config.k;
    params.lazy = config.lazy;
    params.sampling = config.sampling;
    return std::make_unique<NodeModel>(graph, std::move(initial), params);
  }
  EdgeModelParams params;
  params.alpha = config.alpha;
  params.lazy = config.lazy;
  return std::make_unique<EdgeModel>(graph, std::move(initial), params);
}

MonteCarloResult monte_carlo(const Graph& graph, const ModelConfig& config,
                             const std::vector<double>& initial,
                             const MonteCarloOptions& options) {
  OPINDYN_EXPECTS(options.replicas >= 1, "need at least one replica");
  const std::size_t threads =
      options.threads == 0 ? default_parallelism() : options.threads;

  std::vector<MonteCarloResult> partial(threads);
  const std::int64_t replicas = options.replicas;
  std::mutex partial_mutex;  // protects nothing hot: one merge per thread

  // Static chunking: replica r deterministically owns stream fork(seed,r).
  const std::int64_t chunk =
      (replicas + static_cast<std::int64_t>(threads) - 1) /
      static_cast<std::int64_t>(threads);
  parallel_for(
      static_cast<std::int64_t>(threads),
      [&](std::int64_t worker) {
        MonteCarloResult local;
        const std::int64_t begin = worker * chunk;
        const std::int64_t end = std::min(begin + chunk, replicas);
        for (std::int64_t r = begin; r < end; ++r) {
          Rng rng = Rng::fork(options.seed, static_cast<std::uint64_t>(r));
          auto process = make_process(graph, config, initial);
          const ConvergenceResult res =
              run_until_converged(*process, rng, options.convergence);
          local.convergence_value.add(res.final_value);
          local.steps.add(static_cast<double>(res.steps));
          local.replicas += 1;
          if (!res.converged) {
            local.diverged += 1;
          }
        }
        const std::lock_guard<std::mutex> lock(partial_mutex);
        partial[static_cast<std::size_t>(worker)] = local;
      },
      threads);

  MonteCarloResult total;
  for (const MonteCarloResult& p : partial) {
    total.convergence_value.merge(p.convergence_value);
    total.steps.merge(p.steps);
    total.replicas += p.replicas;
    total.diverged += p.diverged;
  }
  return total;
}

TrajectoryResult monte_carlo_trajectory(
    const Graph& graph, const ModelConfig& config,
    const std::vector<double>& initial,
    const std::vector<std::int64_t>& checkpoints, std::int64_t replicas,
    std::uint64_t seed, std::size_t threads) {
  OPINDYN_EXPECTS(!checkpoints.empty(), "need at least one checkpoint");
  OPINDYN_EXPECTS(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                  "checkpoints must be sorted ascending");
  OPINDYN_EXPECTS(checkpoints.front() >= 0, "checkpoints must be >= 0");
  OPINDYN_EXPECTS(replicas >= 1, "need at least one replica");
  if (threads == 0) {
    threads = default_parallelism();
  }

  const std::size_t cp_count = checkpoints.size();
  std::vector<std::vector<RunningStats>> partial_m(
      threads, std::vector<RunningStats>(cp_count));
  std::vector<std::vector<RunningStats>> partial_phi(
      threads, std::vector<RunningStats>(cp_count));

  const std::int64_t chunk =
      (replicas + static_cast<std::int64_t>(threads) - 1) /
      static_cast<std::int64_t>(threads);
  parallel_for(
      static_cast<std::int64_t>(threads),
      [&](std::int64_t worker) {
        auto& local_m = partial_m[static_cast<std::size_t>(worker)];
        auto& local_phi = partial_phi[static_cast<std::size_t>(worker)];
        const std::int64_t begin = worker * chunk;
        const std::int64_t end = std::min(begin + chunk, replicas);
        for (std::int64_t r = begin; r < end; ++r) {
          Rng rng = Rng::fork(seed, static_cast<std::uint64_t>(r));
          auto process = make_process(graph, config, initial);
          std::size_t next_cp = 0;
          while (next_cp < cp_count) {
            while (process->time() < checkpoints[next_cp]) {
              process->step(rng);
            }
            // The martingale is M(t) for the NodeModel (Lemma 4.1) and the
            // plain average for the EdgeModel (Prop. D.1.i).
            local_m[next_cp].add(config.kind == ModelKind::edge
                                     ? process->state().average()
                                     : process->state().weighted_average());
            local_phi[next_cp].add(process->state().phi_exact());
            ++next_cp;
          }
        }
      },
      threads);

  TrajectoryResult result;
  result.checkpoints = checkpoints;
  result.martingale.assign(cp_count, RunningStats{});
  result.phi.assign(cp_count, RunningStats{});
  for (std::size_t w = 0; w < threads; ++w) {
    for (std::size_t c = 0; c < cp_count; ++c) {
      result.martingale[c].merge(partial_m[w][c]);
      result.phi[c].merge(partial_phi[w][c]);
    }
  }
  return result;
}

}  // namespace opindyn
