#include "src/core/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "src/support/assert.h"
#include "src/support/cell_scheduler.h"

namespace opindyn {

std::unique_ptr<AveragingProcess> make_process(const Graph& graph,
                                               const ModelConfig& config,
                                               std::vector<double> initial) {
  if (config.kind == ModelKind::node) {
    NodeModelParams params;
    params.alpha = config.alpha;
    params.k = config.k;
    params.lazy = config.lazy;
    params.sampling = config.sampling;
    return std::make_unique<NodeModel>(graph, std::move(initial), params);
  }
  EdgeModelParams params;
  params.alpha = config.alpha;
  params.lazy = config.lazy;
  return std::make_unique<EdgeModel>(graph, std::move(initial), params);
}

// Both harnesses delegate the sharding and the replica-order fold to
// CellScheduler, which owns the thread-count-determinism contract.
MonteCarloResult monte_carlo(const Graph& graph, const ModelConfig& config,
                             const std::vector<double>& initial,
                             const MonteCarloOptions& options) {
  OPINDYN_EXPECTS(options.replicas >= 1, "need at least one replica");
  CellScheduler scheduler(options.threads);
  const std::vector<RunningStats> stats = scheduler.run(
      options.replicas, options.seed, 3,
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(graph, config, initial);
        const ConvergenceResult res =
            run_until_converged(*process, rng, options.convergence);
        out[0] = res.final_value;
        out[1] = static_cast<double>(res.steps);
        out[2] = res.converged ? 0.0 : 1.0;
      });

  MonteCarloResult total;
  total.convergence_value = stats[0];
  total.steps = stats[1];
  total.replicas = stats[0].count();
  total.diverged = static_cast<std::int64_t>(std::llround(stats[2].sum()));
  return total;
}

TrajectoryResult monte_carlo_trajectory(
    const Graph& graph, const ModelConfig& config,
    const std::vector<double>& initial,
    const std::vector<std::int64_t>& checkpoints, std::int64_t replicas,
    std::uint64_t seed, std::size_t threads) {
  OPINDYN_EXPECTS(!checkpoints.empty(), "need at least one checkpoint");
  OPINDYN_EXPECTS(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                  "checkpoints must be sorted ascending");
  OPINDYN_EXPECTS(checkpoints.front() >= 0, "checkpoints must be >= 0");
  OPINDYN_EXPECTS(replicas >= 1, "need at least one replica");

  // Metric layout per replica: martingale then phi, per checkpoint.
  const std::size_t cp_count = checkpoints.size();
  CellScheduler scheduler(threads);
  const std::vector<RunningStats> stats = scheduler.run(
      replicas, seed, cp_count * 2,
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(graph, config, initial);
        for (std::size_t c = 0; c < cp_count; ++c) {
          while (process->time() < checkpoints[c]) {
            process->step(rng);
          }
          // The martingale is M(t) for the NodeModel (Lemma 4.1) and the
          // plain average for the EdgeModel (Prop. D.1.i).
          out[2 * c] = config.kind == ModelKind::edge
                           ? process->state().average()
                           : process->state().weighted_average();
          out[2 * c + 1] = process->state().phi_exact();
        }
      });

  TrajectoryResult result;
  result.checkpoints = checkpoints;
  result.martingale.reserve(cp_count);
  result.phi.reserve(cp_count);
  for (std::size_t c = 0; c < cp_count; ++c) {
    result.martingale.push_back(stats[2 * c]);
    result.phi.push_back(stats[2 * c + 1]);
  }
  return result;
}

}  // namespace opindyn
