// The DeGroot model (Section 3, [23]): the classical *synchronous,
// deterministic* opinion dynamic xi(t+1) = W xi(t), with W the
// (optionally lazy) random-walk matrix.  For connected graphs (lazy, or
// non-bipartite) it converges to the degree-weighted average
// <pi, xi(0)> deterministically -- the same value the paper's NodeModel
// reaches only in expectation.  Included as the deterministic
// full-neighbourhood-communication comparator: zero variance, but every
// node must hear all neighbours every round.
//
// As an AveragingProcess, one "step" is one synchronous round and the
// rng is never consumed (zero draws per step -- the degenerate end of
// the draw-order-equivalence grid).
#ifndef OPINDYN_CORE_DEGROOT_H
#define OPINDYN_CORE_DEGROOT_H

#include <cstdint>
#include <vector>

#include "src/core/process.h"
#include "src/graph/graph.h"

namespace opindyn {

class DeGrootModel final : public AveragingProcess {
 public:
  /// `lazy` blends each round with weight 1/2 on the current value
  /// (needed for convergence on bipartite graphs).
  DeGrootModel(const Graph& graph, std::vector<double> initial, bool lazy);

  /// One synchronous round: every node simultaneously averages its
  /// neighbourhood.  Deterministic; counts one time step.
  void round();

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const std::vector<double>& values() const noexcept {
    return state().values();
  }
  std::int64_t rounds() const noexcept { return time(); }

  /// <pi, xi(t)>: invariant under the dynamics, equals the limit.
  double weighted_average() const noexcept {
    return state().weighted_average();
  }

  /// max - min of the current values.
  double discrepancy() const { return state().discrepancy(); }

 private:
  /// The round body without the time bump (shared by round(),
  /// step_recorded and step_burst).
  void round_impl();

  bool lazy_;
  std::vector<double> scratch_;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_DEGROOT_H
