#include "src/core/hegselmann_krause_model.h"

#include <algorithm>
#include <cmath>

#include "src/core/burst_kernels.h"
#include "src/core/node_topology.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

/// The HK burst kernel on the kernel-v2 chunked skeleton
/// (burst_kernels.h).  One step consumes [coin,] next_below(n) -- no
/// per-neighbour draws -- so non-lazy chunks batch their node draws
/// through Rng::fill_below (stream-identical to sequential next_below
/// by its contract) and then apply sequentially.  The confidant scan
/// and the mean arithmetic mirror apply_update term for term, and a
/// step with no confidant skips the write exactly like the recorded
/// path's no-op selection, so state and rng stream are bit-identical
/// to n_steps repeated step() calls.  The recompute cadence is
/// accounted per update (advance_one): HK's update count is
/// data-dependent, so there is no fixed per-chunk count to settle in
/// bulk -- the O(deg) confidant scan dominates the decrement anyway.
template <bool Track, class Topo>
void run_hk_burst(Rng& rng, std::int64_t n_steps, bool lazy,
                  double confidence, OpinionState& state, double* vals,
                  NodeId n, const Topo& topo) {
  const auto nn = static_cast<std::uint64_t>(n);
  auto cursor = state.begin_burst();
  const double uniform_pi = topo.stationary(0);
  const NodeId* adj = topo.adjacency();
  const auto apply_node = [&](NodeId u) {
    const std::int64_t base = topo.row_base(u);
    const std::int32_t d = topo.degree(u);
    const std::int32_t slot = topo.slot(u);
    const double xu = vals[static_cast<std::size_t>(slot)];
    double sum = xu;
    std::int32_t confidants = 0;
    for (std::int32_t i = 0; i < d; ++i) {
      const double xv = vals[static_cast<std::size_t>(
          adj[static_cast<std::size_t>(base + i)])];
      if (std::abs(xv - xu) <= confidence) {
        sum += xv;
        ++confidants;
      }
    }
    if (confidants == 0) {
      return;  // no-op step, exactly like the empty recorded selection
    }
    const double x = sum / (1.0 + static_cast<double>(confidants));
    cursor.update<Track>(Topo::kUniformPi ? uniform_pi : topo.stationary(u),
                         xu, x);
    vals[static_cast<std::size_t>(slot)] = x;
    if (cursor.advance_one()) {
      state.recompute();
      cursor = state.begin_burst();
    }
  };
  std::uint64_t raw[burst::kChunkSteps];
  std::int64_t done = 0;
  while (done < n_steps) {
    const auto chunk = static_cast<std::size_t>(
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done));
    if (!lazy) {
      rng.fill_below(nn, raw, chunk);
      for (std::size_t c = 0; c < chunk; ++c) {
        apply_node(static_cast<NodeId>(raw[c]));
      }
    } else {
      for (std::size_t c = 0; c < chunk; ++c) {
        if (rng.next_bool(0.5)) {
          continue;  // lazy no-op: consumes the coin, still counts a step
        }
        apply_node(static_cast<NodeId>(rng.next_below_nonzero(nn)));
      }
    }
    done += static_cast<std::int64_t>(chunk);
  }
  state.end_burst(cursor);
}

}  // namespace

HegselmannKrauseModel::HegselmannKrauseModel(
    const Graph& graph, std::vector<double> initial,
    const HegselmannKrauseParams& params)
    : AveragingProcess(graph, std::move(initial), /*alpha=*/0.0,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(params.confidence > 0.0,
                  "hegselmann_krause needs confidence > 0");
}

void HegselmannKrauseModel::apply_update(const NodeSelection& selection) {
  if (selection.is_noop()) {
    return;
  }
  const NodeId u = selection.node;
  const double xu = state().value(u);
  double sum = xu;
  for (const NodeId v : selection.sample) {
    OPINDYN_EXPECTS(state().graph().has_edge(u, v),
                    "selection sample contains a non-neighbour");
    sum += state().value(v);
  }
  const double x =
      sum / (1.0 + static_cast<double>(selection.sample.size()));
  mutable_state().set_value(u, x);
}

NodeSelection HegselmannKrauseModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);  // records a no-op time step
    return selection;
  }
  const Graph& g = graph();
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(g.node_count())));
  const double xu = state().value(u);
  selection.node = u;
  for (const NodeId v : g.neighbors(u)) {
    if (std::abs(state().value(v) - xu) <= params_.confidence) {
      selection.sample.push_back(v);
    }
  }
  apply(selection);  // empty confidant set records a natural no-op
  return selection;
}

void HegselmannKrauseModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  const Graph& g = graph();
  OpinionState& state = mutable_state();
  const NodeId n = g.node_count();
  if (g.is_regular()) {
    NodeRegularTopo topo{g.adjacency_data(), g.min_degree(),
                         g.stationary(0)};
    if (state.tracks_extrema()) {
      run_hk_burst<true>(rng, n_steps, params_.lazy, params_.confidence,
                         state, state.mutable_values(), n, topo);
    } else {
      run_hk_burst<false>(rng, n_steps, params_.lazy, params_.confidence,
                          state, state.mutable_values(), n, topo);
    }
  } else {
    NodeIrregularTopo topo{g.offsets_data(), g.adjacency_data(),
                           state.stationary_data()};
    if (state.tracks_extrema()) {
      run_hk_burst<true>(rng, n_steps, params_.lazy, params_.confidence,
                         state, state.mutable_values(), n, topo);
    } else {
      run_hk_burst<false>(rng, n_steps, params_.lazy, params_.confidence,
                          state, state.mutable_values(), n, topo);
    }
  }
  advance_time(n_steps);
}

int HegselmannKrauseModel::cluster_count() const {
  std::vector<double> sorted = state().values();
  if (sorted.empty()) {
    return 0;
  }
  std::sort(sorted.begin(), sorted.end());
  int clusters = 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] - sorted[i - 1] > params_.confidence) {
      ++clusters;
    }
  }
  return clusters;
}

}  // namespace opindyn
