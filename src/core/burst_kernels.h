// Shared building blocks for the chunked burst kernels (kernel v2).
//
// node_model.cpp and edge_model.cpp split each burst into fixed-size
// chunks processed in phases:
//
//   A. draw    -- consume the rng in EXACT step() order into small
//                 index buffers (SoA),
//   B. gather  -- translate adjacency/arc positions to value slots,
//   C. apply   -- walk the chunk sequentially, doing the exact
//                 floating-point update and bookkeeping of set_value.
//
// Phase B is where SIMD lives: AVX2 gathers when the translation units
// are compiled with OPINDYN_SIMD_AVX2 (see src/CMakeLists.txt), plain
// loops otherwise.  Both variants only MOVE data -- no floating-point
// operation is reordered or fused -- so the scalar and AVX2 builds are
// bit-identical by construction.  Neighbour VALUES are never
// pre-gathered: phase C reads them live in step order, which is the
// exact sequential semantics even when an earlier step in the chunk
// wrote the node a later step reads.
//
// All position buffers are int32: the chunked kernels are only entered
// when 2m < 2^31 (AVX2 gathers index with SIGNED 32-bit lanes); larger
// graphs take the generic scalar path.
#ifndef OPINDYN_CORE_BURST_KERNELS_H
#define OPINDYN_CORE_BURST_KERNELS_H

#include <cstdint>

#if defined(OPINDYN_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace opindyn {
namespace burst {

/// Steps per chunk.  Small enough that the index buffers live in L1
/// and intra-chunk conflicts stay rare, large enough to amortise the
/// phase transitions.
inline constexpr int kChunkSteps = 64;

/// Largest arc count the chunked kernels handle (signed 32-bit gather
/// lanes); beyond this the models fall back to their generic loops.
inline constexpr std::int64_t kMaxChunkedArcs = std::int64_t{1} << 31;

/// out[i] = table[pos[i]] for i in [0, count).
inline void translate_indices(const std::int32_t* table,
                              const std::int32_t* pos, std::int32_t* out,
                              int count) noexcept {
  int i = 0;
#if defined(OPINDYN_SIMD_AVX2)
  for (; i + 8 <= count; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + i));
    const __m256i v = _mm256_i32gather_epi32(table, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
#endif
  for (; i < count; ++i) {
    out[i] = table[static_cast<std::size_t>(pos[i])];
  }
}

}  // namespace burst
}  // namespace opindyn

#endif  // OPINDYN_CORE_BURST_KERNELS_H
