#include "src/core/process.h"

#include "src/support/assert.h"

namespace opindyn {

AveragingProcess::AveragingProcess(const Graph& graph,
                                   std::vector<double> initial, double alpha,
                                   bool track_extrema)
    : state_(graph, std::move(initial), track_extrema), alpha_(alpha) {
  OPINDYN_EXPECTS(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
}

void AveragingProcess::step(Rng& rng) { (void)step_recorded(rng); }

void AveragingProcess::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  // Generic fallback for subclasses without a dedicated kernel; the two
  // paper models override this with allocation-free loops.
  for (std::int64_t i = 0; i < n_steps; ++i) {
    (void)step_recorded(rng);
  }
}

void AveragingProcess::apply(const NodeSelection& selection) {
  apply_update(selection);
  ++time_;
}

bool AveragingProcess::converged(double epsilon,
                                 bool use_plain_potential) const {
  const double phi =
      use_plain_potential ? state_.phi_plain_exact() : state_.phi_exact();
  return phi <= epsilon;
}

void AveragingProcess::apply_update(const NodeSelection& selection) {
  if (selection.is_noop()) {
    return;
  }
  const NodeId u = selection.node;
  double neighbour_sum = 0.0;
  for (const NodeId v : selection.sample) {
    OPINDYN_EXPECTS(state_.graph().has_edge(u, v),
                    "selection sample contains a non-neighbour");
    neighbour_sum += state_.value(v);
  }
  const double neighbour_mean =
      neighbour_sum / static_cast<double>(selection.sample.size());
  state_.set_value(u,
                   alpha_ * state_.value(u) + (1.0 - alpha_) * neighbour_mean);
}

}  // namespace opindyn
