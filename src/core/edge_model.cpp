#include "src/core/edge_model.h"

#include <algorithm>
#include <bit>

#include "src/core/burst_kernels.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

// Arc-resolution policies: how a kernel instantiation turns a drawn
// arc index into (updating slot, neighbour slot, stationary weight)
// arrays for one chunk.  All calls inline into the chunk loop.

/// Regular graph with power-of-two degree: arc -> source is a shift
/// (arcs are emitted row by row, d per node) and pi = d / 2m is one
/// constant, so the only memory the resolution touches is the
/// adjacency array.
struct EdgeRegularPow2Topo {
  static constexpr bool kUniformPi = true;
  const NodeId* adj;
  int shift;
  double pi;
  void resolve(const std::int32_t* pos, std::int32_t* uslot,
               std::int32_t* vslot, double* pis, int count) const noexcept {
    (void)pis;
    burst::translate_indices(adj, pos, vslot, count);
    for (int i = 0; i < count; ++i) {
      uslot[i] = pos[i] >> shift;
    }
  }
  double uniform_pi() const noexcept { return pi; }
  NodeId source(std::int32_t p) const noexcept { return p >> shift; }
  NodeId target(std::int32_t p) const noexcept {
    return adj[static_cast<std::size_t>(p)];
  }
  double pi_of(std::int32_t p, NodeId) const noexcept {
    (void)p;
    return pi;
  }
};

/// General graph, natural order: arc source/target arrays + per-node pi.
struct EdgeGeneralTopo {
  static constexpr bool kUniformPi = false;
  const NodeId* adj;
  const NodeId* src;
  const double* pi;
  void resolve(const std::int32_t* pos, std::int32_t* uslot,
               std::int32_t* vslot, double* pis, int count) const noexcept {
    burst::translate_indices(adj, pos, vslot, count);
    burst::translate_indices(src, pos, uslot, count);
    for (int i = 0; i < count; ++i) {
      pis[i] = pi[static_cast<std::size_t>(uslot[i])];
    }
  }
  double uniform_pi() const noexcept { return 0.0; }  // unused
  NodeId source(std::int32_t p) const noexcept {
    return src[static_cast<std::size_t>(p)];
  }
  NodeId target(std::int32_t p) const noexcept {
    return adj[static_cast<std::size_t>(p)];
  }
  double pi_of(std::int32_t p, NodeId u) const noexcept {
    (void)p;
    return pi[static_cast<std::size_t>(u)];
  }
};

/// Degree-sorted mirror: slot arrays come from the layout's translated
/// arc arrays (original arc order preserved); pi still keys on the
/// ORIGINAL source node, read from the graph's own arc array.
struct EdgeReorderTopo {
  static constexpr bool kUniformPi = false;
  const NodeId* adj_internal;
  const NodeId* src_internal;
  const NodeId* src_original;
  const double* pi;
  void resolve(const std::int32_t* pos, std::int32_t* uslot,
               std::int32_t* vslot, double* pis, int count) const noexcept {
    burst::translate_indices(adj_internal, pos, vslot, count);
    burst::translate_indices(src_internal, pos, uslot, count);
    for (int i = 0; i < count; ++i) {
      pis[i] = pi[static_cast<std::size_t>(
          src_original[static_cast<std::size_t>(pos[i])])];
    }
  }
  double uniform_pi() const noexcept { return 0.0; }  // unused
  NodeId source(std::int32_t p) const noexcept {
    return src_internal[static_cast<std::size_t>(p)];
  }
  NodeId target(std::int32_t p) const noexcept {
    return adj_internal[static_cast<std::size_t>(p)];
  }
  double pi_of(std::int32_t p, NodeId) const noexcept {
    return pi[static_cast<std::size_t>(
        src_original[static_cast<std::size_t>(p)])];
  }
};

/// The burst kernel.  Consumes the rng in EXACT step() order and
/// performs set_value's arithmetic through a register-resident cursor,
/// so the result is bit-identical to n_steps repeated step() calls.
/// Portable builds run one fused loop per step (draw, resolve the arc
/// inline, apply -- no intermediate buffers); OPINDYN_SIMD_AVX2 builds
/// batch-draw each chunk with Rng::fill_below (stream-identical to
/// sequential next_below) and resolve the whole chunk's slots with
/// vpgatherdd before the sequential apply.  Neighbour values are read
/// live either way (exact sequential semantics).  Recompute cadence is
/// counted per chunk via the cursor countdown, exactly as in the node
/// kernel.  Track is compile-time for the same reason as there: the
/// per-step extrema check otherwise survives in every non-tracking hot
/// loop.
template <bool Track, class Topo, class Sync>
void run_edge_burst(Rng& rng, std::int64_t n_steps, bool lazy, double a,
                    OpinionState& state, double* vals, std::uint64_t arcs,
                    const Topo& topo, Sync&& sync) {
  const double one_minus_a = 1.0 - a;
  auto cursor = state.begin_burst();
  const double uniform_pi = topo.uniform_pi();
  const auto recompute_now = [&] {
    sync();  // mirror kernels make values_ current first
    state.recompute();
    cursor = state.begin_burst();
  };
#if !defined(OPINDYN_SIMD_AVX2)
  const auto apply_arc = [&](std::int32_t p) {
    const std::int32_t us = topo.source(p);
    const std::int32_t vs = topo.target(p);
    const double old = vals[static_cast<std::size_t>(us)];
    const double nv = vals[static_cast<std::size_t>(vs)];
    // apply_update computes (0.0 + value(v)) / 1.0; the division by
    // one is exact, the leading add is kept for the -0.0 case.
    const double x = a * old + one_minus_a * (0.0 + nv);
    cursor.update<Track>(Topo::kUniformPi ? uniform_pi : topo.pi_of(p, us),
                         old, x);
    vals[static_cast<std::size_t>(us)] = x;
  };
  const auto one_step = [&] {
    apply_arc(static_cast<std::int32_t>(rng.next_below_nonzero(arcs)));
  };
  std::int64_t done = 0;
  while (done < n_steps) {
    const std::int64_t chunk =
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done);
    if (!lazy && cursor.countdown() > chunk) [[likely]] {
      // Software-pipelined 8-wide: each group's draws are hoisted
      // ahead of its applies, decoupling the serial rng chain from the
      // load->fp->store chains so their latencies overlap.  Same
      // legality as the chunked phase split: draws depend on no value,
      // and each apply still reads its neighbours live, in step order.
      // 8 measured best on a wide OoO core (4 leaves latency unhidden,
      // 16 spills the group to the stack).
      std::int64_t c = 0;
      for (; c + 8 <= chunk; c += 8) {
        std::int32_t ps[8];
        for (int i = 0; i < 8; ++i) {
          ps[i] = static_cast<std::int32_t>(rng.next_below_nonzero(arcs));
        }
        for (int i = 0; i < 8; ++i) {
          apply_arc(ps[i]);
        }
      }
      for (; c < chunk; ++c) {
        one_step();
      }
      cursor.advance(chunk);
    } else {
      for (std::int64_t c = 0; c < chunk; ++c) {
        if (lazy && rng.next_bool(0.5)) {
          continue;  // lazy no-op: consumes the coin, still counts a step
        }
        one_step();
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#else
  std::uint64_t raw[burst::kChunkSteps];
  std::int32_t pos[burst::kChunkSteps];
  std::int32_t uslot[burst::kChunkSteps];
  std::int32_t vslot[burst::kChunkSteps];
  double pis[burst::kChunkSteps];
  std::int64_t done = 0;
  while (done < n_steps) {
    const int chunk = static_cast<int>(
        std::min<std::int64_t>(burst::kChunkSteps, n_steps - done));
    // Phase A: draw the chunk's arcs in exact step() order.
    int emitted;
    if (lazy) {
      emitted = 0;
      for (int c = 0; c < chunk; ++c) {
        if (rng.next_bool(0.5)) {
          continue;  // lazy no-op: consumes the coin, still counts a step
        }
        raw[emitted++] = rng.next_below(arcs);
      }
    } else {
      rng.fill_below(arcs, raw, static_cast<std::size_t>(chunk));
      emitted = chunk;
    }
    // Phase B: resolve the whole chunk's slots up front with
    // vpgatherdd through the translation arrays.
    for (int e = 0; e < emitted; ++e) {
      pos[e] = static_cast<std::int32_t>(raw[e]);
    }
    topo.resolve(pos, uslot, vslot, pis, emitted);
    // Phase C: sequential apply with set_value's exact arithmetic;
    // neighbour values are read live.
    const auto apply_entry = [&](int e) {
      const std::int32_t us = uslot[e];
      const double old = vals[static_cast<std::size_t>(us)];
      const double nv = vals[static_cast<std::size_t>(vslot[e])];
      // apply_update computes (0.0 + value(v)) / 1.0; the division by
      // one is exact, the leading add is kept for the -0.0 case.
      const double x = a * old + one_minus_a * (0.0 + nv);
      cursor.update<Track>(Topo::kUniformPi ? uniform_pi : pis[e], old, x);
      vals[static_cast<std::size_t>(us)] = x;
    };
    if (cursor.countdown() > emitted) [[likely]] {
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
      }
      cursor.advance(emitted);
    } else {
      // Recompute falls inside this chunk: per-update cadence check at
      // exactly the count where set_value's tail recompute would fire.
      for (int e = 0; e < emitted; ++e) {
        apply_entry(e);
        if (cursor.advance_one()) {
          recompute_now();
        }
      }
    }
    done += chunk;
  }
#endif
  state.end_burst(cursor);
}

template <class Topo, class Sync>
void dispatch_edge_burst(Rng& rng, std::int64_t n_steps, bool lazy,
                         double a, OpinionState& state, double* vals,
                         std::uint64_t arcs, const Topo& topo,
                         Sync&& sync) {
  if (state.tracks_extrema()) {
    run_edge_burst<true>(rng, n_steps, lazy, a, state, vals, arcs, topo,
                         sync);
  } else {
    run_edge_burst<false>(rng, n_steps, lazy, a, state, vals, arcs, topo,
                          sync);
  }
}

}  // namespace

EdgeModel::EdgeModel(const Graph& graph, std::vector<double> initial,
                     const EdgeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(graph.edge_count() >= 1, "EdgeModel needs >= 1 edge");
  if (params.reorder) {
    layout_ = GraphLayout::degree_sorted(graph);
    if (layout_->is_identity()) {
      layout_.reset();
    } else {
      mirror_.resize(static_cast<std::size_t>(graph.node_count()));
    }
  }
}

NodeSelection EdgeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);
    return selection;
  }
  const auto arc = static_cast<ArcId>(
      rng.next_below(static_cast<std::uint64_t>(graph().arc_count())));
  selection.node = graph().arc_source(arc);
  selection.sample.push_back(graph().arc_target(arc));
  apply(selection);
  return selection;
}

void EdgeModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  const Graph& g = graph();
  if (g.arc_count() >= burst::kMaxChunkedArcs) {
    step_burst_generic(rng, n_steps);
    return;
  }
  OpinionState& state = mutable_state();
  const auto arcs = static_cast<std::uint64_t>(g.arc_count());
  const auto size = static_cast<std::size_t>(g.node_count());
  const NodeId d = g.min_degree();
  if (layout_) {
    layout_->scatter(state.values(), mirror_);
    EdgeReorderTopo topo{layout_->adjacency_internal().data(),
                         layout_->arc_source_internal().data(),
                         g.arc_source_data(), state.stationary_data()};
    auto sync = [this, &state, size] {
      layout_->gather(mirror_, {state.mutable_values(), size});
    };
    dispatch_edge_burst(rng, n_steps, params_.lazy, alpha(), state,
                        mirror_.data(), arcs, topo, sync);
    layout_->gather(mirror_, {state.mutable_values(), size});
  } else if (g.is_regular() && std::has_single_bit(static_cast<unsigned>(d))) {
    EdgeRegularPow2Topo topo{
        g.adjacency_data(),
        std::countr_zero(static_cast<unsigned>(d)),
        g.stationary(0)};
    dispatch_edge_burst(rng, n_steps, params_.lazy, alpha(), state,
                        state.mutable_values(), arcs, topo, [] {});
  } else {
    EdgeGeneralTopo topo{g.adjacency_data(), g.arc_source_data(),
                         state.stationary_data()};
    dispatch_edge_burst(rng, n_steps, params_.lazy, alpha(), state,
                        state.mutable_values(), arcs, topo, [] {});
  }
  advance_time(n_steps);
}

void EdgeModel::step_burst_generic(Rng& rng, std::int64_t n_steps) {
  OpinionState& state = mutable_state();
  const Graph& g = graph();
  const double* values = state.values().data();
  const double a = alpha();
  const double one_minus_a = 1.0 - a;
  const auto arcs = static_cast<std::uint64_t>(g.arc_count());
  const bool lazy = params_.lazy;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const auto arc = static_cast<ArcId>(rng.next_below(arcs));
    const NodeId u = g.arc_source(arc);
    const NodeId v = g.arc_target(arc);
    state.set_value(
        u, a * values[static_cast<std::size_t>(u)] +
               one_minus_a * (0.0 + values[static_cast<std::size_t>(v)]));
  }
  advance_time(n_steps);
}

}  // namespace opindyn
