#include "src/core/edge_model.h"

#include "src/support/assert.h"

namespace opindyn {

EdgeModel::EdgeModel(const Graph& graph, std::vector<double> initial,
                     const EdgeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(graph.edge_count() >= 1, "EdgeModel needs >= 1 edge");
}

NodeSelection EdgeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);
    return selection;
  }
  const auto arc = static_cast<ArcId>(
      rng.next_below(static_cast<std::uint64_t>(graph().arc_count())));
  selection.node = graph().arc_source(arc);
  selection.sample.push_back(graph().arc_target(arc));
  apply(selection);
  return selection;
}

void EdgeModel::step_burst(Rng& rng, std::int64_t n_steps) {
  OPINDYN_EXPECTS(n_steps >= 0, "n_steps must be >= 0");
  OpinionState& state = mutable_state();
  const Graph& g = graph();
  const double* values = state.values().data();
  const double a = alpha();
  const double one_minus_a = 1.0 - a;
  const auto arcs = static_cast<std::uint64_t>(g.arc_count());
  const bool lazy = params_.lazy;
  for (std::int64_t s = 0; s < n_steps; ++s) {
    if (lazy && rng.next_bool(0.5)) {
      continue;  // lazy no-op: consumes the coin, still counts a step
    }
    const auto arc = static_cast<ArcId>(rng.next_below(arcs));
    const NodeId u = g.arc_source(arc);
    const NodeId v = g.arc_target(arc);
    // The k = 1 "mean" is value(v) / 1.0 == value(v) bit-exactly, so the
    // kernel matches apply_update without the division.
    state.set_value(u, a * values[static_cast<std::size_t>(u)] +
                           one_minus_a * values[static_cast<std::size_t>(v)]);
  }
  advance_time(n_steps);
}

}  // namespace opindyn
