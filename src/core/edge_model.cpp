#include "src/core/edge_model.h"

#include "src/support/assert.h"

namespace opindyn {

EdgeModel::EdgeModel(const Graph& graph, std::vector<double> initial,
                     const EdgeModelParams& params)
    : AveragingProcess(graph, std::move(initial), params.alpha,
                       params.track_extrema),
      params_(params) {
  OPINDYN_EXPECTS(graph.edge_count() >= 1, "EdgeModel needs >= 1 edge");
}

NodeSelection EdgeModel::step_recorded(Rng& rng) {
  NodeSelection selection;
  if (params_.lazy && rng.next_bool(0.5)) {
    apply(selection);
    return selection;
  }
  const auto arc = static_cast<ArcId>(
      rng.next_below(static_cast<std::uint64_t>(graph().arc_count())));
  selection.node = graph().arc_source(arc);
  selection.sample.push_back(graph().arc_target(arc));
  apply(selection);
  return selection;
}

}  // namespace opindyn
