// The classical (discrete) voter model -- the baseline the paper
// generalises (Section 2: "for k = 1 and alpha = 0 this model is
// equivalent to the voter model") and compares against (the remark after
// Theorem 2.2: the averaging process is faster by Omega(n / log n)).
// A uniformly random node adopts the opinion of a uniformly random
// neighbour; consensus is reached when one opinion remains.
//
// Opinions are value-coded inside the shared OpinionState: each discrete
// opinion is a double value, copies move those values around verbatim,
// and a dense-id side table keeps the distinct-opinion count in O(1) per
// step.  That makes the voter model a first-class AveragingProcess --
// phi/average reads, run_until_converged (via the converged() override:
// distinct count <= 1) and the scenario engine all work unchanged.
#ifndef OPINDYN_CORE_VOTER_MODEL_H
#define OPINDYN_CORE_VOTER_MODEL_H

#include <cstdint>
#include <vector>

#include "src/core/process.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class VoterModel final : public AveragingProcess {
 public:
  /// `opinions[u]` is node u's initial opinion, value-coded (equal
  /// doubles are the same opinion).  `lazy` adds the 1/2 no-op coin of
  /// the paper's lazy variants.
  VoterModel(const Graph& graph, std::vector<double> opinions,
             bool lazy = false);

  /// Convenience overload for classical integer opinion labels.
  VoterModel(const Graph& graph, const std::vector<int>& opinions,
             bool lazy = false);

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

  /// Consensus, not the potential, is the voter stopping condition.
  bool converged(double epsilon, bool use_plain_potential) const override;

  bool has_consensus() const noexcept { return distinct_opinions_ <= 1; }
  int distinct_opinions() const noexcept { return distinct_opinions_; }
  double opinion(NodeId u) const { return state().value(u); }

 protected:
  /// Voter update: u adopts sample[0]'s opinion (ignores alpha).
  void apply_update(const NodeSelection& selection) override;

 private:
  /// The one mutation, shared by apply_update and the burst loop:
  /// id/count bookkeeping plus the value copy.
  void copy_opinion(NodeId u, NodeId v);

  bool lazy_;
  std::vector<int> opinion_ids_;      // node -> dense opinion id
  std::vector<std::int64_t> counts_;  // per dense opinion id
  int distinct_opinions_ = 0;
};

struct VoterRunResult {
  std::int64_t steps = 0;
  bool reached_consensus = false;
  int winning_opinion = 0;
};

/// Runs to consensus or max_steps (exact per-step consensus check).
VoterRunResult run_voter_to_consensus(const Graph& graph,
                                      const std::vector<int>& opinions,
                                      Rng& rng, std::int64_t max_steps);

}  // namespace opindyn

#endif  // OPINDYN_CORE_VOTER_MODEL_H
