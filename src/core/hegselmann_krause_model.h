// Asynchronous Hegselmann-Krause bounded-confidence dynamics
// (arXiv:1910.14465): at each step a uniformly random node u averages
// with exactly those neighbours whose value lies within the confidence
// bound, x_u <- (x_u + sum_{v ~ u, |x_v - x_u| <= eps} x_v) / (1 + #).
// Unlike the unconditional rules, HK fragments into opinion clusters
// separated by more than the confidence bound instead of reaching
// global consensus -- the hegselmann_krause scenario counts those
// clusters.  A step whose confidant set is empty is a natural no-op.
#ifndef OPINDYN_CORE_HEGSELMANN_KRAUSE_MODEL_H
#define OPINDYN_CORE_HEGSELMANN_KRAUSE_MODEL_H

#include <cstdint>
#include <vector>

#include "src/core/process.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

struct HegselmannKrauseParams {
  /// Confidence bound eps > 0: neighbours further away are ignored.
  double confidence = 0.25;
  bool lazy = false;
  /// Track max/min for O(1) discrepancy reads.
  bool track_extrema = false;
};

class HegselmannKrauseModel final : public AveragingProcess {
 public:
  HegselmannKrauseModel(const Graph& graph, std::vector<double> initial,
                        const HegselmannKrauseParams& params);

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const HegselmannKrauseParams& params() const noexcept { return params_; }

  /// Number of opinion clusters at the current state: maximal groups of
  /// sorted values with consecutive gaps <= the confidence bound.  O(n
  /// log n); a diagnostic read, not part of the step path.
  int cluster_count() const;

 protected:
  /// Confidence-bounded update: selection.sample holds the confidant
  /// set in adjacency order; u moves to the mean of itself and them.
  void apply_update(const NodeSelection& selection) override;

 private:
  HegselmannKrauseParams params_;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_HEGSELMANN_KRAUSE_MODEL_H
