#include "src/core/qchain.h"

#include <algorithm>
#include <cmath>

#include "src/graph/algorithms.h"
#include "src/support/assert.h"

namespace opindyn {

QStationaryValues q_stationary_closed_form(std::int64_t n, std::int64_t d,
                                           std::int64_t k, double alpha) {
  OPINDYN_EXPECTS(n >= 2, "need n >= 2");
  OPINDYN_EXPECTS(d >= 2 && d < n, "closed form needs 2 <= d < n");
  OPINDYN_EXPECTS(k >= 1 && k <= d, "need 1 <= k <= d");
  OPINDYN_EXPECTS(alpha > 0.0 && alpha < 1.0, "need alpha in (0, 1)");
  const auto nd = static_cast<double>(n);
  const auto dd = static_cast<double>(d);
  const auto kd = static_cast<double>(k);

  QStationaryValues v;
  v.gamma = kd * (1.0 + alpha) - (1.0 - alpha);
  const double dg2ak = dd * v.gamma - 2.0 * alpha * kd;
  v.ell = 1.0 / (nd * (nd * dg2ak + 2.0 * (1.0 - alpha) * (dd - kd)));
  v.mu0 = 2.0 * kd * (dd - 1.0) * v.ell;
  v.mu1 = (dd - 1.0) * v.gamma * v.ell;
  v.mu_plus = dg2ak * v.ell;
  return v;
}

QChain::QChain(const Graph& graph, double alpha, std::int64_t k)
    : graph_(&graph),
      alpha_(alpha),
      k_(k),
      q_(static_cast<std::size_t>(graph.node_count()) *
             static_cast<std::size_t>(graph.node_count()),
         static_cast<std::size_t>(graph.node_count()) *
             static_cast<std::size_t>(graph.node_count()),
         0.0) {
  OPINDYN_EXPECTS(alpha > 0.0 && alpha < 1.0, "need alpha in (0, 1)");
  OPINDYN_EXPECTS(k >= 1 && k <= graph.min_degree(),
                  "need 1 <= k <= min degree");
  OPINDYN_EXPECTS(graph.node_count() <= 64,
                  "QChain dense matrix limited to n <= 64 (n^4 memory)");

  const auto n = graph.node_count();
  const double node_prob = 1.0 / static_cast<double>(n);
  const double a = alpha;
  const double b = 1.0 - alpha;
  const auto kd = static_cast<double>(k);

  // Exact one-step law, derived from the shared-B(t) walk semantics
  // (equivalently Eqs. (14)-(21) generalised to per-node degrees):
  for (NodeId x = 0; x < n; ++x) {
    const auto dx = static_cast<double>(graph.degree(x));
    for (NodeId y = 0; y < n; ++y) {
      const std::size_t from = state_index(x, y);
      double outflow = 0.0;

      if (x == y) {
        // Selected node must be x for anything to move (prob 1/n).
        // Both stay: alpha^2 (accumulated into the self-loop below).
        // One walk moves to a neighbour u: each direction
        //   a*b * P(u picked) = a*b * (k/d)(1/k) = a*b/d.
        for (const NodeId u : graph_->neighbors(x)) {
          const double one_moves = node_prob * a * b / dx;
          q_.at(from, state_index(u, y)) += one_moves;  // walk 1 moves
          q_.at(from, state_index(x, u)) += one_moves;  // walk 2 moves
          outflow += 2.0 * one_moves;
        }
        // Both move to the same u: b^2 * (k/d)(1/k^2) = b^2/(k d).
        for (const NodeId u : graph_->neighbors(x)) {
          const double both_same = node_prob * b * b / (kd * dx);
          q_.at(from, state_index(u, u)) += both_same;
          outflow += both_same;
        }
        // Both move, to distinct neighbours u != v (requires k >= 2):
        // b^2 * [k(k-1)/(d(d-1))] * (1/k^2) per ordered pair.
        if (k_ >= 2) {
          const double both_distinct =
              node_prob * b * b * (kd - 1.0) / (kd * dx * (dx - 1.0));
          for (const NodeId u : graph_->neighbors(x)) {
            for (const NodeId v : graph_->neighbors(x)) {
              if (u == v) {
                continue;
              }
              q_.at(from, state_index(u, v)) += both_distinct;
              outflow += both_distinct;
            }
          }
        }
      } else {
        // Walk 1 (at x) moves only if x is selected: b * (1/d_x) per
        // neighbour; walk 2 symmetric.  Note the destination may equal
        // the other walk's node -- that is how pairs coalesce to S_0.
        for (const NodeId u : graph_->neighbors(x)) {
          const double move = node_prob * b / dx;
          q_.at(from, state_index(u, y)) += move;
          outflow += move;
        }
        const auto dy = static_cast<double>(graph.degree(y));
        for (const NodeId v : graph_->neighbors(y)) {
          const double move = node_prob * b / dy;
          q_.at(from, state_index(x, v)) += move;
          outflow += move;
        }
      }
      // Everything else (other node selected, or walks stayed put).
      q_.at(from, from) += 1.0 - outflow;
    }
  }
  OPINDYN_ENSURES(q_.stochasticity_defect() < 1e-12,
                  "Q transition matrix must be row-stochastic");
}

std::size_t QChain::state_index(NodeId x, NodeId y) const {
  OPINDYN_EXPECTS(x >= 0 && x < graph_->node_count(), "x out of range");
  OPINDYN_EXPECTS(y >= 0 && y < graph_->node_count(), "y out of range");
  return static_cast<std::size_t>(x) *
             static_cast<std::size_t>(graph_->node_count()) +
         static_cast<std::size_t>(y);
}

std::vector<double> QChain::closed_form_stationary() const {
  OPINDYN_EXPECTS(graph_->is_regular(),
                  "Lemma 5.7 closed form needs a regular graph");
  const QStationaryValues v = q_stationary_closed_form(
      graph_->node_count(), graph_->min_degree(), k_, alpha_);
  const auto distances = all_pairs_distances(*graph_);
  const auto n = static_cast<std::size_t>(graph_->node_count());
  std::vector<double> mu(n * n, 0.0);
  for (std::size_t s = 0; s < n * n; ++s) {
    const NodeId dist = distances[s];
    OPINDYN_ENSURES(dist >= 0, "graph must be connected");
    mu[s] = dist == 0 ? v.mu0 : (dist == 1 ? v.mu1 : v.mu_plus);
  }
  return mu;
}

double QChain::closed_form_residual() const {
  const std::vector<double> mu = closed_form_stationary();
  const std::vector<double> mu_q = q_.left_multiply(mu);
  double residual = 0.0;
  for (std::size_t s = 0; s < mu.size(); ++s) {
    residual = std::max(residual, std::abs(mu_q[s] - mu[s]));
  }
  return residual;
}

StationaryResult QChain::numerical_stationary(double tolerance,
                                              int max_iterations) const {
  return stationary_distribution(q_, tolerance, max_iterations);
}

double QChain::second_moment(const std::vector<double>& stationary,
                             const std::vector<double>& xi0) const {
  const auto n = static_cast<std::size_t>(graph_->node_count());
  OPINDYN_EXPECTS(stationary.size() == n * n,
                  "stationary vector has wrong size");
  OPINDYN_EXPECTS(xi0.size() == n, "xi0 has wrong size");
  double total = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      total += stationary[x * n + y] * xi0[x] * xi0[y];
    }
  }
  return total;
}

}  // namespace opindyn
