// Runs a process until eps-convergence (phi(xi(t)) <= eps, the criterion
// of Section 4).  The potential is read from the O(1) running accumulators
// every `check_interval` steps; a candidate stop is confirmed with the
// exact centered recomputation, so the reported hitting time is never an
// artefact of floating-point drift.
#ifndef OPINDYN_CORE_CONVERGENCE_H
#define OPINDYN_CORE_CONVERGENCE_H

#include <cstdint>

#include "src/core/process.h"
#include "src/support/rng.h"

namespace opindyn {

struct ConvergenceResult {
  /// First checked time with phi <= eps (granularity = check_interval).
  std::int64_t steps = 0;
  bool converged = false;
  double final_phi = 0.0;
  /// The common value F (read as the degree-weighted average M, which is
  /// the NodeModel martingale and equals every node's value in the limit;
  /// for regular graphs M = Avg).
  double final_value = 0.0;
};

struct ConvergenceOptions {
  double epsilon = 1e-10;
  std::int64_t max_steps = 1'000'000'000;
  /// How often phi is checked; 0 picks max(1, n/4) automatically.
  std::int64_t check_interval = 0;
  /// Use the plain potential phi_V instead of the pi-weighted phi
  /// (the EdgeModel analysis of Prop. D.1 uses phi_V).
  bool use_plain_potential = false;
};

ConvergenceResult run_until_converged(AveragingProcess& process, Rng& rng,
                                      const ConvergenceOptions& options);

}  // namespace opindyn

#endif  // OPINDYN_CORE_CONVERGENCE_H
