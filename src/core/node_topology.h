// Topology policies shared by the node-style burst kernels (NodeModel,
// WeightedMedianModel, HegselmannKrauseModel): how a kernel
// instantiation finds a node's adjacency row, its value-storage slot
// and its stationary weight.  All calls inline into the chunk loops.
#ifndef OPINDYN_CORE_NODE_TOPOLOGY_H
#define OPINDYN_CORE_NODE_TOPOLOGY_H

#include <cstdint>

#include "src/graph/graph.h"

namespace opindyn {

/// Regular graph, natural order: row base is u * d (no offsets load)
/// and pi = d / 2m is one constant (bit-identical to the per-node
/// array, which was filled from the same expression).
struct NodeRegularTopo {
  static constexpr bool kUniformPi = true;
  const NodeId* adj;
  std::int32_t d;
  double pi;
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(u) * d;
  }
  std::int32_t degree(NodeId) const noexcept { return d; }
  std::int32_t slot(NodeId u) const noexcept { return u; }
  double stationary(NodeId) const noexcept { return pi; }
  const NodeId* adjacency() const noexcept { return adj; }
};

/// Irregular graph, natural order: CSR offsets + per-node pi.
struct NodeIrregularTopo {
  static constexpr bool kUniformPi = false;
  const std::uint32_t* offsets;
  const NodeId* adj;
  const double* pi;
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t degree(NodeId u) const noexcept {
    return static_cast<std::int32_t>(
        offsets[static_cast<std::size_t>(u) + 1] -
        offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t slot(NodeId u) const noexcept { return u; }
  double stationary(NodeId u) const noexcept {
    return pi[static_cast<std::size_t>(u)];
  }
  const NodeId* adjacency() const noexcept { return adj; }
};

/// Degree-sorted mirror (graph/layout.h): draws stay in original id
/// space, only value storage is permuted, so rows and rng consumption
/// are untouched and the translated adjacency array yields mirror
/// slots directly.
struct NodeReorderTopo {
  static constexpr bool kUniformPi = false;
  const std::uint32_t* offsets;
  const NodeId* adj_internal;
  const NodeId* to_internal;
  const double* pi;  // original order: pi depends on the node, not the slot
  std::int64_t row_base(NodeId u) const noexcept {
    return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t degree(NodeId u) const noexcept {
    return static_cast<std::int32_t>(
        offsets[static_cast<std::size_t>(u) + 1] -
        offsets[static_cast<std::size_t>(u)]);
  }
  std::int32_t slot(NodeId u) const noexcept {
    return to_internal[static_cast<std::size_t>(u)];
  }
  double stationary(NodeId u) const noexcept {
    return pi[static_cast<std::size_t>(u)];
  }
  const NodeId* adjacency() const noexcept { return adj_internal; }
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_NODE_TOPOLOGY_H
