// Initial opinion vectors xi(0) used across the experiments, plus the
// centering helpers the analysis assumes (Avg(0) = 0 for the plain
// martingale, M(0) = 0 for the degree-weighted one).
#ifndef OPINDYN_CORE_INITIAL_VALUES_H
#define OPINDYN_CORE_INITIAL_VALUES_H

#include <vector>

#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {
namespace initial {

/// All nodes hold `value`.
std::vector<double> constant(NodeId n, double value);

/// i.i.d. Uniform[lo, hi).
std::vector<double> uniform(Rng& rng, NodeId n, double lo, double hi);

/// i.i.d. N(mean, stddev^2).
std::vector<double> gaussian(Rng& rng, NodeId n, double mean, double stddev);

/// i.i.d. Rademacher (+-1) -- the canonical ||xi||^2 = n initial state.
std::vector<double> rademacher(Rng& rng, NodeId n);

/// Single spike: xi = magnitude * e_(node); everyone else 0.
std::vector<double> spike(NodeId n, NodeId node, double magnitude);

/// xi_u = +1 / -1 alternating by node parity (adversarial for cycles).
std::vector<double> alternating(NodeId n);

/// Two contiguous blocks: the first floor(n/2) nodes hold +magnitude,
/// the remaining ceil(n/2) hold -magnitude.  Same value multiset as
/// `alternating` on even n but with maximal (positive) neighbour
/// correlation on a cycle -- the placement contrast Prop. 5.8's
/// correlation term distinguishes.
std::vector<double> blocks(NodeId n, double magnitude);

/// Linear ramp 0, 1, ..., n-1 scaled so max |xi| = magnitude.
std::vector<double> ramp(NodeId n, double magnitude);

/// The tightness initial state of Prop. B.2: beta * f2 where f2 is an
/// eigenvector (of the lazy walk matrix or Laplacian, caller supplies).
std::vector<double> scaled_eigenvector(const std::vector<double>& f2,
                                       double beta);

/// Shifts so that Avg = 0.
void center_plain(std::vector<double>& values);

/// Shifts so that the degree-weighted average M = 0.
void center_degree_weighted(const Graph& graph, std::vector<double>& values);

/// sum xi_u^2.
double l2_squared(const std::vector<double>& values);

}  // namespace initial
}  // namespace opindyn

#endif  // OPINDYN_CORE_INITIAL_VALUES_H
