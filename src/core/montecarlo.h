// Multithreaded Monte-Carlo harness: runs R independent replicas of a
// model from the same xi(0), collects the convergence value F and the
// eps-convergence time, and (optionally) the trajectory of the martingale
// M(t) at fixed checkpoints.  Replica r uses the deterministic child
// stream Rng::fork(seed, r) and writes into its own slot of a per-replica
// buffer that is folded in replica order (the CellScheduler contract in
// src/support/cell_scheduler.h), so aggregated results are bit-identical
// regardless of the thread count or scheduling.
#ifndef OPINDYN_CORE_MONTECARLO_H
#define OPINDYN_CORE_MONTECARLO_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/edge_model.h"
#include "src/core/node_model.h"
#include "src/graph/graph.h"
#include "src/support/stats.h"

namespace opindyn {

enum class ModelKind { node, edge };

/// One configuration of either model (k is ignored for the EdgeModel).
struct ModelConfig {
  ModelKind kind = ModelKind::node;
  double alpha = 0.5;
  std::int64_t k = 1;
  bool lazy = false;
  SamplingMode sampling = SamplingMode::without_replacement;
};

/// Builds the configured process over `graph` starting from `initial`.
std::unique_ptr<AveragingProcess> make_process(
    const Graph& graph, const ModelConfig& config,
    std::vector<double> initial);

struct MonteCarloResult {
  /// F = common limit value, one sample per replica.
  RunningStats convergence_value;
  /// eps-convergence time, one sample per replica.
  RunningStats steps;
  std::int64_t replicas = 0;
  std::int64_t diverged = 0;  ///< replicas that hit max_steps unconverged
};

struct MonteCarloOptions {
  std::int64_t replicas = 1000;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  ConvergenceOptions convergence;
};

/// Runs replicas to eps-convergence and aggregates F and T_eps.
MonteCarloResult monte_carlo(const Graph& graph, const ModelConfig& config,
                             const std::vector<double>& initial,
                             const MonteCarloOptions& options);

struct TrajectoryResult {
  /// checkpoints[i] = step count; stats[i] aggregates M(checkpoint[i])
  /// (NodeModel) or Avg (EdgeModel -- identical for regular graphs)
  /// across replicas.
  std::vector<std::int64_t> checkpoints;
  std::vector<RunningStats> martingale;
  /// Potential phi at the same checkpoints (for decay-rate plots).
  std::vector<RunningStats> phi;
};

/// Runs replicas for exactly max(checkpoints) steps, sampling the
/// martingale and the potential at each checkpoint.
TrajectoryResult monte_carlo_trajectory(
    const Graph& graph, const ModelConfig& config,
    const std::vector<double>& initial,
    const std::vector<std::int64_t>& checkpoints,
    std::int64_t replicas, std::uint64_t seed, std::size_t threads = 0);

}  // namespace opindyn

#endif  // OPINDYN_CORE_MONTECARLO_H
