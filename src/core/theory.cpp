#include "src/core/theory.h"

#include <algorithm>
#include <cmath>

#include "src/support/assert.h"

namespace opindyn {
namespace theory {

double expected_pi_norm_sq_after_step(const Graph& graph,
                                      const std::vector<double>& xi,
                                      double alpha, std::int64_t k,
                                      SamplingMode mode) {
  const auto n = graph.node_count();
  OPINDYN_EXPECTS(xi.size() == static_cast<std::size_t>(n),
                  "xi size must equal node count");
  OPINDYN_EXPECTS(k >= 1, "k must be >= 1");
  if (mode == SamplingMode::without_replacement) {
    OPINDYN_EXPECTS(k <= graph.min_degree(),
                    "k must be <= min degree without replacement");
  }
  const double a = alpha;
  const double b = 1.0 - alpha;
  const auto kd = static_cast<double>(k);

  // ||xi'||^2_pi - ||xi||^2_pi changes only in coordinate X:
  //   E[...] = (1/n) sum_x pi_x ( E[(a xi_x + b A_x)^2] - xi_x^2 )
  // where A_x is the mean of the k sampled neighbour values:
  //   E[A_x]   = m1(x)
  //   E[A_x^2] = m2(x)/k + (1 - 1/k) * cross(x)
  // cross(x) = m1(x)^2 with replacement, and the exact pair moment
  // (d m1^2 - m2/d ... ) / (d-1) without replacement.
  double total = 0.0;
  for (NodeId x = 0; x < n; ++x) {
    const auto row = graph.neighbors(x);
    const auto d = static_cast<double>(row.size());
    double s1 = 0.0;
    double s2 = 0.0;
    for (const NodeId y : row) {
      const double v = xi[static_cast<std::size_t>(y)];
      s1 += v;
      s2 += v * v;
    }
    const double m1 = s1 / d;
    const double m2 = s2 / d;
    double cross = m1 * m1;
    if (mode == SamplingMode::without_replacement && k >= 2) {
      // E[xi_Y xi_Y' | Y != Y'] = (s1^2 - s2) / (d(d-1)).
      cross = (s1 * s1 - s2) / (d * (d - 1.0));
    }
    const double e_a2 = m2 / kd + (1.0 - 1.0 / kd) * cross;
    const double xv = xi[static_cast<std::size_t>(x)];
    const double e_new_sq = a * a * xv * xv + 2.0 * a * b * xv * m1 +
                            b * b * e_a2;
    total += graph.stationary(x) * (e_new_sq - xv * xv);
  }
  double base = 0.0;
  for (NodeId x = 0; x < n; ++x) {
    base += graph.stationary(x) * xi[static_cast<std::size_t>(x)] *
            xi[static_cast<std::size_t>(x)];
  }
  return base + total / static_cast<double>(n);
}

double expected_sum_sq_after_step_edge(const Graph& graph,
                                       const std::vector<double>& xi,
                                       double alpha) {
  OPINDYN_EXPECTS(xi.size() == static_cast<std::size_t>(graph.node_count()),
                  "xi size must equal node count");
  double sum_sq = 0.0;
  for (const double v : xi) {
    sum_sq += v * v;
  }
  const double quad = laplacian_quadratic_form(graph, xi);
  return sum_sq - alpha * (1.0 - alpha) /
                      static_cast<double>(graph.edge_count()) * quad;
}

double node_model_rho(double lambda2_lazy_p, double alpha, std::int64_t k,
                      std::int64_t n, bool lazy) {
  OPINDYN_EXPECTS(n >= 2, "need n >= 2");
  OPINDYN_EXPECTS(k >= 1, "k must be >= 1");
  const double l2 = lambda2_lazy_p;
  const double a = alpha;
  const double kd = static_cast<double>(k);
  const double rho = (1.0 - a) * (1.0 - l2) *
                     (2.0 * a + (1.0 - a) * (1.0 + l2) * (1.0 - 1.0 / kd)) /
                     static_cast<double>(n);
  return lazy ? rho / 2.0 : rho;
}

double edge_model_rho(double lambda2_laplacian, double alpha, std::int64_t m,
                      bool lazy) {
  OPINDYN_EXPECTS(m >= 1, "need m >= 1");
  const double rho =
      alpha * (1.0 - alpha) * lambda2_laplacian / static_cast<double>(m);
  return lazy ? rho / 2.0 : rho;
}

double steps_to_epsilon(double rho, double phi0, double eps) {
  OPINDYN_EXPECTS(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
  OPINDYN_EXPECTS(phi0 > 0.0 && eps > 0.0, "phi0 and eps must be positive");
  if (phi0 <= eps) {
    return 0.0;
  }
  return std::log(phi0 / eps) / -std::log1p(-rho);
}

double node_convergence_bound(std::int64_t n, double xi0_l2_squared,
                              double eps, double lambda2_lazy_p) {
  OPINDYN_EXPECTS(eps > 0.0, "eps must be positive");
  OPINDYN_EXPECTS(lambda2_lazy_p < 1.0, "need a positive spectral gap");
  const double nd = static_cast<double>(n);
  return nd * std::log(nd * xi0_l2_squared / eps) / (1.0 - lambda2_lazy_p);
}

double edge_convergence_bound(std::int64_t n, std::int64_t m,
                              double xi0_l2_squared, double eps,
                              double lambda2_laplacian) {
  OPINDYN_EXPECTS(eps > 0.0, "eps must be positive");
  OPINDYN_EXPECTS(lambda2_laplacian > 0.0, "need lambda2(L) > 0");
  return static_cast<double>(m) *
         std::log(static_cast<double>(n) * xi0_l2_squared / eps) /
         lambda2_laplacian;
}

double variance_exact(const Graph& graph, double alpha, std::int64_t k,
                      const std::vector<double>& xi0) {
  OPINDYN_EXPECTS(graph.is_regular(),
                  "Prop. 5.8 variance formula needs a regular graph");
  const QStationaryValues mu = q_stationary_closed_form(
      graph.node_count(), graph.min_degree(), k, alpha);
  double sum_sq = 0.0;
  for (const double v : xi0) {
    sum_sq += v * v;
  }
  const double edge_corr = directed_edge_correlation(graph, xi0);
  return (mu.mu0 - mu.mu_plus) * sum_sq + (mu.mu1 - mu.mu_plus) * edge_corr;
}

double variance_upper_coeff(std::int64_t n, std::int64_t d, std::int64_t k,
                            double alpha) {
  const QStationaryValues mu = q_stationary_closed_form(n, d, k, alpha);
  return (mu.mu0 - mu.mu_plus) -
         static_cast<double>(d) * (mu.mu1 - mu.mu_plus);
}

double variance_lower_coeff(std::int64_t n, std::int64_t d, std::int64_t k,
                            double alpha) {
  const QStationaryValues mu = q_stationary_closed_form(n, d, k, alpha);
  return (mu.mu0 - mu.mu_plus) +
         static_cast<double>(d) * (mu.mu1 - mu.mu_plus);
}

double cheeger_lambda2_lower_bound(double isoperimetric_number,
                                   std::int64_t max_degree) {
  OPINDYN_EXPECTS(max_degree >= 1, "need max degree >= 1");
  return isoperimetric_number * isoperimetric_number /
         (2.0 * static_cast<double>(max_degree));
}

double node_var_m_time_bound(std::int64_t t, double discrepancy,
                             std::int64_t max_degree, std::int64_t m) {
  OPINDYN_EXPECTS(t >= 0, "time must be >= 0");
  const double step = static_cast<double>(max_degree) * discrepancy /
                      (2.0 * static_cast<double>(m));
  return static_cast<double>(t) * step * step;
}

double edge_var_avg_time_bound(std::int64_t t, double discrepancy,
                               std::int64_t n) {
  OPINDYN_EXPECTS(t >= 0, "time must be >= 0");
  return static_cast<double>(t) * discrepancy * discrepancy /
         (static_cast<double>(n) * static_cast<double>(n));
}

double directed_edge_correlation(const Graph& graph,
                                 const std::vector<double>& xi) {
  OPINDYN_EXPECTS(xi.size() == static_cast<std::size_t>(graph.node_count()),
                  "xi size must equal node count");
  double total = 0.0;
  for (ArcId j = 0; j < graph.arc_count(); ++j) {
    total += xi[static_cast<std::size_t>(graph.arc_source(j))] *
             xi[static_cast<std::size_t>(graph.arc_target(j))];
  }
  return total;
}

double laplacian_quadratic_form(const Graph& graph,
                                const std::vector<double>& xi) {
  OPINDYN_EXPECTS(xi.size() == static_cast<std::size_t>(graph.node_count()),
                  "xi size must equal node count");
  double total = 0.0;
  for (const auto& [u, v] : graph.undirected_edges()) {
    const double d = xi[static_cast<std::size_t>(u)] -
                     xi[static_cast<std::size_t>(v)];
    total += d * d;
  }
  return total;
}

}  // namespace theory
}  // namespace opindyn
