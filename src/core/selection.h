// A single step's random choice chi(t) = (u(t), S(t)) -- the updating node
// and its sampled neighbours -- in the notation of Proposition 5.1.
// Recording these choices is what makes the duality testable: the
// Averaging Process replayed forward on chi and the Diffusion Process
// replayed on the reverse of chi must produce identical vectors
// (Lemma 5.2), bit-for-bit up to floating point.
#ifndef OPINDYN_CORE_SELECTION_H
#define OPINDYN_CORE_SELECTION_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

struct NodeSelection {
  /// The node u(t) whose value updates.
  NodeId node = 0;
  /// The sampled neighbours v_1..v_k (size 1 for the EdgeModel).
  /// Empty means "lazy no-op step".
  std::vector<NodeId> sample;

  bool is_noop() const noexcept { return sample.empty(); }
};

using SelectionSequence = std::vector<NodeSelection>;

/// A selection together with its probability under the model's one-step
/// distribution; used for exact expectation tests and small-case
/// enumeration.
struct WeightedSelection {
  NodeSelection selection;
  double probability = 0.0;
};

/// Enumerates every possible NodeModel selection (u, S) with
/// P = (1/n) * 1/C(d_u, k) for without-replacement sampling.
/// Requires k <= min_degree and small degrees (C(d,k) enumerable).
std::vector<WeightedSelection> enumerate_node_selections(const Graph& graph,
                                                         std::int64_t k);

/// Enumerates every ordered k-tuple for with-replacement sampling with
/// P = (1/n) * (1/d_u)^k.  Exponential in k; for tests only.
std::vector<WeightedSelection> enumerate_node_selections_with_replacement(
    const Graph& graph, std::int64_t k);

/// Enumerates every EdgeModel selection (directed arc) with P = 1/(2m).
std::vector<WeightedSelection> enumerate_edge_selections(const Graph& graph);

}  // namespace opindyn

#endif  // OPINDYN_CORE_SELECTION_H
