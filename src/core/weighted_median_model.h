// The weighted-median mechanism (arXiv:1909.06474): at each step a
// uniformly random node u samples k of its neighbours and moves its
// value to the *median* of the sampled values (lower median for even k).
// The interaction skeleton -- uniform node, k-sample of its row -- is
// exactly the NodeModel's (Definition 2.1); only the aggregation
// changes, from mean to median.  For k = 1 the rule degenerates to the
// continuous voter copy.  Medians are order statistics, not arithmetic,
// so the rule is robust to outlier opinions where the mean rule is not
// -- that contrast is what the weighted_median scenario measures.
#ifndef OPINDYN_CORE_WEIGHTED_MEDIAN_MODEL_H
#define OPINDYN_CORE_WEIGHTED_MEDIAN_MODEL_H

#include <cstdint>
#include <vector>

#include "src/core/node_model.h"  // SamplingMode
#include "src/core/process.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

/// Selects the lower median of `buf[0..k)` in draw order: stable
/// insertion sort, then element (k-1)/2.  Shared by the recorded path
/// and the burst kernels so ties between bit-distinct equal values
/// (-0.0 vs +0.0) resolve identically everywhere.
inline double lower_median_inplace(double* buf, int k) {
  for (int i = 1; i < k; ++i) {
    const double key = buf[i];
    int j = i - 1;
    while (j >= 0 && buf[j] > key) {
      buf[j + 1] = buf[j];
      --j;
    }
    buf[j + 1] = key;
  }
  return buf[(k - 1) / 2];
}

struct WeightedMedianParams {
  std::int64_t k = 1;
  bool lazy = false;
  SamplingMode sampling = SamplingMode::without_replacement;
  /// Track max/min for O(1) discrepancy reads.
  bool track_extrema = false;
};

class WeightedMedianModel final : public AveragingProcess {
 public:
  /// Requires k <= min_degree for without-replacement sampling.
  WeightedMedianModel(const Graph& graph, std::vector<double> initial,
                      const WeightedMedianParams& params);

  NodeSelection step_recorded(Rng& rng) override;
  void step_burst(Rng& rng, std::int64_t n_steps) override;

  const WeightedMedianParams& params() const noexcept { return params_; }

 protected:
  /// Median update: u moves to the lower median of the sampled values.
  void apply_update(const NodeSelection& selection) override;

 private:
  /// Draws one step's updating node and its k-sample into the member
  /// scratch buffers (no allocation), consuming `rng` exactly as
  /// step_recorded does; returns the updating node u.
  NodeId draw_selection(Rng& rng);

  /// step_burst fallback for configurations without a specialised
  /// compile-time-k kernel.
  void step_burst_generic(Rng& rng, std::int64_t n_steps);

  WeightedMedianParams params_;
  std::vector<std::int32_t> scratch_;   // Floyd subset indices buffer
  std::vector<NodeId> sample_scratch_;  // sampled node ids, draw order
  std::vector<double> median_scratch_;  // sampled values, draw order
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_WEIGHTED_MEDIAN_MODEL_H
