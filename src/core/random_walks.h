// The Random Walk Process of Section 5.2: n walks, walk u starting on
// node u, all driven by the *same* transition matrices B(t) as the
// Diffusion Process (that sharing is exactly what correlates them).  When
// a selection (u(t), S(t)) fires, every walk currently sitting on u(t)
// independently stays with probability alpha or jumps to a uniformly
// random member of S(t).
//
// Lemma 5.3: conditioned on the selection sequence, the distribution of
// walk u at time t is column u of R(t) -- so E[W~(u)] = W(u).
// Proposition 5.4: second moments also match:
// E[W~(u) W~(v)] = E[W(u) W(v)].
#ifndef OPINDYN_CORE_RANDOM_WALKS_H
#define OPINDYN_CORE_RANDOM_WALKS_H

#include <vector>

#include "src/core/selection.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class CorrelatedWalks {
 public:
  /// Starts walk u on node u for every u.  `graph` must outlive this.
  CorrelatedWalks(const Graph& graph, double alpha);

  /// Restricts to an arbitrary set of start nodes instead of all n
  /// (the two-walk Q-chain experiments track just a pair).
  CorrelatedWalks(const Graph& graph, double alpha,
                  std::vector<NodeId> start_positions);

  /// Applies one shared selection; `rng` drives the per-walk moves.
  void apply(const NodeSelection& selection, Rng& rng);

  std::size_t walk_count() const noexcept { return positions_.size(); }
  NodeId position(std::size_t walk) const;
  const std::vector<NodeId>& positions() const noexcept { return positions_; }

  /// Cost of walk w under cost vector xi(0): xi_{position(w)}(0).
  double cost(std::size_t walk, const std::vector<double>& xi0) const;

  std::int64_t time() const noexcept { return time_; }
  double alpha() const noexcept { return alpha_; }

 private:
  const Graph* graph_;
  double alpha_;
  std::vector<NodeId> positions_;
  std::int64_t time_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_CORE_RANDOM_WALKS_H
