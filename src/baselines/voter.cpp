#include "src/baselines/voter.h"

#include <algorithm>
#include <map>

#include "src/support/assert.h"

namespace opindyn {

VoterModel::VoterModel(const Graph& graph, std::vector<int> opinions)
    : graph_(&graph), opinions_(std::move(opinions)) {
  OPINDYN_EXPECTS(opinions_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "opinion vector size must equal node count");
  // Dense-id the opinions so consensus detection is O(1) per step.
  std::map<int, int> dense;
  opinion_ids_.resize(opinions_.size());
  for (std::size_t u = 0; u < opinions_.size(); ++u) {
    const auto [it, inserted] =
        dense.emplace(opinions_[u], static_cast<int>(dense.size()));
    opinion_ids_[u] = it->second;
    (void)inserted;
  }
  counts_.assign(dense.size(), 0);
  for (const int id : opinion_ids_) {
    ++counts_[static_cast<std::size_t>(id)];
  }
  distinct_opinions_ = static_cast<int>(
      std::count_if(counts_.begin(), counts_.end(),
                    [](std::int64_t c) { return c > 0; }));
}

void VoterModel::step(Rng& rng) {
  ++time_;
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph_->node_count())));
  const auto row = graph_->neighbors(u);
  const NodeId v = row[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(row.size())))];
  const auto ui = static_cast<std::size_t>(u);
  const auto vi = static_cast<std::size_t>(v);
  if (opinion_ids_[ui] == opinion_ids_[vi]) {
    return;
  }
  const auto old_id = static_cast<std::size_t>(opinion_ids_[ui]);
  const auto new_id = static_cast<std::size_t>(opinion_ids_[vi]);
  if (--counts_[old_id] == 0) {
    --distinct_opinions_;
  }
  ++counts_[new_id];
  opinion_ids_[ui] = opinion_ids_[vi];
  opinions_[ui] = opinions_[vi];
}

int VoterModel::opinion(NodeId u) const {
  OPINDYN_EXPECTS(u >= 0 && u < graph_->node_count(), "node out of range");
  return opinions_[static_cast<std::size_t>(u)];
}

VoterRunResult run_voter_to_consensus(const Graph& graph,
                                      const std::vector<int>& opinions,
                                      Rng& rng, std::int64_t max_steps) {
  VoterModel model(graph, opinions);
  VoterRunResult result;
  while (!model.has_consensus() && model.time() < max_steps) {
    model.step(rng);
  }
  result.steps = model.time();
  result.reached_consensus = model.has_consensus();
  result.winning_opinion = model.opinion(0);
  return result;
}

}  // namespace opindyn
