#include "src/baselines/degroot.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

DeGrootModel::DeGrootModel(const Graph& graph, std::vector<double> initial,
                           bool lazy)
    : graph_(&graph), lazy_(lazy), values_(std::move(initial)) {
  OPINDYN_EXPECTS(values_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "initial value vector size must equal node count");
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "DeGroot needs every node to have a neighbour");
  scratch_.resize(values_.size());
}

void DeGrootModel::step() {
  ++rounds_;
  for (NodeId u = 0; u < graph_->node_count(); ++u) {
    double sum = 0.0;
    for (const NodeId v : graph_->neighbors(u)) {
      sum += values_[static_cast<std::size_t>(v)];
    }
    const double mean = sum / static_cast<double>(graph_->degree(u));
    scratch_[static_cast<std::size_t>(u)] =
        lazy_ ? 0.5 * values_[static_cast<std::size_t>(u)] + 0.5 * mean
              : mean;
  }
  values_.swap(scratch_);
}

double DeGrootModel::weighted_average() const {
  double total = 0.0;
  for (NodeId u = 0; u < graph_->node_count(); ++u) {
    total += graph_->stationary(u) * values_[static_cast<std::size_t>(u)];
  }
  return total;
}

double DeGrootModel::discrepancy() const {
  const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
  return *hi - *lo;
}

}  // namespace opindyn
