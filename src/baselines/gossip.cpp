#include "src/baselines/gossip.h"

#include <cmath>

#include "src/support/assert.h"

namespace opindyn {

PairwiseGossip::PairwiseGossip(const Graph& graph,
                               std::vector<double> initial)
    : state_(graph, std::move(initial)) {
  OPINDYN_EXPECTS(graph.edge_count() >= 1, "gossip needs >= 1 edge");
}

void PairwiseGossip::step(Rng& rng) {
  ++time_;
  const auto arc = static_cast<ArcId>(rng.next_below(
      static_cast<std::uint64_t>(state_.graph().arc_count())));
  const NodeId u = state_.graph().arc_source(arc);
  const NodeId v = state_.graph().arc_target(arc);
  const double mean = 0.5 * (state_.value(u) + state_.value(v));
  state_.set_value(u, mean);
  state_.set_value(v, mean);
}

GossipRunResult run_gossip_to_convergence(const Graph& graph,
                                          const std::vector<double>& initial,
                                          Rng& rng, double epsilon,
                                          std::int64_t max_steps) {
  OPINDYN_EXPECTS(epsilon > 0.0, "epsilon must be positive");
  PairwiseGossip gossip(graph, initial);
  const double initial_average = gossip.state().average();
  GossipRunResult result;
  const std::int64_t interval =
      std::max<std::int64_t>(1, graph.node_count() / 4);
  while (gossip.time() < max_steps) {
    for (std::int64_t i = 0; i < interval && gossip.time() < max_steps; ++i) {
      gossip.step(rng);
    }
    if (gossip.state().phi_plain_exact() <= epsilon) {
      result.converged = true;
      break;
    }
  }
  result.steps = gossip.time();
  result.final_value = gossip.state().average();
  result.average_drift = std::abs(result.final_value - initial_average);
  return result;
}

}  // namespace opindyn
