// The classical (discrete) voter model -- the baseline the paper
// generalises (Section 2: "for k = 1 and alpha = 0 this model is
// equivalent to the voter model") and compares against (the remark after
// Theorem 2.2: the averaging process is faster by Omega(n / log n)).
// A uniformly random node adopts the opinion of a uniformly random
// neighbour; consensus is reached when one opinion remains.
#ifndef OPINDYN_BASELINES_VOTER_H
#define OPINDYN_BASELINES_VOTER_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class VoterModel {
 public:
  /// `opinions[u]` is node u's initial discrete opinion (any ints).
  VoterModel(const Graph& graph, std::vector<int> opinions);

  /// One pull step: random node copies a random neighbour's opinion.
  void step(Rng& rng);

  bool has_consensus() const noexcept { return distinct_opinions_ <= 1; }
  int opinion(NodeId u) const;
  const std::vector<int>& opinions() const noexcept { return opinions_; }
  std::int64_t time() const noexcept { return time_; }
  int distinct_opinions() const noexcept { return distinct_opinions_; }

 private:
  const Graph* graph_;
  std::vector<int> opinions_;
  std::vector<std::int64_t> counts_;  // per distinct initial opinion id
  std::vector<int> opinion_ids_;      // node -> dense opinion id
  int distinct_opinions_ = 0;
  std::int64_t time_ = 0;
};

struct VoterRunResult {
  std::int64_t steps = 0;
  bool reached_consensus = false;
  int winning_opinion = 0;
};

/// Runs to consensus or max_steps.
VoterRunResult run_voter_to_consensus(const Graph& graph,
                                      const std::vector<int>& opinions,
                                      Rng& rng, std::int64_t max_steps);

}  // namespace opindyn

#endif  // OPINDYN_BASELINES_VOTER_H
