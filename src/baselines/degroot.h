// The DeGroot model (Section 3, [23]): the classical *synchronous,
// deterministic* opinion dynamic xi(t+1) = W xi(t), with W the
// (optionally lazy) random-walk matrix.  For connected graphs (lazy, or
// non-bipartite) it converges to the degree-weighted average
// <pi, xi(0)> deterministically -- the same value the paper's NodeModel
// reaches only in expectation.  Included as the deterministic
// full-neighbourhood-communication comparator: zero variance, but every
// node must hear all neighbours every round.
#ifndef OPINDYN_BASELINES_DEGROOT_H
#define OPINDYN_BASELINES_DEGROOT_H

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

class DeGrootModel {
 public:
  /// `lazy` blends each round with weight 1/2 on the current value
  /// (needed for convergence on bipartite graphs).
  DeGrootModel(const Graph& graph, std::vector<double> initial, bool lazy);

  /// One synchronous round: every node simultaneously averages its
  /// neighbourhood.
  void step();

  const std::vector<double>& values() const noexcept { return values_; }
  std::int64_t rounds() const noexcept { return rounds_; }

  /// <pi, xi(t)>: invariant under the dynamics, equals the limit.
  double weighted_average() const;

  /// max - min of the current values.
  double discrepancy() const;

 private:
  const Graph* graph_;
  bool lazy_;
  std::vector<double> values_;
  std::vector<double> scratch_;
  std::int64_t rounds_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_BASELINES_DEGROOT_H
