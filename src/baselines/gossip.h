// Coordinated pairwise-averaging gossip (Boyd et al., "Randomized gossip
// algorithms"): a random edge {u, v} fires and BOTH endpoints move to
// (xi_u + xi_v)/2.  This is the "stronger communication model" the paper's
// introduction contrasts with: the update matrix is doubly stochastic, so
// the plain average is conserved exactly and Var(F) = 0 -- the price the
// unilateral NodeModel/EdgeModel pay for simplicity is exactly the
// variance that this baseline does not have.
#ifndef OPINDYN_BASELINES_GOSSIP_H
#define OPINDYN_BASELINES_GOSSIP_H

#include <cstdint>
#include <vector>

#include "src/core/opinion_state.h"
#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

class PairwiseGossip {
 public:
  PairwiseGossip(const Graph& graph, std::vector<double> initial);

  /// One coordinated step: both endpoints of a random edge average.
  void step(Rng& rng);

  const OpinionState& state() const noexcept { return state_; }
  std::int64_t time() const noexcept { return time_; }

 private:
  OpinionState state_;
  std::int64_t time_ = 0;
};

struct GossipRunResult {
  std::int64_t steps = 0;
  bool converged = false;
  double final_value = 0.0;
  /// |final_value - Avg(0)| -- zero up to floating point, by double
  /// stochasticity.
  double average_drift = 0.0;
};

/// Runs until phi_V <= eps or max_steps.
GossipRunResult run_gossip_to_convergence(const Graph& graph,
                                          const std::vector<double>& initial,
                                          Rng& rng, double epsilon,
                                          std::int64_t max_steps);

}  // namespace opindyn

#endif  // OPINDYN_BASELINES_GOSSIP_H
