#include "src/baselines/friedkin_johnsen.h"

#include <cmath>

#include "src/spectral/solve.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {

FriedkinJohnsen::FriedkinJohnsen(const Graph& graph,
                                 std::vector<double> private_opinions,
                                 double susceptibility)
    : graph_(&graph),
      lambda_(susceptibility),
      private_(std::move(private_opinions)),
      expressed_(private_) {
  OPINDYN_EXPECTS(private_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "private opinion vector size must equal node count");
  OPINDYN_EXPECTS(susceptibility >= 0.0 && susceptibility < 1.0,
                  "susceptibility must be in [0, 1)");
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "FJ needs every node to have a neighbour");
  scratch_.resize(expressed_.size());
}

void FriedkinJohnsen::step() {
  ++rounds_;
  for (NodeId u = 0; u < graph_->node_count(); ++u) {
    double sum = 0.0;
    for (const NodeId v : graph_->neighbors(u)) {
      sum += expressed_[static_cast<std::size_t>(v)];
    }
    const double social = sum / static_cast<double>(graph_->degree(u));
    scratch_[static_cast<std::size_t>(u)] =
        lambda_ * social +
        (1.0 - lambda_) * private_[static_cast<std::size_t>(u)];
  }
  expressed_.swap(scratch_);
}

std::vector<double> FriedkinJohnsen::equilibrium() const {
  const auto n = static_cast<std::size_t>(graph_->node_count());
  // A = I - lambda W; b = (1 - lambda) s.
  Matrix a = walk_matrix(*graph_);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = (r == c ? 1.0 : 0.0) - lambda_ * a.at(r, c);
    }
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = (1.0 - lambda_) * private_[i];
  }
  return solve_dense(std::move(a), std::move(b));
}

double FriedkinJohnsen::distance_to(
    const std::vector<double>& point) const {
  OPINDYN_EXPECTS(point.size() == expressed_.size(), "size mismatch");
  double dist = 0.0;
  for (std::size_t i = 0; i < point.size(); ++i) {
    dist = std::max(dist, std::abs(expressed_[i] - point[i]));
  }
  return dist;
}

RandomizedFJ::RandomizedFJ(const Graph& graph,
                           std::vector<double> private_opinions,
                           double susceptibility, std::int64_t k)
    : graph_(&graph),
      lambda_(susceptibility),
      k_(k),
      private_(std::move(private_opinions)),
      expressed_(private_) {
  OPINDYN_EXPECTS(private_.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "private opinion vector size must equal node count");
  OPINDYN_EXPECTS(susceptibility >= 0.0 && susceptibility < 1.0,
                  "susceptibility must be in [0, 1)");
  OPINDYN_EXPECTS(k >= 1 && k <= graph.min_degree(),
                  "need 1 <= k <= min degree");
}

void RandomizedFJ::step(Rng& rng) {
  ++time_;
  const auto u = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(graph_->node_count())));
  const auto row = graph_->neighbors(u);
  sample_without_replacement(rng, static_cast<std::int64_t>(row.size()), k_,
                             scratch_);
  double sum = 0.0;
  for (const std::int32_t idx : scratch_) {
    sum += expressed_[static_cast<std::size_t>(
        row[static_cast<std::size_t>(idx)])];
  }
  const double social = sum / static_cast<double>(k_);
  expressed_[static_cast<std::size_t>(u)] =
      lambda_ * social +
      (1.0 - lambda_) * private_[static_cast<std::size_t>(u)];
}

}  // namespace opindyn
