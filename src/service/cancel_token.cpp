#include "src/service/cancel_token.h"

namespace opindyn {
namespace {

thread_local const CancelToken* t_current_token = nullptr;

}  // namespace

CancelScope::CancelScope(const CancelToken* token) noexcept
    : previous_(t_current_token), installed_(token != nullptr) {
  if (installed_) {
    t_current_token = token;
  }
}

CancelScope::~CancelScope() {
  if (installed_) {
    t_current_token = previous_;
  }
}

namespace cancel {

const CancelToken* current() noexcept { return t_current_token; }

bool requested() noexcept {
  return t_current_token != nullptr && t_current_token->cancelled();
}

void poll() {
  if (t_current_token != nullptr && t_current_token->cancelled()) {
    throw CancelledError(t_current_token->reason());
  }
}

}  // namespace cancel

}  // namespace opindyn
