// The serve-mode admission queue: a bounded FIFO between the reader
// (admission) thread and the job workers.  Bounded on purpose -- a
// client that streams jobs faster than they run gets an explicit
// `rejected` record (backpressure it can see and retry on) instead of
// unbounded memory growth in a process meant to run for weeks.
//
// The queue never reads clocks: deadlines are stamped by the server at
// admission (the only layer allowed to look at time; opindyn-lint
// enforces this) and carried here as opaque microsecond values.
#ifndef OPINDYN_SERVICE_JOB_QUEUE_H
#define OPINDYN_SERVICE_JOB_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "src/engine/experiment_spec.h"
#include "src/service/cancel_token.h"

namespace opindyn {
namespace service {

/// One admitted job: the parsed spec plus its serve-layer envelope.
struct Job {
  std::int64_t id = 0;
  engine::ExperimentSpec spec;
  /// Cancelled by the deadline monitor or the shutdown drain; shared so
  /// the server can cancel a job it no longer holds.
  std::shared_ptr<CancelToken> token;
  /// Absolute deadline in microseconds on the server's monotonic epoch
  /// (-1 = none); stamped at admission, so time spent queued counts.
  std::int64_t deadline_us = -1;
};

/// Bounded multi-producer / multi-consumer FIFO.  try_push never
/// blocks (admission must answer the client immediately); pop blocks
/// until a job arrives or the queue is closed and drained.
class JobQueue {
 public:
  enum class Push { accepted, full, closed };

  explicit JobQueue(std::size_t depth);

  /// Enqueues if there is room; `full` and `closed` leave the queue
  /// untouched so the caller can emit the matching rejection record.
  Push try_push(Job job);

  /// Blocks for the next job; nullopt once the queue is closed AND
  /// empty (the worker-exit signal).
  std::optional<Job> pop();

  /// Non-blocking pop, used by the forced drain to discard queued jobs
  /// (each gets a `cancelled` record); nullopt when currently empty.
  std::optional<Job> try_pop();

  /// Stops admission and wakes every blocked pop; idempotent.  Queued
  /// jobs remain poppable.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t depth() const noexcept { return depth_; }

 private:
  const std::size_t depth_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

}  // namespace service
}  // namespace opindyn

#endif  // OPINDYN_SERVICE_JOB_QUEUE_H
