#include "src/service/job_queue.h"

#include <utility>

#include "src/support/assert.h"

namespace opindyn {
namespace service {

JobQueue::JobQueue(std::size_t depth) : depth_(depth) {
  OPINDYN_EXPECTS(depth >= 1, "job queue needs depth >= 1");
}

JobQueue::Push JobQueue::try_push(Job job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Push::closed;
    }
    if (jobs_.size() >= depth_) {
      return Push::full;
    }
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return Push::accepted;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) {
    return std::nullopt;
  }
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

std::optional<Job> JobQueue::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (jobs_.empty()) {
    return std::nullopt;
  }
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool JobQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace service
}  // namespace opindyn
