// opindyn serve: a long-running job-stream service over the shared
// scheduler and the process-lifetime caches.
//
// Protocol (schema "opindyn-serve-v1", one JSON record per line):
//   client -> server   one job per line, either the spec grammar
//                      ("scenario=node n=1024 replicas=8 ...") or a flat
//                      JSON object with the same keys; `deadline_ms` is
//                      a serve-layer envelope key, not a spec key.
//   server -> client   {"event":"ready",...} once per session, then one
//                      record per job in COMPLETION order:
//                        {"job":N,"status":"ok",...}
//                        {"job":N,"status":"error","error":"..."}
//                        {"job":N,"status":"rejected","reason":"..."}
//                        {"job":N,"status":"cancelled","reason":"..."}
//                      and a final {"event":"shutdown",...} summary.
//
// Design invariants the tests pin down:
//   * fault isolation -- a malformed or throwing job yields exactly one
//     `error` record; the server and every other in-flight job proceed.
//   * determinism -- an `ok` job's output files are byte-identical to
//     the one-shot CLI at any thread count (shared scheduler included).
//   * bounded admission -- a full queue answers `rejected` immediately
//     (explicit backpressure) instead of buffering without limit.
//   * cooperative deadlines -- `deadline_ms` counts from admission and
//     cancels between kernel bursts only: a cancelled job reports
//     `cancelled` and writes no partial golden bytes.
//   * graceful drain -- SIGTERM/SIGINT stops admission, finishes or
//     cancels in-flight jobs within the drain timeout, flushes sinks
//     and emits the shutdown summary.
//
// This file (with job_queue) is the only service layer allowed to read
// clocks; tokens/specs below it stay clock-free (opindyn-lint enforces
// the split).
#ifndef OPINDYN_SERVICE_SERVER_H
#define OPINDYN_SERVICE_SERVER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/support/cache_limits.h"

namespace opindyn {
namespace service {

/// Upper bound on any deadline_ms (about a century).  Keeps the
/// admission-time stamp `now_us() + deadline_ms * 1000` far from int64
/// overflow, where a huge client-supplied deadline would wrap negative
/// (signed-overflow UB) and silently disable itself.
inline constexpr std::int64_t kMaxDeadlineMs =
    std::int64_t{86'400'000} * 365 * 100;

struct ServeOptions {
  /// Admission queue depth; a push beyond it is rejected with a record,
  /// never buffered.
  std::size_t queue_depth = 16;
  /// Concurrent jobs (worker threads popping the queue).
  std::size_t job_workers = 2;
  /// Simulation pool size shared by every job; 0 = hardware threads.
  /// A job's own threads= key is ignored (the shared pool wins; the
  /// output bytes are identical either way).
  std::size_t threads = 0;
  /// After a shutdown request, how long in-flight and queued jobs get
  /// to finish before they are cancelled; < 0 waits forever.
  std::int64_t drain_timeout_ms = 5000;
  /// Deadline applied to jobs that do not carry deadline_ms; 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// Process-lifetime cache bounds (0 = unlimited); see CacheLimits.
  CacheLimits graph_cache_limits{64, 256ull << 20};
  CacheLimits spectrum_cache_limits{64, 64ull << 20};
  /// Unix socket path for serve_socket().
  std::string socket_path;
  /// Latest signal number received (written by the CLI's SIGTERM/SIGINT
  /// handlers); the serve loops poll it and start the drain when it
  /// becomes non-zero.  nullptr = only request_shutdown() stops us.
  const std::atomic<int>* signal_flag = nullptr;
};

/// The service: owns the bounded caches, the shared CellScheduler, the
/// admission queue, the job workers and the deadline monitor.  One
/// instance per process; sessions (stdin, a stream pair, or socket
/// connections) borrow it serially, so caches stay warm across clients.
class JobStreamService {
 public:
  explicit JobStreamService(ServeOptions options);
  ~JobStreamService();

  JobStreamService(const JobStreamService&) = delete;
  JobStreamService& operator=(const JobStreamService&) = delete;

  /// Runs one full session over a stream pair and shuts the service
  /// down at EOF (or at request_shutdown from another thread).  Returns
  /// the process exit code.  Used by tests and by pipes.
  int serve_stream(std::istream& in, std::ostream& out);

  /// As serve_stream over fd 0 / stdout, but poll()-driven so a signal
  /// arriving while idle is noticed within ~100 ms.
  int serve_stdin();

  /// Listens on options.socket_path and serves connections one at a
  /// time until a shutdown request; each connection is a session (ready
  /// record, job records, and on the final connection the summary).
  int serve_socket();

  /// Starts the same drain a SIGTERM would; `reason` must outlive the
  /// service (string literals).  Safe from any thread, NOT from signal
  /// handlers (those should write ServeOptions::signal_flag instead).
  void request_shutdown(const char* reason);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace service
}  // namespace opindyn

#endif  // OPINDYN_SERVICE_SERVER_H
