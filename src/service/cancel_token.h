// Cooperative cancellation for long-running jobs.  A CancelToken is a
// one-shot latch flipped by a controller (deadline monitor, signal
// handler, drain logic) and *polled* by the work it governs -- nothing
// is ever interrupted mid-computation.  The engine polls at two seams
// only: the CellScheduler checks before starting each replica unit, and
// run_until_converged checks between step bursts (the burst kernels'
// existing chunk-countdown boundary).  Both sit outside the per-step
// hot path, and because a burst either runs to completion or not at
// all, a cancelled job never produces bytes that differ from a prefix
// of the uncancelled run -- bit-identity is preserved by construction.
//
// The token is plumbed ambiently: a CancelScope installs it in a
// thread_local slot (mirroring MetricsScope), the scheduler captures
// the submitting thread's token at submit() and re-installs it around
// each unit, and library code polls via the free functions below
// without any signature changes.
//
// This header is dependency-free on purpose: core/ and support/ include
// it even though it lives in src/service/.
#ifndef OPINDYN_SERVICE_CANCEL_TOKEN_H
#define OPINDYN_SERVICE_CANCEL_TOKEN_H

#include <atomic>
#include <stdexcept>
#include <string>

namespace opindyn {

/// One-shot cancellation latch.  cancel() is async-signal-safe (a
/// single atomic store), so a SIGINT handler may call it directly; the
/// first cancel wins and its reason sticks.
class CancelToken {
 public:
  /// Requests cancellation.  `reason` must have static storage duration
  /// (string literals only): pollers read the pointer lock-free, and a
  /// signal handler cannot allocate.
  void cancel(const char* reason = "cancelled") noexcept {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    return reason_.load(std::memory_order_acquire) != nullptr;
  }

  /// The first cancel()'s reason, or nullptr while not cancelled.
  const char* reason() const noexcept {
    return reason_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<const char*> reason_{nullptr};
};

/// Thrown by cancel::poll() when the ambient token is cancelled.  The
/// scheduler's unit-failure capture carries it to the folding thread,
/// where the runner turns it into an interrupted (not failed) batch.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const char* reason)
      : std::runtime_error(std::string("cancelled: ") + reason),
        reason_(reason) {}

  /// The token's static reason string.
  const char* reason() const noexcept { return reason_; }

 private:
  const char* reason_;
};

/// Installs `token` as the calling thread's ambient cancel token for
/// the scope's lifetime (restores the previous one on destruction).  A
/// nullptr token is a no-op install: the enclosing scope's token stays
/// active, so callers can pass through an optional token unconditionally.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
  bool installed_;
};

namespace cancel {

/// The calling thread's ambient token (nullptr outside any CancelScope).
const CancelToken* current() noexcept;

/// True iff an ambient token exists and is cancelled.  A thread_local
/// load and a branch -- cheap enough for per-burst polling.
bool requested() noexcept;

/// Throws CancelledError if requested(); otherwise returns.
void poll();

}  // namespace cancel

}  // namespace opindyn

#endif  // OPINDYN_SERVICE_CANCEL_TOKEN_H
