#include "src/service/server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/engine/experiment_spec.h"
#include "src/engine/runner.h"
#include "src/engine/sinks.h"
#include "src/graph/graph_cache.h"
#include "src/service/cancel_token.h"
#include "src/service/job_queue.h"
#include "src/spectral/spectrum_cache.h"
#include "src/support/cell_scheduler.h"
#include "src/support/cli.h"
#include "src/support/json.h"

namespace opindyn {
namespace service {
namespace {

std::string trimmed(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return std::string();
  }
  const std::size_t last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

/// Flattens one JSON scalar into the spec grammar's string form; the
/// job line {"n":1024,"lazy":true} means exactly `n=1024 lazy=true`.
std::string scalar_to_string(const std::string& key,
                             const json::Value& value) {
  switch (value.kind()) {
    case json::Kind::string:
      return value.as_string();
    case json::Kind::boolean:
      return value.as_bool() ? "true" : "false";
    case json::Kind::integer:
      return std::to_string(value.as_int());
    case json::Kind::number:
      return value.dump();
    default:
      throw std::runtime_error("job key '" + key +
                               "' must be a scalar (string, number or "
                               "bool)");
  }
}

/// Parses one job line (spec grammar or flat JSON object) into the
/// key->value map parse_spec consumes.  Pulls the serve-layer
/// `deadline_ms` envelope key out into *deadline_ms.  Throws
/// std::runtime_error on anything malformed.
std::map<std::string, std::string> parse_job_line(
    const std::string& line, std::int64_t* deadline_ms) {
  std::map<std::string, std::string> kv;
  if (line.front() == '{') {
    const json::Value value = json::parse(line);
    if (!value.is_object()) {
      throw std::runtime_error("job JSON must be an object");
    }
    for (const auto& [key, member] : value.as_object()) {
      kv[key] = scalar_to_string(key, member);
    }
  } else {
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::runtime_error("expected key=value tokens or a JSON "
                                 "object, got '" + token + "'");
      }
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  const auto envelope = kv.find("deadline_ms");
  if (envelope != kv.end()) {
    const std::int64_t parsed =
        parse_int_value("job key 'deadline_ms'", envelope->second);
    if (parsed < 0 || parsed > kMaxDeadlineMs) {
      throw std::runtime_error("job key 'deadline_ms' must be in [0, " +
                               std::to_string(kMaxDeadlineMs) + "]");
    }
    *deadline_ms = parsed;
    kv.erase(envelope);
  }
  return kv;
}

/// Blocking line source for serve_stream (tests, pipes).
class StreamLineSource {
 public:
  explicit StreamLineSource(std::istream& in) : in_(in) {}

  enum class Status { line, eof, tick };

  Status next(std::string* line) {
    if (std::getline(in_, *line)) {
      return Status::line;
    }
    return Status::eof;
  }

 private:
  std::istream& in_;
};

/// poll()-driven line source over a file descriptor: returns `tick`
/// every ~100 ms of idleness so the session loop can notice a signal
/// between lines instead of blocking in read().
class FdLineSource {
 public:
  explicit FdLineSource(int fd) : fd_(fd) {}

  using Status = StreamLineSource::Status;

  Status next(std::string* line) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return Status::line;
      }
      if (saw_eof_) {
        if (!buffer_.empty()) {
          // Final unterminated line.
          line->assign(buffer_);
          buffer_.clear();
          return Status::line;
        }
        return Status::eof;
      }
      pollfd poller{};
      poller.fd = fd_;
      poller.events = POLLIN;
      const int ready = ::poll(&poller, 1, 100);
      if (ready == 0) {
        return Status::tick;
      }
      if (ready < 0) {
        if (errno == EINTR) {
          return Status::tick;
        }
        throw std::runtime_error(std::string("poll(): ") +
                                 std::strerror(errno));
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw std::runtime_error(std::string("read(): ") +
                                 std::strerror(errno));
      }
      if (got == 0) {
        saw_eof_ = true;
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  bool saw_eof_ = false;
};

/// Writes the whole buffer; `is_socket` uses send(MSG_NOSIGNAL) so a
/// vanished client surfaces as EPIPE even without the CLI's SIGPIPE
/// disposition (cmd_serve additionally ignores SIGPIPE process-wide,
/// which is what protects the plain-pipe stdout path).
void write_all(int fd, const std::string& text, bool is_socket = false) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t put =
        is_socket ? ::send(fd, text.data() + written,
                           text.size() - written, MSG_NOSIGNAL)
                  : ::write(fd, text.data() + written,
                            text.size() - written);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      // A vanished client (EPIPE) must not kill the server; the drain
      // still runs, the records just have nowhere to go.
      return;
    }
    written += static_cast<std::size_t>(put);
  }
}

}  // namespace

struct JobStreamService::Impl {
  using Clock = std::chrono::steady_clock;

  ServeOptions options;
  GraphCache graph_cache;
  SpectrumCache spectrum_cache;
  CellScheduler scheduler;
  JobQueue queue;
  const Clock::time_point epoch;

  // One record per line; the mutex keeps worker records, admission
  // rejections and the summary from interleaving mid-line.
  std::mutex write_mutex;
  std::function<void(const std::string&)> write_line;

  // Admission / completion state.
  struct ActiveJob {
    std::shared_ptr<CancelToken> token;
    std::int64_t deadline_us = -1;
  };
  std::mutex state_mutex;
  std::condition_variable idle_cv;
  std::map<std::int64_t, ActiveJob> active;  // admitted, not yet recorded
  std::int64_t outstanding = 0;
  std::int64_t next_job_id = 0;
  std::int64_t admitted = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;

  std::atomic<bool> shutdown{false};
  const char* shutdown_reason = "eof";  // guarded by state_mutex

  std::vector<std::thread> workers;
  std::thread monitor;
  std::atomic<bool> stop_monitor{false};

  explicit Impl(ServeOptions opts)
      : options(std::move(opts)),
        graph_cache(options.graph_cache_limits),
        spectrum_cache(options.spectrum_cache_limits),
        scheduler(options.threads),
        queue(options.queue_depth == 0 ? 1 : options.queue_depth),
        epoch(Clock::now()) {
    write_line = [](const std::string&) {};
    const std::size_t worker_count =
        options.job_workers == 0 ? 1 : options.job_workers;
    workers.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
    monitor = std::thread([this] { monitor_loop(); });
  }

  ~Impl() {
    queue.close();
    for (std::thread& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    stop_monitor.store(true, std::memory_order_relaxed);
    if (monitor.joinable()) {
      monitor.join();
    }
  }

  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch)
        .count();
  }

  // ---- output ----------------------------------------------------

  void emit(const json::Value& record) {
    const std::string line = record.dump();
    const std::lock_guard<std::mutex> lock(write_mutex);
    write_line(line);
  }

  void set_writer(std::function<void(const std::string&)> writer) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    write_line = std::move(writer);
  }

  json::Value cache_summary() const {
    // The reserve() calls below (and in every other record builder
    // here) keep GCC 12's -Warray-bounds from false-firing on
    // emplace_back growth from an empty Object under -Werror.
    json::Object graph;
    graph.reserve(4);
    graph.emplace_back("hits", graph_cache.hits());
    graph.emplace_back("misses", graph_cache.misses());
    graph.emplace_back("evictions", graph_cache.evictions());
    graph.emplace_back("resident_bytes", graph_cache.resident_bytes());
    json::Object spectrum;
    spectrum.reserve(6);
    spectrum.emplace_back("record_hits", spectrum_cache.hits());
    spectrum.emplace_back("record_misses", spectrum_cache.misses());
    spectrum.emplace_back("eigensolves", spectrum_cache.eigensolves());
    spectrum.emplace_back("spectrum_hits",
                          spectrum_cache.spectrum_hits());
    spectrum.emplace_back("evictions", spectrum_cache.evictions());
    spectrum.emplace_back("resident_bytes",
                          spectrum_cache.resident_bytes());
    json::Object caches;
    caches.reserve(2);
    caches.emplace_back("graph", std::move(graph));
    caches.emplace_back("spectrum", std::move(spectrum));
    return json::Value(std::move(caches));
  }

  void emit_ready() {
    json::Object ready;
    ready.reserve(5);
    ready.emplace_back("event", "ready");
    ready.emplace_back("schema", "opindyn-serve-v1");
    ready.emplace_back("queue_depth", queue.depth());
    ready.emplace_back("job_workers", workers.size());
    ready.emplace_back("threads", scheduler.threads());
    emit(json::Value(std::move(ready)));
  }

  void emit_summary(const char* reason, bool drained) {
    json::Object summary;
    summary.reserve(9);
    summary.emplace_back("event", "shutdown");
    summary.emplace_back("reason", reason);
    summary.emplace_back("admitted", admitted);
    summary.emplace_back("ok", ok);
    summary.emplace_back("errors", errors);
    summary.emplace_back("cancelled", cancelled);
    summary.emplace_back("rejected", rejected);
    summary.emplace_back("drained", drained);
    summary.emplace_back("caches", cache_summary());
    emit(json::Value(std::move(summary)));
  }

  // ---- shutdown signalling ---------------------------------------

  void request_shutdown(const char* reason) {
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      if (!shutdown.load(std::memory_order_relaxed)) {
        shutdown_reason = reason;
      }
      shutdown.store(true, std::memory_order_release);
    }
    // A drain already waiting for jobs must notice the switch from
    // "wait forever" (EOF) to "bounded grace" (shutdown) semantics.
    idle_cv.notify_all();
  }

  /// Latches a pending signal into a shutdown request; true once a
  /// shutdown (signal or request_shutdown) is in effect.
  bool shutdown_requested() {
    if (options.signal_flag != nullptr) {
      const int signo =
          options.signal_flag->load(std::memory_order_relaxed);
      if (signo != 0 && !shutdown.load(std::memory_order_acquire)) {
        request_shutdown(signo == SIGINT ? "SIGINT" : "SIGTERM");
      }
    }
    return shutdown.load(std::memory_order_acquire);
  }

  const char* reason_now() {
    const std::lock_guard<std::mutex> lock(state_mutex);
    return shutdown_reason;
  }

  /// 128+signo when the session ended on a latched SIGTERM/SIGINT --
  /// the same convention as an interrupted `opindyn run` -- so
  /// supervisors can tell a signal-driven drain from a clean EOF.
  /// Programmatic request_shutdown() stays 0: it is the API's own
  /// graceful stop, not an outside interruption.
  int exit_code() const {
    if (options.signal_flag != nullptr) {
      const int signo =
          options.signal_flag->load(std::memory_order_relaxed);
      if (signo != 0) {
        return 128 + signo;
      }
    }
    return 0;
  }

  // ---- admission --------------------------------------------------

  void admit_line(const std::string& raw) {
    const std::string line = trimmed(raw);
    if (line.empty() || line[0] == '#') {
      return;
    }
    const std::int64_t id = ++next_job_id;
    Job job;
    job.id = id;
    // The CLI validates --deadline-ms, but ServeOptions is a public
    // struct: clamp here so no caller can hand us an overflowing stamp.
    std::int64_t deadline_ms =
        std::min(options.default_deadline_ms, kMaxDeadlineMs);
    try {
      const auto kv = parse_job_line(line, &deadline_ms);
      job.spec = engine::parse_spec(kv);
      if (!job.spec.metrics_json_path.empty() ||
          !job.spec.trace_json_path.empty()) {
        throw std::runtime_error(
            "metrics-json/trace-json are not available in serve mode "
            "(per-job metrics would interleave on the shared "
            "scheduler); use the one-shot CLI for traced runs");
      }
    } catch (const std::exception& error) {
      json::Object record;
      record.reserve(4);
      record.emplace_back("job", id);
      record.emplace_back("status", "error");
      record.emplace_back("error", error.what());
      {
        const std::lock_guard<std::mutex> lock(state_mutex);
        ++errors;
      }
      emit(json::Value(std::move(record)));
      return;
    }
    // A job line never prints a table: stdout carries records only.
    job.spec.print_table = false;
    job.token = std::make_shared<CancelToken>();
    if (deadline_ms > 0) {
      // Stamped at admission: time spent queued counts against the
      // deadline, so a job stuck behind slow work still times out.
      job.deadline_us = now_us() + deadline_ms * 1000;
    }
    const std::shared_ptr<CancelToken> token = job.token;
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      active.emplace(id, ActiveJob{token, job.deadline_us});
      ++outstanding;
    }
    const JobQueue::Push push = queue.try_push(std::move(job));
    if (push == JobQueue::Push::accepted) {
      const std::lock_guard<std::mutex> lock(state_mutex);
      ++admitted;
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      active.erase(id);
      --outstanding;
      ++rejected;
    }
    idle_cv.notify_all();
    json::Object record;
    record.reserve(3);
    record.emplace_back("job", id);
    record.emplace_back("status", "rejected");
    record.emplace_back(
        "reason",
        push == JobQueue::Push::full
            ? "queue full (depth " + std::to_string(queue.depth()) + ")"
            : std::string("server draining"));
    emit(json::Value(std::move(record)));
  }

  // ---- execution --------------------------------------------------

  void worker_loop() {
    while (std::optional<Job> job = queue.pop()) {
      execute(*job);
    }
  }

  void execute(const Job& job) {
    const Clock::time_point started = Clock::now();
    json::Object record;
    record.reserve(8);
    record.emplace_back("job", job.id);
    try {
      if (job.token->cancelled()) {
        // Deadline or drain hit while the job sat in the queue.
        throw CancelledError(job.token->reason());
      }
      std::optional<engine::CsvSink> csv;
      std::optional<engine::CsvSink> rows_csv;
      std::optional<engine::HistogramSink> histogram;
      std::vector<engine::RowSink*> sinks;
      std::vector<engine::RowSink*> row_sinks;
      if (!job.spec.csv_path.empty()) {
        csv.emplace(job.spec.csv_path);
        sinks.push_back(&*csv);
      }
      if (!job.spec.rows_csv_path.empty()) {
        rows_csv.emplace(job.spec.rows_csv_path);
        row_sinks.push_back(&*rows_csv);
      }
      if (!job.spec.hist_csv_path.empty() ||
          !job.spec.hist_column.empty() || !job.spec.quantiles.empty()) {
        engine::HistogramSink::Options hist_options;
        hist_options.column = job.spec.hist_column;
        hist_options.bins = job.spec.hist_bins;
        hist_options.quantiles = job.spec.quantiles;
        hist_options.csv_path = job.spec.hist_csv_path;
        hist_options.summary_out = nullptr;  // records only on stdout
        histogram.emplace(std::move(hist_options));
        row_sinks.push_back(&*histogram);
      }
      engine::RunContext context;
      context.scheduler = &scheduler;
      context.graph_cache = &graph_cache;
      context.spectrum_cache = &spectrum_cache;
      context.cancel = job.token.get();
      const engine::BatchResult result =
          engine::run_experiment(job.spec, sinks, row_sinks, context);
      const double wall_ms =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - started)
                  .count()) /
          1000.0;
      if (result.interrupted) {
        record.emplace_back("status", "cancelled");
        record.emplace_back("reason", result.interrupt_reason);
        record.emplace_back("wall_ms", wall_ms);
        finish_job(job.id, std::move(record), &cancelled);
        return;
      }
      record.emplace_back("status", "ok");
      record.emplace_back("scenario", job.spec.scenario);
      record.emplace_back("rows", result.rows.size());
      record.emplace_back("replica_rows", result.replica_rows.size());
      record.emplace_back("work_items", result.work_items);
      record.emplace_back("wall_ms", wall_ms);
      json::Object cache;
      cache.reserve(3);
      cache.emplace_back("graph_hits", result.graph_cache_hits);
      cache.emplace_back("graph_builds", result.graphs_built);
      cache.emplace_back("eigensolves", result.spectra_solved);
      record.emplace_back("cache", std::move(cache));
      finish_job(job.id, std::move(record), &ok);
    } catch (const CancelledError& error) {
      record.emplace_back("status", "cancelled");
      record.emplace_back("reason", error.reason());
      finish_job(job.id, std::move(record), &cancelled);
    } catch (const std::exception& error) {
      // Fault isolation: the job failed, the server did not.
      record.emplace_back("status", "error");
      record.emplace_back("error", error.what());
      finish_job(job.id, std::move(record), &errors);
    }
  }

  /// Emits the job's record, then retires it.  Record before retire:
  /// the drain waits for outstanding == 0, so this order guarantees the
  /// shutdown summary is the last record on the stream.
  void finish_job(std::int64_t id, json::Object record,
                  std::int64_t* counter) {
    emit(json::Value(std::move(record)));
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      active.erase(id);
      --outstanding;
      ++*counter;
    }
    idle_cv.notify_all();
  }

  // ---- deadline monitor -------------------------------------------

  void monitor_loop() {
    while (!stop_monitor.load(std::memory_order_relaxed)) {
      // Latch a pending SIGTERM/SIGINT into a shutdown request even
      // when no session loop is polling (e.g. mid-drain after EOF).
      shutdown_requested();
      {
        const std::lock_guard<std::mutex> lock(state_mutex);
        const std::int64_t now = now_us();
        for (auto& [id, entry] : active) {
          if (entry.deadline_us >= 0 && now >= entry.deadline_us) {
            entry.token->cancel("deadline_ms exceeded");
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // ---- drain ------------------------------------------------------

  /// Stops admission and waits for in-flight + queued jobs.  After EOF
  /// the wait is unbounded (every job gets its full time); once a
  /// shutdown is requested -- before the drain or while it waits -- the
  /// wait becomes the drain_timeout_ms grace period, after which queued
  /// jobs are discarded (each with a `cancelled` record) and running
  /// jobs are cancelled cooperatively.  Returns true when everything
  /// finished without hitting the timeout.
  bool drain() {
    queue.close();
    bool drained = true;
    {
      std::unique_lock<std::mutex> lock(state_mutex);
      const auto idle = [this] { return outstanding == 0; };
      // Phase 1: unbounded, but interruptible by a shutdown request
      // (request_shutdown notifies idle_cv; the monitor thread latches
      // signals into requests).
      idle_cv.wait(lock, [this] {
        return outstanding == 0 ||
               shutdown.load(std::memory_order_acquire);
      });
      if (!idle()) {
        // Phase 2: shutdown grace period.
        if (options.drain_timeout_ms >= 0) {
          drained = idle_cv.wait_for(
              lock, std::chrono::milliseconds(options.drain_timeout_ms),
              idle);
        } else {
          idle_cv.wait(lock, idle);
        }
      }
    }
    if (drained) {
      return true;
    }
    // Timeout: discard what never started, cancel what is running.
    while (std::optional<Job> job = queue.try_pop()) {
      job->token->cancel("shutdown drain");
      json::Object record;
      record.reserve(4);
      record.emplace_back("job", job->id);
      record.emplace_back("status", "cancelled");
      record.emplace_back("reason", "shutdown drain");
      finish_job(job->id, std::move(record), &cancelled);
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex);
      for (auto& [id, entry] : active) {
        entry.token->cancel("shutdown drain");
      }
    }
    // Cancellation is cooperative at burst boundaries, so this wait is
    // short and unbounded on purpose: workers must not outlive the
    // writer the records go to.
    std::unique_lock<std::mutex> lock(state_mutex);
    idle_cv.wait(lock, [this] { return outstanding == 0; });
    return false;
  }

  // ---- sessions ---------------------------------------------------

  template <typename Source>
  void read_loop(Source& source) {
    std::string line;
    for (;;) {
      if (shutdown_requested()) {
        return;
      }
      const auto status = source.next(&line);
      if (status == StreamLineSource::Status::tick) {
        continue;
      }
      if (status == StreamLineSource::Status::eof) {
        return;
      }
      admit_line(line);
    }
  }

  template <typename Source>
  int serve_session(Source& source) {
    emit_ready();
    read_loop(source);
    const bool drained = drain();
    // Re-check AFTER the drain: a shutdown that arrived while waiting
    // for jobs names the summary too.
    const bool forced = shutdown_requested();
    emit_summary(forced ? reason_now() : "eof", drained);
    return exit_code();
  }
};

JobStreamService::JobStreamService(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

JobStreamService::~JobStreamService() = default;

void JobStreamService::request_shutdown(const char* reason) {
  impl_->request_shutdown(reason);
}

int JobStreamService::serve_stream(std::istream& in, std::ostream& out) {
  impl_->set_writer([&out](const std::string& line) {
    out << line << '\n';
    out.flush();
  });
  StreamLineSource source(in);
  return impl_->serve_session(source);
}

int JobStreamService::serve_stdin() {
  impl_->set_writer(
      [](const std::string& line) { write_all(1, line + "\n"); });
  FdLineSource source(0);
  return impl_->serve_session(source);
}

int JobStreamService::serve_socket() {
  const std::string& path = impl_->options.socket_path;
  if (path.empty()) {
    throw std::runtime_error("serve_socket needs a socket path");
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0 ||
      ::listen(listener, 4) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error("bind/listen on '" + path + "': " + detail);
  }
  while (!impl_->shutdown_requested()) {
    pollfd poller{};
    poller.fd = listener;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, 100);
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check the shutdown flag
    }
    const int connection = ::accept(listener, nullptr, nullptr);
    if (connection < 0) {
      continue;
    }
    impl_->set_writer([connection](const std::string& line) {
      write_all(connection, line + "\n", /*is_socket=*/true);
    });
    impl_->emit_ready();
    FdLineSource source(connection);
    impl_->read_loop(source);
    if (!impl_->shutdown_requested()) {
      // Connection EOF: wait for its jobs so every record reaches this
      // client (a shutdown arriving mid-wait breaks out to the drain).
      std::unique_lock<std::mutex> lock(impl_->state_mutex);
      impl_->idle_cv.wait(lock, [this] {
        return impl_->outstanding == 0 ||
               impl_->shutdown.load(std::memory_order_acquire);
      });
    }
    if (impl_->shutdown_requested()) {
      // Final connection: full drain + summary, then stop serving.
      const bool drained = impl_->drain();
      impl_->emit_summary(impl_->reason_now(), drained);
      ::close(connection);
      break;
    }
    ::close(connection);
    impl_->set_writer([](const std::string&) {});
  }
  ::close(listener);
  ::unlink(path.c_str());
  return impl_->exit_code();
}

}  // namespace service
}  // namespace opindyn
