// The one CLI in front of the scenario engine:
//
//   opindyn list
//   opindyn describe --scenario=node_vs_edge
//   opindyn run --scenario=node_vs_edge --graph=cycle --n=1024
//       --sweep=k:1,2,4,8 --replicas=100 --csv=out.csv
//   opindyn run --spec=experiment.spec [flag overrides]
//
// `run` accepts every spec key as a --key=value flag (see `opindyn help`)
// or a spec file of key=value lines; flags override the file.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>

#include "src/engine/runner.h"
#include "src/service/cancel_token.h"
#include "src/service/server.h"
#include "src/support/build_info.h"
#include "src/support/cli.h"

namespace {

using namespace opindyn;
using namespace opindyn::engine;

// Signal plumbing.  Handlers may only touch lock-free atomics:
//  - one-shot `run` cancels its batch token (a single CAS; the runner
//    notices at the next unit/burst boundary, flushes the row prefix
//    and exits 128+signo), and
//  - `serve` records the signo; the serve loops poll it and start the
//    graceful drain.
opindyn::CancelToken g_run_token;
std::atomic<int> g_signal{0};

void handle_run_signal(int signo) {
  g_run_token.cancel(signo == SIGINT ? "SIGINT" : "SIGTERM");
  g_signal.store(signo, std::memory_order_relaxed);
}

void handle_serve_signal(int signo) {
  g_signal.store(signo, std::memory_order_relaxed);
}

int cmd_help() {
  std::cout <<
      R"(opindyn -- scenario engine for the distributed-averaging experiments

usage:
  opindyn list                         show registered scenarios
  opindyn describe --scenario=<name>   show one scenario and its columns
  opindyn run [--spec=<file>] [--key=value ...]
                                       run a scenario batch
  opindyn serve [serve flags]          job-stream service: read one job
                                       per line (spec grammar or JSON)
                                       from stdin or --socket, emit one
                                       JSON record per job (see README
                                       "Service mode")
  opindyn version                      build info (git hash, compiler,
                                       flags); also --version
  opindyn help                         this text

run flags (every spec key; flags override --spec file entries):
  --scenario=<name>      which scenario to run          (default node)
  --graph=<family>       cycle|complete|torus|hypercube|star|...
  --n=<int>              graph size                     (default 64)
  --degree, --attach, --p, --graph-seed   family-specific knobs
  --init=<dist>          rademacher|uniform|gaussian|constant|spike|...
  --init-a, --init-b, --init-seed, --center=plain|degree|none
  --model=<kind>         node|edge|voter|gossip|degroot|friedkin_johnsen|
                         weighted_median|hegselmann_krause; honoured
                         verbatim by cross_model (sweepable there),
                         forced by the single-model scenarios
  --alpha=<f>            self-weight of the update      (default 0.5)
  --confidence=<f>       HK confidence bound (hegselmann_krause only)
  --k=<int>              sampled neighbours (node, weighted_median)
                                                        (default 1)
  --lazy=<bool>          fair-coin no-op steps
  --sampling=without|with  neighbour sampling mode
  --replicas=<int>       Monte-Carlo replicas per item  (default 100)
  --seed=<int>           base seed (replica r forks stream r)
  --threads=<int>        worker threads; every (cell x replica) unit of
                         the sweep grid is scheduled over one pool and
                         results are bit-identical for every value
                                                        (default all)
  --eps, --max-steps, --check-interval, --plain-potential
  --horizon=<int>        step horizon for trajectory scenarios (0 = 16n)
  --sweep=key:v1,v2;key2:w1,w2   cartesian sweep grid
  --csv=<path>           also write aggregate rows as CSV
  --rows-csv=<path>      write streamed per-replica rows as CSV
                         (scenarios with row columns: whp_tail,
                         trajectory, thm22_variance, ...)
  --hist-csv=<path>      bin one numeric streamed column into an
                         equal-width histogram CSV (bin_lo,bin_hi,count)
  --hist-column=<name>   which streamed column to bin (default: last);
                         on its own it still prints the summary line
  --hist-bins=<int>      histogram bin count            (default 20)
  --quantiles=q1,q2,...  print exact order-statistic quantiles of the
                         selected streamed column (each q in [0,1])
  --metrics-json=<path>  write a JSON run report: spec echo, build info,
                         counters (steps, cache hits), per-cell timing
                         table, steps/sec, peak RSS
  --trace-json=<path>    write a Chrome trace-event file of the batch
                         (open in Perfetto / chrome://tracing)
  --table=<bool>         print the markdown table       (default true)

serve flags:
  --queue=<int>          admission queue depth; beyond it jobs get an
                         explicit "rejected" record    (default 16)
  --job-workers=<int>    concurrent jobs                (default 2)
  --threads=<int>        shared simulation pool         (default all)
  --drain-timeout-ms=<int>  grace period for in-flight jobs after
                         SIGTERM/SIGINT before cooperative cancellation
                         (<0 = wait forever)            (default 5000)
  --deadline-ms=<int>    default per-job deadline, counted from
                         admission; jobs override with deadline_ms=
                         (0 = none)
  --graph-cache-entries / --graph-cache-mb
  --spectrum-cache-entries / --spectrum-cache-mb
                         LRU bounds of the process-lifetime caches
  --socket=<path>        listen on a unix socket instead of stdin

examples:
  opindyn run --scenario=node_vs_edge --graph=cycle --n=1024 --sweep=k:1,2,4,8
  opindyn run --scenario=cross_model --graph=cycle --n=64 \
      --sweep=model:node,edge,voter,weighted_median
  opindyn run --scenario=gossip_vs_unilateral --graph=complete --n=16 \
      --replicas=4000 --eps=1e-13
  opindyn run --scenario=whp_tail --graph=cycle --n=24 --replicas=400 \
      --eps=1e-8 --rows-csv=tail.csv
  opindyn run --scenario=thm22_variance --graph=complete --n=16 \
      --replicas=4000 --eps=1e-13 --hist-csv=f.csv --quantiles=0.5,0.9,0.99
)";
  return 0;
}

int cmd_list() {
  register_builtin_scenarios();
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const std::string& name : registry.names()) {
    std::cout << name << "\n    " << registry.get(name).description()
              << "\n";
  }
  return 0;
}

int cmd_describe(const CliArgs& args) {
  register_builtin_scenarios();
  const std::string name = args.get("scenario", std::string{});
  if (name.empty()) {
    std::cerr << "describe: missing --scenario=<name>\n";
    return 2;
  }
  const Scenario& scenario = ScenarioRegistry::instance().get(name);
  std::cout << scenario.name() << ": " << scenario.description() << "\n";
  std::cout << "result columns:";
  for (const std::string& column : scenario.columns()) {
    std::cout << " [" << column << "]";
  }
  std::cout << "\n";
  const std::vector<std::string> row_columns = scenario.row_columns();
  if (!row_columns.empty()) {
    std::cout << "streamed per-replica columns (--rows-csv):";
    for (const std::string& column : row_columns) {
      std::cout << " [" << column << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_run(const CliArgs& args) {
  // Reject typo'd flags: a misspelled --replicas would otherwise
  // silently run with the default.
  const std::vector<std::string> known = spec_keys();
  for (const std::string& name : args.option_names()) {
    if (name != "spec" && name != "help" &&
        std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::runtime_error("unknown flag '--" + name +
                               "' (see: opindyn help)");
    }
  }
  const ExperimentSpec spec = parse_spec(args);
  // Ctrl-C / SIGTERM cancel cooperatively: sinks flush the completed
  // cell prefix, --metrics-json is still written (marked
  // "interrupted": true), and we exit 128+signo like an interrupted
  // shell pipeline would.
  std::signal(SIGINT, handle_run_signal);
  std::signal(SIGTERM, handle_run_signal);
  RunContext context;
  context.cancel = &g_run_token;
  const BatchResult result =
      run_experiment_with_default_sinks(spec, context);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (result.interrupted) {
    std::cerr << "opindyn: interrupted (" << result.interrupt_reason
              << "); flushed " << result.rows.size()
              << " aggregate rows before stopping\n";
    const int signo = g_signal.load(std::memory_order_relaxed);
    return 128 + (signo != 0 ? signo : SIGINT);
  }
  if (!spec.print_table && spec.csv_path.empty() &&
      spec.hist_csv_path.empty() && spec.hist_column.empty() &&
      spec.quantiles.empty()) {
    std::cout << result.rows.size() << " rows (no sink configured)\n";
  }
  return 0;
}

int cmd_serve(const CliArgs& args) {
  static const std::vector<std::string> known = {
      "queue",          "job-workers",
      "threads",        "drain-timeout-ms",
      "deadline-ms",    "graph-cache-entries",
      "graph-cache-mb", "spectrum-cache-entries",
      "spectrum-cache-mb", "socket"};
  for (const std::string& name : args.option_names()) {
    if (name != "help" &&
        std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::runtime_error("unknown serve flag '--" + name +
                               "' (see: opindyn help)");
    }
  }
  service::ServeOptions options;
  options.queue_depth = static_cast<std::size_t>(args.get(
      "queue", static_cast<std::int64_t>(options.queue_depth)));
  options.job_workers = static_cast<std::size_t>(args.get(
      "job-workers", static_cast<std::int64_t>(options.job_workers)));
  options.threads = static_cast<std::size_t>(
      args.get("threads", static_cast<std::int64_t>(options.threads)));
  options.drain_timeout_ms =
      args.get("drain-timeout-ms", options.drain_timeout_ms);
  options.default_deadline_ms =
      args.get("deadline-ms", options.default_deadline_ms);
  options.graph_cache_limits.max_entries =
      static_cast<std::size_t>(args.get(
          "graph-cache-entries",
          static_cast<std::int64_t>(
              options.graph_cache_limits.max_entries)));
  options.graph_cache_limits.max_bytes =
      static_cast<std::uint64_t>(args.get(
          "graph-cache-mb",
          static_cast<std::int64_t>(
              options.graph_cache_limits.max_bytes >> 20)))
      << 20;
  options.spectrum_cache_limits.max_entries =
      static_cast<std::size_t>(args.get(
          "spectrum-cache-entries",
          static_cast<std::int64_t>(
              options.spectrum_cache_limits.max_entries)));
  options.spectrum_cache_limits.max_bytes =
      static_cast<std::uint64_t>(args.get(
          "spectrum-cache-mb",
          static_cast<std::int64_t>(
              options.spectrum_cache_limits.max_bytes >> 20)))
      << 20;
  options.socket_path = args.get("socket", std::string{});
  options.signal_flag = &g_signal;
  if (options.default_deadline_ms < 0 ||
      options.default_deadline_ms > service::kMaxDeadlineMs) {
    throw std::runtime_error(
        "--deadline-ms must be in [0, " +
        std::to_string(service::kMaxDeadlineMs) + "]");
  }
  register_builtin_scenarios();
  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  // A client that vanishes (closed socket, dead stdout reader) must
  // surface as EPIPE inside write_all, not as a process-killing
  // SIGPIPE: fault isolation covers the transport too.
  std::signal(SIGPIPE, SIG_IGN);
  const bool socket_mode = !options.socket_path.empty();
  service::JobStreamService server(std::move(options));
  const int code =
      socket_mode ? server.serve_socket() : server.serve_stdin();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGPIPE, SIG_DFL);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string command =
      args.positional().empty() ? "help" : args.positional().front();
  try {
    // --version wins over the bare-invocation help default.
    if (command == "version" || args.has("version")) {
      std::cout << build_info_text();
      return 0;
    }
    if (command == "help" || args.has("help")) {
      return cmd_help();
    }
    if (command == "list") {
      return cmd_list();
    }
    if (command == "describe") {
      return cmd_describe(args);
    }
    if (command == "run") {
      return cmd_run(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    std::cerr << "unknown command '" << command
              << "' (try: opindyn help)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "opindyn: " << error.what() << "\n";
    return 1;
  }
}
