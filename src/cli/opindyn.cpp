// The one CLI in front of the scenario engine:
//
//   opindyn list
//   opindyn describe --scenario=node_vs_edge
//   opindyn run --scenario=node_vs_edge --graph=cycle --n=1024
//       --sweep=k:1,2,4,8 --replicas=100 --csv=out.csv
//   opindyn run --spec=experiment.spec [flag overrides]
//
// `run` accepts every spec key as a --key=value flag (see `opindyn help`)
// or a spec file of key=value lines; flags override the file.
#include <algorithm>
#include <exception>
#include <iostream>
#include <stdexcept>

#include "src/engine/runner.h"
#include "src/support/build_info.h"
#include "src/support/cli.h"

namespace {

using namespace opindyn;
using namespace opindyn::engine;

int cmd_help() {
  std::cout <<
      R"(opindyn -- scenario engine for the distributed-averaging experiments

usage:
  opindyn list                         show registered scenarios
  opindyn describe --scenario=<name>   show one scenario and its columns
  opindyn run [--spec=<file>] [--key=value ...]
                                       run a scenario batch
  opindyn version                      build info (git hash, compiler,
                                       flags); also --version
  opindyn help                         this text

run flags (every spec key; flags override --spec file entries):
  --scenario=<name>      which scenario to run          (default node)
  --graph=<family>       cycle|complete|torus|hypercube|star|...
  --n=<int>              graph size                     (default 64)
  --degree, --attach, --p, --graph-seed   family-specific knobs
  --init=<dist>          rademacher|uniform|gaussian|constant|spike|...
  --init-a, --init-b, --init-seed, --center=plain|degree|none
  --model=<kind>         node|edge|voter|gossip|degroot|friedkin_johnsen|
                         weighted_median|hegselmann_krause; honoured
                         verbatim by cross_model (sweepable there),
                         forced by the single-model scenarios
  --alpha=<f>            self-weight of the update      (default 0.5)
  --confidence=<f>       HK confidence bound (hegselmann_krause only)
  --k=<int>              sampled neighbours (node, weighted_median)
                                                        (default 1)
  --lazy=<bool>          fair-coin no-op steps
  --sampling=without|with  neighbour sampling mode
  --replicas=<int>       Monte-Carlo replicas per item  (default 100)
  --seed=<int>           base seed (replica r forks stream r)
  --threads=<int>        worker threads; every (cell x replica) unit of
                         the sweep grid is scheduled over one pool and
                         results are bit-identical for every value
                                                        (default all)
  --eps, --max-steps, --check-interval, --plain-potential
  --horizon=<int>        step horizon for trajectory scenarios (0 = 16n)
  --sweep=key:v1,v2;key2:w1,w2   cartesian sweep grid
  --csv=<path>           also write aggregate rows as CSV
  --rows-csv=<path>      write streamed per-replica rows as CSV
                         (scenarios with row columns: whp_tail,
                         trajectory, thm22_variance, ...)
  --hist-csv=<path>      bin one numeric streamed column into an
                         equal-width histogram CSV (bin_lo,bin_hi,count)
  --hist-column=<name>   which streamed column to bin (default: last);
                         on its own it still prints the summary line
  --hist-bins=<int>      histogram bin count            (default 20)
  --quantiles=q1,q2,...  print exact order-statistic quantiles of the
                         selected streamed column (each q in [0,1])
  --metrics-json=<path>  write a JSON run report: spec echo, build info,
                         counters (steps, cache hits), per-cell timing
                         table, steps/sec, peak RSS
  --trace-json=<path>    write a Chrome trace-event file of the batch
                         (open in Perfetto / chrome://tracing)
  --table=<bool>         print the markdown table       (default true)

examples:
  opindyn run --scenario=node_vs_edge --graph=cycle --n=1024 --sweep=k:1,2,4,8
  opindyn run --scenario=cross_model --graph=cycle --n=64 \
      --sweep=model:node,edge,voter,weighted_median
  opindyn run --scenario=gossip_vs_unilateral --graph=complete --n=16 \
      --replicas=4000 --eps=1e-13
  opindyn run --scenario=whp_tail --graph=cycle --n=24 --replicas=400 \
      --eps=1e-8 --rows-csv=tail.csv
  opindyn run --scenario=thm22_variance --graph=complete --n=16 \
      --replicas=4000 --eps=1e-13 --hist-csv=f.csv --quantiles=0.5,0.9,0.99
)";
  return 0;
}

int cmd_list() {
  register_builtin_scenarios();
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const std::string& name : registry.names()) {
    std::cout << name << "\n    " << registry.get(name).description()
              << "\n";
  }
  return 0;
}

int cmd_describe(const CliArgs& args) {
  register_builtin_scenarios();
  const std::string name = args.get("scenario", std::string{});
  if (name.empty()) {
    std::cerr << "describe: missing --scenario=<name>\n";
    return 2;
  }
  const Scenario& scenario = ScenarioRegistry::instance().get(name);
  std::cout << scenario.name() << ": " << scenario.description() << "\n";
  std::cout << "result columns:";
  for (const std::string& column : scenario.columns()) {
    std::cout << " [" << column << "]";
  }
  std::cout << "\n";
  const std::vector<std::string> row_columns = scenario.row_columns();
  if (!row_columns.empty()) {
    std::cout << "streamed per-replica columns (--rows-csv):";
    for (const std::string& column : row_columns) {
      std::cout << " [" << column << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_run(const CliArgs& args) {
  // Reject typo'd flags: a misspelled --replicas would otherwise
  // silently run with the default.
  const std::vector<std::string> known = spec_keys();
  for (const std::string& name : args.option_names()) {
    if (name != "spec" && name != "help" &&
        std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::runtime_error("unknown flag '--" + name +
                               "' (see: opindyn help)");
    }
  }
  const ExperimentSpec spec = parse_spec(args);
  const BatchResult result = run_experiment_with_default_sinks(spec);
  if (!spec.print_table && spec.csv_path.empty() &&
      spec.hist_csv_path.empty() && spec.hist_column.empty() &&
      spec.quantiles.empty()) {
    std::cout << result.rows.size() << " rows (no sink configured)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string command =
      args.positional().empty() ? "help" : args.positional().front();
  try {
    // --version wins over the bare-invocation help default.
    if (command == "version" || args.has("version")) {
      std::cout << build_info_text();
      return 0;
    }
    if (command == "help" || args.has("help")) {
      return cmd_help();
    }
    if (command == "list") {
      return cmd_list();
    }
    if (command == "describe") {
      return cmd_describe(args);
    }
    if (command == "run") {
      return cmd_run(args);
    }
    std::cerr << "unknown command '" << command
              << "' (try: opindyn help)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "opindyn: " << error.what() << "\n";
    return 1;
  }
}
