// Dense row-major matrix of doubles.  Experiment graphs are at most a few
// thousand nodes (the Q-chain needs n^2 states, so n stays small), making a
// robust dense representation the right trade-off for reproducibility:
// Jacobi gives every eigenvalue to ~1e-13 instead of an iterative solver's
// tolerance games.
#ifndef OPINDYN_SPECTRAL_MATRIX_H
#define OPINDYN_SPECTRAL_MATRIX_H

#include <cstdint>
#include <vector>

namespace opindyn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double* row(std::size_t r);
  const double* row(std::size_t r) const;

  bool is_square() const noexcept { return rows_ == cols_; }

  /// Max |a_ij - a_ji|; 0 for exactly symmetric matrices.
  double symmetry_defect() const;

  /// Max |row sum - 1|; 0 for exactly (row-)stochastic matrices.
  double stochasticity_defect() const;

  Matrix transposed() const;
  Matrix multiply(const Matrix& other) const;
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// v^T * this (left multiplication), returns a row vector.
  std::vector<double> left_multiply(const std::vector<double>& v) const;

  /// Frobenius norm of (this - other).
  double frobenius_distance(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm, dot product, and normalisation helpers for plain
/// std::vector<double> (kept free functions; ES.1: prefer the standard
/// library, these are the few missing pieces).
double norm2(const std::vector<double>& v);
double dot(const std::vector<double>& a, const std::vector<double>& b);
void scale(std::vector<double>& v, double factor);
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_MATRIX_H
