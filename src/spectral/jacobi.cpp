#include "src/spectral/jacobi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/support/assert.h"

namespace opindyn {

EigenDecomposition jacobi_eigen(const Matrix& symmetric, double tolerance,
                                int max_sweeps) {
  OPINDYN_EXPECTS(symmetric.is_square(), "eigen solver needs square matrix");
  OPINDYN_EXPECTS(symmetric.symmetry_defect() <= 1e-9,
                  "eigen solver needs a symmetric matrix");
  const std::size_t n = symmetric.rows();
  Matrix a = symmetric;
  Matrix v = Matrix::identity(n);

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        sum += a.at(p, q) * a.at(p, q);
      }
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) {
      break;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) <= tolerance * 1e-3) {
          continue;
        }
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Rutishauser's stable rotation parameters.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        a.at(p, p) = app - t * apq;
        a.at(q, q) = aqq + t * apq;
        a.at(p, q) = 0.0;
        a.at(q, p) = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double aip = a.at(i, p);
            const double aiq = a.at(i, q);
            a.at(i, p) = aip - s * (aiq + tau * aip);
            a.at(p, i) = a.at(i, p);
            a.at(i, q) = aiq + s * (aip - tau * aiq);
            a.at(q, i) = a.at(i, q);
          }
          const double vip = v.at(i, p);
          const double viq = v.at(i, q);
          v.at(i, p) = vip - s * (viq + tau * vip);
          v.at(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a.at(x, x) < a.at(y, y);
  });

  EigenDecomposition result;
  result.values.reserve(n);
  result.vectors.reserve(n);
  for (const std::size_t k : order) {
    result.values.push_back(a.at(k, k));
    std::vector<double> column(n);
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = v.at(i, k);
    }
    const double len = norm2(column);
    if (len > 0.0) {
      scale(column, 1.0 / len);
    }
    result.vectors.push_back(std::move(column));
  }
  return result;
}

}  // namespace opindyn
