#include "src/spectral/solve.h"

#include <cmath>
#include <stdexcept>

#include "src/support/assert.h"

namespace opindyn {

std::vector<double> solve_dense(Matrix a, std::vector<double> b) {
  OPINDYN_EXPECTS(a.is_square(), "solve needs a square matrix");
  OPINDYN_EXPECTS(b.size() == a.rows(), "dimension mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) {
        pivot = r;
      }
    }
    if (std::abs(a.at(pivot, col)) < 1e-13) {
      throw std::runtime_error("solve_dense: matrix is singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    const double diag = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / diag;
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      sum -= a.at(ri, c) * x[c];
    }
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

}  // namespace opindyn
