// Dense linear solves (Gaussian elimination with partial pivoting).
// Used by the Friedkin-Johnsen baseline to compute its exact equilibrium
// (I - lambda W)^{-1} (1 - lambda) s for comparison with iteration.
#ifndef OPINDYN_SPECTRAL_SOLVE_H
#define OPINDYN_SPECTRAL_SOLVE_H

#include <vector>

#include "src/spectral/matrix.h"

namespace opindyn {

/// Solves A x = b for square non-singular A.  Throws ContractError on
/// dimension mismatch and std::runtime_error on (numerical) singularity.
std::vector<double> solve_dense(Matrix a, std::vector<double> b);

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_SOLVE_H
