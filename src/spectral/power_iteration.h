// Stationary distributions of general (not necessarily reversible) finite
// Markov chains by left power iteration.  The Q-chain of Section 5.3 is
// irreducible and aperiodic but NOT reversible, so symmetric solvers do
// not apply; power iteration on mu <- mu Q converges geometrically.
#ifndef OPINDYN_SPECTRAL_POWER_ITERATION_H
#define OPINDYN_SPECTRAL_POWER_ITERATION_H

#include <vector>

#include "src/spectral/matrix.h"

namespace opindyn {

struct StationaryResult {
  std::vector<double> distribution;
  int iterations = 0;
  /// ||mu Q - mu||_1 at termination.
  double residual = 0.0;
  bool converged = false;
};

/// Left power iteration mu <- mu Q from the uniform start until the L1
/// step change drops below `tolerance` or `max_iterations` is hit.
/// `transition` must be row-stochastic.
StationaryResult stationary_distribution(const Matrix& transition,
                                         double tolerance = 1e-14,
                                         int max_iterations = 2000000);

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_POWER_ITERATION_H
