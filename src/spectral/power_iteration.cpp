#include "src/spectral/power_iteration.h"

#include <cmath>

#include "src/support/assert.h"

namespace opindyn {

StationaryResult stationary_distribution(const Matrix& transition,
                                         double tolerance,
                                         int max_iterations) {
  OPINDYN_EXPECTS(transition.is_square(),
                  "stationary distribution needs a square matrix");
  OPINDYN_EXPECTS(transition.stochasticity_defect() <= 1e-9,
                  "transition matrix must be row-stochastic");
  const std::size_t n = transition.rows();

  StationaryResult result;
  std::vector<double> mu(n, 1.0 / static_cast<double>(n));
  std::vector<double> next;
  for (int it = 0; it < max_iterations; ++it) {
    next = transition.left_multiply(mu);
    // Renormalise to counteract floating-point mass leakage.
    double total = 0.0;
    for (const double x : next) {
      total += x;
    }
    if (total > 0.0) {
      for (double& x : next) {
        x /= total;
      }
    }
    double step_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      step_change += std::abs(next[i] - mu[i]);
    }
    mu.swap(next);
    result.iterations = it + 1;
    if (step_change <= tolerance) {
      result.converged = true;
      break;
    }
  }
  next = transition.left_multiply(mu);
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual += std::abs(next[i] - mu[i]);
  }
  result.residual = residual;
  result.distribution = std::move(mu);
  return result;
}

}  // namespace opindyn
