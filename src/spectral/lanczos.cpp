#include "src/spectral/lanczos.h"

#include <algorithm>
#include <cmath>

#include "src/spectral/jacobi.h"
#include "src/spectral/matrix.h"
#include "src/support/assert.h"

namespace opindyn {

namespace {
void orthogonalize_against(std::vector<double>& v,
                           const std::vector<std::vector<double>>& basis) {
  for (const auto& b : basis) {
    const double coefficient = dot(v, b);
    axpy(-coefficient, b, v);
  }
}
}  // namespace

LanczosResult lanczos(const SymmetricOperator& op, std::size_t n,
                      std::size_t steps, Rng& rng,
                      const std::vector<std::vector<double>>& deflate) {
  OPINDYN_EXPECTS(n >= 2, "lanczos needs dimension >= 2");
  steps = std::min(steps, n);
  OPINDYN_EXPECTS(steps >= 1, "lanczos needs at least one step");

  std::vector<std::vector<double>> basis;
  basis.reserve(steps);
  std::vector<double> alpha;
  std::vector<double> beta;

  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.next_gaussian();
  }
  orthogonalize_against(v, deflate);
  double len = norm2(v);
  OPINDYN_ENSURES(len > 0.0, "lanczos start vector collapsed");
  scale(v, 1.0 / len);
  basis.push_back(v);

  std::vector<double> w(n);
  int iterations = 0;
  for (std::size_t j = 0; j < steps; ++j) {
    ++iterations;
    op(basis[j], w);
    const double a = dot(w, basis[j]);
    alpha.push_back(a);
    axpy(-a, basis[j], w);
    if (j > 0) {
      axpy(-beta[j - 1], basis[j - 1], w);
    }
    // Full reorthogonalisation: cheap at the scale we use and removes the
    // classic Lanczos ghost-eigenvalue problem.
    orthogonalize_against(w, deflate);
    orthogonalize_against(w, basis);
    const double b = norm2(w);
    if (b < 1e-12 || j + 1 == steps) {
      break;
    }
    beta.push_back(b);
    std::vector<double> next = w;
    scale(next, 1.0 / b);
    basis.push_back(std::move(next));
  }

  const std::size_t k = alpha.size();
  Matrix tridiagonal(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    tridiagonal.at(i, i) = alpha[i];
    if (i + 1 < k) {
      tridiagonal.at(i, i + 1) = beta[i];
      tridiagonal.at(i + 1, i) = beta[i];
    }
  }
  const EigenDecomposition eig = jacobi_eigen(tridiagonal);

  LanczosResult result;
  result.ritz_values = eig.values;
  result.iterations = iterations;
  return result;
}

}  // namespace opindyn
