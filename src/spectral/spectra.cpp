#include "src/spectral/spectra.h"

#include <algorithm>
#include <cmath>

#include "src/spectral/lanczos.h"
#include "src/support/assert.h"

namespace opindyn {

Matrix lazy_walk_matrix(const Graph& graph) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  Matrix p(n, n, 0.0);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    p.at(static_cast<std::size_t>(u), static_cast<std::size_t>(u)) = 0.5;
    const double hop = 0.5 / static_cast<double>(graph.degree(u));
    for (const NodeId v : graph.neighbors(u)) {
      p.at(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) = hop;
    }
  }
  return p;
}

Matrix walk_matrix(const Graph& graph) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  Matrix p(n, n, 0.0);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const double hop = 1.0 / static_cast<double>(graph.degree(u));
    for (const NodeId v : graph.neighbors(u)) {
      p.at(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) = hop;
    }
  }
  return p;
}

Matrix laplacian_matrix(const Graph& graph) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  Matrix l(n, n, 0.0);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    l.at(static_cast<std::size_t>(u), static_cast<std::size_t>(u)) =
        static_cast<double>(graph.degree(u));
    for (const NodeId v : graph.neighbors(u)) {
      l.at(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) = -1.0;
    }
  }
  return l;
}

WalkSpectrum lazy_walk_spectrum(const Graph& graph) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  OPINDYN_EXPECTS(graph.min_degree() >= 1,
                  "walk spectrum needs min degree >= 1");
  // Symmetrize: S = D^{1/2} P D^{-1/2}; s_ij = 1/(2 sqrt(d_i d_j)) on
  // edges, 1/2 on the diagonal.  S and P share eigenvalues; if g is an
  // eigenvector of S then f = D^{-1/2} g is a (right) eigenvector of P.
  Matrix s(n, n, 0.0);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    s.at(static_cast<std::size_t>(u), static_cast<std::size_t>(u)) = 0.5;
    for (const NodeId v : graph.neighbors(u)) {
      s.at(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) =
          0.5 / std::sqrt(static_cast<double>(graph.degree(u)) *
                          static_cast<double>(graph.degree(v)));
    }
  }
  const EigenDecomposition eig = jacobi_eigen(s);

  WalkSpectrum result;
  result.values = eig.values;
  OPINDYN_ENSURES(result.values.size() == n, "spectrum size mismatch");
  result.lambda2 = n >= 2 ? result.values[n - 2] : 1.0;
  result.gap = 1.0 - result.lambda2;

  // Map g -> f = D^{-1/2} g and normalise under <.,.>_pi so that the
  // lower-bound experiments can use ||f_2||_pi = 1 directly.
  std::vector<double> f2(n, 0.0);
  if (n >= 2) {
    const auto& g = eig.vectors[n - 2];
    for (std::size_t u = 0; u < n; ++u) {
      f2[u] = g[u] / std::sqrt(static_cast<double>(
                         graph.degree(static_cast<NodeId>(u))));
    }
    double pi_norm2 = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      pi_norm2 += graph.stationary(static_cast<NodeId>(u)) * f2[u] * f2[u];
    }
    if (pi_norm2 > 0.0) {
      scale(f2, 1.0 / std::sqrt(pi_norm2));
    }
  }
  result.f2 = std::move(f2);
  return result;
}

LaplacianSpectrum laplacian_spectrum(const Graph& graph) {
  const EigenDecomposition eig = jacobi_eigen(laplacian_matrix(graph));
  LaplacianSpectrum result;
  result.values = eig.values;
  const std::size_t n = result.values.size();
  result.lambda2 = n >= 2 ? result.values[1] : 0.0;
  result.f2 = n >= 2 ? eig.vectors[1] : std::vector<double>{};
  return result;
}

double laplacian_lambda2_lanczos(const Graph& graph, std::size_t steps,
                                 std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  OPINDYN_EXPECTS(n >= 2, "lambda2 needs n >= 2");
  const SymmetricOperator apply_l = [&graph](const std::vector<double>& x,
                                             std::vector<double>& y) {
    y.assign(x.size(), 0.0);
    for (NodeId u = 0; u < graph.node_count(); ++u) {
      double sum = static_cast<double>(graph.degree(u)) *
                   x[static_cast<std::size_t>(u)];
      for (const NodeId v : graph.neighbors(u)) {
        sum -= x[static_cast<std::size_t>(v)];
      }
      y[static_cast<std::size_t>(u)] = sum;
    }
  };
  // Deflate the kernel (all-ones) so the smallest surviving Ritz value
  // approximates lambda_2.
  std::vector<double> ones(n, 1.0 / std::sqrt(static_cast<double>(n)));
  Rng rng(seed);
  const LanczosResult result = lanczos(apply_l, n, steps, rng, {ones});
  OPINDYN_ENSURES(!result.ritz_values.empty(), "lanczos produced no values");
  return result.ritz_values.front();
}

}  // namespace opindyn
