#include "src/spectral/spectrum_cache.h"

#include <utility>

#include "src/support/assert.h"

namespace opindyn {

GraphSpectra::GraphSpectra(std::shared_ptr<const Graph> graph)
    : graph_(std::move(graph)) {
  OPINDYN_EXPECTS(graph_ != nullptr, "GraphSpectra needs a graph");
}

const WalkSpectrum& GraphSpectra::walk() const {
  bool solved = false;
  std::call_once(walk_once_, [&] {
    walk_ = std::make_unique<const WalkSpectrum>(lazy_walk_spectrum(*graph_));
    solves_.fetch_add(1, std::memory_order_relaxed);
    solved = true;
  });
  if (!solved) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *walk_;
}

const LaplacianSpectrum& GraphSpectra::laplacian() const {
  bool solved = false;
  std::call_once(laplacian_once_, [&] {
    laplacian_ = std::make_unique<const LaplacianSpectrum>(
        laplacian_spectrum(*graph_));
    solves_.fetch_add(1, std::memory_order_relaxed);
    solved = true;
  });
  if (!solved) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *laplacian_;
}

std::int64_t GraphSpectra::solves() const noexcept {
  return solves_.load(std::memory_order_relaxed);
}

std::int64_t GraphSpectra::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::shared_ptr<GraphSpectra> SpectrumCache::get(
    const std::string& key, std::shared_ptr<const Graph> graph) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it != records_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto record = std::make_shared<GraphSpectra>(std::move(graph));
  records_.emplace(key, record);
  return record;
}

std::size_t SpectrumCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::int64_t SpectrumCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t SpectrumCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t SpectrumCache::eigensolves() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [key, record] : records_) {
    total += record->solves();
  }
  return total;
}

std::int64_t SpectrumCache::spectrum_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [key, record] : records_) {
    total += record->hits();
  }
  return total;
}

void SpectrumCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace opindyn
