#include "src/spectral/spectrum_cache.h"

#include <utility>

#include "src/support/assert.h"

namespace opindyn {

GraphSpectra::GraphSpectra(std::shared_ptr<const Graph> graph)
    : graph_(std::move(graph)) {
  OPINDYN_EXPECTS(graph_ != nullptr, "GraphSpectra needs a graph");
}

const WalkSpectrum& GraphSpectra::walk() const {
  bool solved = false;
  std::call_once(walk_once_, [&] {
    walk_ = std::make_unique<const WalkSpectrum>(lazy_walk_spectrum(*graph_));
    solves_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(
        (walk_->values.size() + walk_->f2.size()) * sizeof(double) +
            sizeof(WalkSpectrum),
        std::memory_order_relaxed);
    solved = true;
  });
  if (!solved) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *walk_;
}

const LaplacianSpectrum& GraphSpectra::laplacian() const {
  bool solved = false;
  std::call_once(laplacian_once_, [&] {
    laplacian_ = std::make_unique<const LaplacianSpectrum>(
        laplacian_spectrum(*graph_));
    solves_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(
        (laplacian_->values.size() + laplacian_->f2.size()) * sizeof(double) +
            sizeof(LaplacianSpectrum),
        std::memory_order_relaxed);
    solved = true;
  });
  if (!solved) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *laplacian_;
}

std::int64_t GraphSpectra::solves() const noexcept {
  return solves_.load(std::memory_order_relaxed);
}

std::int64_t GraphSpectra::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t GraphSpectra::memory_bytes() const noexcept {
  return bytes_.load(std::memory_order_relaxed) + sizeof(GraphSpectra);
}

std::shared_ptr<GraphSpectra> SpectrumCache::get(
    const std::string& key, std::shared_ptr<const Graph> graph) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it != records_.end()) {
    ++hits_;
    it->second.last_use = ++use_counter_;
    // Enforce the byte cap on hits too: resident bytes grow *after*
    // insertion as lazy walk()/laplacian() solves complete, so a warm
    // stream of repeat keys must still trigger eviction.
    const std::shared_ptr<GraphSpectra> spectra = it->second.spectra;
    evict_locked(spectra.get());
    return spectra;
  }
  ++misses_;
  auto record = std::make_shared<GraphSpectra>(std::move(graph));
  records_.emplace(key, Record{record, ++use_counter_});
  evict_locked(record.get());
  return record;
}

void SpectrumCache::evict_locked(const GraphSpectra* keep) {
  while (true) {
    const bool over_entries =
        limits_.max_entries != 0 && records_.size() > limits_.max_entries;
    // Recomputed per pass: records grow as their lazy solves complete,
    // so there is no stable incremental byte total to maintain.
    std::uint64_t bytes = 0;
    if (limits_.max_bytes != 0) {
      for (const auto& [key, record] : records_) {
        bytes += record.spectra->memory_bytes();
      }
    }
    const bool over_bytes = limits_.max_bytes != 0 && bytes > limits_.max_bytes;
    if (!over_entries && !over_bytes) {
      return;
    }
    auto victim = records_.end();
    for (auto it = records_.begin(); it != records_.end(); ++it) {
      if (it->second.spectra.get() == keep) {
        continue;
      }
      if (victim == records_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == records_.end()) {
      return;
    }
    retired_solves_ += victim->second.spectra->solves();
    retired_spectrum_hits_ += victim->second.spectra->hits();
    ++evictions_;
    records_.erase(victim);
  }
}

std::size_t SpectrumCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::int64_t SpectrumCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t SpectrumCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t SpectrumCache::eigensolves() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = retired_solves_;
  for (const auto& [key, record] : records_) {
    total += record.spectra->solves();
  }
  return total;
}

std::int64_t SpectrumCache::spectrum_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = retired_spectrum_hits_;
  for (const auto& [key, record] : records_) {
    total += record.spectra->hits();
  }
  return total;
}

std::int64_t SpectrumCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t SpectrumCache::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, record] : records_) {
    total += record.spectra->memory_bytes();
  }
  return total;
}

void SpectrumCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  retired_solves_ = 0;
  retired_spectrum_hits_ = 0;
}

}  // namespace opindyn
