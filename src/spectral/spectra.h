// Spectral quantities of the paper (Section 4):
//
//  * P -- the *lazy* random-walk transition matrix, p(i,i) = 1/2 and
//    p(i,j) = 1/(2 d_i) for edges {i,j}.  Theorem 2.2's rate is
//    1 - lambda_2(P).  P is reversible w.r.t. pi = d/2m, so
//    S = D^{1/2} P D^{-1/2} is symmetric and shares P's spectrum; we
//    decompose S with Jacobi and map eigenvectors back.
//  * L = D - A -- the graph Laplacian.  Theorem 2.4's rate is lambda_2(L).
//
// For d-regular graphs the two are linked: 1 - lambda_2(P) =
// lambda_2(L) / (2d) (the factor-d remark after Theorem 2.4).
#ifndef OPINDYN_SPECTRAL_SPECTRA_H
#define OPINDYN_SPECTRAL_SPECTRA_H

#include <vector>

#include "src/graph/graph.h"
#include "src/spectral/jacobi.h"
#include "src/spectral/matrix.h"

namespace opindyn {

/// Dense lazy random-walk matrix P (row-stochastic).
Matrix lazy_walk_matrix(const Graph& graph);

/// Dense non-lazy random-walk matrix (row-stochastic); spectrum in [-1,1].
Matrix walk_matrix(const Graph& graph);

/// Dense Laplacian L = D - A.
Matrix laplacian_matrix(const Graph& graph);

struct WalkSpectrum {
  /// Eigenvalues of the lazy P, ascending; last is exactly 1.
  std::vector<double> values;
  /// Second-largest eigenvalue lambda_2(P).
  double lambda2;
  /// Spectral gap 1 - lambda_2(P).
  double gap;
  /// Right eigenvector f_2 of P for lambda_2, normalised under the
  /// pi-weighted inner product <f,f>_pi = 1.
  std::vector<double> f2;
};

/// Full spectrum of the lazy walk matrix via symmetrization + Jacobi.
WalkSpectrum lazy_walk_spectrum(const Graph& graph);

struct LaplacianSpectrum {
  /// Eigenvalues of L ascending; first is exactly 0.
  std::vector<double> values;
  /// Second-smallest eigenvalue lambda_2(L) (algebraic connectivity).
  double lambda2;
  /// Unit eigenvector f_2(L).
  std::vector<double> f2;
};

/// Full Laplacian spectrum via Jacobi.
LaplacianSpectrum laplacian_spectrum(const Graph& graph);

/// lambda_2(L) for large graphs via Lanczos with the all-ones vector
/// deflated; `accuracy_steps` Krylov steps (>= 50 recommended).
double laplacian_lambda2_lanczos(const Graph& graph, std::size_t steps,
                                 std::uint64_t seed = 12345);

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_SPECTRA_H
