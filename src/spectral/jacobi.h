// Cyclic Jacobi eigenvalue algorithm for dense symmetric matrices.
// Quadratically convergent, unconditionally stable, and accurate to near
// machine precision -- the reference solver for every spectral quantity in
// the experiments.
#ifndef OPINDYN_SPECTRAL_JACOBI_H
#define OPINDYN_SPECTRAL_JACOBI_H

#include <vector>

#include "src/spectral/matrix.h"

namespace opindyn {

struct EigenDecomposition {
  /// Eigenvalues sorted ascending.
  std::vector<double> values;
  /// eigenvector k (normalised, column) corresponding to values[k].
  std::vector<std::vector<double>> vectors;
};

/// Full eigendecomposition of a symmetric matrix.
/// Throws ContractError if the matrix is not square or not symmetric
/// (defect > 1e-9).
EigenDecomposition jacobi_eigen(const Matrix& symmetric,
                                double tolerance = 1e-13,
                                int max_sweeps = 100);

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_JACOBI_H
