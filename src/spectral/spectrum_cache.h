// Memoised per-graph eigensolves.  The paper's tightness and convergence
// predictions (Prop. B.2, Thm. 2.4, the f2_* initial states) all consume
// per-graph spectral quantities -- lambda_2 and f_2 of the lazy walk
// matrix P, the Laplacian spectrum -- and a sweep revisits the same
// graph in cell after cell.  A GraphSpectra record memoises each
// eigensolve per graph; the SpectrumCache shares one record per
// graph-cache key, so a whole sweep performs exactly one eigensolve per
// distinct graph and spectrum kind.
//
// Locking mirrors GraphCache: the cache's global mutex only guards the
// key -> record map, never an eigensolve.  Each record runs its solves
// under its own per-kind once-latch (std::call_once), so concurrent
// cells needing the *same* spectrum solve once while cells needing
// *different* graphs solve in parallel.
#ifndef OPINDYN_SPECTRAL_SPECTRUM_CACHE_H
#define OPINDYN_SPECTRAL_SPECTRUM_CACHE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/graph/graph.h"
#include "src/spectral/spectra.h"
#include "src/support/cache_limits.h"

namespace opindyn {

/// Lazily-computed spectral record of one immutable graph.  Each
/// accessor runs its eigensolve on first use (on the *calling* thread,
/// under a per-kind once-latch) and returns the memoised result
/// afterwards; accessors are safe to call concurrently.  The referenced
/// graph is kept alive by the record.
class GraphSpectra {
 public:
  explicit GraphSpectra(std::shared_ptr<const Graph> graph);

  /// Full lazy-walk spectrum (lambda_2(P), gap, f_2); solved once.
  const WalkSpectrum& walk() const;
  /// Full Laplacian spectrum (lambda_2(L), f_2); solved once.
  const LaplacianSpectrum& laplacian() const;

  const Graph& graph() const noexcept { return *graph_; }

  /// Eigensolves this record has actually run (0..2).
  std::int64_t solves() const noexcept;
  /// Accessor calls served from the memo without solving.
  std::int64_t hits() const noexcept;

  /// Heap bytes of the memoised spectra solved so far (grows as lazy
  /// solves complete; excludes the shared graph, which GraphCache
  /// accounts).  Safe to read while other threads solve.
  std::uint64_t memory_bytes() const noexcept;

 private:
  std::shared_ptr<const Graph> graph_;
  mutable std::once_flag walk_once_;
  mutable std::once_flag laplacian_once_;
  mutable std::unique_ptr<const WalkSpectrum> walk_;
  mutable std::unique_ptr<const LaplacianSpectrum> laplacian_;
  mutable std::atomic<std::int64_t> solves_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};
};

/// Thread-safe memo from graph-cache key (see graph_cache_key) to the
/// graph's GraphSpectra record.  `get` only ever takes the map lock;
/// the eigensolves themselves run lazily inside the returned record.
/// Like GraphCache, the cache can be bounded (CacheLimits) for
/// process-lifetime use: eviction drops the LRU record from the map
/// (holders keep their shared_ptr; the next request re-creates an empty
/// record and re-solves lazily).  Eigensolve/hit totals stay cumulative
/// across evictions.  The default is the historical unbounded cache.
class SpectrumCache {
 public:
  SpectrumCache() = default;
  explicit SpectrumCache(CacheLimits limits) : limits_(limits) {}

  /// Returns the (shared) spectra record for `key`, creating an empty
  /// one holding `graph` on the first request.  No eigensolve runs
  /// here -- the record solves lazily on first accessor use.  With
  /// limits set, LRU records may be evicted (never the one returned).
  std::shared_ptr<GraphSpectra> get(const std::string& key,
                                    std::shared_ptr<const Graph> graph);

  std::size_t size() const;
  /// Requests that found an existing record / had to create one.
  /// Cumulative over the cache's lifetime (evictions don't subtract).
  std::int64_t hits() const;
  std::int64_t misses() const;
  /// Eigensolves actually run across all records ever cached (the
  /// expensive work); a sweep sharing one graph and one spectrum kind
  /// reports exactly 1.  Includes records since evicted.
  std::int64_t eigensolves() const;
  /// Spectrum accesses served from a memoised result (incl. evicted).
  std::int64_t spectrum_hits() const;
  /// Records dropped by the LRU bound (0 for an unbounded cache).
  std::int64_t evictions() const;
  /// Bytes of memoised spectra across the currently resident records
  /// (recomputed on read: records grow as their lazy solves complete).
  std::uint64_t resident_bytes() const;

  void clear();

 private:
  struct Record {
    std::shared_ptr<GraphSpectra> spectra;
    std::uint64_t last_use = 0;
  };

  /// Drops LRU records (never `keep`) until within limits.  Byte usage
  /// is recomputed per pass because records grow lazily.  Caller holds
  /// mutex_.
  void evict_locked(const GraphSpectra* keep);

  mutable std::mutex mutex_;
  std::map<std::string, Record> records_;
  CacheLimits limits_;
  std::uint64_t use_counter_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  /// Solve/hit counts carried over from evicted records, so the
  /// cumulative accessors never go backwards when a record is dropped.
  std::int64_t retired_solves_ = 0;
  std::int64_t retired_spectrum_hits_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_SPECTRUM_CACHE_H
