// Lanczos iteration with full reorthogonalisation for the extreme
// eigenvalues of large sparse symmetric operators.  Used when graphs grow
// past the comfortable range of the dense Jacobi solver (n > ~2000): the
// convergence-time experiments need only lambda_2, not the full spectrum.
#ifndef OPINDYN_SPECTRAL_LANCZOS_H
#define OPINDYN_SPECTRAL_LANCZOS_H

#include <functional>
#include <vector>

#include "src/support/rng.h"

namespace opindyn {

/// Symmetric operator y = A*x given as a callback.
using SymmetricOperator =
    std::function<void(const std::vector<double>& x, std::vector<double>& y)>;

struct LanczosResult {
  /// Ritz values sorted ascending (approximations of extreme eigenvalues).
  std::vector<double> ritz_values;
  int iterations = 0;
};

/// Runs `steps` Lanczos iterations on an n-dimensional operator.
/// `deflate` vectors (if any) are projected out of the Krylov space first
/// -- pass the known top eigenvector to expose lambda_2.
LanczosResult lanczos(const SymmetricOperator& op, std::size_t n,
                      std::size_t steps, Rng& rng,
                      const std::vector<std::vector<double>>& deflate = {});

}  // namespace opindyn

#endif  // OPINDYN_SPECTRAL_LANCZOS_H
