#include "src/spectral/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/support/assert.h"

namespace opindyn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  OPINDYN_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  OPINDYN_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  OPINDYN_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double* Matrix::row(std::size_t r) {
  OPINDYN_EXPECTS(r < rows_, "row index out of range");
  return data_.data() + r * cols_;
}

const double* Matrix::row(std::size_t r) const {
  OPINDYN_EXPECTS(r < rows_, "row index out of range");
  return data_.data() + r * cols_;
}

double Matrix::symmetry_defect() const {
  OPINDYN_EXPECTS(is_square(), "symmetry defect needs a square matrix");
  double defect = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      defect = std::max(defect, std::abs(at(r, c) - at(c, r)));
    }
  }
  return defect;
}

double Matrix::stochasticity_defect() const {
  double defect = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      sum += at(r, c);
    }
    defect = std::max(defect, std::abs(sum - 1.0));
  }
  return defect;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  OPINDYN_EXPECTS(cols_ == other.rows_, "matrix dimension mismatch");
  Matrix result(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) {
        continue;
      }
      const double* other_row = other.row(k);
      double* result_row = result.row(r);
      for (std::size_t c = 0; c < other.cols_; ++c) {
        result_row[c] += a * other_row[c];
      }
    }
  }
  return result;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  OPINDYN_EXPECTS(v.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> result(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      sum += row_ptr[c] * v[c];
    }
    result[r] = sum;
  }
  return result;
}

std::vector<double> Matrix::left_multiply(const std::vector<double>& v) const {
  OPINDYN_EXPECTS(v.size() == rows_, "vector-matrix dimension mismatch");
  std::vector<double> result(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double a = v[r];
    if (a == 0.0) {
      continue;
    }
    const double* row_ptr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      result[c] += a * row_ptr[c];
    }
  }
  return result;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  OPINDYN_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double norm2(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) {
    sum += x * x;
  }
  return std::sqrt(sum);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  OPINDYN_EXPECTS(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void scale(std::vector<double>& v, double factor) {
  for (double& x : v) {
    x *= factor;
  }
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  OPINDYN_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

}  // namespace opindyn
