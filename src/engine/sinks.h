// Row sinks: where the batch runner streams its result rows (aggregate
// and per-replica channels use the same interface).  Rows arrive as
// formatted cells (the scenario controls number formatting), so every
// sink renders the identical content -- the determinism test compares
// CSV bytes across thread counts.  OrderedFlush is the ordering layer in
// front of the sinks: cells may complete in any order, but a sink only
// ever observes rows in cell order.
#ifndef OPINDYN_ENGINE_SINKS_H
#define OPINDYN_ENGINE_SINKS_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/support/csv.h"
#include "src/support/histogram.h"
#include "src/support/table.h"

namespace opindyn {
namespace engine {

class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Called once before the first row.
  virtual void begin(const std::vector<std::string>& columns) = 0;
  /// Called once per result row; cells align with `columns`.
  virtual void row(const std::vector<std::string>& cells) = 0;
  /// Called once after the last row.
  virtual void finish() = 0;
};

/// Renders an aligned markdown table to `out` on finish().
class TableSink : public RowSink {
 public:
  explicit TableSink(std::ostream& out);
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::unique_ptr<Table> table_;
};

/// Streams rows to a CSV file as they arrive.  The file is opened at
/// CONSTRUCTION: an unwritable path (missing directory, no permission)
/// throws a one-line error citing the path before any replica work
/// runs, instead of silently producing no output.  finish() closes the
/// writer with a stream-state check, so late write failures (disk
/// full) also surface as errors.
class CsvSink : public RowSink {
 public:
  explicit CsvSink(std::string path);
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::unique_ptr<CsvWriter> writer_;
};

/// Distribution summarizer over ONE numeric column of a row channel --
/// the engine's histogram/quantile sink, meant for the streamed
/// per-replica channel (`--hist-csv` / `--quantiles`).  Values are
/// buffered as rows arrive; finish() bins them into an equal-width
/// Histogram over the exact data range (so no sample saturates), writes
/// the bins as CSV if a path was given, and computes the requested
/// quantiles as exact order statistics of the buffered values (not bin
/// midpoints).  Because the OrderedFlush upstream releases rows in cell
/// order, the emitted bytes are identical for every thread count.
class HistogramSink : public RowSink {
 public:
  struct Options {
    /// Column to bin, matched by name against begin()'s columns; "" =
    /// the last column.  begin() throws if the name is absent.
    std::string column;
    std::size_t bins = 20;
    /// Quantiles in [0, 1] to summarize; empty = none.
    std::vector<double> quantiles;
    /// CSV output path for the bins ("" = no CSV).
    std::string csv_path;
    /// Stream for the human-readable summary (nullptr = silent).
    std::ostream* summary_out = nullptr;
  };

  /// Probes options.csv_path (when set) immediately, so an unwritable
  /// path fails here with a one-line error citing the path; the file
  /// itself is only (re)written in finish(), so a failed run preserves
  /// a pre-existing file's contents.
  explicit HistogramSink(Options options);

  void begin(const std::vector<std::string>& columns) override;
  /// Parses the selected cell as a double; throws std::runtime_error
  /// naming the column on non-numeric or non-finite content (a NaN
  /// sample has no place on the binning axis -- see Histogram::add).
  void row(const std::vector<std::string>& cells) override;
  void finish() override;

  /// Post-finish accessors (for tests and programmatic callers).
  const Histogram* histogram() const noexcept { return histogram_.get(); }
  /// Exact order-statistic quantiles, aligned with options.quantiles.
  const std::vector<double>& quantile_values() const noexcept {
    return quantile_values_;
  }
  std::size_t samples() const noexcept { return values_.size(); }

 private:
  Options options_;
  std::string column_name_;
  std::size_t column_index_ = 0;
  std::vector<double> values_;
  std::unique_ptr<Histogram> histogram_;
  std::vector<double> quantile_values_;
};

/// Collects rows in memory (used by tests and by callers that post-process
/// results).
class MemorySink : public RowSink {
 public:
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override {}

  const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Releases rows to a set of sinks in strict cell order, no matter in
/// which order the cells' row blocks arrive.  `cell_done(i, rows)` may be
/// called from any thread and exactly once per cell; whenever the next
/// unflushed cell becomes available, the maximal ready prefix is flushed
/// under the lock, so downstream sinks need no synchronisation of their
/// own.  The emitted byte stream therefore depends only on the cell
/// order, never on completion order -- the engine's CSV determinism
/// rests on this class plus the CellScheduler's replica-order fold.
class OrderedFlush {
 public:
  /// `sinks` may be empty (rows are then only counted and dropped).
  OrderedFlush(std::vector<RowSink*> sinks, std::size_t cell_count);

  /// Forwards begin(columns) to every sink.
  void begin(const std::vector<std::string>& columns);

  /// Delivers cell `cell`'s complete row block (possibly empty).
  void cell_done(std::size_t cell,
                 std::vector<std::vector<std::string>> rows);

  /// Cells flushed so far (== cell_count once every cell arrived).
  std::size_t flushed_cells() const;
  /// Rows forwarded to the sinks so far.
  std::int64_t flushed_rows() const;

  /// Forwards finish() to every sink.  Fails if a cell never arrived.
  void finish();

  /// Forwards finish() to every sink even though cells are missing --
  /// the interrupted-batch path (SIGINT, deadline): only the in-order
  /// prefix of completed cells was flushed, and the sinks now close
  /// cleanly over that prefix instead of dropping all output.
  void finish_partial();

 private:
  std::vector<RowSink*> sinks_;
  mutable std::mutex mutex_;
  std::vector<std::optional<std::vector<std::vector<std::string>>>> pending_;
  std::size_t next_ = 0;
  std::int64_t rows_flushed_ = 0;
};

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SINKS_H
