// Row sinks: where the batch runner streams its aggregated result rows.
// Rows arrive as formatted cells (the scenario controls number
// formatting), so every sink renders the identical content -- the
// determinism test compares CSV bytes across thread counts.
#ifndef OPINDYN_ENGINE_SINKS_H
#define OPINDYN_ENGINE_SINKS_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/support/csv.h"
#include "src/support/table.h"

namespace opindyn {
namespace engine {

class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Called once before the first row.
  virtual void begin(const std::vector<std::string>& columns) = 0;
  /// Called once per result row; cells align with `columns`.
  virtual void row(const std::vector<std::string>& cells) = 0;
  /// Called once after the last row.
  virtual void finish() = 0;
};

/// Renders an aligned markdown table to `out` on finish().
class TableSink : public RowSink {
 public:
  explicit TableSink(std::ostream& out);
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::unique_ptr<Table> table_;
};

/// Streams rows to a CSV file as they arrive.
class CsvSink : public RowSink {
 public:
  explicit CsvSink(std::string path);
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::unique_ptr<CsvWriter> writer_;
};

/// Collects rows in memory (used by tests and by callers that post-process
/// results).
class MemorySink : public RowSink {
 public:
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void finish() override {}

  const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SINKS_H
