// Number-to-cell formatting shared by the scenario translation units.
// Scenarios own the formatting of their result cells (sinks render the
// strings verbatim), so every scenario file uses these helpers to keep
// table and CSV output consistent.
#ifndef OPINDYN_ENGINE_SCENARIO_FORMAT_H
#define OPINDYN_ENGINE_SCENARIO_FORMAT_H

#include <sstream>
#include <string>

namespace opindyn {
namespace engine {

/// Default float formatting: `significant` significant digits.
inline std::string fmt(double value, int significant = 6) {
  std::ostringstream out;
  out.precision(significant);
  out << value;
  return out.str();
}

/// Fixed-point with `digits` decimals (column-aligned metrics).
inline std::string fmt_fixed(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  return out.str();
}

/// Scientific with `digits` decimals (variances, residuals).
inline std::string fmt_sci(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(digits);
  out << value;
  return out.str();
}

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SCENARIO_FORMAT_H
