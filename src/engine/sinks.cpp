#include "src/engine/sinks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/support/assert.h"
#include "src/support/cli.h"

namespace opindyn {
namespace engine {

TableSink::TableSink(std::ostream& out) : out_(&out) {}

void TableSink::begin(const std::vector<std::string>& columns) {
  table_ = std::make_unique<Table>(columns);
}

void TableSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  table_->new_row();
  for (const std::string& cell : cells) {
    table_->add(cell);
  }
}

void TableSink::finish() {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  *out_ << table_->to_markdown();
  table_.reset();
}

CsvSink::CsvSink(std::string path)
    : path_(std::move(path)),
      writer_(std::make_unique<CsvWriter>(path_)) {}

void CsvSink::begin(const std::vector<std::string>& columns) {
  OPINDYN_EXPECTS(writer_ != nullptr, "CsvSink already finished");
  writer_->write_header(columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(writer_ != nullptr, "CsvSink already finished");
  writer_->write_row(cells);
}

void CsvSink::finish() {
  OPINDYN_EXPECTS(writer_ != nullptr, "CsvSink already finished");
  writer_->close();
  writer_.reset();
}

HistogramSink::HistogramSink(Options options)
    : options_(std::move(options)) {
  // Probe the bin CSV up front (no truncation): an unwritable
  // --hist-csv path fails here, with the path in the message, before
  // the batch runs -- while a runtime failure mid-batch still leaves a
  // pre-existing file's bins from the previous run intact, because the
  // file is only (re)written inside finish().
  if (!options_.csv_path.empty()) {
    probe_csv_writable(options_.csv_path);
  }
}

void HistogramSink::begin(const std::vector<std::string>& columns) {
  OPINDYN_EXPECTS(!columns.empty(), "histogram sink needs columns");
  values_.clear();
  histogram_.reset();
  quantile_values_.clear();
  if (options_.column.empty()) {
    column_index_ = columns.size() - 1;
  } else {
    const auto it =
        std::find(columns.begin(), columns.end(), options_.column);
    if (it == columns.end()) {
      std::string known;
      for (const std::string& column : columns) {
        known += known.empty() ? column : ", " + column;
      }
      throw std::runtime_error("histogram column '" + options_.column +
                               "' is not a streamed column (available: " +
                               known + ")");
    }
    column_index_ = static_cast<std::size_t>(it - columns.begin());
  }
  column_name_ = columns[column_index_];
}

void HistogramSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(column_index_ < cells.size(),
                  "HistogramSink::begin was not called");
  const std::string& cell = cells[column_index_];
  double value = 0.0;
  try {
    value = parse_double_value(
        "histogram column '" + column_name_ + "'", cell);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("histogram column '" + column_name_ +
                             "': non-numeric cell '" + cell +
                             "' (pick a numeric streamed column)");
  }
  // A non-finite sample has no position on the binning axis; rejecting
  // it loudly beats Histogram::add's saturation fallback here, because
  // a NaN in a streamed metric always indicates an upstream bug.
  if (!std::isfinite(value)) {
    throw std::runtime_error("histogram column '" + column_name_ +
                             "': non-finite cell '" + cell +
                             "' cannot be binned");
  }
  values_.push_back(value);
}

void HistogramSink::finish() {
  if (!values_.empty()) {
    // The range is the exact data range (hi nudged up so the maximum
    // lands in the last bin, not in the saturating overflow cell); it
    // depends only on the streamed values, never on thread scheduling.
    const auto [min_it, max_it] =
        std::minmax_element(values_.begin(), values_.end());
    const double lo = *min_it;
    double hi = std::nextafter(
        *max_it, std::numeric_limits<double>::infinity());
    if (hi <= lo) {
      hi = lo + 1.0;  // all values identical: one degenerate bin width
    }
    histogram_ = std::make_unique<Histogram>(lo, hi, options_.bins);
    for (const double value : values_) {
      histogram_->add(value);
    }

    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    quantile_values_.reserve(options_.quantiles.size());
    for (const double q : options_.quantiles) {
      const auto rank = std::min(
          sorted.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
      quantile_values_.push_back(sorted[rank]);
    }
  }

  if (!options_.csv_path.empty()) {
    CsvWriter writer(options_.csv_path, {"bin_lo", "bin_hi", "count"});
    if (histogram_ != nullptr) {
      for (std::size_t b = 0; b < histogram_->bins(); ++b) {
        writer.write_row(std::vector<double>{
            histogram_->bin_low(b), histogram_->bin_high(b),
            static_cast<double>(histogram_->count(b))});
      }
    }
    writer.close();
  }

  if (options_.summary_out != nullptr) {
    std::ostream& out = *options_.summary_out;
    std::ostringstream summary;
    summary.precision(6);
    summary << "hist(" << column_name_ << "): " << values_.size()
            << " values";
    if (histogram_ != nullptr) {
      summary << " in [" << histogram_->bin_low(0) << ", "
              << histogram_->bin_high(histogram_->bins() - 1) << ")";
    }
    for (std::size_t i = 0; i < quantile_values_.size(); ++i) {
      summary << (i == 0 ? "; " : " ") << "q" << options_.quantiles[i]
              << "=" << quantile_values_[i];
    }
    out << summary.str() << "\n";
    if (!options_.csv_path.empty() && histogram_ != nullptr) {
      out << "wrote " << histogram_->bins() << " histogram bins to "
          << options_.csv_path << "\n";
    }
  }
}

void MemorySink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  rows_.clear();
}

void MemorySink::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

OrderedFlush::OrderedFlush(std::vector<RowSink*> sinks,
                           std::size_t cell_count)
    : sinks_(std::move(sinks)), pending_(cell_count) {}

void OrderedFlush::begin(const std::vector<std::string>& columns) {
  for (RowSink* sink : sinks_) {
    sink->begin(columns);
  }
}

void OrderedFlush::cell_done(std::size_t cell,
                             std::vector<std::vector<std::string>> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  OPINDYN_EXPECTS(cell < pending_.size(), "cell index out of range");
  OPINDYN_EXPECTS(!pending_[cell].has_value() && cell >= next_,
                  "cell delivered twice");
  pending_[cell] = std::move(rows);
  while (next_ < pending_.size() && pending_[next_].has_value()) {
    for (const std::vector<std::string>& cells : *pending_[next_]) {
      for (RowSink* sink : sinks_) {
        sink->row(cells);
      }
      ++rows_flushed_;
    }
    pending_[next_].reset();
    // A reset optional would look undelivered again; advancing next_
    // past it is what marks it flushed.
    ++next_;
  }
}

std::size_t OrderedFlush::flushed_cells() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

std::int64_t OrderedFlush::flushed_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rows_flushed_;
}

void OrderedFlush::finish() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    OPINDYN_EXPECTS(next_ == pending_.size(),
                    "finish() before every cell was delivered");
  }
  for (RowSink* sink : sinks_) {
    sink->finish();
  }
}

void OrderedFlush::finish_partial() {
  // No completeness check: the interrupted prefix [0, next_) is exactly
  // what was already released in order, and the sinks finish over it.
  for (RowSink* sink : sinks_) {
    sink->finish();
  }
}

}  // namespace engine
}  // namespace opindyn
