#include "src/engine/sinks.h"

#include "src/support/assert.h"

namespace opindyn {
namespace engine {

TableSink::TableSink(std::ostream& out) : out_(&out) {}

void TableSink::begin(const std::vector<std::string>& columns) {
  table_ = std::make_unique<Table>(columns);
}

void TableSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  table_->new_row();
  for (const std::string& cell : cells) {
    table_->add(cell);
  }
}

void TableSink::finish() {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  *out_ << table_->to_markdown();
  table_.reset();
}

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(writer_ != nullptr, "CsvSink::begin was not called");
  writer_->write_row(cells);
}

void CsvSink::finish() { writer_.reset(); }

void MemorySink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  rows_.clear();
}

void MemorySink::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

OrderedFlush::OrderedFlush(std::vector<RowSink*> sinks,
                           std::size_t cell_count)
    : sinks_(std::move(sinks)), pending_(cell_count) {}

void OrderedFlush::begin(const std::vector<std::string>& columns) {
  for (RowSink* sink : sinks_) {
    sink->begin(columns);
  }
}

void OrderedFlush::cell_done(std::size_t cell,
                             std::vector<std::vector<std::string>> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  OPINDYN_EXPECTS(cell < pending_.size(), "cell index out of range");
  OPINDYN_EXPECTS(!pending_[cell].has_value() && cell >= next_,
                  "cell delivered twice");
  pending_[cell] = std::move(rows);
  while (next_ < pending_.size() && pending_[next_].has_value()) {
    for (const std::vector<std::string>& cells : *pending_[next_]) {
      for (RowSink* sink : sinks_) {
        sink->row(cells);
      }
      ++rows_flushed_;
    }
    pending_[next_].reset();
    // A reset optional would look undelivered again; advancing next_
    // past it is what marks it flushed.
    ++next_;
  }
}

std::size_t OrderedFlush::flushed_cells() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

std::int64_t OrderedFlush::flushed_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rows_flushed_;
}

void OrderedFlush::finish() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    OPINDYN_EXPECTS(next_ == pending_.size(),
                    "finish() before every cell was delivered");
  }
  for (RowSink* sink : sinks_) {
    sink->finish();
  }
}

}  // namespace engine
}  // namespace opindyn
