#include "src/engine/sinks.h"

#include "src/support/assert.h"

namespace opindyn {
namespace engine {

TableSink::TableSink(std::ostream& out) : out_(&out) {}

void TableSink::begin(const std::vector<std::string>& columns) {
  table_ = std::make_unique<Table>(columns);
}

void TableSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  table_->new_row();
  for (const std::string& cell : cells) {
    table_->add(cell);
  }
}

void TableSink::finish() {
  OPINDYN_EXPECTS(table_ != nullptr, "TableSink::begin was not called");
  *out_ << table_->to_markdown();
  table_.reset();
}

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  OPINDYN_EXPECTS(writer_ != nullptr, "CsvSink::begin was not called");
  writer_->write_row(cells);
}

void CsvSink::finish() { writer_.reset(); }

void MemorySink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  rows_.clear();
}

void MemorySink::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

}  // namespace engine
}  // namespace opindyn
