// Built-in scenarios: the paper's two averaging processes and their lazy
// and k-sample variants, the Section-3 related-work baselines, and the
// comparison races the benches used to hand-roll.  Each scenario
// self-registers, so `opindyn list` and the batch runner discover them by
// name.
#include <cmath>
#include <sstream>

#include "src/baselines/degroot.h"
#include "src/baselines/friedkin_johnsen.h"
#include "src/baselines/gossip.h"
#include "src/baselines/voter.h"
#include "src/core/coalescing.h"
#include "src/core/convergence.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/engine/scenario.h"
#include "src/graph/algorithms.h"
#include "src/spectral/spectra.h"

namespace opindyn {
namespace engine {
namespace {

std::string fmt(double value, int significant = 6) {
  std::ostringstream out;
  out.precision(significant);
  out << value;
  return out.str();
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  return out.str();
}

std::string fmt_sci(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(digits);
  out << value;
  return out.str();
}

/// Aggregated eps-convergence statistics of one averaging-process
/// configuration, gathered through the sharded scheduler (replica r uses
/// stream fork(subseed(seed, salt), r), so every sub-experiment of a
/// scenario gets its own independent stream family).
struct AveragingSummary {
  RunningStats value;
  RunningStats steps;
  std::int64_t diverged = 0;
};

AveragingSummary run_averaging(const RunInput& in, const ModelConfig& config,
                               std::uint64_t salt = 0) {
  const ExperimentSpec& spec = in.spec;
  std::vector<RunningStats> stats = in.scheduler.run(
      spec.replicas, salt == 0 ? spec.seed : subseed(spec.seed, salt), 3,
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(in.graph, config, in.initial);
        const ConvergenceResult res =
            run_until_converged(*process, rng, spec.convergence);
        out[0] = res.final_value;
        out[1] = static_cast<double>(res.steps);
        out[2] = res.converged ? 0.0 : 1.0;
      });
  AveragingSummary summary;
  summary.value = stats[0];
  summary.steps = stats[1];
  summary.diverged = static_cast<std::int64_t>(std::llround(stats[2].sum()));
  return summary;
}

std::vector<std::string> averaging_columns() {
  return {"E[F]", "+-CI(F)", "Var(F)", "T_eps", "+-CI(T)", "diverged"};
}

std::vector<std::string> averaging_row(const AveragingSummary& s) {
  return {fmt(s.value.mean()),
          fmt(s.value.mean_ci_halfwidth(), 3),
          fmt_sci(s.value.population_variance(), 3),
          fmt_fixed(s.steps.mean(), 1),
          fmt_fixed(s.steps.mean_ci_halfwidth(), 1),
          std::to_string(s.diverged)};
}

/// NodeModel (Definition 2.1) run to eps-convergence.
class NodeScenario final : public Scenario {
 public:
  std::string name() const override { return "node"; }
  std::string description() const override {
    return "NodeModel (Def 2.1): random node averages with k sampled "
           "neighbours; reports F and T_eps (Thm 2.2).";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    return {averaging_row(run_averaging(in, config))};
  }
};
OPINDYN_REGISTER_SCENARIO(NodeScenario)

/// EdgeModel (Definition 2.3) run to eps-convergence.
class EdgeScenario final : public Scenario {
 public:
  std::string name() const override { return "edge"; }
  std::string description() const override {
    return "EdgeModel (Def 2.3): one endpoint of a random arc moves "
           "toward the other; reports F and T_eps (Thm 2.4).";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::edge;
    return {averaging_row(run_averaging(in, config))};
  }
};
OPINDYN_REGISTER_SCENARIO(EdgeScenario)

/// Lazy NodeModel: each step is a fair-coin no-op (the Appendix-B
/// analysis variant; doubles T_eps, leaves F unchanged).
class LazyScenario final : public Scenario {
 public:
  std::string name() const override { return "lazy"; }
  std::string description() const override {
    return "Lazy NodeModel: fair-coin no-op per step (Prop B.1 variant); "
           "same F, ~2x T_eps.";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    config.lazy = true;
    return {averaging_row(run_averaging(in, config))};
  }
};
OPINDYN_REGISTER_SCENARIO(LazyScenario)

/// Both processes on the same input, side by side.
class NodeVsEdgeScenario final : public Scenario {
 public:
  std::string name() const override { return "node_vs_edge"; }
  std::string description() const override {
    return "NodeModel vs EdgeModel on the same graph and xi(0): "
           "convergence times and Var(F) side by side.";
  }
  std::vector<std::string> columns() const override {
    return {"T node", "T edge", "T node/edge", "Var(F) node",
            "Var(F) edge"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    ModelConfig node = in.spec.model;
    node.kind = ModelKind::node;
    ModelConfig edge = in.spec.model;
    edge.kind = ModelKind::edge;
    const AveragingSummary ns = run_averaging(in, node, 0);
    const AveragingSummary es = run_averaging(in, edge, 1);
    return {{fmt_fixed(ns.steps.mean(), 1), fmt_fixed(es.steps.mean(), 1),
             fmt_fixed(ns.steps.mean() / es.steps.mean(), 3),
             fmt_sci(ns.value.population_variance(), 3),
             fmt_sci(es.value.population_variance(), 3)}};
  }
};
OPINDYN_REGISTER_SCENARIO(NodeVsEdgeScenario)

/// NodeModel T_eps against the Prop. B.1 prediction -- sweep k to get the
/// remark after Theorem 2.2 ((1 + 1/k) dependence).
class KAblationScenario final : public Scenario {
 public:
  std::string name() const override { return "k_ablation"; }
  std::string description() const override {
    return "NodeModel T_eps vs the Prop B.1 prediction; sweep k (and "
           "sampling) for the remark after Thm 2.2.";
  }
  std::vector<std::string> columns() const override {
    return {"T_eps", "+-CI(T)", "T predicted (B.1)", "measured/predicted"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    const AveragingSummary s = run_averaging(in, config);
    const WalkSpectrum spectrum = lazy_walk_spectrum(in.graph);
    OpinionState probe(in.graph, in.initial);
    const double predicted = theory::steps_to_epsilon(
        theory::node_model_rho(spectrum.lambda2, config.alpha, config.k,
                               in.graph.node_count(), config.lazy),
        probe.phi_exact(), in.spec.convergence.epsilon);
    return {{fmt_fixed(s.steps.mean(), 1),
             fmt_fixed(s.steps.mean_ci_halfwidth(), 1),
             fmt_fixed(predicted, 1),
             fmt_fixed(s.steps.mean() / predicted, 3)}};
  }
};
OPINDYN_REGISTER_SCENARIO(KAblationScenario)

/// Discrete voter model baseline run to consensus.
class VoterScenario final : public Scenario {
 public:
  std::string name() const override { return "voter"; }
  std::string description() const override {
    return "Voter model baseline: n distinct opinions to consensus "
           "(the k=1, alpha=0 special case of Def 2.1).";
  }
  std::vector<std::string> columns() const override {
    return {"consensus T", "+-CI(T)", "consensus rate"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    std::vector<int> opinions(
        static_cast<std::size_t>(in.graph.node_count()));
    for (std::size_t u = 0; u < opinions.size(); ++u) {
      opinions[u] = static_cast<int>(u);
    }
    const std::vector<RunningStats> stats = in.scheduler.run(
        spec.replicas, spec.seed, 2,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          const VoterRunResult res = run_voter_to_consensus(
              in.graph, opinions, rng, spec.convergence.max_steps);
          if (res.reached_consensus) {
            out[0] = static_cast<double>(res.steps);
          }
          out[1] = res.reached_consensus ? 1.0 : 0.0;
        });
    return {{fmt_fixed(stats[0].mean(), 1),
             fmt_fixed(stats[0].mean_ci_halfwidth(), 1),
             fmt_fixed(stats[1].mean(), 3)}};
  }
};
OPINDYN_REGISTER_SCENARIO(VoterScenario)

/// Coordinated pairwise gossip baseline (Boyd et al.).
class GossipScenario final : public Scenario {
 public:
  std::string name() const override { return "gossip"; }
  std::string description() const override {
    return "Pairwise-averaging gossip baseline: doubly stochastic, "
           "preserves Avg exactly (Var(F) = 0).";
  }
  std::vector<std::string> columns() const override {
    return {"E[F]", "Var(F)", "T_eps", "+-CI(T)", "avg drift"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    const std::vector<RunningStats> stats = in.scheduler.run(
        spec.replicas, spec.seed, 3,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          const GossipRunResult res = run_gossip_to_convergence(
              in.graph, in.initial, rng, spec.convergence.epsilon,
              spec.convergence.max_steps);
          out[0] = res.final_value;
          out[1] = static_cast<double>(res.steps);
          out[2] = res.average_drift;
        });
    return {{fmt(stats[0].mean()), fmt_sci(stats[0].population_variance(), 3),
             fmt_fixed(stats[1].mean(), 1),
             fmt_fixed(stats[1].mean_ci_halfwidth(), 1),
             fmt_sci(stats[2].mean(), 2)}};
  }
};
OPINDYN_REGISTER_SCENARIO(GossipScenario)

/// DeGroot baseline: synchronous and deterministic, so one run suffices.
class DeGrootScenario final : public Scenario {
 public:
  std::string name() const override { return "degroot"; }
  std::string description() const override {
    return "DeGroot baseline (Section 3): deterministic synchronous "
           "rounds to the degree-weighted average, zero variance.";
  }
  std::vector<std::string> columns() const override {
    return {"rounds", "limit", "|limit - M(0)|", "final spread"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    DeGrootModel model(in.graph, in.initial, /*lazy=*/true);
    const double eps = in.spec.convergence.epsilon;
    const std::int64_t max_rounds = in.spec.convergence.max_steps;
    while (model.discrepancy() > eps && model.rounds() < max_rounds) {
      model.step();
    }
    const double m0 = degree_weighted_average(in.graph, in.initial);
    return {{std::to_string(model.rounds()), fmt(model.values()[0]),
             fmt_sci(std::abs(model.values()[0] - m0), 2),
             fmt_sci(model.discrepancy(), 2)}};
  }
};
OPINDYN_REGISTER_SCENARIO(DeGrootScenario)

/// Friedkin-Johnsen baseline: converges to persistent disagreement.
/// `alpha` doubles as the susceptibility lambda.
class FriedkinJohnsenScenario final : public Scenario {
 public:
  std::string name() const override { return "friedkin_johnsen"; }
  std::string description() const override {
    return "Friedkin-Johnsen baseline (Section 3): stubborn agents, "
           "no consensus; alpha is the susceptibility lambda.";
  }
  std::vector<std::string> columns() const override {
    return {"rounds", "mean z*", "z* spread", "final distance"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    FriedkinJohnsen model(in.graph, in.initial, in.spec.model.alpha);
    const std::vector<double> star = model.equilibrium();
    const double eps = in.spec.convergence.epsilon;
    const std::int64_t max_rounds = in.spec.convergence.max_steps;
    while (model.distance_to(star) > eps && model.rounds() < max_rounds) {
      model.step();
    }
    double lo = star[0];
    double hi = star[0];
    double mean = 0.0;
    for (const double z : star) {
      lo = std::min(lo, z);
      hi = std::max(hi, z);
      mean += z / static_cast<double>(star.size());
    }
    return {{std::to_string(model.rounds()), fmt(mean), fmt(hi - lo),
             fmt_sci(model.distance_to(star), 2)}};
  }
};
OPINDYN_REGISTER_SCENARIO(FriedkinJohnsenScenario)

/// The Section-2 remark race: voter model and coalescing walks vs the
/// NodeModel run to eps = 1/n^2 (so eps and K are poly(n)).
class AveragingVsVoterScenario final : public Scenario {
 public:
  std::string name() const override { return "averaging_vs_voter"; }
  std::string description() const override {
    return "Race: voter consensus + coalescing walks vs NodeModel to "
           "eps = 1/n^2; speed-up ~ n/log n (Section 2 remark).";
  }
  std::vector<std::string> columns() const override {
    return {"voter T", "coalescence T", "averaging T", "speed-up",
            "n/log n"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    const double n = static_cast<double>(in.graph.node_count());

    std::vector<int> opinions(
        static_cast<std::size_t>(in.graph.node_count()));
    for (std::size_t u = 0; u < opinions.size(); ++u) {
      opinions[u] = static_cast<int>(u);
    }
    const std::vector<RunningStats> voter = in.scheduler.run(
        spec.replicas, subseed(spec.seed, 1), 1,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          const VoterRunResult res = run_voter_to_consensus(
              in.graph, opinions, rng, spec.convergence.max_steps);
          if (res.reached_consensus) {
            out[0] = static_cast<double>(res.steps);
          }
        });

    const std::vector<RunningStats> coalescence = in.scheduler.run(
        spec.replicas, subseed(spec.seed, 2), 1,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          const CoalescenceResult res = run_to_coalescence(
              in.graph, rng, spec.convergence.max_steps);
          if (res.coalesced) {
            out[0] = static_cast<double>(res.steps);
          }
        });

    ModelConfig config = spec.model;
    config.kind = ModelKind::node;
    ConvergenceOptions convergence = spec.convergence;
    convergence.epsilon = 1.0 / (n * n);
    const std::vector<RunningStats> averaging = in.scheduler.run(
        spec.replicas, spec.seed, 1,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          auto process = make_process(in.graph, config, in.initial);
          const ConvergenceResult res =
              run_until_converged(*process, rng, convergence);
          out[0] = static_cast<double>(res.steps);
        });

    return {{fmt_fixed(voter[0].mean(), 1),
             fmt_fixed(coalescence[0].mean(), 1),
             fmt_fixed(averaging[0].mean(), 1),
             fmt_fixed(voter[0].mean() / averaging[0].mean(), 2),
             fmt_fixed(n / std::log(n), 2)}};
  }
};
OPINDYN_REGISTER_SCENARIO(AveragingVsVoterScenario)

/// The Section-1 "price of simplicity" comparison: three rows per work
/// item (gossip / NodeModel / EdgeModel) on the same input.
class GossipVsUnilateralScenario final : public Scenario {
 public:
  std::string name() const override { return "gossip_vs_unilateral"; }
  std::string description() const override {
    return "Price of simplicity (Section 1): coordinated gossip "
           "(Var = 0) vs the unilateral models (Var ~ Prop 5.8).";
  }
  std::vector<std::string> columns() const override {
    return {"protocol", "E[F]", "Var(F)", "T_eps", "predicted Var (P5.8)",
            "coordinated?"};
  }
  std::vector<std::vector<std::string>> run(
      const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    std::vector<std::vector<std::string>> rows;

    const std::vector<RunningStats> gossip = in.scheduler.run(
        spec.replicas, subseed(spec.seed, 1), 2,
        [&](std::int64_t, Rng& rng, std::span<double> out) {
          const GossipRunResult res = run_gossip_to_convergence(
              in.graph, in.initial, rng, spec.convergence.epsilon,
              spec.convergence.max_steps);
          out[0] = res.final_value;
          out[1] = static_cast<double>(res.steps);
        });
    rows.push_back({"pairwise gossip", fmt_sci(gossip[0].mean(), 2),
                    fmt_sci(gossip[0].population_variance(), 2),
                    fmt_fixed(gossip[1].mean(), 1), fmt_sci(0.0, 2),
                    "yes"});

    // Prop. 5.8 is stated for regular graphs and the NodeModel only.
    const std::string predicted =
        in.graph.is_regular()
            ? fmt_sci(theory::variance_exact(in.graph, spec.model.alpha,
                                             spec.model.k, in.initial),
                      2)
            : "n/a";
    for (const ModelKind kind : {ModelKind::node, ModelKind::edge}) {
      ModelConfig config = spec.model;
      config.kind = kind;
      const AveragingSummary s =
          run_averaging(in, config, kind == ModelKind::node ? 0 : 2);
      rows.push_back({kind == ModelKind::node ? "NodeModel" : "EdgeModel",
                      fmt_sci(s.value.mean(), 2),
                      fmt_sci(s.value.population_variance(), 2),
                      fmt_fixed(s.steps.mean(), 1),
                      kind == ModelKind::node ? predicted : "n/a",
                      "no"});
    }
    return rows;
  }
};
OPINDYN_REGISTER_SCENARIO(GossipVsUnilateralScenario)

}  // namespace

void register_builtin_scenarios() {
  // Registration happens through the file-level registrars above when
  // this translation unit is linked; referencing this symbol from the
  // runner keeps the unit alive in static-library builds.
}

}  // namespace engine
}  // namespace opindyn
