// Built-in scenarios: the paper's two averaging processes and their lazy
// and k-sample variants, the related-work dynamics (all first-class
// AveragingProcess kinds in src/core/ now -- voter, gossip, DeGroot,
// Friedkin-Johnsen, weighted-median, Hegselmann-Krause), the comparison
// races the benches used to hand-roll, and the streaming tail /
// trajectory workloads.  Each scenario self-registers, so `opindyn
// list` and the batch runner discover them by name.
//
// Single-model scenarios force their own ModelKind through
// config_for_kind (which also drops knobs the kind does not read); the
// cross_model scenario honours `model=` verbatim, so `model` is a legal
// sweep axis there.
//
// Scenarios run in two phases (see scenario.h): start() submits replica
// batches to the shared CellScheduler without blocking -- heavy per-cell
// analysis (spectra, deterministic baselines) is wrapped in one-replica
// batches so it runs on the pool too -- and the returned fold formats
// rows once the runner reaches the cell in emission order.  Batch bodies
// capture the RunInput by value: it only holds references to the
// runner-owned cell context, which outlives the batch.
#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/core/coalescing.h"
#include "src/core/degroot.h"
#include "src/core/friedkin_johnsen.h"
#include "src/core/gossip_model.h"
#include "src/core/hegselmann_krause_model.h"
#include "src/core/voter_model.h"
#include "src/core/convergence.h"
#include "src/core/model.h"
#include "src/core/theory.h"
#include "src/engine/scenario.h"
#include "src/engine/scenario_format.h"
#include "src/graph/algorithms.h"
#include "src/spectral/spectra.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace engine {
namespace {

/// Aggregated eps-convergence statistics of one averaging-process
/// configuration (replica r uses stream fork(subseed(seed, salt), r), so
/// every sub-experiment of a scenario gets its own independent stream
/// family).
struct AveragingSummary {
  RunningStats value;
  RunningStats steps;
  std::int64_t diverged = 0;
};

std::shared_ptr<ReplicaBatch> submit_averaging(const RunInput& in,
                                               const ModelConfig& config,
                                               std::uint64_t salt = 0) {
  const ExperimentSpec& spec = in.spec;
  return in.scheduler.submit(
      spec.replicas, salt == 0 ? spec.seed : subseed(spec.seed, salt), 3,
      [in, config](std::int64_t, Rng& rng, std::span<double> out,
                   RowEmitter&) {
        auto process = make_process(in.graph, config, in.initial);
        const ConvergenceResult res =
            run_until_converged(*process, rng, in.spec.convergence);
        out[0] = res.final_value;
        out[1] = static_cast<double>(res.steps);
        out[2] = res.converged ? 0.0 : 1.0;
      });
}

AveragingSummary fold_averaging(ReplicaBatch& batch) {
  const std::vector<RunningStats>& stats = batch.stats();
  AveragingSummary summary;
  summary.value = stats[0];
  summary.steps = stats[1];
  summary.diverged = static_cast<std::int64_t>(std::llround(stats[2].sum()));
  return summary;
}

std::vector<std::string> averaging_columns() {
  return {"E[F]", "+-CI(F)", "Var(F)", "T_eps", "+-CI(T)", "diverged"};
}

std::vector<std::string> averaging_row(const AveragingSummary& s) {
  return {fmt(s.value.mean()),
          fmt(s.value.mean_ci_halfwidth(), 3),
          fmt_sci(s.value.population_variance(), 3),
          fmt_fixed(s.steps.mean(), 1),
          fmt_fixed(s.steps.mean_ci_halfwidth(), 1),
          std::to_string(s.diverged)};
}

/// One batch that folds a single configured averaging run into one row.
CellFold averaging_fold(const RunInput& in, const ModelConfig& config) {
  auto batch = submit_averaging(in, config);
  return [batch] {
    return CellRows{{averaging_row(fold_averaging(*batch))}, {}};
  };
}

/// NodeModel (Definition 2.1) run to eps-convergence.
class NodeScenario final : public Scenario {
 public:
  std::string name() const override { return "node"; }
  std::string description() const override {
    return "NodeModel (Def 2.1): random node averages with k sampled "
           "neighbours; reports F and T_eps (Thm 2.2).";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  CellFold start(const RunInput& in) const override {
    return averaging_fold(in, config_for_kind(in.spec.model,
                                              ModelKind::node));
  }
};
OPINDYN_REGISTER_SCENARIO(NodeScenario)

/// EdgeModel (Definition 2.3) run to eps-convergence.
class EdgeScenario final : public Scenario {
 public:
  std::string name() const override { return "edge"; }
  std::string description() const override {
    return "EdgeModel (Def 2.3): one endpoint of a random arc moves "
           "toward the other; reports F and T_eps (Thm 2.4).";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  CellFold start(const RunInput& in) const override {
    return averaging_fold(in, config_for_kind(in.spec.model,
                                              ModelKind::edge));
  }
};
OPINDYN_REGISTER_SCENARIO(EdgeScenario)

/// Lazy NodeModel: each step is a fair-coin no-op (the Appendix-B
/// analysis variant; doubles T_eps, leaves F unchanged).
class LazyScenario final : public Scenario {
 public:
  std::string name() const override { return "lazy"; }
  std::string description() const override {
    return "Lazy NodeModel: fair-coin no-op per step (Prop B.1 variant); "
           "same F, ~2x T_eps.";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = config_for_kind(in.spec.model, ModelKind::node);
    config.lazy = true;
    return averaging_fold(in, config);
  }
};
OPINDYN_REGISTER_SCENARIO(LazyScenario)

/// Both processes on the same input, side by side.
class NodeVsEdgeScenario final : public Scenario {
 public:
  std::string name() const override { return "node_vs_edge"; }
  std::string description() const override {
    return "NodeModel vs EdgeModel on the same graph and xi(0): "
           "convergence times and Var(F) side by side.";
  }
  std::vector<std::string> columns() const override {
    return {"T node", "T edge", "T node/edge", "Var(F) node",
            "Var(F) edge"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig node = config_for_kind(in.spec.model, ModelKind::node);
    const ModelConfig edge = config_for_kind(in.spec.model, ModelKind::edge);
    auto node_batch = submit_averaging(in, node, 0);
    auto edge_batch = submit_averaging(in, edge, 1);
    return [node_batch, edge_batch] {
      const AveragingSummary ns = fold_averaging(*node_batch);
      const AveragingSummary es = fold_averaging(*edge_batch);
      return CellRows{
          {{fmt_fixed(ns.steps.mean(), 1), fmt_fixed(es.steps.mean(), 1),
            fmt_fixed(ns.steps.mean() / es.steps.mean(), 3),
            fmt_sci(ns.value.population_variance(), 3),
            fmt_sci(es.value.population_variance(), 3)}},
          {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(NodeVsEdgeScenario)

/// Submits the spectral Prop. B.1 prediction of a NodeModel cell as a
/// one-replica batch, so the O(n^3) eigensolve runs on the pool
/// alongside the replicas instead of serialising the cells.
/// Metrics: [0] = 1 - lambda2(P), [1] = predicted T, [2] = theorem scale.
std::shared_ptr<ReplicaBatch> submit_node_prediction(
    const RunInput& in, const ModelConfig& config) {
  return in.scheduler.submit(
      1, subseed(in.spec.seed, 0x9d), 3,
      [in, config](std::int64_t, Rng&, std::span<double> out, RowEmitter&) {
        const WalkSpectrum& spectrum = in.spectra.walk();
        OpinionState probe(in.graph, in.initial);
        out[0] = spectrum.gap;
        out[1] = theory::steps_to_epsilon(
            theory::node_model_rho(spectrum.lambda2, config.alpha, config.k,
                                   in.graph.node_count(), config.lazy),
            probe.phi_exact(), in.spec.convergence.epsilon);
        double norm = 0.0;
        for (const double x : in.initial) {
          norm += x * x;
        }
        out[2] = theory::node_convergence_bound(
            in.graph.node_count(), norm, in.spec.convergence.epsilon,
            spectrum.lambda2);
      });
}

/// NodeModel T_eps against the Prop. B.1 prediction -- sweep k to get the
/// remark after Theorem 2.2 ((1 + 1/k) dependence).
class KAblationScenario final : public Scenario {
 public:
  std::string name() const override { return "k_ablation"; }
  std::string description() const override {
    return "NodeModel T_eps vs the Prop B.1 prediction; sweep k (and "
           "sampling) for the remark after Thm 2.2.";
  }
  std::vector<std::string> columns() const override {
    return {"T_eps", "+-CI(T)", "T predicted (B.1)", "measured/predicted"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config =
        config_for_kind(in.spec.model, ModelKind::node);
    auto measured = submit_averaging(in, config);
    auto prediction = submit_node_prediction(in, config);
    return [measured, prediction] {
      const AveragingSummary s = fold_averaging(*measured);
      const double predicted = prediction->sample(0, 1);
      return CellRows{{{fmt_fixed(s.steps.mean(), 1),
                        fmt_fixed(s.steps.mean_ci_halfwidth(), 1),
                        fmt_fixed(predicted, 1),
                        fmt_fixed(s.steps.mean() / predicted, 3)}},
                      {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(KAblationScenario)

/// NodeModel convergence against both the exact B.1 prediction and the
/// Theorem 2.2(1) scale n log(n ||xi||^2 / eps) / (1 - lambda2(P)) --
/// the engine port of bench_thm22_convergence; sweep graph / n / alpha /
/// k to reproduce its three tables.
class Thm22ConvergenceScenario final : public Scenario {
 public:
  std::string name() const override { return "thm22_convergence"; }
  std::string description() const override {
    return "Thm 2.2(1): NodeModel T_eps vs the exact B.1 prediction and "
           "the theorem's n log(n||xi||^2/eps)/(1-lambda2) scale.";
  }
  std::vector<std::string> columns() const override {
    return {"1-l2(P)", "T measured", "+-CI(T)", "T predicted (B.1)",
            "theorem scale", "meas/pred"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config =
        config_for_kind(in.spec.model, ModelKind::node);
    auto measured = submit_averaging(in, config);
    auto prediction = submit_node_prediction(in, config);
    return [measured, prediction] {
      const AveragingSummary s = fold_averaging(*measured);
      const double predicted = prediction->sample(0, 1);
      return CellRows{{{fmt_sci(prediction->sample(0, 0), 2),
                        fmt_fixed(s.steps.mean(), 0),
                        fmt_fixed(s.steps.mean_ci_halfwidth(), 0),
                        fmt_fixed(predicted, 0),
                        fmt_fixed(prediction->sample(0, 2), 0),
                        fmt_fixed(s.steps.mean() / predicted, 3)}},
                      {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(Thm22ConvergenceScenario)

/// The w.h.p. tail of Theorems 2.2(1)/2.4(1): per-replica T_eps rows
/// (the first streaming consumer) plus quantiles normalised by the
/// median for both models -- the engine port of bench_whp_tail.
class WhpTailScenario final : public Scenario {
 public:
  std::string name() const override { return "whp_tail"; }
  std::string description() const override {
    return "WHP tail of T_eps (Thms 2.2/2.4): per-replica convergence "
           "times streamed as rows; quantiles over the median per model.";
  }
  std::vector<std::string> columns() const override {
    return {"model", "median T", "q90/median", "q99/median", "max/median"};
  }
  std::vector<std::string> row_columns() const override {
    return {"model", "replica", "T_eps", "T/median"};
  }
  CellFold start(const RunInput& in) const override {
    std::array<std::shared_ptr<ReplicaBatch>, 2> batches;
    for (int i = 0; i < 2; ++i) {
      const ModelKind kind = i == 0 ? ModelKind::node : ModelKind::edge;
      const ModelConfig config = config_for_kind(in.spec.model, kind);
      // The EdgeModel tail analysis (Prop. D.1) is stated for the plain
      // potential, as in the original bench.
      ConvergenceOptions convergence = in.spec.convergence;
      convergence.use_plain_potential =
          kind == ModelKind::edge || convergence.use_plain_potential;
      batches[i] = in.scheduler.submit(
          in.spec.replicas,
          i == 0 ? in.spec.seed : subseed(in.spec.seed, 1), 1,
          [in, config, convergence](std::int64_t, Rng& rng,
                                    std::span<double> out, RowEmitter&) {
            auto process = make_process(in.graph, config, in.initial);
            out[0] = static_cast<double>(
                run_until_converged(*process, rng, convergence).steps);
          });
    }
    const bool stream_rows = in.stream_rows;
    return [batches, stream_rows] {
      CellRows rows;
      for (int i = 0; i < 2; ++i) {
        const std::string model = i == 0 ? "NodeModel" : "EdgeModel";
        ReplicaBatch& batch = *batches[i];
        std::vector<double> times(batch.samples());
        std::sort(times.begin(), times.end());
        const auto quantile = [&times](double q) {
          return times[static_cast<std::size_t>(
              q * static_cast<double>(times.size()))];
        };
        const double median = times[times.size() / 2];
        rows.aggregate.push_back({model, fmt_fixed(median, 0),
                                  fmt_fixed(quantile(0.90) / median, 3),
                                  fmt_fixed(quantile(0.99) / median, 3),
                                  fmt_fixed(times.back() / median, 3)});
        if (!stream_rows) {
          continue;
        }
        for (std::int64_t r = 0; r < batch.replicas(); ++r) {
          const double t = batch.sample(r, 0);
          rows.replica.push_back({model, std::to_string(r),
                                  fmt_fixed(t, 0),
                                  fmt_fixed(t / median, 4)});
        }
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(WhpTailScenario)

/// Streams the NodeModel martingale M(t) and potential phi(t) at fixed
/// checkpoints for every replica -- the trajectory / histogram workload
/// behind Fig. 1-style decay plots.  Checkpoints run every
/// `check-interval` steps (0 = n/4) up to `horizon` (0 = 16n).
class TrajectoryScenario final : public Scenario {
 public:
  std::string name() const override { return "trajectory"; }
  std::string description() const override {
    return "Streams per-replica (step, M, phi) rows every check-interval "
           "steps up to horizon; aggregates the final state.";
  }
  std::vector<std::string> columns() const override {
    return {"rows/replica", "final E[M]", "final E[phi]"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "step", "M", "phi"};
  }
  CellFold start(const RunInput& in) const override {
    const std::int64_t n = in.graph.node_count();
    const std::int64_t horizon =
        in.spec.horizon > 0 ? in.spec.horizon : 16 * n;
    const std::int64_t stride = in.spec.convergence.check_interval > 0
                                    ? in.spec.convergence.check_interval
                                    : std::max<std::int64_t>(1, n / 4);
    const ModelConfig config =
        config_for_kind(in.spec.model, ModelKind::node);
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 2,
        [in, config, horizon, stride](std::int64_t, Rng& rng,
                                      std::span<double> out,
                                      RowEmitter& rows) {
          auto process = make_process(in.graph, config, in.initial);
          for (std::int64_t t = 0; t <= horizon; t += stride) {
            process->step_burst(rng, t - process->time());
            if (in.stream_rows) {
              rows.emit({std::to_string(t),
                         fmt(process->state().weighted_average()),
                         fmt_sci(process->state().phi_exact(), 4)});
            }
          }
          out[0] = process->state().weighted_average();
          out[1] = process->state().phi_exact();
          metrics::count("engine.steps", process->time());
        });
    const std::int64_t per_replica = horizon / stride + 1;
    return [batch, per_replica] {
      const std::vector<RunningStats>& stats = batch->stats();
      CellRows rows;
      rows.aggregate.push_back({std::to_string(per_replica),
                                fmt(stats[0].mean()),
                                fmt_sci(stats[1].mean(), 4)});
      for (StreamedRow& streamed : batch->take_streamed_rows()) {
        std::vector<std::string> cells{std::to_string(streamed.replica)};
        cells.insert(cells.end(),
                     std::make_move_iterator(streamed.cells.begin()),
                     std::make_move_iterator(streamed.cells.end()));
        rows.replica.push_back(std::move(cells));
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(TrajectoryScenario)

/// The value-coded initial state of the discrete scenarios: n distinct
/// opinions 0..n-1 (VoterModel assigns dense ids by value, so these are
/// the classic all-distinct voter start).
std::vector<double> distinct_opinions(const Graph& graph) {
  std::vector<double> opinions(
      static_cast<std::size_t>(graph.node_count()));
  for (std::size_t u = 0; u < opinions.size(); ++u) {
    opinions[u] = static_cast<double>(u);
  }
  return opinions;
}

/// Exact-stopping convergence options for the discrete models: checking
/// VoterModel::converged (distinct-count == 1, an O(1) read) every step
/// reports the true consensus time instead of an interval-rounded one,
/// and consumes the identical rng stream as the per-step loop.
ConvergenceOptions per_step_convergence(const ExperimentSpec& spec) {
  ConvergenceOptions convergence = spec.convergence;
  convergence.check_interval = 1;
  return convergence;
}

/// Discrete voter model run to consensus, through the same
/// AveragingProcess machinery as every other kind.
class VoterScenario final : public Scenario {
 public:
  std::string name() const override { return "voter"; }
  std::string description() const override {
    return "Voter model: n distinct opinions to consensus "
           "(the k=1, alpha=0 special case of Def 2.1).";
  }
  std::vector<std::string> columns() const override {
    return {"consensus T", "+-CI(T)", "consensus rate"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config =
        config_for_kind(in.spec.model, ModelKind::voter);
    const ConvergenceOptions convergence = per_step_convergence(in.spec);
    const std::vector<double> opinions = distinct_opinions(in.graph);
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 2,
        [in, config, convergence, opinions](std::int64_t, Rng& rng,
                                            std::span<double> out,
                                            RowEmitter&) {
          auto process = make_process(in.graph, config, opinions);
          const ConvergenceResult res =
              run_until_converged(*process, rng, convergence);
          if (res.converged) {
            out[0] = static_cast<double>(res.steps);
          }
          out[1] = res.converged ? 1.0 : 0.0;
        });
    return [batch] {
      const std::vector<RunningStats>& stats = batch->stats();
      return CellRows{{{fmt_fixed(stats[0].mean(), 1),
                        fmt_fixed(stats[0].mean_ci_halfwidth(), 1),
                        fmt_fixed(stats[1].mean(), 3)}},
                      {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(VoterScenario)

/// Coordinated pairwise gossip baseline (Boyd et al.).
class GossipScenario final : public Scenario {
 public:
  std::string name() const override { return "gossip"; }
  std::string description() const override {
    return "Pairwise-averaging gossip baseline: doubly stochastic, "
           "preserves Avg exactly (Var(F) = 0).";
  }
  std::vector<std::string> columns() const override {
    return {"E[F]", "Var(F)", "T_eps", "+-CI(T)", "avg drift"};
  }
  CellFold start(const RunInput& in) const override {
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 3,
        [in](std::int64_t, Rng& rng, std::span<double> out, RowEmitter&) {
          const GossipRunResult res = run_gossip_to_convergence(
              in.graph, in.initial, rng, in.spec.convergence.epsilon,
              in.spec.convergence.max_steps);
          out[0] = res.final_value;
          out[1] = static_cast<double>(res.steps);
          out[2] = res.average_drift;
        });
    return [batch] {
      const std::vector<RunningStats>& stats = batch->stats();
      return CellRows{
          {{fmt(stats[0].mean()), fmt_sci(stats[0].population_variance(), 3),
            fmt_fixed(stats[1].mean(), 1),
            fmt_fixed(stats[1].mean_ci_halfwidth(), 1),
            fmt_sci(stats[2].mean(), 2)}},
          {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(GossipScenario)

/// DeGroot baseline: synchronous and deterministic, so one run suffices
/// (wrapped in a one-replica batch so the cell still runs on the pool).
class DeGrootScenario final : public Scenario {
 public:
  std::string name() const override { return "degroot"; }
  std::string description() const override {
    return "DeGroot baseline (Section 3): deterministic synchronous "
           "rounds to the degree-weighted average, zero variance.";
  }
  std::vector<std::string> columns() const override {
    return {"rounds", "limit", "|limit - M(0)|", "final spread"};
  }
  CellFold start(const RunInput& in) const override {
    auto batch = in.scheduler.submit(
        1, in.spec.seed, 4,
        [in](std::int64_t, Rng&, std::span<double> out, RowEmitter&) {
          DeGrootModel model(in.graph, in.initial, /*lazy=*/true);
          const double eps = in.spec.convergence.epsilon;
          const std::int64_t max_rounds = in.spec.convergence.max_steps;
          while (model.discrepancy() > eps && model.rounds() < max_rounds) {
            model.round();
          }
          const double m0 = degree_weighted_average(in.graph, in.initial);
          out[0] = static_cast<double>(model.rounds());
          out[1] = model.values()[0];
          out[2] = std::abs(model.values()[0] - m0);
          out[3] = model.discrepancy();
        });
    return [batch] {
      return CellRows{
          {{std::to_string(
                static_cast<std::int64_t>(batch->sample(0, 0))),
            fmt(batch->sample(0, 1)), fmt_sci(batch->sample(0, 2), 2),
            fmt_sci(batch->sample(0, 3), 2)}},
          {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(DeGrootScenario)

/// Friedkin-Johnsen baseline: converges to persistent disagreement.
/// `alpha` doubles as the susceptibility lambda.
class FriedkinJohnsenScenario final : public Scenario {
 public:
  std::string name() const override { return "friedkin_johnsen"; }
  std::string description() const override {
    return "Friedkin-Johnsen baseline (Section 3): stubborn agents, "
           "no consensus; alpha is the susceptibility lambda.";
  }
  std::vector<std::string> columns() const override {
    return {"rounds", "mean z*", "z* spread", "final distance"};
  }
  CellFold start(const RunInput& in) const override {
    auto batch = in.scheduler.submit(
        1, in.spec.seed, 4,
        [in](std::int64_t, Rng&, std::span<double> out, RowEmitter&) {
          FriedkinJohnsen model(in.graph, in.initial, in.spec.model.alpha);
          const std::vector<double> star = model.equilibrium();
          const double eps = in.spec.convergence.epsilon;
          const std::int64_t max_rounds = in.spec.convergence.max_steps;
          while (model.distance_to(star) > eps &&
                 model.rounds() < max_rounds) {
            model.round();
          }
          double lo = star[0];
          double hi = star[0];
          double mean = 0.0;
          for (const double z : star) {
            lo = std::min(lo, z);
            hi = std::max(hi, z);
            mean += z / static_cast<double>(star.size());
          }
          out[0] = static_cast<double>(model.rounds());
          out[1] = mean;
          out[2] = hi - lo;
          out[3] = model.distance_to(star);
        });
    return [batch] {
      return CellRows{
          {{std::to_string(
                static_cast<std::int64_t>(batch->sample(0, 0))),
            fmt(batch->sample(0, 1)), fmt(batch->sample(0, 2)),
            fmt_sci(batch->sample(0, 3), 2)}},
          {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(FriedkinJohnsenScenario)

/// The Section-2 remark race: voter model and coalescing walks vs the
/// NodeModel run to eps = 1/n^2 (so eps and K are poly(n)).
class AveragingVsVoterScenario final : public Scenario {
 public:
  std::string name() const override { return "averaging_vs_voter"; }
  std::string description() const override {
    return "Race: voter consensus + coalescing walks vs NodeModel to "
           "eps = 1/n^2; speed-up ~ n/log n (Section 2 remark).";
  }
  std::vector<std::string> columns() const override {
    return {"voter T", "coalescence T", "averaging T", "speed-up",
            "n/log n"};
  }
  CellFold start(const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    const double n = static_cast<double>(in.graph.node_count());

    const ModelConfig voter_config =
        config_for_kind(spec.model, ModelKind::voter);
    const ConvergenceOptions voter_convergence = per_step_convergence(spec);
    const std::vector<double> opinions = distinct_opinions(in.graph);
    auto voter = in.scheduler.submit(
        spec.replicas, subseed(spec.seed, 1), 1,
        [in, voter_config, voter_convergence, opinions](
            std::int64_t, Rng& rng, std::span<double> out, RowEmitter&) {
          auto process = make_process(in.graph, voter_config, opinions);
          const ConvergenceResult res =
              run_until_converged(*process, rng, voter_convergence);
          if (res.converged) {
            out[0] = static_cast<double>(res.steps);
          }
        });

    auto coalescence = in.scheduler.submit(
        spec.replicas, subseed(spec.seed, 2), 1,
        [in](std::int64_t, Rng& rng, std::span<double> out, RowEmitter&) {
          const CoalescenceResult res = run_to_coalescence(
              in.graph, rng, in.spec.convergence.max_steps);
          if (res.coalesced) {
            out[0] = static_cast<double>(res.steps);
          }
        });

    const ModelConfig config = config_for_kind(spec.model, ModelKind::node);
    ConvergenceOptions convergence = spec.convergence;
    convergence.epsilon = 1.0 / (n * n);
    auto averaging = in.scheduler.submit(
        spec.replicas, spec.seed, 1,
        [in, config, convergence](std::int64_t, Rng& rng,
                                  std::span<double> out, RowEmitter&) {
          auto process = make_process(in.graph, config, in.initial);
          out[0] = static_cast<double>(
              run_until_converged(*process, rng, convergence).steps);
        });

    return [voter, coalescence, averaging, n] {
      const double voter_mean = voter->stats()[0].mean();
      const double averaging_mean = averaging->stats()[0].mean();
      return CellRows{
          {{fmt_fixed(voter_mean, 1),
            fmt_fixed(coalescence->stats()[0].mean(), 1),
            fmt_fixed(averaging_mean, 1),
            fmt_fixed(voter_mean / averaging_mean, 2),
            fmt_fixed(n / std::log(n), 2)}},
          {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(AveragingVsVoterScenario)

/// The Section-1 "price of simplicity" comparison: three rows per work
/// item (gossip / NodeModel / EdgeModel) on the same input.
class GossipVsUnilateralScenario final : public Scenario {
 public:
  std::string name() const override { return "gossip_vs_unilateral"; }
  std::string description() const override {
    return "Price of simplicity (Section 1): coordinated gossip "
           "(Var = 0) vs the unilateral models (Var ~ Prop 5.8).";
  }
  std::vector<std::string> columns() const override {
    return {"protocol", "E[F]", "Var(F)", "T_eps", "predicted Var (P5.8)",
            "coordinated?"};
  }
  CellFold start(const RunInput& in) const override {
    const ExperimentSpec& spec = in.spec;
    const ModelConfig gossip_config =
        config_for_kind(spec.model, ModelKind::gossip);
    // Gossip preserves Avg exactly, so its stopping rule is stated for
    // the plain potential (as the original hand-rolled bench did).
    ConvergenceOptions gossip_convergence = spec.convergence;
    gossip_convergence.use_plain_potential = true;
    auto gossip = in.scheduler.submit(
        spec.replicas, subseed(spec.seed, 1), 2,
        [in, gossip_config, gossip_convergence](
            std::int64_t, Rng& rng, std::span<double> out, RowEmitter&) {
          auto process = make_process(in.graph, gossip_config, in.initial);
          const ConvergenceResult res =
              run_until_converged(*process, rng, gossip_convergence);
          out[0] = res.final_value;
          out[1] = static_cast<double>(res.steps);
        });

    const ModelConfig node = config_for_kind(spec.model, ModelKind::node);
    const ModelConfig edge = config_for_kind(spec.model, ModelKind::edge);
    auto node_batch = submit_averaging(in, node, 0);
    auto edge_batch = submit_averaging(in, edge, 2);

    return [in, gossip, node_batch, edge_batch] {
      std::vector<std::vector<std::string>> rows;
      const std::vector<RunningStats>& gs = gossip->stats();
      rows.push_back({"pairwise gossip", fmt_sci(gs[0].mean(), 2),
                      fmt_sci(gs[0].population_variance(), 2),
                      fmt_fixed(gs[1].mean(), 1), fmt_sci(0.0, 2), "yes"});

      // Prop. 5.8 is stated for regular graphs and the NodeModel only.
      const std::string predicted =
          in.graph.is_regular()
              ? fmt_sci(theory::variance_exact(in.graph, in.spec.model.alpha,
                                               in.spec.model.k, in.initial),
                        2)
              : "n/a";
      const std::pair<const char*, std::shared_ptr<ReplicaBatch>> models[] =
          {{"NodeModel", node_batch}, {"EdgeModel", edge_batch}};
      for (const auto& [label, batch] : models) {
        const AveragingSummary s = fold_averaging(*batch);
        rows.push_back({label, fmt_sci(s.value.mean(), 2),
                        fmt_sci(s.value.population_variance(), 2),
                        fmt_fixed(s.steps.mean(), 1),
                        std::string(label) == "NodeModel" ? predicted
                                                          : "n/a",
                        "no"});
      }
      return CellRows{std::move(rows), {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(GossipVsUnilateralScenario)

/// Runs whatever `model=` selects, verbatim -- the one scenario where
/// the model kind itself is a sweep axis (`--sweep=model:node,edge,
/// voter,weighted_median`).  Aggregates the standard eps-convergence
/// columns and streams one (F, T_eps) row per replica for the
/// histogram / quantile sinks.
class CrossModelScenario final : public Scenario {
 public:
  std::string name() const override { return "cross_model"; }
  std::string description() const override {
    return "Runs the model= kind verbatim (model is a sweep axis here); "
           "aggregate F/T_eps plus per-replica streamed rows.";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "F", "T_eps"};
  }
  CellFold start(const RunInput& in) const override {
    // Validate up front so a bad model/knob combination fails before
    // any replica is scheduled (one line, to the CLI).
    validate_model_config(in.spec.model);
    const ModelConfig config = in.spec.model;
    // The discrete kinds stop on their own converged() predicate; check
    // it every step so T is exact (an O(1) read for voter).
    const ConvergenceOptions convergence =
        config.kind == ModelKind::voter ? per_step_convergence(in.spec)
                                        : in.spec.convergence;
    const std::vector<double> initial =
        config.kind == ModelKind::voter ? distinct_opinions(in.graph)
                                        : in.initial;
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 3,
        [in, config, convergence, initial](std::int64_t, Rng& rng,
                                           std::span<double> out,
                                           RowEmitter& rows) {
          auto process = make_process(in.graph, config, initial);
          const ConvergenceResult res =
              run_until_converged(*process, rng, convergence);
          out[0] = res.final_value;
          out[1] = static_cast<double>(res.steps);
          out[2] = res.converged ? 0.0 : 1.0;
          if (in.stream_rows) {
            rows.emit({fmt(res.final_value),
                       std::to_string(res.steps)});
          }
        });
    return [batch] {
      CellRows rows{{averaging_row(fold_averaging(*batch))}, {}};
      for (StreamedRow& streamed : batch->take_streamed_rows()) {
        std::vector<std::string> cells{std::to_string(streamed.replica)};
        cells.insert(cells.end(),
                     std::make_move_iterator(streamed.cells.begin()),
                     std::make_move_iterator(streamed.cells.end()));
        rows.replica.push_back(std::move(cells));
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(CrossModelScenario)

/// Weighted-median dynamics (arXiv:1909.06474) run to eps-convergence:
/// the median is not an average, so F concentrates differently and the
/// centered potential can stall on bimodal inputs -- watch `diverged`.
class WeightedMedianScenario final : public Scenario {
 public:
  std::string name() const override { return "weighted_median"; }
  std::string description() const override {
    return "Weighted-median dynamics: random node moves to the lower "
           "median of k sampled neighbours; reports F and T_eps.";
  }
  std::vector<std::string> columns() const override {
    return averaging_columns();
  }
  CellFold start(const RunInput& in) const override {
    return averaging_fold(
        in, config_for_kind(in.spec.model, ModelKind::weighted_median));
  }
};
OPINDYN_REGISTER_SCENARIO(WeightedMedianScenario)

/// Hegselmann-Krause bounded confidence (arXiv:1910.14465) over a fixed
/// horizon: HK fragments into clusters instead of converging, so the
/// interesting read is the cluster count, not T_eps.
class HegselmannKrauseScenario final : public Scenario {
 public:
  std::string name() const override { return "hegselmann_krause"; }
  std::string description() const override {
    return "Hegselmann-Krause bounded confidence: cluster count and "
           "spread after a fixed horizon; confidence= sets the bound.";
  }
  std::vector<std::string> columns() const override {
    return {"E[clusters]", "+-CI(clusters)", "E[spread]", "E[F]"};
  }
  CellFold start(const RunInput& in) const override {
    const std::int64_t n = in.graph.node_count();
    const std::int64_t horizon =
        in.spec.horizon > 0 ? in.spec.horizon : 16 * n;
    HegselmannKrauseParams params;
    // A spec that never mentions confidence= still runs: fall back to
    // the params default instead of rejecting confidence == 0.
    if (in.spec.model.confidence > 0.0) {
      params.confidence = in.spec.model.confidence;
    }
    params.lazy = in.spec.model.lazy;
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 3,
        [in, params, horizon](std::int64_t, Rng& rng,
                              std::span<double> out, RowEmitter&) {
          HegselmannKrauseModel model(in.graph, in.initial, params);
          model.step_burst(rng, horizon);
          out[0] = static_cast<double>(model.cluster_count());
          out[1] = model.state().discrepancy();
          out[2] = model.state().weighted_average();
          metrics::count("engine.steps", horizon);
        });
    return [batch] {
      const std::vector<RunningStats>& stats = batch->stats();
      return CellRows{{{fmt_fixed(stats[0].mean(), 2),
                        fmt_fixed(stats[0].mean_ci_halfwidth(), 2),
                        fmt_sci(stats[1].mean(), 3),
                        fmt(stats[2].mean())}},
                      {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(HegselmannKrauseScenario)

}  // namespace

void register_builtin_scenarios() {
  // Registration happens through the file-level registrars above when
  // this translation unit is linked; referencing this symbol from the
  // runner keeps the unit alive in static-library builds.
  register_paper_scenarios();
}

}  // namespace engine
}  // namespace opindyn
