#include "src/engine/run_report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include <sys/resource.h>

#include "src/support/build_info.h"

namespace opindyn {
namespace engine {
namespace {

/// The spec echo: to_key_values round-trips the spec exactly, so the
/// report carries full provenance as a key -> string object in schema
/// key order.
json::Value spec_echo(const ExperimentSpec& spec) {
  json::Object echo;
  std::istringstream lines(to_key_values(spec));
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    echo.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return json::Value(std::move(echo));
}

json::Value counter_object(
    const std::map<std::string, std::int64_t>& counters) {
  json::Object out;
  for (const auto& [name, value] : counters) {
    out.emplace_back(name, value);
  }
  return json::Value(std::move(out));
}

json::Value timing_object(const std::map<std::string, double>& timings) {
  json::Object out;
  for (const auto& [name, ms] : timings) {
    out.emplace_back(name, ms);
  }
  return json::Value(std::move(out));
}

}  // namespace

json::Value build_run_report(const ExperimentSpec& spec,
                             const BatchResult& result,
                             const FoldedMetrics& folded,
                             const RunReportOptions& options) {
  json::Object report;
  report.emplace_back("schema", "opindyn-run-report-v1");
  report.emplace_back("scenario", spec.scenario);
  report.emplace_back("seed", spec.seed);
  report.emplace_back("threads", spec.threads);
  // Early in the report so a partial run's manifest is unmistakable:
  // true means the batch was cancelled (SIGINT, deadline) and the rows
  // below cover only the flushed prefix of cells.
  report.emplace_back("interrupted", result.interrupted);
  if (result.interrupted) {
    report.emplace_back("interrupt_reason", result.interrupt_reason);
  }
  report.emplace_back("spec", spec_echo(spec));
  report.emplace_back("build", build_info_json());
  report.emplace_back("counters", counter_object(folded.counters));

  // Per-cell table: the grid-order summaries joined with the labeled
  // counters the scheduler attributed to "cell/<index>".  Counter cells
  // are deterministic; the busy-time column is wall clock and follows
  // include_timings.
  json::Array cells;
  for (const CellSummary& cell : result.cells) {
    json::Object row;
    row.emplace_back("label", cell.label);
    row.emplace_back("graph", cell.graph);
    row.emplace_back("n", cell.n);
    row.emplace_back("replicas", cell.replicas);
    json::Object overrides;
    for (const auto& [key, value] : cell.overrides) {
      overrides.emplace_back(key, value);
    }
    row.emplace_back("overrides", std::move(overrides));
    const auto labeled = folded.labeled.find(cell.label);
    row.emplace_back("counters",
                     labeled != folded.labeled.end()
                         ? counter_object(labeled->second)
                         : json::Value(json::Object{}));
    if (options.include_timings) {
      const auto busy = folded.label_busy_us.find(cell.label);
      row.emplace_back("busy_ms",
                       busy != folded.label_busy_us.end()
                           ? static_cast<double>(busy->second) / 1000.0
                           : 0.0);
    }
    cells.push_back(json::Value(std::move(row)));
  }
  report.emplace_back("cells", std::move(cells));

  json::Object result_block;
  result_block.emplace_back("work_items", result.work_items);
  result_block.emplace_back("rows", result.rows.size());
  result_block.emplace_back("replica_rows", result.replica_rows.size());
  result_block.emplace_back("graphs_built", result.graphs_built);
  result_block.emplace_back("graph_cache_hits", result.graph_cache_hits);
  result_block.emplace_back("spectra_solved", result.spectra_solved);
  result_block.emplace_back("spectra_hits", result.spectra_hits);
  report.emplace_back("result", std::move(result_block));

  // Cache statistics (per-batch deltas plus the end-of-batch resident
  // footprint), one sub-object per cache so LRU behaviour -- invisible
  // in the counters above -- is observable per job and per sweep.
  json::Object graph_cache;
  graph_cache.emplace_back("hits", result.graph_cache_hits);
  graph_cache.emplace_back("misses", result.graphs_built);
  graph_cache.emplace_back("evictions", result.graph_cache_evictions);
  graph_cache.emplace_back("resident_bytes",
                           result.graph_cache_resident_bytes);
  json::Object spectrum_cache;
  spectrum_cache.emplace_back("record_hits", result.spectrum_record_hits);
  spectrum_cache.emplace_back("record_misses",
                              result.spectrum_record_misses);
  spectrum_cache.emplace_back("eigensolves", result.spectra_solved);
  spectrum_cache.emplace_back("spectrum_hits", result.spectra_hits);
  spectrum_cache.emplace_back("evictions",
                              result.spectrum_cache_evictions);
  spectrum_cache.emplace_back("resident_bytes",
                              result.spectrum_cache_resident_bytes);
  json::Object caches;
  caches.emplace_back("graph", std::move(graph_cache));
  caches.emplace_back("spectrum", std::move(spectrum_cache));
  report.emplace_back("caches", std::move(caches));

  if (options.include_timings) {
    report.emplace_back("timings_ms", timing_object(folded.timings_ms));
    report.emplace_back("gauges", counter_object(folded.gauges));
    json::Array workers;
    for (const WorkerReport& worker : folded.workers) {
      json::Object row;
      row.emplace_back("worker", worker.worker);
      row.emplace_back("spans", worker.spans);
      row.emplace_back("busy_ms",
                       static_cast<double>(worker.busy_us) / 1000.0);
      workers.push_back(json::Value(std::move(row)));
    }
    report.emplace_back("workers", std::move(workers));

    const auto steps = folded.counters.find("engine.steps");
    const std::int64_t total_steps =
        steps != folded.counters.end() ? steps->second : 0;
    json::Object perf;
    perf.emplace_back("wall_ms", options.wall_ms);
    perf.emplace_back("steps", total_steps);
    perf.emplace_back("steps_per_sec",
                      options.wall_ms > 0.0
                          ? static_cast<double>(total_steps) /
                                (options.wall_ms / 1000.0)
                          : 0.0);
    perf.emplace_back("peak_rss_bytes", peak_rss_bytes());
    report.emplace_back("perf", std::move(perf));
  }
  return json::Value(std::move(report));
}

json::Value build_trace_json(const FoldedMetrics& folded) {
  json::Array events;
  // Metadata first: name each worker lane so Perfetto shows "worker 0"
  // instead of bare tids.  Worker indices are buffer creation order --
  // worker 0 is the thread that drove the batch.
  for (const WorkerReport& worker : folded.workers) {
    json::Object meta;
    meta.emplace_back("name", "thread_name");
    meta.emplace_back("ph", "M");
    meta.emplace_back("pid", 0);
    meta.emplace_back("tid", worker.worker);
    json::Object args;
    args.emplace_back("name",
                      "worker " + std::to_string(worker.worker));
    meta.emplace_back("args", std::move(args));
    events.push_back(json::Value(std::move(meta)));
  }
  for (const TraceSpan& span : folded.spans) {
    json::Object event;
    event.emplace_back("name", span.name);
    event.emplace_back("cat", span.category);
    event.emplace_back("ph", "X");
    event.emplace_back("ts", span.start_us);
    event.emplace_back("dur", span.duration_us);
    event.emplace_back("pid", 0);
    event.emplace_back("tid", span.worker);
    if (span.replica >= 0) {
      json::Object args;
      args.emplace_back("replica", span.replica);
      event.emplace_back("args", std::move(args));
    }
    events.push_back(json::Value(std::move(event)));
  }
  json::Object trace;
  trace.emplace_back("traceEvents", std::move(events));
  trace.emplace_back("displayTimeUnit", "ms");
  return json::Value(std::move(trace));
}

void write_json_file(const std::string& path, const json::Value& value) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << value.dump(2) << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing '" + path + "'");
  }
}

void probe_output_path(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw std::runtime_error("cannot open '" + path +
                             "' for writing (bad directory?)");
  }
}

std::int64_t peak_rss_bytes() {
  // VmHWM ("high water mark") is the peak resident set in kB.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::int64_t kb = 0;
      if (fields >> kb) {
        return kb * 1024;
      }
    }
  }
  // Portable fallback: ru_maxrss is kilobytes on Linux.
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
  }
  return 0;
}

}  // namespace engine
}  // namespace opindyn
