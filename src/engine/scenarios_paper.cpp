// The paper-theorem scenarios: engine ports of the formerly bespoke
// bench binaries (Fig. 1/4 duality, Lemma 4.1 martingale, Lemma 5.7
// q-chain, the Thm 2.2(2)/2.4 variance suites, Prop. 5.8, and the
// Appendix-B bounds).  Each scenario follows the two-phase contract of
// scenario.h: start() submits its replica batches -- including the
// deterministic enumeration / eigensolve work, wrapped in one-replica
// batches so it runs on the pool -- and the returned fold formats rows
// in cell order.  The variance and convergence-time scenarios stream
// one row per replica (the raw F / T_eps samples), which is what the
// HistogramSink's `--hist-csv` / `--quantiles` summarize.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/diffusion.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/node_model.h"
#include "src/core/qchain.h"
#include "src/core/selection.h"
#include "src/core/theory.h"
#include "src/engine/scenario.h"
#include "src/engine/scenario_format.h"
#include "src/graph/algorithms.h"
#include "src/spectral/spectra.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace engine {
namespace {

/// "n/a" for NaN metric slots (e.g. a closed form that needs a regular
/// graph), otherwise the given formatter's output.
std::string sci_or_na(double value, int digits) {
  return std::isnan(value) ? "n/a" : fmt_sci(value, digits);
}

std::string fixed_or_na(double value, int digits) {
  return std::isnan(value) ? "n/a" : fmt_fixed(value, digits);
}

double plain_average(const std::vector<double>& xi) {
  double sum = 0.0;
  for (const double v : xi) {
    sum += v;
  }
  return sum / static_cast<double>(xi.size());
}

/// One averaging-model update applied out of place (the exact-expectation
/// helpers enumerate the selection distribution with this).
std::vector<double> apply_update(const std::vector<double>& xi,
                                 const NodeSelection& sel, double alpha) {
  std::vector<double> out = xi;
  double sum = 0.0;
  for (const NodeId v : sel.sample) {
    sum += xi[static_cast<std::size_t>(v)];
  }
  out[static_cast<std::size_t>(sel.node)] =
      alpha * xi[static_cast<std::size_t>(sel.node)] +
      (1.0 - alpha) * sum / static_cast<double>(sel.sample.size());
  return out;
}

/// Submits a batch that runs the configured model to eps-convergence;
/// metric 0 = F, metric 1 = T_eps.
std::shared_ptr<ReplicaBatch> submit_converging(
    const RunInput& in, const ModelConfig& config,
    const ConvergenceOptions& convergence, std::uint64_t salt) {
  return in.scheduler.submit(
      in.spec.replicas,
      salt == 0 ? in.spec.seed : subseed(in.spec.seed, salt), 2,
      [in, config, convergence](std::int64_t, Rng& rng,
                                std::span<double> out, RowEmitter&) {
        auto process = make_process(in.graph, config, in.initial);
        const ConvergenceResult res =
            run_until_converged(*process, rng, convergence);
        out[0] = res.final_value;
        out[1] = static_cast<double>(res.steps);
      });
}

/// Per-replica rows ["replica", fmt(metric)] out of a finished batch --
/// the streamed channel of the variance / convergence-time scenarios.
void append_replica_rows(std::vector<std::vector<std::string>>& rows,
                         ReplicaBatch& batch, std::size_t metric,
                         int digits, bool scientific) {
  for (std::int64_t r = 0; r < batch.replicas(); ++r) {
    const double v = batch.sample(r, metric);
    rows.push_back({std::to_string(r), scientific ? fmt_sci(v, digits)
                                                  : fmt_fixed(v, digits)});
  }
}

/// --- duality (Fig. 1 / Fig. 4 / Prop. 5.1) -------------------------

/// Runs the NodeModel forward on a recorded random selection sequence
/// and the Diffusion Process on the reversed sequence; Prop. 5.1 says
/// the end states agree exactly, so the per-replica max |xi(T) - W(T)|
/// must sit at machine precision for every replica.
class DualityScenario final : public Scenario {
 public:
  std::string name() const override { return "duality"; }
  std::string description() const override {
    return "Prop 5.1 duality (Figs 1/4): averaging forward on chi vs "
           "diffusion on reversed chi; max |xi(T)-W(T)| ~ 1e-16.  "
           "horizon = steps T (0 = 4n).";
  }
  std::vector<std::string> columns() const override {
    return {"steps", "max |xi-W|", "mean |xi-W|", "exact"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "max |xi-W|"};
  }
  CellFold start(const RunInput& in) const override {
    const std::int64_t steps =
        in.spec.horizon > 0 ? in.spec.horizon
                            : 4 * in.graph.node_count();
    const ModelConfig config = in.spec.model;
    auto batch = in.scheduler.submit(
        in.spec.replicas, in.spec.seed, 2,
        [in, config, steps](std::int64_t, Rng& rng, std::span<double> out,
                            RowEmitter&) {
          NodeModelParams params;
          params.alpha = config.alpha;
          params.k = config.k;
          params.lazy = config.lazy;
          params.sampling = config.sampling;
          NodeModel averaging(in.graph, in.initial, params);
          SelectionSequence sequence;
          sequence.reserve(static_cast<std::size_t>(steps));
          for (std::int64_t t = 0; t < steps; ++t) {
            sequence.push_back(averaging.step_recorded(rng));
          }
          DiffusionProcess diffusion(in.graph, config.alpha);
          diffusion.apply_reversed(sequence);
          const std::vector<double> w = diffusion.costs(in.initial);
          double max_diff = 0.0;
          double sum_diff = 0.0;
          for (NodeId u = 0; u < in.graph.node_count(); ++u) {
            const double diff =
                std::abs(averaging.state().value(u) -
                         w[static_cast<std::size_t>(u)]);
            max_diff = std::max(max_diff, diff);
            sum_diff += diff;
          }
          out[0] = max_diff;
          out[1] = sum_diff / static_cast<double>(in.graph.node_count());
        });
    const bool stream_rows = in.stream_rows;
    return [batch, steps, stream_rows] {
      const std::vector<RunningStats>& stats = batch->stats();
      CellRows rows;
      rows.aggregate.push_back(
          {std::to_string(steps), fmt_sci(stats[0].max(), 2),
           fmt_sci(stats[1].mean(), 2),
           stats[0].max() < 1e-12 ? "yes" : "NO"});
      if (stream_rows) {
        append_replica_rows(rows.replica, *batch, 0, 2, true);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(DualityScenario)

/// --- martingale (Lemma 4.1 / Prop. D.1.i) --------------------------

/// (a) Exact one-step drift of both candidate conserved quantities for
/// both models, by full enumeration of the selection distribution: the
/// NodeModel conserves the degree-weighted M, the EdgeModel the plain
/// Avg, and the contrast columns are visibly nonzero on irregular
/// graphs.  (b) Monte-Carlo E[M(T)] after `horizon` steps stays at M(0).
class MartingaleScenario final : public Scenario {
 public:
  std::string name() const override { return "martingale"; }
  std::string description() const override {
    return "Lemma 4.1: exact one-step drift of M (NodeModel) and Avg "
           "(EdgeModel) by enumeration, plus Monte-Carlo E[M(T)] at "
           "horizon (0 = 16n).  Streams per-replica M(T).";
  }
  std::vector<std::string> columns() const override {
    return {"node |E[M']-M|", "node |E[Avg']-Avg|", "edge |E[Avg']-Avg|",
            "edge |E[M']-M|", "E[M(T)]", "+-CI", "M(0)", "Var(M(T))"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "M_T"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config = in.spec.model;

    // Exact enumeration (no sampling) on the pool.  NaN marks the
    // NodeModel slots when k exceeds the minimum degree (enumeration
    // needs every node able to draw k distinct neighbours).
    auto exact = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x41), 4,
        [in, config](std::int64_t, Rng&, std::span<double> out,
                     RowEmitter&) {
          const Graph& g = in.graph;
          const std::vector<double>& xi = in.initial;
          const double m0 = degree_weighted_average(g, xi);
          const double avg0 = plain_average(xi);
          const auto drift = [&](const std::vector<WeightedSelection>&
                                     selections,
                                 double alpha) {
            double m_after = 0.0;
            double avg_after = 0.0;
            for (const WeightedSelection& ws : selections) {
              const std::vector<double> next =
                  apply_update(xi, ws.selection, alpha);
              m_after += ws.probability * degree_weighted_average(g, next);
              avg_after += ws.probability * plain_average(next);
            }
            return std::make_pair(std::abs(m_after - m0),
                                  std::abs(avg_after - avg0));
          };
          if (config.k <= g.min_degree()) {
            const auto [m_drift, avg_drift] =
                drift(enumerate_node_selections(g, config.k), config.alpha);
            out[0] = m_drift;
            out[1] = avg_drift;
          }
          const auto [m_drift, avg_drift] =
              drift(enumerate_edge_selections(g), config.alpha);
          out[2] = avg_drift;
          out[3] = m_drift;
        });

    // Monte-Carlo long-horizon drift of the NodeModel martingale.  Like
    // the enumeration, the model itself needs k distinct neighbours at
    // every node; cells with k above the minimum degree report "n/a".
    const std::int64_t horizon = in.spec.horizon > 0
                                     ? in.spec.horizon
                                     : 16 * in.graph.node_count();
    ModelConfig node = config;
    node.kind = ModelKind::node;
    const bool k_fits = config.k <= in.graph.min_degree();
    auto mc = in.scheduler.submit(
        k_fits ? in.spec.replicas : 1, in.spec.seed, 1,
        [in, node, horizon, k_fits](std::int64_t, Rng& rng,
                                    std::span<double> out, RowEmitter&) {
          if (!k_fits) {
            return;  // slot stays NaN -> "n/a" row cells
          }
          auto process = make_process(in.graph, node, in.initial);
          process->step_burst(rng, horizon - process->time());
          out[0] = process->state().weighted_average();
          metrics::count("engine.steps", process->time());
        });

    const bool stream_rows = in.stream_rows;
    return [in, exact, mc, k_fits, stream_rows] {
      const double m0 = degree_weighted_average(in.graph, in.initial);
      const std::vector<RunningStats>& stats = mc->stats();
      CellRows rows;
      rows.aggregate.push_back(
          {sci_or_na(exact->sample(0, 0), 2),
           sci_or_na(exact->sample(0, 1), 2),
           fmt_sci(exact->sample(0, 2), 2),
           fmt_sci(exact->sample(0, 3), 2),
           k_fits ? fmt_fixed(stats[0].mean(), 5) : "n/a",
           k_fits ? fmt_fixed(stats[0].mean_ci_halfwidth(), 5) : "n/a",
           fmt_fixed(m0, 5),
           k_fits ? fmt_sci(stats[0].population_variance(), 3) : "n/a"});
      if (stream_rows && k_fits) {
        append_replica_rows(rows.replica, *mc, 0, 6, false);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(MartingaleScenario)

/// --- qchain (Lemma 5.7) --------------------------------------------

/// Builds the exact n^2-state Q-chain transition matrix from the walk
/// semantics and verifies that the Lemma 5.7 closed-form stationary
/// distribution satisfies mu Q = mu to machine precision, agrees with
/// the power-iteration stationary vector, and is normalised.
class QChainScenario final : public Scenario {
 public:
  std::string name() const override { return "qchain"; }
  std::string description() const override {
    return "Lemma 5.7: closed-form three-value stationary distribution "
           "of the exact Q-chain; residual and power-iteration deviation "
           "at machine precision (regular graphs, n <= 40).";
  }
  std::vector<std::string> columns() const override {
    return {"d",    "mu0", "mu1", "mu+", "||muQ - mu||_inf",
            "max |closed - power|", "norm identity"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config = in.spec.model;
    auto batch = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x57), 6,
        [in, config](std::int64_t, Rng&, std::span<double> out,
                     RowEmitter&) {
          const Graph& g = in.graph;
          if (!g.is_regular()) {
            throw std::runtime_error(
                "scenario 'qchain': Lemma 5.7's closed form needs a "
                "regular graph, got " + g.name());
          }
          if (config.k > g.min_degree()) {
            throw std::runtime_error(
                "scenario 'qchain': k = " + std::to_string(config.k) +
                " exceeds the degree d = " +
                std::to_string(g.min_degree()));
          }
          if (g.node_count() > 40) {
            throw std::runtime_error(
                "scenario 'qchain': the dense n^2-state chain needs "
                "n <= 40, got n = " + std::to_string(g.node_count()));
          }
          QChain chain(g, config.alpha, config.k);
          const QStationaryValues values = q_stationary_closed_form(
              g.node_count(), g.min_degree(), config.k, config.alpha);
          const std::vector<double> closed =
              chain.closed_form_stationary();
          const StationaryResult numerical =
              chain.numerical_stationary(1e-13, 4000000);
          double max_dev = 0.0;
          for (std::size_t s = 0; s < closed.size(); ++s) {
            max_dev = std::max(
                max_dev, std::abs(closed[s] - numerical.distribution[s]));
          }
          const double n = static_cast<double>(g.node_count());
          const double d = static_cast<double>(g.min_degree());
          out[0] = values.mu0;
          out[1] = values.mu1;
          out[2] = values.mu_plus;
          out[3] = chain.closed_form_residual();
          out[4] = max_dev;
          out[5] = n * values.mu0 + n * d * values.mu1 +
                   n * (n - d - 1.0) * values.mu_plus;
        });
    const std::int64_t degree = in.graph.min_degree();
    return [batch, degree] {
      return CellRows{{{std::to_string(degree),
                        fmt_sci(batch->sample(0, 0), 4),
                        fmt_sci(batch->sample(0, 1), 4),
                        fmt_sci(batch->sample(0, 2), 4),
                        fmt_sci(batch->sample(0, 3), 2),
                        fmt_sci(batch->sample(0, 4), 2),
                        fmt_fixed(batch->sample(0, 5), 12)}},
                      {}};
    };
  }
};
OPINDYN_REGISTER_SCENARIO(QChainScenario)

/// --- thm22_variance (Theorem 2.2(2) / Prop. 5.8) -------------------

/// NodeModel Var(F) on regular graphs against the exact Prop. 5.8 value
/// and the Theta(||xi||^2 / n^2) envelope; streams per-replica F so the
/// histogram sink can show the shape of the limit distribution.
class Thm22VarianceScenario final : public Scenario {
 public:
  std::string name() const override { return "thm22_variance"; }
  std::string description() const override {
    return "Thm 2.2(2): NodeModel Var(F) vs the exact Prop 5.8 value and "
           "the Theta(||xi||^2/n^2) envelope; streams per-replica F.";
  }
  std::vector<std::string> columns() const override {
    return {"d",         "Var(F)",     "+-CI(Var)",
            "Var exact (P5.8)", "meas/exact", "n^2 Var / ||xi||^2",
            "envelope lo",      "envelope hi"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "F"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    auto measured =
        submit_converging(in, config, in.spec.convergence, 0);
    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x22), 3,
        [in, config](std::int64_t, Rng&, std::span<double> out,
                     RowEmitter&) {
          if (!in.graph.is_regular() ||
              config.k > in.graph.min_degree()) {
            return;  // closed form undefined; slots stay NaN -> "n/a"
          }
          const double norm = initial::l2_squared(in.initial);
          out[0] = theory::variance_exact(in.graph, config.alpha, config.k,
                                          in.initial);
          out[1] = theory::variance_lower_coeff(
                       in.graph.node_count(), in.graph.min_degree(),
                       config.k, config.alpha) * norm;
          out[2] = theory::variance_upper_coeff(
                       in.graph.node_count(), in.graph.min_degree(),
                       config.k, config.alpha) * norm;
        });
    const bool stream_rows = in.stream_rows;
    return [in, measured, prediction, stream_rows] {
      const RunningStats& value = measured->stats()[0];
      const double var = value.population_variance();
      const double exact = prediction->sample(0, 0);
      const double n = static_cast<double>(in.graph.node_count());
      const double norm = initial::l2_squared(in.initial);
      CellRows rows;
      rows.aggregate.push_back(
          {std::to_string(in.graph.min_degree()), fmt_sci(var, 3),
           fmt_sci(value.variance_ci_halfwidth(), 1), sci_or_na(exact, 3),
           fixed_or_na(var / exact, 3), fmt_fixed(var * n * n / norm, 3),
           sci_or_na(prediction->sample(0, 1), 2),
           sci_or_na(prediction->sample(0, 2), 2)});
      if (stream_rows) {
        append_replica_rows(rows.replica, *measured, 0, 4, true);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(Thm22VarianceScenario)

/// --- thm24_edge_convergence (Theorem 2.4(1)) -----------------------

/// EdgeModel eps-convergence time (plain potential, Prop. D.1) against
/// the exact D.1(ii) per-step contraction and the theorem's
/// m log(n ||xi||^2 / eps) / lambda2(L) scale; streams per-replica T.
class Thm24EdgeConvergenceScenario final : public Scenario {
 public:
  std::string name() const override { return "thm24_edge_convergence"; }
  std::string description() const override {
    return "Thm 2.4(1): EdgeModel T_eps vs the exact Prop D.1(ii) "
           "prediction and the theorem's m log(.)/lambda2(L) scale.";
  }
  std::vector<std::string> columns() const override {
    return {"m",        "lambda2(L)",        "T measured", "+-CI",
            "T predicted (D.1)", "theorem scale", "meas/pred"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "T_eps"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::edge;
    ConvergenceOptions convergence = in.spec.convergence;
    convergence.use_plain_potential = true;  // the Prop. D.1 potential
    auto measured = submit_converging(in, config, convergence, 0);
    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x24), 3,
        [in, config, convergence](std::int64_t, Rng&,
                                  std::span<double> out, RowEmitter&) {
          const LaplacianSpectrum& lap = in.spectra.laplacian();
          OpinionState probe(in.graph, in.initial);
          const double rho = theory::edge_model_rho(
              lap.lambda2, config.alpha, in.graph.edge_count(),
              config.lazy);
          out[0] = lap.lambda2;
          out[1] = theory::steps_to_epsilon(rho, probe.phi_plain_exact(),
                                            convergence.epsilon);
          out[2] = theory::edge_convergence_bound(
              in.graph.node_count(), in.graph.edge_count(),
              initial::l2_squared(in.initial), convergence.epsilon,
              lap.lambda2);
        });
    const std::int64_t m = in.graph.edge_count();
    const bool stream_rows = in.stream_rows;
    return [measured, prediction, m, stream_rows] {
      const RunningStats& steps = measured->stats()[1];
      const double predicted = prediction->sample(0, 1);
      CellRows rows;
      rows.aggregate.push_back(
          {std::to_string(m), fmt_sci(prediction->sample(0, 0), 3),
           fmt_fixed(steps.mean(), 0),
           fmt_fixed(steps.mean_ci_halfwidth(), 0),
           fmt_fixed(predicted, 0),
           fmt_fixed(prediction->sample(0, 2), 0),
           fmt_fixed(steps.mean() / predicted, 3)});
      if (stream_rows) {
        append_replica_rows(rows.replica, *measured, 1, 0, false);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(Thm24EdgeConvergenceScenario)

/// --- thm24_edge_variance (Theorem 2.4(2)) --------------------------

/// Two rows per cell: the EdgeModel and the NodeModel at k = 1 on the
/// same input.  With `init=hub_spike center=none` on irregular graphs
/// E[F] must track the *plain* Avg(0) (not the degree-weighted M(0),
/// Prop. D.1.i); on regular graphs both variances match the exact
/// Prop. 5.8 value.  Streams per-replica F for both models.
class Thm24EdgeVarianceScenario final : public Scenario {
 public:
  std::string name() const override { return "thm24_edge_variance"; }
  std::string description() const override {
    return "Thm 2.4(2): EdgeModel vs NodeModel(k=1) E[F] and Var(F); "
           "E[F] tracks Avg(0) (use init=hub_spike center=none), Var "
           "matches Prop 5.8 on regular graphs.";
  }
  std::vector<std::string> columns() const override {
    return {"model",  "E[F]",   "+-CI", "Avg(0)", "M(0)",
            "Var(F)", "Var exact (P5.8)", "var/exact"};
  }
  std::vector<std::string> row_columns() const override {
    return {"model", "replica", "F"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig edge = in.spec.model;
    edge.kind = ModelKind::edge;
    ConvergenceOptions edge_convergence = in.spec.convergence;
    edge_convergence.use_plain_potential = true;
    auto edge_batch = submit_converging(in, edge, edge_convergence, 0);

    ModelConfig node = in.spec.model;
    node.kind = ModelKind::node;
    node.k = 1;
    auto node_batch =
        submit_converging(in, node, in.spec.convergence, 1);

    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x42), 1,
        [in, node](std::int64_t, Rng&, std::span<double> out,
                   RowEmitter&) {
          if (in.graph.is_regular()) {
            out[0] = theory::variance_exact(in.graph, node.alpha, 1,
                                            in.initial);
          }
        });
    const bool stream_rows = in.stream_rows;
    return [in, edge_batch, node_batch, prediction, stream_rows] {
      const double avg0 = plain_average(in.initial);
      const double m0 = degree_weighted_average(in.graph, in.initial);
      const double exact = prediction->sample(0, 0);
      CellRows rows;
      const std::pair<const char*, std::shared_ptr<ReplicaBatch>>
          models[] = {{"EdgeModel", edge_batch},
                      {"NodeModel k=1", node_batch}};
      for (const auto& [label, batch] : models) {
        const RunningStats& value = batch->stats()[0];
        const double var = value.population_variance();
        rows.aggregate.push_back(
            {label, fmt_fixed(value.mean(), 4),
             fmt_fixed(value.mean_ci_halfwidth(), 4), fmt_fixed(avg0, 4),
             fmt_fixed(m0, 4), fmt_sci(var, 3), sci_or_na(exact, 3),
             fixed_or_na(var / exact, 3)});
        if (stream_rows) {
          for (std::int64_t r = 0; r < batch->replicas(); ++r) {
            rows.replica.push_back({label, std::to_string(r),
                                    fmt_sci(batch->sample(r, 0), 4)});
          }
        }
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(Thm24EdgeVarianceScenario)

/// --- prop58_variance (Proposition 5.8) -----------------------------

/// Monte-Carlo Var(F) of the NodeModel against the closed-form
/// mu-expression.  The formula depends on xi(0) only through ||xi||^2
/// and the neighbour-correlation term, so sweeping `init` over
/// placements of the same multiset (alternating / blocks / rademacher)
/// shows the correlation term at work.  Streams per-replica F.
class Prop58VarianceScenario final : public Scenario {
 public:
  std::string name() const override { return "prop58_variance"; }
  std::string description() const override {
    return "Prop 5.8: exact Var(F) formula vs Monte-Carlo; sweep init "
           "over alternating/blocks placements to see the "
           "neighbour-correlation term.  Regular graphs.";
  }
  std::vector<std::string> columns() const override {
    return {"sum xi^2",        "sum E+ xi_u xi_v", "Var exact (P5.8)",
            "Var measured", "+-CI(Var)",        "meas/exact"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "F"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    auto measured =
        submit_converging(in, config, in.spec.convergence, 0);
    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0x58), 2,
        [in, config](std::int64_t, Rng&, std::span<double> out,
                     RowEmitter&) {
          out[1] = theory::directed_edge_correlation(in.graph, in.initial);
          if (in.graph.is_regular() &&
              config.k <= in.graph.min_degree()) {
            out[0] = theory::variance_exact(in.graph, config.alpha,
                                            config.k, in.initial);
          }
        });
    const bool stream_rows = in.stream_rows;
    return [in, measured, prediction, stream_rows] {
      const RunningStats& value = measured->stats()[0];
      const double var = value.population_variance();
      const double exact = prediction->sample(0, 0);
      CellRows rows;
      rows.aggregate.push_back(
          {fmt_fixed(initial::l2_squared(in.initial), 1),
           fmt_fixed(prediction->sample(0, 1), 1), sci_or_na(exact, 3),
           fmt_sci(var, 3), fmt_sci(value.variance_ci_halfwidth(), 1),
           fixed_or_na(var / exact, 3)});
      if (stream_rows) {
        append_replica_rows(rows.replica, *measured, 0, 4, true);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(Prop58VarianceScenario)

/// --- propB1_drop (Proposition B.1) ---------------------------------

/// Exact one-step potential drop E[phi'] by enumeration against the
/// Prop. B.1 bound (1 - rho) phi, for the worst-case state xi = f2(P)
/// (where the bound is near-tight) and a random Gaussian state (where
/// it is conservative).  Two rows per cell.
class PropB1DropScenario final : public Scenario {
 public:
  std::string name() const override { return "propB1_drop"; }
  std::string description() const override {
    return "Prop B.1: exact one-step E[phi'] by enumeration vs the "
           "(1 - rho) phi bound, on the f2(P) worst case and a random "
           "state; slack >= 1 everywhere.";
  }
  std::vector<std::string> columns() const override {
    return {"state", "phi", "E[phi'] exact", "bound (1-rho) phi", "slack",
            "holds"};
  }
  CellFold start(const RunInput& in) const override {
    const ModelConfig config = in.spec.model;
    auto batch = in.scheduler.submit(
        1, subseed(in.spec.seed, 0xB1), 8,
        [in, config](std::int64_t, Rng& rng, std::span<double> out,
                     RowEmitter&) {
          const Graph& g = in.graph;
          if (config.k > g.min_degree()) {
            throw std::runtime_error(
                "scenario 'propB1_drop': k = " +
                std::to_string(config.k) + " exceeds the minimum degree " +
                std::to_string(g.min_degree()) +
                " (the enumeration needs k distinct neighbours "
                "everywhere)");
          }
          const WalkSpectrum& spectrum = in.spectra.walk();
          // Non-lazy normalisation: the exact one-step enumeration below
          // has no laziness coin, so the bound drops the /2 as well.
          const double rho = theory::node_model_rho(
              spectrum.lambda2, config.alpha, config.k, g.node_count(),
              false);
          const auto selections =
              enumerate_node_selections(g, config.k);
          std::vector<double> random_state = initial::gaussian(
              rng, g.node_count(), 0.0, 1.0);
          initial::center_degree_weighted(g, random_state);
          const std::pair<std::size_t, const std::vector<double>*>
              states[] = {{0, &spectrum.f2}, {4, &random_state}};
          for (const auto& [base, xi] : states) {
            OpinionState probe(g, *xi);
            const double phi0 = probe.phi_exact();
            double expected = 0.0;
            for (const WeightedSelection& ws : selections) {
              const std::vector<double> next =
                  apply_update(*xi, ws.selection, config.alpha);
              OpinionState next_state(g, next);
              expected += ws.probability * next_state.phi_exact();
            }
            const double bound = (1.0 - rho) * phi0;
            out[base + 0] = phi0;
            out[base + 1] = expected;
            out[base + 2] = bound;
            out[base + 3] = (phi0 - expected) / (phi0 - bound);
          }
        });
    return [batch] {
      CellRows rows;
      const std::pair<const char*, std::size_t> states[] = {{"f2(P)", 0},
                                                            {"random", 4}};
      for (const auto& [label, base] : states) {
        const double expected = batch->sample(0, base + 1);
        const double bound = batch->sample(0, base + 2);
        rows.aggregate.push_back(
            {label, fmt_sci(batch->sample(0, base + 0), 3),
             fmt_sci(expected, 3), fmt_sci(bound, 3),
             fmt_fixed(batch->sample(0, base + 3), 3),
             expected <= bound + 1e-12 ? "yes" : "NO"});
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(PropB1DropScenario)

/// --- propB2_node / propB2_edge (Proposition B.2) -------------------

/// Tightness of the convergence bounds via the adversarial eigenvector
/// start (use `init=f2_walk center=none`): measured T_eps against the
/// Omega() lower scale and the matching B.1 upper prediction.
class PropB2NodeScenario final : public Scenario {
 public:
  std::string name() const override { return "propB2_node"; }
  std::string description() const override {
    return "Prop B.2 (NodeModel): T_eps with xi(0) = beta f2(P) "
           "(init=f2_walk) vs the Omega lower scale and the B.1 upper "
           "prediction; the sandwich ratio is Theta(1).";
  }
  std::vector<std::string> columns() const override {
    return {"1-l2(P)",    "T measured", "+-CI",      "lower scale",
            "upper (B.1)", "meas/lower", "meas/upper"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "T_eps"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::node;
    auto measured =
        submit_converging(in, config, in.spec.convergence, 0);
    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0xB2), 3,
        [in, config](std::int64_t, Rng&, std::span<double> out,
                     RowEmitter&) {
          const WalkSpectrum& spectrum = in.spectra.walk();
          const double n = static_cast<double>(in.graph.node_count());
          const double eps = in.spec.convergence.epsilon;
          OpinionState probe(in.graph, in.initial);
          out[0] = spectrum.gap;
          out[1] = n *
                   std::log(n * initial::l2_squared(in.initial) / eps) /
                   ((1.0 - config.alpha) * spectrum.gap);
          out[2] = theory::steps_to_epsilon(
              theory::node_model_rho(spectrum.lambda2, config.alpha,
                                     config.k, in.graph.node_count(),
                                     config.lazy),
              probe.phi_exact(), eps);
        });
    const bool stream_rows = in.stream_rows;
    return [measured, prediction, stream_rows] {
      const RunningStats& steps = measured->stats()[1];
      const double lower = prediction->sample(0, 1);
      const double upper = prediction->sample(0, 2);
      CellRows rows;
      rows.aggregate.push_back(
          {fmt_sci(prediction->sample(0, 0), 2),
           fmt_fixed(steps.mean(), 0),
           fmt_fixed(steps.mean_ci_halfwidth(), 0), fmt_fixed(lower, 0),
           fmt_fixed(upper, 0), fmt_fixed(steps.mean() / lower, 3),
           fmt_fixed(steps.mean() / upper, 3)});
      if (stream_rows) {
        append_replica_rows(rows.replica, *measured, 1, 0, false);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(PropB2NodeScenario)

class PropB2EdgeScenario final : public Scenario {
 public:
  std::string name() const override { return "propB2_edge"; }
  std::string description() const override {
    return "Prop B.2 (EdgeModel): T_eps with xi(0) = beta f2(L) "
           "(init=f2_laplacian) vs the Omega m log(.)/lambda2(L) lower "
           "scale; meas/lower is Theta(1).";
  }
  std::vector<std::string> columns() const override {
    return {"m",          "l2(L)",     "T measured",
            "+-CI",       "lower scale", "meas/lower"};
  }
  std::vector<std::string> row_columns() const override {
    return {"replica", "T_eps"};
  }
  CellFold start(const RunInput& in) const override {
    ModelConfig config = in.spec.model;
    config.kind = ModelKind::edge;
    ConvergenceOptions convergence = in.spec.convergence;
    convergence.use_plain_potential = true;
    auto measured = submit_converging(in, config, convergence, 0);
    auto prediction = in.scheduler.submit(
        1, subseed(in.spec.seed, 0xB3), 2,
        [in, config, convergence](std::int64_t, Rng&,
                                  std::span<double> out, RowEmitter&) {
          const LaplacianSpectrum& lap = in.spectra.laplacian();
          const double n = static_cast<double>(in.graph.node_count());
          out[0] = lap.lambda2;
          out[1] = static_cast<double>(in.graph.edge_count()) *
                   std::log(n * initial::l2_squared(in.initial) /
                            convergence.epsilon) /
                   ((1.0 - config.alpha) * lap.lambda2);
        });
    const std::int64_t m = in.graph.edge_count();
    const bool stream_rows = in.stream_rows;
    return [measured, prediction, m, stream_rows] {
      const RunningStats& steps = measured->stats()[1];
      const double lower = prediction->sample(0, 1);
      CellRows rows;
      rows.aggregate.push_back(
          {std::to_string(m), fmt_sci(prediction->sample(0, 0), 2),
           fmt_fixed(steps.mean(), 0),
           fmt_fixed(steps.mean_ci_halfwidth(), 0), fmt_fixed(lower, 0),
           fmt_fixed(steps.mean() / lower, 3)});
      if (stream_rows) {
        append_replica_rows(rows.replica, *measured, 1, 0, false);
      }
      return rows;
    };
  }
};
OPINDYN_REGISTER_SCENARIO(PropB2EdgeScenario)

}  // namespace

void register_paper_scenarios() {
  // Keep-alive hook (see register_builtin_scenarios): the registrars in
  // this translation unit run at static-initialisation time once the
  // unit is linked; calling this from the runner-facing hook prevents a
  // static-library build from dropping the whole object file.
}

}  // namespace engine
}  // namespace opindyn
