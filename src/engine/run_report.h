// Run-report and trace emission: turns a finished batch plus its folded
// metrics into (a) the "opindyn-run-report-v1" JSON manifest written by
// --metrics-json -- spec echo, seed/threads, build info, counters,
// per-cell table, timings, steps/sec, peak RSS -- and (b) a Chrome
// trace-event file written by --trace-json, loadable in Perfetto or
// chrome://tracing.
//
// Determinism contract: the report is split into sections.  "spec",
// "build", "counters", "cells", and "result" depend only on the spec
// and the simulation (identical at any --threads value); everything
// wall-clock -- "timings_ms", "gauges", "workers", "perf" -- is
// timing-dependent and can be dropped via RunReportOptions so tests can
// byte-compare the deterministic remainder across thread counts.
#ifndef OPINDYN_ENGINE_RUN_REPORT_H
#define OPINDYN_ENGINE_RUN_REPORT_H

#include <cstdint>
#include <string>

#include "src/engine/experiment_spec.h"
#include "src/engine/runner.h"
#include "src/support/json.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace engine {

struct RunReportOptions {
  /// Include the wall-clock sections (timings_ms, gauges, workers, perf,
  /// per-cell busy time).  The determinism tests set this false to
  /// byte-compare reports across --threads values.
  bool include_timings = true;
  /// Total batch wall time measured by the caller, in milliseconds
  /// (feeds perf.steps_per_sec).
  double wall_ms = 0.0;
};

/// Builds the run manifest.  Top-level keys: schema, scenario, seed,
/// threads, spec (full key=value echo), build (see build_info_json),
/// counters, cells (grid-order summaries joined with their labeled
/// counters), result (row/work-item totals and cache hit rates), and --
/// when options.include_timings -- timings_ms, gauges, workers, perf
/// (wall_ms, steps, steps_per_sec, peak_rss_bytes).
json::Value build_run_report(const ExperimentSpec& spec,
                             const BatchResult& result,
                             const FoldedMetrics& folded,
                             const RunReportOptions& options = {});

/// Builds the Chrome trace-event document: {"traceEvents": [...]} with
/// one "X" (complete) slice per recorded span -- ts/dur in microseconds
/// since the registry epoch, tid = stable worker index -- plus
/// "thread_name" metadata events naming each worker lane.
json::Value build_trace_json(const FoldedMetrics& folded);

/// Writes `value` pretty-printed (2-space indent, trailing newline) to
/// `path`.  Throws std::runtime_error naming the path on I/O failure.
void write_json_file(const std::string& path, const json::Value& value);

/// Fails fast -- with the path in the message -- if `path` cannot be
/// opened for writing.  Opens in append mode so probing never clobbers
/// an existing file when a later validation step aborts the run; the
/// real write truncates.  Mirrors the CSV sinks' fail-before-running
/// policy for typo'd directories.
void probe_output_path(const std::string& path);

/// Peak resident set size of this process in bytes (Linux VmHWM, with a
/// getrusage fallback); 0 when unavailable.
std::int64_t peak_rss_bytes();

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_RUN_REPORT_H
