// The common Runner interface behind the `opindyn` CLI: a Scenario
// receives one fully-resolved work item (spec + graph + initial opinions
// + a replica scheduler) and returns one or more result rows.  Scenarios
// self-register in the ScenarioRegistry via OPINDYN_REGISTER_SCENARIO, so
// the batch runner and the CLI discover them by name.
#ifndef OPINDYN_ENGINE_SCENARIO_H
#define OPINDYN_ENGINE_SCENARIO_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/experiment_spec.h"
#include "src/engine/shard.h"
#include "src/graph/graph.h"

namespace opindyn {
namespace engine {

/// Everything a scenario needs to run one grid point.
struct RunInput {
  const ExperimentSpec& spec;
  const Graph& graph;
  const std::vector<double>& initial;
  ReplicaScheduler& scheduler;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry key, e.g. "node_vs_edge".
  virtual std::string name() const = 0;
  /// One-line description shown by `opindyn list`.
  virtual std::string description() const = 0;
  /// Result columns this scenario appends after the runner's base and
  /// sweep-label columns.
  virtual std::vector<std::string> columns() const = 0;
  /// Runs one work item; each returned row must have columns().size()
  /// cells.  Most scenarios return a single row; comparison scenarios may
  /// return one row per contending protocol.
  virtual std::vector<std::vector<std::string>> run(
      const RunInput& input) const = 0;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry (built-in scenarios are registered before
  /// main via their OPINDYN_REGISTER_SCENARIO registrars).
  static ScenarioRegistry& instance();

  /// Throws std::runtime_error on duplicate names.
  void add(std::unique_ptr<Scenario> scenario);

  bool contains(const std::string& name) const;

  /// Throws std::runtime_error naming the known scenarios if absent.
  const Scenario& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::unique_ptr<Scenario>> scenarios_;
};

/// Registers a scenario at static-initialisation time.
class ScenarioRegistrar {
 public:
  explicit ScenarioRegistrar(std::unique_ptr<Scenario> scenario);
};

#define OPINDYN_REGISTER_SCENARIO(ClassName)                      \
  const ::opindyn::engine::ScenarioRegistrar registrar_##ClassName{ \
      std::make_unique<ClassName>()};

/// Forces the translation unit holding the built-in scenario registrars
/// to be linked (a static library would otherwise drop it).  Idempotent;
/// called by the batch runner and the CLI.
void register_builtin_scenarios();

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SCENARIO_H
