// The common Runner interface behind the `opindyn` CLI.  A Scenario
// receives one fully-resolved work item ("cell": spec + graph + initial
// opinions + the batch-wide cell scheduler) and runs in two phases:
//
//   1. start(input) submits the cell's replica batches to the shared
//      CellScheduler and returns *without blocking*; the runner calls
//      start for every cell of the sweep grid up front, so all
//      (cell x replica) units are in flight on one thread pool at once.
//   2. The returned CellFold, invoked later in strict cell order, blocks
//      on the cell's batches, folds them, and formats the result rows.
//
// A scenario produces aggregate rows (width columns()) and may also
// stream per-replica rows (width row_columns()) for tail / histogram /
// trajectory workloads.  Scenarios self-register in the ScenarioRegistry
// via OPINDYN_REGISTER_SCENARIO, so the batch runner and the CLI
// discover them by name.
#ifndef OPINDYN_ENGINE_SCENARIO_H
#define OPINDYN_ENGINE_SCENARIO_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/experiment_spec.h"
#include "src/engine/shard.h"
#include "src/graph/graph.h"
#include "src/spectral/spectrum_cache.h"
#include "src/support/metrics.h"

namespace opindyn {
namespace engine {

/// Everything a scenario needs to run one grid cell.  The runner keeps
/// the referenced objects alive until every unit of the batch has run
/// and its fold has been invoked, so batch bodies may capture them.
struct RunInput {
  const ExperimentSpec& spec;
  const Graph& graph;
  const std::vector<double>& initial;
  /// Memoised eigensolves of `graph`, shared across every cell of the
  /// sweep that resolves to the same graph (see SpectrumCache): call
  /// spectra.walk() / spectra.laplacian() instead of running
  /// lazy_walk_spectrum / laplacian_spectrum directly, and the whole
  /// batch performs one eigensolve per distinct graph and kind.
  const GraphSpectra& spectra;
  CellScheduler& scheduler;
  /// True iff a consumer wants the per-replica row channel; streaming
  /// scenarios skip emitting/formatting replica rows when false, so a
  /// plain aggregate run never pays the O(replicas x rows) memory.
  bool stream_rows = false;
  /// Observability sink for the batch, or nullptr when disabled.  Most
  /// scenarios never touch it: the scheduler already records unit spans
  /// and attributes metrics::count bumps to the cell, so this is only
  /// for scenarios that want extra spans or main-thread timings.
  MetricsRegistry* metrics = nullptr;
};

/// What one cell's fold produces.
struct CellRows {
  /// Aggregate result rows; each must have columns().size() cells.  Most
  /// scenarios return a single row; comparison scenarios return one row
  /// per contending protocol.
  std::vector<std::vector<std::string>> aggregate;
  /// Per-replica streamed rows; each must have row_columns().size()
  /// cells.  Empty for scenarios that only aggregate.
  std::vector<std::vector<std::string>> replica;
};

/// Deferred second phase of a cell: blocks on the cell's batches and
/// formats rows.  Invoked by the runner in cell order on its own thread.
using CellFold = std::function<CellRows()>;

class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry key, e.g. "node_vs_edge".
  virtual std::string name() const = 0;
  /// One-line description shown by `opindyn list`.
  virtual std::string description() const = 0;
  /// Aggregate result columns this scenario appends after the runner's
  /// base and sweep-label columns.
  virtual std::vector<std::string> columns() const = 0;
  /// Streamed per-replica row columns; empty (the default) declares that
  /// this scenario does not stream rows.
  virtual std::vector<std::string> row_columns() const { return {}; }

  /// Phase 1: submit the cell's replica batches (non-blocking) and
  /// return the fold that formats its rows.
  virtual CellFold start(const RunInput& input) const = 0;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry (built-in scenarios are registered before
  /// main via their OPINDYN_REGISTER_SCENARIO registrars).
  static ScenarioRegistry& instance();

  /// Throws std::runtime_error on duplicate names.
  void add(std::unique_ptr<Scenario> scenario);

  bool contains(const std::string& name) const;

  /// Throws std::runtime_error suggesting near-match names (and naming
  /// the known scenarios) if absent.
  const Scenario& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::unique_ptr<Scenario>> scenarios_;
};

/// Registers a scenario at static-initialisation time.
class ScenarioRegistrar {
 public:
  explicit ScenarioRegistrar(std::unique_ptr<Scenario> scenario);
};

#define OPINDYN_REGISTER_SCENARIO(ClassName)                      \
  const ::opindyn::engine::ScenarioRegistrar registrar_##ClassName{ \
      std::make_unique<ClassName>()};

/// Forces the translation unit holding the built-in scenario registrars
/// to be linked (a static library would otherwise drop it).  Idempotent;
/// called by the batch runner and the CLI.
void register_builtin_scenarios();

/// Same keep-alive hook for the paper-theorem scenarios
/// (scenarios_paper.cpp: duality, martingale, qchain, the variance and
/// lower-bound suites).  Called by register_builtin_scenarios.
void register_paper_scenarios();

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SCENARIO_H
