#include "src/engine/runner.h"

#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/engine/run_report.h"
#include "src/graph/graph_cache.h"
#include "src/service/cancel_token.h"
#include "src/spectral/spectrum_cache.h"
#include "src/support/assert.h"

namespace opindyn {
namespace engine {
namespace {

/// Everything the runner keeps alive for one grid cell: the resolved
/// spec, the (shared) graph, the initial opinions, and the scenario's
/// deferred fold.  Batch bodies capture references into this object, so
/// cells are heap-allocated and outlive the scheduler (declared after
/// them below, hence destroyed -- and drained -- first).
struct Cell {
  ExperimentSpec item;
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<GraphSpectra> spectra;
  std::vector<double> initial;
  std::vector<std::string> labels;  // non-base sweep label cells
  CellFold fold;
};

/// Scenario lookup (throws with near-match suggestions for unknown
/// names).  Shared by run_experiment and the default-sink wrapper, so
/// the wrapper can validate BEFORE it opens -- and truncates -- any
/// output file.
const Scenario& resolve_scenario(const ExperimentSpec& spec) {
  register_builtin_scenarios();
  return ScenarioRegistry::instance().get(spec.scenario);
}

/// Wall-clock phase instrumentation: records one "phase" trace span and
/// one phase.<name> timer over its lifetime.  A no-op without metrics.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* metrics, const char* name)
      : metrics_(metrics), name_(name) {
    if (metrics_ != nullptr) {
      start_us_ = metrics_->now_us();
    }
  }
  ~PhaseTimer() {
    if (metrics_ == nullptr) {
      return;
    }
    const std::uint64_t end_us = metrics_->now_us();
    metrics_->buffer().add_span(
        TraceSpan{name_, "phase", -1, start_us_, end_us - start_us_, 0});
    metrics_->add_timing(std::string("phase.") + name_,
                         static_cast<double>(end_us - start_us_) / 1000.0);
  }

 private:
  MetricsRegistry* metrics_;
  const char* name_;
  std::uint64_t start_us_ = 0;
};

/// Throws unless `scenario` streams per-replica rows (the row-channel
/// consumers --rows-csv / --hist-csv / --quantiles require it).
void require_row_channel(const Scenario& scenario) {
  if (scenario.row_columns().empty()) {
    throw std::runtime_error(
        "scenario '" + scenario.name() +
        "' streams no per-replica rows; drop --rows-csv / --hist-csv / "
        "--quantiles or pick a streaming scenario (see `opindyn "
        "describe`)");
  }
}

}  // namespace

std::vector<SweepPoint> expand_grid(const ExperimentSpec& spec) {
  std::vector<SweepPoint> grid{SweepPoint{}};
  for (const SweepAxis& axis : spec.sweeps) {
    OPINDYN_EXPECTS(!axis.values.empty(), "sweep axis with no values");
    std::vector<SweepPoint> next;
    next.reserve(grid.size() * axis.values.size());
    for (const SweepPoint& point : grid) {
      for (const std::string& value : axis.values) {
        SweepPoint extended = point;
        extended.overrides.emplace_back(axis.key, value);
        next.push_back(std::move(extended));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks,
                           const std::vector<RowSink*>& row_sinks,
                           MetricsRegistry* metrics) {
  RunContext context;
  context.metrics = metrics;
  return run_experiment(spec, sinks, row_sinks, context);
}

BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks,
                           const std::vector<RowSink*>& row_sinks,
                           const RunContext& context) {
  const Scenario& scenario = resolve_scenario(spec);
  MetricsRegistry* const metrics = context.metrics;
  // The batch's ambient cancel token: batch submissions on this thread
  // capture it (see CellScheduler::submit) and the phase loops below
  // poll it between cells, so cancellation lands wherever the batch
  // currently is without any per-step cost.
  const CancelScope cancel_scope(context.cancel);

  // Base columns first, then one label column per sweep axis, then the
  // scenario's own result columns.  Axes over "graph"/"n" get no label
  // column: the base columns already show the resolved values.  The
  // streamed per-replica channel carries the same prefix.
  const auto is_base_key = [](const std::string& key) {
    return key == "graph" || key == "n";
  };
  std::vector<std::string> prefix_columns = {"scenario", "graph", "n",
                                             "replicas"};
  for (const SweepAxis& axis : spec.sweeps) {
    if (!is_base_key(axis.key)) {
      prefix_columns.push_back(axis.key);
    }
  }

  BatchResult result;
  result.columns = prefix_columns;
  const std::vector<std::string> scenario_columns = scenario.columns();
  result.columns.insert(result.columns.end(), scenario_columns.begin(),
                        scenario_columns.end());
  const std::vector<std::string> scenario_row_columns =
      scenario.row_columns();
  if (!row_sinks.empty()) {
    require_row_channel(scenario);
    result.replica_columns = prefix_columns;
    result.replica_columns.insert(result.replica_columns.end(),
                                  scenario_row_columns.begin(),
                                  scenario_row_columns.end());
  }
  // Per-replica rows cost O(replicas x checkpoints) strings per cell,
  // so they are only generated when a row sink consumes them.
  const bool stream_rows = !result.replica_columns.empty();

  const std::vector<SweepPoint> grid = expand_grid(spec);

  OrderedFlush aggregate_flush(sinks, grid.size());
  aggregate_flush.begin(result.columns);
  OrderedFlush replica_flush(row_sinks, grid.size());
  if (stream_rows) {
    replica_flush.begin(result.replica_columns);
  }

  // Phase 1: resolve every cell and submit its replica batches.  Cells
  // are declared before the local scheduler so the scheduler is
  // destroyed (and its pool drained) first -- unit bodies reference the
  // cells.  When the context supplies shared infrastructure instead,
  // the explicit drain below (drain_cells + the prefetch wait-all)
  // guarantees no unit outlives this frame's locals.
  std::vector<std::unique_ptr<Cell>> cells;
  std::optional<GraphCache> local_graph_cache;
  std::optional<SpectrumCache> local_spectrum_cache;
  std::optional<CellScheduler> local_scheduler;
  GraphCache& graph_cache = context.graph_cache != nullptr
                                ? *context.graph_cache
                                : local_graph_cache.emplace();
  SpectrumCache& spectrum_cache = context.spectrum_cache != nullptr
                                      ? *context.spectrum_cache
                                      : local_spectrum_cache.emplace();
  CellScheduler& scheduler = context.scheduler != nullptr
                                 ? *context.scheduler
                                 : local_scheduler.emplace(spec.threads);
  if (local_scheduler.has_value()) {
    scheduler.set_metrics(metrics);
  }

  // Shared caches are cumulative across jobs, so every counter the
  // result reports is a delta against this snapshot (identical to the
  // absolute value for the historical per-batch caches).
  const std::int64_t base_graph_hits = graph_cache.hits();
  const std::int64_t base_graph_misses = graph_cache.misses();
  const std::int64_t base_graph_evictions = graph_cache.evictions();
  const std::int64_t base_record_hits = spectrum_cache.hits();
  const std::int64_t base_record_misses = spectrum_cache.misses();
  const std::int64_t base_eigensolves = spectrum_cache.eigensolves();
  const std::int64_t base_spectrum_hits = spectrum_cache.spectrum_hits();
  const std::int64_t base_spectrum_evictions = spectrum_cache.evictions();

  // Runs every still-pending fold to completion, discarding rows and
  // errors: on any unwind (cancellation, a failing cell) the in-flight
  // units of OTHER cells must finish before the cells they reference
  // are destroyed -- with a shared scheduler there is no pool
  // destructor between them and the frame's death.
  const auto drain_cells = [&cells] {
    for (const auto& cell : cells) {
      if (cell->fold) {
        try {
          cell->fold();
        } catch (...) {
        }
        cell->fold = nullptr;
      }
    }
  };

  bool interrupted = false;
  const char* interrupt_reason = nullptr;
  try {
    {
      const PhaseTimer phase(metrics, "expand");
      cells.reserve(grid.size());
      for (const SweepPoint& point : grid) {
        auto cell = std::make_unique<Cell>();
        cell->item = spec;
        cell->item.sweeps.clear();
        for (const auto& [key, value] : point.overrides) {
          apply_override(cell->item, key, value);
          if (!is_base_key(key)) {
            cell->labels.push_back(value);
          }
        }
        cells.push_back(std::move(cell));
      }
    }

    // Prefetch each distinct graph of the grid on the pool: one unit per
    // key builds the graph and -- for the f2_* eigenvector initials --
    // runs the matching eigensolve.  The caches' per-key latches are what
    // make this safe AND parallel: a cold sweep over distinct graphs
    // constructs and solves concurrently instead of serialising on this
    // thread, while the warm gets below just read the memo.  Values are
    // deterministic per key, so results never depend on prefetch order.
    {
      const PhaseTimer phase(metrics, "prefetch");
      scheduler.set_submit_label("prefetch");
      std::map<std::string, const ExperimentSpec*> distinct;
      for (const auto& cell : cells) {
        distinct.emplace(graph_cache_key(cell->item.graph), &cell->item);
      }
      std::vector<std::shared_ptr<ReplicaBatch>> prefetch;
      prefetch.reserve(distinct.size());
      for (const auto& [cache_key, item] : distinct) {
        prefetch.push_back(scheduler.submit(
            1, 0, 1,
            [&graph_cache, &spectrum_cache, metrics, cache_key = cache_key,
             item = item](std::int64_t, Rng&, std::span<double>,
                          RowEmitter&) {
              // The builder lambdas only run on a cache miss (under the
              // per-key latch), so the spans below time actual builds.
              const auto graph =
                  graph_cache.get(cache_key, [item, metrics, &cache_key] {
                    const ScopedSpan span(metrics, cache_key, "graph_build");
                    return build_graph(item->graph);
                  });
              const auto spectra = spectrum_cache.get(cache_key, graph);
              if (item->initial.distribution == "f2_walk") {
                const ScopedSpan span(metrics, cache_key, "eigensolve");
                spectra->walk();
              } else if (item->initial.distribution == "f2_laplacian") {
                const ScopedSpan span(metrics, cache_key, "eigensolve");
                spectra->laplacian();
              }
            }));
      }
      // Wait on EVERY prefetch batch before letting an error unwind:
      // later batches reference this frame's caches and keys, and a
      // shared scheduler has no pool destructor to drain them.
      std::exception_ptr prefetch_error;
      for (const auto& batch : prefetch) {
        try {
          batch->wait();
        } catch (...) {
          if (!prefetch_error) {
            prefetch_error = std::current_exception();
          }
        }
      }
      scheduler.set_submit_label("");
      if (prefetch_error) {
        std::rethrow_exception(prefetch_error);
      }
    }

    {
      const PhaseTimer phase(metrics, "start");
      for (std::size_t index = 0; index < cells.size(); ++index) {
        cancel::poll();
        Cell& cell = *cells[index];
        const std::string cache_key = graph_cache_key(cell.item.graph);
        cell.graph = graph_cache.get(
            cache_key, [&cell] { return build_graph(cell.item.graph); });
        // The spectra record is shared per graph key; it solves lazily, so
        // cells that never touch it (most scenarios) cost nothing, and the
        // f2_* initials below reuse the same record the scenario's
        // prediction batches will hit.
        cell.spectra = spectrum_cache.get(cache_key, cell.graph);
        cell.initial = build_initial(cell.item.initial, *cell.graph,
                                     cell.spectra.get());
        const RunInput input{cell.item,     *cell.graph, cell.initial,
                             *cell.spectra, scheduler,   stream_rows,
                             metrics};
        // Submits inside start() run synchronously on this thread, so the
        // label tags every batch of this cell; counters bumped inside the
        // cell's units then land in the report's "cell/<index>" row.
        scheduler.set_submit_label("cell/" + std::to_string(index));
        cell.fold = scenario.start(input);
        CellSummary summary;
        summary.label = "cell/" + std::to_string(index);
        summary.graph = cell.graph->name();
        summary.n = cell.graph->node_count();
        summary.replicas = cell.item.replicas;
        summary.overrides = grid[index].overrides;
        result.cells.push_back(std::move(summary));
      }
      scheduler.set_submit_label("");
    }
    // Phase 2: fold in cell order.  Each fold blocks only on its own
    // cell's batches while every later cell keeps running on the pool;
    // the OrderedFlush then releases rows to the sinks in cell order.
    const PhaseTimer fold_phase(metrics, "fold");
    for (std::size_t index = 0; index < cells.size(); ++index) {
      cancel::poll();
      Cell& cell = *cells[index];
      CellRows cell_rows = cell.fold();
      cell.fold = nullptr;  // release the batch handles

      const auto prefixed = [&](const std::vector<std::string>& suffix,
                                std::size_t width,
                                const char* what) {
        OPINDYN_EXPECTS(suffix.size() == width,
                        std::string("scenario returned a ") + what +
                            " row of the wrong width");
        std::vector<std::string> cells_out = {
            scenario.name(), cell.graph->name(),
            std::to_string(cell.graph->node_count()),
            std::to_string(cell.item.replicas)};
        cells_out.insert(cells_out.end(), cell.labels.begin(),
                         cell.labels.end());
        cells_out.insert(cells_out.end(), suffix.begin(), suffix.end());
        return cells_out;
      };

      std::vector<std::vector<std::string>> aggregate;
      aggregate.reserve(cell_rows.aggregate.size());
      for (const std::vector<std::string>& row : cell_rows.aggregate) {
        aggregate.push_back(prefixed(row, scenario_columns.size(),
                                     "aggregate"));
      }
      result.rows.insert(result.rows.end(), aggregate.begin(),
                         aggregate.end());
      aggregate_flush.cell_done(index, std::move(aggregate));

      if (stream_rows) {
        std::vector<std::vector<std::string>> replica;
        replica.reserve(cell_rows.replica.size());
        for (const std::vector<std::string>& row : cell_rows.replica) {
          replica.push_back(prefixed(row, scenario_row_columns.size(),
                                     "per-replica"));
        }
        result.replica_rows.insert(result.replica_rows.end(),
                                   replica.begin(), replica.end());
        replica_flush.cell_done(index, std::move(replica));
      } else {
        OPINDYN_EXPECTS(cell_rows.replica.empty(),
                        "scenario streamed rows that nothing consumes");
        replica_flush.cell_done(index, {});
      }
      result.work_items += 1;
    }
  } catch (const CancelledError& error) {
    // Cooperative cancellation is an outcome, not a failure: remember
    // the reason, let the drain below retire the remaining cells, and
    // return the flushed prefix.
    interrupted = true;
    interrupt_reason = error.reason();
  } catch (...) {
    drain_cells();
    throw;
  }
  // On the success path every fold already ran, so this is a no-op; on
  // the interrupted path it retires the remaining cells' units (a
  // cancelled batch skips its pending units, so this returns promptly).
  drain_cells();
  result.interrupted = interrupted;
  if (interrupted && interrupt_reason != nullptr) {
    result.interrupt_reason = interrupt_reason;
  }

  // Cache counters are read only now: builds and eigensolves run lazily
  // inside pool batches, which have all completed once every fold (or
  // the drain) returned.  Misses are counted per key on first request
  // (the prefetch pass), so graphs_built is still "distinct graphs
  // actually constructed for this batch".
  result.graphs_built = graph_cache.misses() - base_graph_misses;
  result.graph_cache_hits = graph_cache.hits() - base_graph_hits;
  result.graph_cache_evictions = graph_cache.evictions() - base_graph_evictions;
  result.graph_cache_resident_bytes = graph_cache.resident_bytes();
  result.spectra_solved = spectrum_cache.eigensolves() - base_eigensolves;
  result.spectra_hits = spectrum_cache.spectrum_hits() - base_spectrum_hits;
  result.spectrum_record_hits = spectrum_cache.hits() - base_record_hits;
  result.spectrum_record_misses = spectrum_cache.misses() - base_record_misses;
  result.spectrum_cache_evictions =
      spectrum_cache.evictions() - base_spectrum_evictions;
  result.spectrum_cache_resident_bytes = spectrum_cache.resident_bytes();

  if (metrics != nullptr) {
    // Cache and batch totals are deterministic (they depend only on the
    // grid), so they join the counter section; the scheduler's in-flight
    // high-water mark and the caches' resident footprint are
    // timing-/history-dependent and go in as gauges.
    MetricsBuffer& buffer = metrics->buffer();
    buffer.count("engine.cells",
                 static_cast<std::int64_t>(cells.size()));
    buffer.count("engine.rows_emitted",
                 static_cast<std::int64_t>(result.rows.size()));
    buffer.count("engine.replica_rows_emitted",
                 static_cast<std::int64_t>(result.replica_rows.size()));
    buffer.count("graph_cache.builds", result.graphs_built);
    buffer.count("graph_cache.hits", result.graph_cache_hits);
    buffer.count("graph_cache.evictions", result.graph_cache_evictions);
    buffer.count("spectrum_cache.eigensolves", result.spectra_solved);
    buffer.count("spectrum_cache.hits", result.spectra_hits);
    buffer.count("spectrum_cache.evictions",
                 result.spectrum_cache_evictions);
    metrics->set_gauge("scheduler.max_inflight_units",
                       scheduler.max_inflight_units());
    metrics->set_gauge(
        "graph_cache.resident_bytes",
        static_cast<std::int64_t>(result.graph_cache_resident_bytes));
    metrics->set_gauge(
        "spectrum_cache.resident_bytes",
        static_cast<std::int64_t>(result.spectrum_cache_resident_bytes));
  }

  if (interrupted) {
    // Close the sinks over the flushed prefix: partial CSVs beat losing
    // a long run's entire output to a Ctrl-C.
    aggregate_flush.finish_partial();
    if (stream_rows) {
      replica_flush.finish_partial();
    }
  } else {
    aggregate_flush.finish();
    if (stream_rows) {
      replica_flush.finish();
    }
  }
  return result;
}

BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec) {
  return run_experiment_with_default_sinks(spec, RunContext{});
}

BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec,
                                              const RunContext& context) {
  // Validate the scenario (and its row channel, if a row-consuming flag
  // is set) BEFORE any file sink opens: opening truncates, and a typo'd
  // --scenario must not wipe a pre-existing output file.
  const Scenario& scenario = resolve_scenario(spec);
  const bool wants_row_channel =
      !spec.rows_csv_path.empty() || !spec.hist_csv_path.empty() ||
      !spec.hist_column.empty() || !spec.quantiles.empty();
  if (wants_row_channel) {
    require_row_channel(scenario);
  }

  TableSink table(std::cout);
  // File sinks open their paths at construction, so a typo'd --csv /
  // --rows-csv / --hist-csv directory fails right here -- with the path
  // in the message -- instead of after the whole batch has run (or,
  // worse, silently with exit 0).
  std::optional<CsvSink> csv;
  if (!spec.csv_path.empty()) {
    csv.emplace(spec.csv_path);
  }
  std::optional<CsvSink> rows_csv;
  if (!spec.rows_csv_path.empty()) {
    rows_csv.emplace(spec.rows_csv_path);
  }
  HistogramSink::Options hist_options;
  hist_options.column = spec.hist_column;
  hist_options.bins = spec.hist_bins;
  hist_options.quantiles = spec.quantiles;
  hist_options.csv_path = spec.hist_csv_path;
  // The one-line histogram/quantile summary prints even with
  // --table=false: asking for --quantiles and getting silence would make
  // the flag useless in quiet mode.
  hist_options.summary_out = &std::cout;
  HistogramSink hist(std::move(hist_options));
  std::vector<RowSink*> sinks;
  if (spec.print_table) {
    sinks.push_back(&table);
  }
  if (csv.has_value()) {
    sinks.push_back(&*csv);
  }
  std::vector<RowSink*> row_sinks;
  if (rows_csv.has_value()) {
    row_sinks.push_back(&*rows_csv);
  }
  // --hist-csv / --hist-column / --quantiles summarize the streamed row
  // channel, so any of them activates it (and, like --rows-csv,
  // requires a scenario that declares row columns) -- a bare
  // --hist-column still prints the one-line summary rather than being
  // silently ignored.
  if (!spec.hist_csv_path.empty() || !spec.hist_column.empty() ||
      !spec.quantiles.empty()) {
    row_sinks.push_back(&hist);
  }
  // The report / trace paths are probed up front for the same reason:
  // a typo'd --metrics-json directory must fail before the batch runs,
  // not after minutes of simulation (probing appends nothing, so a
  // pre-existing file survives an unrelated validation failure).
  const bool wants_metrics =
      !spec.metrics_json_path.empty() || !spec.trace_json_path.empty();
  if (!spec.metrics_json_path.empty()) {
    probe_output_path(spec.metrics_json_path);
  }
  if (!spec.trace_json_path.empty()) {
    probe_output_path(spec.trace_json_path);
  }
  std::optional<MetricsRegistry> registry;
  if (wants_metrics) {
    registry.emplace();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  RunContext run_context = context;
  if (registry.has_value()) {
    run_context.metrics = &*registry;
  }
  BatchResult result = run_experiment(spec, sinks, row_sinks, run_context);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  if (registry.has_value()) {
    const FoldedMetrics folded = registry->fold();
    if (!spec.metrics_json_path.empty()) {
      RunReportOptions options;
      options.wall_ms = wall_ms;
      write_json_file(spec.metrics_json_path,
                      build_run_report(spec, result, folded, options));
      if (spec.print_table) {
        std::cout << "\nwrote run report to " << spec.metrics_json_path
                  << "\n";
      }
    }
    if (!spec.trace_json_path.empty()) {
      write_json_file(spec.trace_json_path, build_trace_json(folded));
      if (spec.print_table) {
        std::cout << (spec.metrics_json_path.empty() ? "\n" : "")
                  << "wrote trace to " << spec.trace_json_path << "\n";
      }
    }
  }
  if (!spec.csv_path.empty() && spec.print_table) {
    std::cout << "\nwrote " << result.rows.size() << " rows to "
              << spec.csv_path << "\n";
  }
  if (!spec.rows_csv_path.empty() && spec.print_table) {
    std::cout << (spec.csv_path.empty() ? "\n" : "") << "wrote "
              << result.replica_rows.size() << " per-replica rows to "
              << spec.rows_csv_path << "\n";
  }
  return result;
}

}  // namespace engine
}  // namespace opindyn
