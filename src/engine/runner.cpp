#include "src/engine/runner.h"

#include <iostream>

#include "src/support/assert.h"

namespace opindyn {
namespace engine {

std::vector<SweepPoint> expand_grid(const ExperimentSpec& spec) {
  std::vector<SweepPoint> grid{SweepPoint{}};
  for (const SweepAxis& axis : spec.sweeps) {
    OPINDYN_EXPECTS(!axis.values.empty(), "sweep axis with no values");
    std::vector<SweepPoint> next;
    next.reserve(grid.size() * axis.values.size());
    for (const SweepPoint& point : grid) {
      for (const std::string& value : axis.values) {
        SweepPoint extended = point;
        extended.overrides.emplace_back(axis.key, value);
        next.push_back(std::move(extended));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks) {
  register_builtin_scenarios();
  const Scenario& scenario =
      ScenarioRegistry::instance().get(spec.scenario);

  // Base columns first, then one label column per sweep axis, then the
  // scenario's own result columns.  Axes over "graph"/"n" get no label
  // column: the base columns already show the resolved values.
  const auto is_base_key = [](const std::string& key) {
    return key == "graph" || key == "n";
  };
  BatchResult result;
  result.columns = {"scenario", "graph", "n", "replicas"};
  for (const SweepAxis& axis : spec.sweeps) {
    if (!is_base_key(axis.key)) {
      result.columns.push_back(axis.key);
    }
  }
  const std::vector<std::string> scenario_columns = scenario.columns();
  result.columns.insert(result.columns.end(), scenario_columns.begin(),
                        scenario_columns.end());

  for (RowSink* sink : sinks) {
    sink->begin(result.columns);
  }

  // One scheduler (and thus one thread pool) for the whole batch; work
  // items run sequentially and parallelism lives inside each item's
  // replica shards.
  ReplicaScheduler scheduler(spec.threads);
  const std::vector<SweepPoint> grid = expand_grid(spec);
  for (const SweepPoint& point : grid) {
    ExperimentSpec item = spec;
    item.sweeps.clear();
    for (const auto& [key, value] : point.overrides) {
      apply_override(item, key, value);
    }
    const Graph graph = build_graph(item.graph);
    const std::vector<double> initial = build_initial(item.initial, graph);
    const RunInput input{item, graph, initial, scheduler};
    const std::vector<std::vector<std::string>> rows = scenario.run(input);

    for (const std::vector<std::string>& scenario_cells : rows) {
      OPINDYN_EXPECTS(scenario_cells.size() == scenario_columns.size(),
                      "scenario returned a row of the wrong width");
      std::vector<std::string> cells = {
          scenario.name(), graph.name(),
          std::to_string(graph.node_count()), std::to_string(item.replicas)};
      for (const auto& [key, value] : point.overrides) {
        if (!is_base_key(key)) {
          cells.push_back(value);
        }
      }
      cells.insert(cells.end(), scenario_cells.begin(),
                   scenario_cells.end());
      for (RowSink* sink : sinks) {
        sink->row(cells);
      }
      result.rows.push_back(std::move(cells));
    }
    result.work_items += 1;
  }

  for (RowSink* sink : sinks) {
    sink->finish();
  }
  return result;
}

BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec) {
  TableSink table(std::cout);
  CsvSink csv(spec.csv_path);
  std::vector<RowSink*> sinks;
  if (spec.print_table) {
    sinks.push_back(&table);
  }
  if (!spec.csv_path.empty()) {
    sinks.push_back(&csv);
  }
  BatchResult result = run_experiment(spec, sinks);
  if (!spec.csv_path.empty() && spec.print_table) {
    std::cout << "\nwrote " << result.rows.size() << " rows to "
              << spec.csv_path << "\n";
  }
  return result;
}

}  // namespace engine
}  // namespace opindyn
