#include "src/engine/experiment_spec.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/core/initial_values.h"
#include "src/graph/generators.h"
#include "src/spectral/spectra.h"

namespace opindyn {
namespace engine {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  return parse_int_value("spec key '" + key + "'", value);
}

double parse_double(const std::string& key, const std::string& value) {
  return parse_double_value("spec key '" + key + "'", value);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    return false;
  }
  fail("spec key '" + key + "': expected a boolean, got '" + value + "'");
}

SamplingMode parse_sampling(const std::string& value) {
  if (value == "without" || value == "without_replacement") {
    return SamplingMode::without_replacement;
  }
  if (value == "with" || value == "with_replacement") {
    return SamplingMode::with_replacement;
  }
  std::string message =
      "spec key 'sampling': expected without|with, got '" + value + "'";
  const std::vector<std::string> near = closest_matches(
      value, {"without", "without_replacement", "with", "with_replacement"});
  if (!near.empty()) {
    message += "; did you mean '" + near.front() + "'?";
  }
  fail(message);
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// Applies one key=value pair to the spec.  Returns false if the key is
/// not part of the schema.
bool apply_key(ExperimentSpec& spec, const std::string& key,
               const std::string& value) {
  if (key == "scenario") {
    spec.scenario = value;
  } else if (key == "graph") {
    spec.graph.family = value;
  } else if (key == "n") {
    spec.graph.n = static_cast<NodeId>(parse_int(key, value));
  } else if (key == "degree") {
    spec.graph.degree = static_cast<NodeId>(parse_int(key, value));
  } else if (key == "attach") {
    spec.graph.attach = static_cast<NodeId>(parse_int(key, value));
  } else if (key == "p") {
    spec.graph.edge_probability = parse_double(key, value);
  } else if (key == "graph-seed") {
    spec.graph.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "init") {
    spec.initial.distribution = value;
  } else if (key == "init-a") {
    spec.initial.param_a = parse_double(key, value);
  } else if (key == "init-b") {
    spec.initial.param_b = parse_double(key, value);
  } else if (key == "init-seed") {
    spec.initial.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "center") {
    if (value != "plain" && value != "degree" && value != "none") {
      fail("spec key 'center': expected plain|degree|none, got '" + value +
           "'");
    }
    spec.initial.center = value;
  } else if (key == "model") {
    spec.model.kind = parse_model_kind(value);
  } else if (key == "alpha") {
    spec.model.alpha = parse_double(key, value);
  } else if (key == "confidence") {
    spec.model.confidence = parse_double(key, value);
  } else if (key == "k") {
    spec.model.k = parse_int(key, value);
  } else if (key == "lazy") {
    spec.model.lazy = parse_bool(key, value);
  } else if (key == "sampling") {
    spec.model.sampling = parse_sampling(value);
  } else if (key == "reorder") {
    spec.model.reorder = parse_bool(key, value);
  } else if (key == "replicas") {
    spec.replicas = parse_int(key, value);
  } else if (key == "seed") {
    spec.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "threads") {
    spec.threads = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "eps") {
    spec.convergence.epsilon = parse_double(key, value);
  } else if (key == "max-steps") {
    spec.convergence.max_steps = parse_int(key, value);
  } else if (key == "check-interval") {
    spec.convergence.check_interval = parse_int(key, value);
  } else if (key == "plain-potential") {
    spec.convergence.use_plain_potential = parse_bool(key, value);
  } else if (key == "horizon") {
    spec.horizon = parse_int(key, value);
  } else if (key == "sweep") {
    spec.sweeps = parse_sweeps(value);
  } else if (key == "csv") {
    spec.csv_path = value;
  } else if (key == "rows-csv") {
    spec.rows_csv_path = value;
  } else if (key == "hist-csv") {
    spec.hist_csv_path = value;
  } else if (key == "hist-column") {
    spec.hist_column = value;
  } else if (key == "hist-bins") {
    const std::int64_t bins = parse_int(key, value);
    if (bins < 1) {
      fail("spec key 'hist-bins': need at least 1 bin, got '" + value +
           "'");
    }
    spec.hist_bins = static_cast<std::size_t>(bins);
  } else if (key == "quantiles") {
    spec.quantiles = parse_quantiles(value);
  } else if (key == "metrics-json") {
    spec.metrics_json_path = value;
  } else if (key == "trace-json") {
    spec.trace_json_path = value;
  } else if (key == "table") {
    spec.print_table = parse_bool(key, value);
  } else {
    return false;
  }
  return true;
}

}  // namespace

Graph build_graph(const GraphSpec& spec) {
  Rng rng(spec.seed);
  const NodeId n = spec.n;
  const std::string& family = spec.family;
  if (family == "cycle") return gen::cycle(n);
  if (family == "path") return gen::path(n);
  if (family == "complete") return gen::complete(n);
  if (family == "star") return gen::star(n);
  if (family == "double_star") return gen::double_star((n - 2) / 2);
  if (family == "binary_tree") return gen::binary_tree(n);
  if (family == "petersen") return gen::petersen();
  if (family == "hypercube") {
    int d = 0;
    while ((NodeId{1} << (d + 1)) <= n) {
      ++d;
    }
    return gen::hypercube(d);
  }
  if (family == "torus") {
    NodeId side = 3;
    while ((side + 1) * (side + 1) <= n) {
      ++side;
    }
    return gen::torus(side, side);
  }
  if (family == "random_regular") {
    return gen::random_regular(rng, n, spec.degree);
  }
  if (family == "random_regular_4") {
    return gen::random_regular(rng, n, 4);
  }
  if (family == "erdos_renyi") {
    return gen::erdos_renyi_connected(rng, n, spec.edge_probability);
  }
  if (family == "pref_attach") {
    return gen::preferential_attachment(rng, n, spec.attach);
  }
  if (family == "barbell") return gen::barbell(n / 2, n - 2 * (n / 2));
  if (family == "lollipop") return gen::lollipop(n / 2, n - n / 2);
  std::string known;
  for (const std::string& name : graph_family_names()) {
    known += known.empty() ? name : ", " + name;
  }
  fail("unknown graph family '" + family + "' (known: " + known + ")");
}

std::vector<std::string> graph_family_names() {
  return {"barbell",        "binary_tree", "complete",
          "cycle",          "double_star", "erdos_renyi",
          "hypercube",      "lollipop",    "path",
          "petersen",       "pref_attach", "random_regular",
          "random_regular_4", "star",      "torus"};
}

std::vector<double> build_initial(const InitialSpec& spec,
                                  const Graph& graph,
                                  const GraphSpectra* spectra) {
  Rng rng(spec.seed);
  const NodeId n = graph.node_count();
  std::vector<double> xi;
  if (spec.distribution == "constant") {
    xi = initial::constant(n, spec.param_a);
  } else if (spec.distribution == "uniform") {
    xi = initial::uniform(rng, n, spec.param_a, spec.param_b);
  } else if (spec.distribution == "gaussian") {
    xi = initial::gaussian(rng, n, spec.param_a, spec.param_b);
  } else if (spec.distribution == "rademacher") {
    xi = initial::rademacher(rng, n);
  } else if (spec.distribution == "spike") {
    xi = initial::spike(n, 0, spec.param_a == 0.0 ? 1.0 : spec.param_a);
  } else if (spec.distribution == "hub_spike") {
    // Spike on the highest-degree node: on irregular graphs this drives
    // Avg(0) and the degree-weighted M(0) apart (the Thm 2.4(2) setup).
    NodeId hub = 0;
    for (NodeId u = 1; u < n; ++u) {
      if (graph.degree(u) > graph.degree(hub)) {
        hub = u;
      }
    }
    xi = initial::spike(
        n, hub,
        spec.param_a == 0.0 ? static_cast<double>(n) : spec.param_a);
  } else if (spec.distribution == "alternating") {
    xi = initial::alternating(n);
  } else if (spec.distribution == "blocks") {
    xi = initial::blocks(n, spec.param_a == 0.0 ? 1.0 : spec.param_a);
  } else if (spec.distribution == "ramp") {
    xi = initial::ramp(n, spec.param_a == 0.0 ? 1.0 : spec.param_a);
  } else if (spec.distribution == "f2_walk") {
    // Prop. B.2 adversarial state beta * f2(P) of the lazy walk matrix;
    // the memoised record (when given) and the direct solve produce the
    // identical deterministic eigenvector.
    xi = initial::scaled_eigenvector(
        spectra != nullptr ? spectra->walk().f2
                           : lazy_walk_spectrum(graph).f2,
        spec.param_a == 0.0 ? static_cast<double>(n) : spec.param_a);
  } else if (spec.distribution == "f2_laplacian") {
    xi = initial::scaled_eigenvector(
        spectra != nullptr ? spectra->laplacian().f2
                           : laplacian_spectrum(graph).f2,
        spec.param_a == 0.0 ? static_cast<double>(n) : spec.param_a);
  } else {
    fail("unknown initial distribution '" + spec.distribution +
         "' (known: alternating, blocks, constant, f2_laplacian, f2_walk, "
         "gaussian, hub_spike, rademacher, ramp, spike, uniform)");
  }
  if (spec.center == "plain") {
    initial::center_plain(xi);
  } else if (spec.center == "degree") {
    initial::center_degree_weighted(graph, xi);
  } else if (spec.center != "none") {
    fail("unknown centering '" + spec.center + "'");
  }
  return xi;
}

std::string graph_cache_key(const GraphSpec& spec) {
  // Every field that build_graph reads for some family is part of the
  // key; irrelevant fields for the requested family cost at most a
  // harmless duplicate build.
  std::ostringstream key;
  key << spec.family << ";n=" << spec.n << ";degree=" << spec.degree
      << ";attach=" << spec.attach
      << ";p=" << format_double(spec.edge_probability)
      << ";seed=" << spec.seed;
  return key.str();
}

std::vector<std::string> spec_keys() {
  return {"scenario",  "graph",     "n",
          "degree",    "attach",    "p",
          "graph-seed", "init",     "init-a",
          "init-b",    "init-seed", "center",
          "model",     "alpha",     "confidence",
          "k",         "lazy",
          "sampling",  "reorder",   "replicas",  "seed",
          "threads",   "eps",       "max-steps",
          "check-interval", "plain-potential", "horizon",
          "sweep",     "csv",       "rows-csv",
          "hist-csv",  "hist-column", "hist-bins",
          "quantiles", "metrics-json", "trace-json",
          "table"};
}

std::vector<double> parse_quantiles(const std::string& clause) {
  std::vector<double> quantiles;
  std::istringstream stream(clause);
  std::string value;
  while (std::getline(stream, value, ',')) {
    if (value.empty()) {
      continue;
    }
    const double q = parse_double("quantiles", value);
    if (q < 0.0 || q > 1.0) {
      fail("spec key 'quantiles': quantile " + value +
           " outside [0, 1]");
    }
    quantiles.push_back(q);
  }
  if (quantiles.empty()) {
    fail("spec key 'quantiles': expected q1,q2,... in [0, 1], got '" +
         clause + "'");
  }
  return quantiles;
}

ExperimentSpec parse_spec(const std::map<std::string, std::string>& kv) {
  ExperimentSpec spec;
  for (const auto& [key, value] : kv) {
    if (!apply_key(spec, key, value)) {
      fail("unknown spec key '" + key + "'");
    }
  }
  return spec;
}

ExperimentSpec parse_spec(const CliArgs& args) {
  ExperimentSpec spec;
  if (args.has("spec")) {
    spec = parse_spec_file(args.get("spec", std::string{}));
  }
  for (const std::string& key : spec_keys()) {
    if (args.has(key)) {
      apply_key(spec, key, args.get(key, std::string{}));
    }
  }
  return spec;
}

ExperimentSpec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open spec file '" + path + "'");
  }
  // Lines are applied one at a time (last duplicate wins, like the map
  // the parser used to collect) so every diagnostic -- unknown key,
  // malformed or out-of-range value -- can cite the offending line.
  ExperimentSpec spec;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    // Trim whitespace.
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    line.erase(line.begin(),
               std::find_if_not(line.begin(), line.end(), is_space));
    line.erase(std::find_if_not(line.rbegin(), line.rend(), is_space).base(),
               line.end());
    if (line.empty()) {
      continue;
    }
    const std::string at = path + ":" + std::to_string(line_number) + ": ";
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail(at + "expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (!apply_key(spec, key, value)) {
        fail("unknown spec key '" + key + "'");
      }
    } catch (const std::runtime_error& error) {
      fail(at + error.what());
    }
  }
  return spec;
}

std::string to_key_values(const ExperimentSpec& spec) {
  std::ostringstream out;
  out << "scenario=" << spec.scenario << "\n";
  out << "graph=" << spec.graph.family << "\n";
  out << "n=" << spec.graph.n << "\n";
  out << "degree=" << spec.graph.degree << "\n";
  out << "attach=" << spec.graph.attach << "\n";
  out << "p=" << format_double(spec.graph.edge_probability) << "\n";
  out << "graph-seed=" << spec.graph.seed << "\n";
  out << "init=" << spec.initial.distribution << "\n";
  out << "init-a=" << format_double(spec.initial.param_a) << "\n";
  out << "init-b=" << format_double(spec.initial.param_b) << "\n";
  out << "init-seed=" << spec.initial.seed << "\n";
  out << "center=" << spec.initial.center << "\n";
  out << "model=" << model_kind_name(spec.model.kind) << "\n";
  out << "alpha=" << format_double(spec.model.alpha) << "\n";
  out << "confidence=" << format_double(spec.model.confidence) << "\n";
  out << "k=" << spec.model.k << "\n";
  out << "lazy=" << (spec.model.lazy ? "true" : "false") << "\n";
  out << "sampling="
      << (spec.model.sampling == SamplingMode::without_replacement
              ? "without"
              : "with")
      << "\n";
  out << "reorder=" << (spec.model.reorder ? "true" : "false") << "\n";
  out << "replicas=" << spec.replicas << "\n";
  out << "seed=" << spec.seed << "\n";
  out << "threads=" << spec.threads << "\n";
  out << "eps=" << format_double(spec.convergence.epsilon) << "\n";
  out << "max-steps=" << spec.convergence.max_steps << "\n";
  out << "check-interval=" << spec.convergence.check_interval << "\n";
  out << "plain-potential="
      << (spec.convergence.use_plain_potential ? "true" : "false") << "\n";
  out << "horizon=" << spec.horizon << "\n";
  if (!spec.sweeps.empty()) {
    out << "sweep=" << format_sweeps(spec.sweeps) << "\n";
  }
  if (!spec.csv_path.empty()) {
    out << "csv=" << spec.csv_path << "\n";
  }
  if (!spec.rows_csv_path.empty()) {
    out << "rows-csv=" << spec.rows_csv_path << "\n";
  }
  if (!spec.hist_csv_path.empty()) {
    out << "hist-csv=" << spec.hist_csv_path << "\n";
  }
  if (!spec.hist_column.empty()) {
    out << "hist-column=" << spec.hist_column << "\n";
  }
  out << "hist-bins=" << spec.hist_bins << "\n";
  if (!spec.quantiles.empty()) {
    out << "quantiles=";
    for (std::size_t i = 0; i < spec.quantiles.size(); ++i) {
      out << (i > 0 ? "," : "") << format_double(spec.quantiles[i]);
    }
    out << "\n";
  }
  if (!spec.metrics_json_path.empty()) {
    out << "metrics-json=" << spec.metrics_json_path << "\n";
  }
  if (!spec.trace_json_path.empty()) {
    out << "trace-json=" << spec.trace_json_path << "\n";
  }
  out << "table=" << (spec.print_table ? "true" : "false") << "\n";
  return out.str();
}

void apply_override(ExperimentSpec& spec, const std::string& key,
                    const std::string& value) {
  // Output and orchestration keys are fixed per experiment: sweeping them
  // would change how rows are collected, not what is measured.
  if (key == "scenario" || key == "sweep" || key == "csv" ||
      key == "rows-csv" || key == "hist-csv" || key == "hist-column" ||
      key == "hist-bins" || key == "quantiles" || key == "table" ||
      key == "metrics-json" || key == "trace-json" ||
      key == "threads" || key == "replicas" || key == "seed") {
    fail("spec key '" + key + "' cannot be swept");
  }
  if (!apply_key(spec, key, value)) {
    fail("unknown sweep key '" + key + "'");
  }
}

std::vector<SweepAxis> parse_sweeps(const std::string& clause) {
  std::vector<SweepAxis> axes;
  std::istringstream stream(clause);
  std::string axis_text;
  while (std::getline(stream, axis_text, ';')) {
    if (axis_text.empty()) {
      continue;
    }
    const std::size_t colon = axis_text.find(':');
    if (colon == std::string::npos) {
      fail("sweep axis '" + axis_text + "': expected key:v1,v2,...");
    }
    SweepAxis axis;
    axis.key = axis_text.substr(0, colon);
    std::istringstream values(axis_text.substr(colon + 1));
    std::string value;
    while (std::getline(values, value, ',')) {
      if (!value.empty()) {
        axis.values.push_back(value);
      }
    }
    if (axis.key.empty() || axis.values.empty()) {
      fail("sweep axis '" + axis_text + "': expected key:v1,v2,...");
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

std::string format_sweeps(const std::vector<SweepAxis>& sweeps) {
  std::string out;
  for (const SweepAxis& axis : sweeps) {
    if (!out.empty()) {
      out += ';';
    }
    out += axis.key + ':';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += axis.values[i];
    }
  }
  return out;
}

}  // namespace engine
}  // namespace opindyn
