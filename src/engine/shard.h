// The engine's work scheduling is the library-wide CellScheduler
// (src/support/cell_scheduler.h) -- the single implementation of the
// thread-count-determinism contract.  This header re-exports it under
// the engine namespace.
#ifndef OPINDYN_ENGINE_SHARD_H
#define OPINDYN_ENGINE_SHARD_H

#include "src/support/cell_scheduler.h"

namespace opindyn {
namespace engine {

using ::opindyn::CellScheduler;
using ::opindyn::ReplicaBatch;
using ::opindyn::ReplicaScheduler;
using ::opindyn::RowEmitter;
using ::opindyn::StreamedRow;
using ::opindyn::subseed;

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SHARD_H
