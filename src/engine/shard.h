// The engine's replica sharding is the library-wide ReplicaScheduler
// (src/support/replica_scheduler.h) -- the single implementation of the
// thread-count-determinism contract, shared with the core monte_carlo
// harness.  This header re-exports it under the engine namespace.
#ifndef OPINDYN_ENGINE_SHARD_H
#define OPINDYN_ENGINE_SHARD_H

#include "src/support/replica_scheduler.h"

namespace opindyn {
namespace engine {

using ::opindyn::ReplicaScheduler;
using ::opindyn::subseed;

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_SHARD_H
