// Declarative description of one experiment: which scenario to run, over
// which graph, from which initial opinions, with which model parameters,
// and which axes to sweep.  A spec is a flat set of key=value pairs, so
// the same schema parses from CLI flags (`--n=1024`), from a spec file
// (one `key=value` per line, `#` comments), and round-trips through
// `to_key_values` for provenance logging.
#ifndef OPINDYN_ENGINE_EXPERIMENT_SPEC_H
#define OPINDYN_ENGINE_EXPERIMENT_SPEC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/spectral/spectrum_cache.h"
#include "src/support/cli.h"
#include "src/support/rng.h"

namespace opindyn {
namespace engine {

/// Which graph to build.  `family` is one of the names accepted by
/// `build_graph`; the auxiliary parameters are only read by the families
/// that need them.
struct GraphSpec {
  std::string family = "cycle";
  NodeId n = 64;
  /// Degree for random_regular.
  NodeId degree = 4;
  /// Edges per new node for preferential attachment.
  NodeId attach = 2;
  /// Edge probability for erdos_renyi.
  double edge_probability = 0.1;
  /// Seed for the randomised families.
  std::uint64_t seed = 4242;
};

/// Builds one of the named graph families:
/// cycle, path, complete, star, double_star, binary_tree, hypercube
/// (largest Q_d with 2^d <= n), torus (largest square <= n), petersen,
/// random_regular, erdos_renyi, pref_attach, barbell, lollipop.
/// Throws std::runtime_error for unknown families.
Graph build_graph(const GraphSpec& spec);

/// Names accepted by `build_graph`, sorted.
std::vector<std::string> graph_family_names();

/// Which initial opinion vector xi(0) to draw.
struct InitialSpec {
  /// constant | uniform | gaussian | rademacher | spike | hub_spike |
  /// alternating | blocks | ramp | f2_walk | f2_laplacian.
  /// hub_spike places the spike on the highest-degree node (so Avg(0)
  /// and the degree-weighted M(0) differ on irregular graphs, the
  /// Thm 2.4(2) setup); f2_walk / f2_laplacian are the Prop. B.2
  /// adversarial eigenvector states beta * f2 of the lazy walk matrix /
  /// Laplacian.
  std::string distribution = "rademacher";
  /// First parameter: constant value, uniform lo, gaussian mean,
  /// spike/blocks/ramp magnitude, f2_* scale beta (0 = n).
  double param_a = 0.0;
  /// Second parameter: uniform hi, gaussian stddev.
  double param_b = 1.0;
  std::uint64_t seed = 3;
  /// plain (Avg = 0) | degree (M = 0) | none.
  std::string center = "plain";
};

/// Draws xi(0) per the spec (and applies the requested centering).
/// Throws std::runtime_error for unknown distributions or centerings.
/// The f2_walk / f2_laplacian eigenvector states take their eigensolve
/// from `spectra` when one is passed (the engine passes the batch-wide
/// SpectrumCache record, so a sweep solves once per distinct graph);
/// with nullptr they solve directly -- same values either way.
std::vector<double> build_initial(const InitialSpec& spec,
                                  const Graph& graph,
                                  const GraphSpectra* spectra = nullptr);

/// One sweep axis: the spec key to override and the values to try.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

struct ExperimentSpec {
  std::string scenario = "node";
  GraphSpec graph;
  InitialSpec initial;
  /// model (the dynamics rule) plus its knobs: alpha / k / lazy /
  /// sampling / reorder / confidence.  Single-model scenarios force
  /// `kind` to their own rule via config_for_kind; the cross-model
  /// scenarios honour `model=` verbatim, which makes it a sweep axis.
  ModelConfig model;
  std::int64_t replicas = 100;
  std::uint64_t seed = 1;
  /// Worker threads for cell x replica scheduling; 0 = hardware
  /// concurrency.  Results are bit-identical for every value (see
  /// CellScheduler).
  std::size_t threads = 0;
  ConvergenceOptions convergence;
  /// Fixed step horizon for trajectory-style scenarios (rows are emitted
  /// every convergence.check_interval steps up to here); 0 picks 16n.
  std::int64_t horizon = 0;
  std::vector<SweepAxis> sweeps;
  /// Optional CSV output path for aggregate rows ("" = no CSV).
  std::string csv_path;
  /// Optional CSV output path for streamed per-replica rows ("" = none;
  /// only scenarios with row_columns() produce any).
  std::string rows_csv_path;
  /// Optional CSV output path for a histogram over one numeric column of
  /// the streamed per-replica channel ("" = none).  Requires a scenario
  /// with row_columns().
  std::string hist_csv_path;
  /// Which streamed column the histogram/quantile summarizer bins; "" =
  /// the last row column (the interesting metric by convention).
  std::string hist_column;
  /// Bin count for the histogram sink.
  std::size_t hist_bins = 20;
  /// Quantiles (each in [0,1]) summarized over the selected streamed
  /// column; empty = no quantile summary.  Quantiles are exact order
  /// statistics of the streamed values, printed on stdout (and they
  /// activate the row channel just like hist-csv / rows-csv do).
  std::vector<double> quantiles;
  /// Optional run-report output path ("" = none): a JSON manifest of
  /// the run (spec echo, build info, counters, per-cell timing table,
  /// steps/sec, peak RSS; see engine/run_report.h).  Setting it enables
  /// metrics collection for the batch.
  std::string metrics_json_path;
  /// Optional Chrome trace-event output path ("" = none), viewable in
  /// Perfetto / chrome://tracing.  Also enables metrics collection.
  std::string trace_json_path;
  /// Print the markdown table to stdout.
  bool print_table = true;
};

/// The flat key set of the spec schema (also the accepted CLI flags):
/// scenario, graph, n, degree, attach, p, graph-seed, init, init-a,
/// init-b, init-seed, center, model, alpha, confidence, k, lazy,
/// sampling, reorder, replicas, seed,
/// threads, eps, max-steps, check-interval, plain-potential, horizon,
/// sweep, csv, rows-csv, hist-csv, hist-column, hist-bins, quantiles,
/// metrics-json, trace-json, table.
std::vector<std::string> spec_keys();

/// Parses a comma-separated quantile list ("0.5,0.9,0.99"); every value
/// must be in [0,1].  Throws std::runtime_error otherwise.
std::vector<double> parse_quantiles(const std::string& clause);

/// Canonical cache key of a GraphSpec: two specs build the identical
/// graph iff their keys are equal, so a sweep over model parameters
/// shares one immutable Graph across cells (see GraphCache).
std::string graph_cache_key(const GraphSpec& spec);

/// Parses a spec from flat key=value pairs.  Unknown keys and malformed
/// values throw std::runtime_error.
ExperimentSpec parse_spec(const std::map<std::string, std::string>& kv);

/// Parses the known spec keys out of CLI flags.  If `--spec=<path>` is
/// present the file is loaded first and the remaining flags override it.
ExperimentSpec parse_spec(const CliArgs& args);

/// Parses a spec file: one key=value per line, blank lines and `#`
/// comments ignored.  Malformed lines -- unknown keys, non-numeric or
/// out-of-range values, missing '=' -- throw std::runtime_error with a
/// "path:line: ..." diagnostic naming the offending key, never an
/// uncaught std::invalid_argument.  Duplicate keys: the last line wins.
ExperimentSpec parse_spec_file(const std::string& path);

/// Serialises the spec as one `key=value` per line (doubles at full
/// precision), such that parse_spec(parse of the output) reproduces the
/// spec exactly.
std::string to_key_values(const ExperimentSpec& spec);

/// Applies one sweep override (e.g. key="k", value="4") in place.
/// Accepts the graph/model/initial/convergence keys of the schema;
/// throws std::runtime_error for keys that cannot be swept.
void apply_override(ExperimentSpec& spec, const std::string& key,
                    const std::string& value);

/// Parses a sweep clause "k:1,2,4;alpha:0.3,0.5" into axes.
std::vector<SweepAxis> parse_sweeps(const std::string& clause);

/// Inverse of parse_sweeps.
std::string format_sweeps(const std::vector<SweepAxis>& sweeps);

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_EXPERIMENT_SPEC_H
