#include <stdexcept>

#include "src/engine/scenario.h"
#include "src/support/assert.h"
#include "src/support/cli.h"

namespace opindyn {
namespace engine {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(std::unique_ptr<Scenario> scenario) {
  OPINDYN_EXPECTS(scenario != nullptr, "cannot register a null scenario");
  const std::string name = scenario->name();
  if (!scenarios_.emplace(name, std::move(scenario)).second) {
    throw std::runtime_error("scenario '" + name + "' is already registered");
  }
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return scenarios_.count(name) > 0;
}

const Scenario& ScenarioRegistry::get(const std::string& name) const {
  const auto it = scenarios_.find(name);
  if (it == scenarios_.end()) {
    const std::vector<std::string> suggestions =
        closest_matches(name, names());
    std::string message = "unknown scenario '" + name + "'";
    if (!suggestions.empty()) {
      message += " -- did you mean ";
      for (std::size_t i = 0; i < suggestions.size(); ++i) {
        message += (i == 0 ? "'" : i + 1 == suggestions.size() ? " or '"
                                                               : ", '") +
                   suggestions[i] + "'";
      }
      message += "?";
    }
    std::string known;
    for (const auto& [registered, unused] : scenarios_) {
      known += known.empty() ? registered : ", " + registered;
    }
    throw std::runtime_error(message + " (known: " + known + ")");
  }
  return *it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, unused] : scenarios_) {
    out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

ScenarioRegistrar::ScenarioRegistrar(std::unique_ptr<Scenario> scenario) {
  ScenarioRegistry::instance().add(std::move(scenario));
}

}  // namespace engine
}  // namespace opindyn
