// The batch scheduler: expands an ExperimentSpec's sweep axes into the
// cartesian grid of cells, resolves every cell up front (graphs come
// from a per-batch GraphCache, so a sweep over model parameters builds
// each distinct graph once), submits every cell's replica batches to one
// shared CellScheduler -- all (cell x replica) units are in flight on
// one thread pool at once -- and folds the cells in grid order, routing
// aggregate and streamed per-replica rows through an OrderedFlush to the
// configured sinks.  Grid expansion, Rng stream assignment, fold order
// and emission order are all independent of the thread count, so the
// emitted CSV bytes are identical for any --threads value.
#ifndef OPINDYN_ENGINE_RUNNER_H
#define OPINDYN_ENGINE_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/experiment_spec.h"
#include "src/engine/scenario.h"
#include "src/engine/sinks.h"
#include "src/support/metrics.h"

namespace opindyn {

class CancelToken;
class GraphCache;
class SpectrumCache;

namespace engine {

/// One grid point: the sweep overrides that produce it, in axis order.
struct SweepPoint {
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Cartesian product of the spec's sweep axes, row-major with the first
/// axis slowest.  A spec without sweeps yields one empty point.
std::vector<SweepPoint> expand_grid(const ExperimentSpec& spec);

/// Deterministic description of one resolved grid cell, kept for the
/// run report's per-cell table (the labels match the "cell/<index>"
/// batch labels the scheduler's metrics are recorded under).
struct CellSummary {
  std::string label;  // "cell/<index>" in grid order
  std::string graph;
  std::int64_t n = 0;
  std::int64_t replicas = 0;
  /// The sweep overrides that produced this cell, in axis order.
  std::vector<std::pair<std::string, std::string>> overrides;
};

struct BatchResult {
  /// Aggregate channel: base + sweep-label + scenario columns.
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Streamed per-replica channel.  Only populated when the scenario
  /// declares row_columns() AND a row sink was passed (pass a
  /// MemorySink to consume the rows programmatically) -- otherwise the
  /// rows are never even generated, so aggregate-only runs don't pay
  /// O(replicas x checkpoints) memory.
  std::vector<std::string> replica_columns;
  std::vector<std::vector<std::string>> replica_rows;
  std::int64_t work_items = 0;
  /// Distinct graphs actually constructed; < work_items whenever the
  /// cache shared a graph across cells.
  std::int64_t graphs_built = 0;
  /// Graph requests served from the cache without building -- the other
  /// half of the hit-rate that graphs_built (misses) alone cannot show.
  std::int64_t graph_cache_hits = 0;
  /// Eigensolves actually run by the batch-wide SpectrumCache: at most
  /// one per distinct graph and spectrum kind (walk / Laplacian), no
  /// matter how many cells or replicas consumed the result.  0 when the
  /// scenario and the initial distribution need no spectra.
  std::int64_t spectra_solved = 0;
  /// Spectrum requests served from the memoised records.
  std::int64_t spectra_hits = 0;
  /// Spectra-record lookups that found / had to create a record.
  std::int64_t spectrum_record_hits = 0;
  std::int64_t spectrum_record_misses = 0;
  /// LRU evictions charged to this batch (0 unless the caller shared
  /// bounded caches via RunContext) and the caches' resident footprint
  /// when the batch finished.
  std::int64_t graph_cache_evictions = 0;
  std::uint64_t graph_cache_resident_bytes = 0;
  std::int64_t spectrum_cache_evictions = 0;
  std::uint64_t spectrum_cache_resident_bytes = 0;
  /// True when the batch was stopped by a cooperative cancellation
  /// (SIGINT, serve-mode deadline or drain) instead of completing: the
  /// rows hold the flushed prefix of cells and `interrupt_reason` holds
  /// the CancelToken's reason.  Errors other than cancellation still
  /// throw.
  bool interrupted = false;
  std::string interrupt_reason;
  /// One entry per grid cell, in grid (= fold = emission) order.
  std::vector<CellSummary> cells;
};

/// Shared infrastructure a batch should run on.  Every field defaults
/// to nullptr = "the runner builds its own per-batch instance", which
/// is exactly the historical behaviour; serve mode passes its
/// process-lifetime scheduler and bounded caches plus a per-job cancel
/// token, and the one-shot CLI passes its SIGINT token.
struct RunContext {
  /// Shared pool; when set, spec.threads is ignored (the pool's size
  /// wins) -- results are bit-identical either way.
  CellScheduler* scheduler = nullptr;
  GraphCache* graph_cache = nullptr;
  SpectrumCache* spectrum_cache = nullptr;
  /// Polled between replica units and step bursts; a cancelled token
  /// yields an interrupted (not failed) BatchResult.
  const CancelToken* cancel = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Runs the full batch: looks up the scenario, expands the grid, builds
/// the per-cell graph (cached) and initial opinions, schedules every
/// cell's replicas over one pool, and streams aggregate rows to `sinks`
/// and per-replica rows to `row_sinks` (begin/row/finish, in cell
/// order).  Also returns everything in the BatchResult for programmatic
/// callers.
///
/// `metrics` (optional) turns on observability for the batch: phase
/// timings and per-(cell x replica) spans are recorded into the
/// registry, counters bumped inside replica bodies are attributed to
/// their cell, and cache/scheduler totals are folded in at batch end --
/// see engine/run_report.h for turning the registry into a manifest.
/// The emitted rows and CSV bytes are identical with and without it.
BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks = {},
                           const std::vector<RowSink*>& row_sinks = {},
                           MetricsRegistry* metrics = nullptr);

/// As above, but running on the caller's shared infrastructure (see
/// RunContext).  Cache counters in the BatchResult are per-batch deltas,
/// so they mean the same thing for shared and per-batch caches.
BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks,
                           const std::vector<RowSink*>& row_sinks,
                           const RunContext& context);

/// Convenience wrapper: renders a markdown table of the aggregate rows
/// to stdout (unless spec.print_table is false), writes spec.csv_path
/// and spec.rows_csv_path if set, and -- when spec.metrics_json_path /
/// spec.trace_json_path are set -- collects metrics and writes the run
/// report and Chrome trace files.  An interrupted batch (see
/// RunContext::cancel) still flushes its sinks and writes the report
/// with "interrupted": true.
BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec);
BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec,
                                              const RunContext& context);

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_RUNNER_H
