// The batch scheduler: expands an ExperimentSpec's sweep axes into the
// cartesian grid of work items, runs each item through its scenario with
// replicas sharded across the thread pool, and streams the aggregated
// rows to the configured sinks.  Grid expansion, Rng stream assignment
// and row order are all independent of the thread count, so the emitted
// CSV is byte-identical for any --threads value.
#ifndef OPINDYN_ENGINE_RUNNER_H
#define OPINDYN_ENGINE_RUNNER_H

#include <string>
#include <vector>

#include "src/engine/experiment_spec.h"
#include "src/engine/scenario.h"
#include "src/engine/sinks.h"

namespace opindyn {
namespace engine {

/// One grid point: the sweep overrides that produce it, in axis order.
struct SweepPoint {
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Cartesian product of the spec's sweep axes, row-major with the first
/// axis slowest.  A spec without sweeps yields one empty point.
std::vector<SweepPoint> expand_grid(const ExperimentSpec& spec);

struct BatchResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::int64_t work_items = 0;
};

/// Runs the full batch: looks up the scenario, expands the grid, builds
/// the per-item graph and initial opinions, runs the scenario on each
/// item, and streams rows to `sinks` (begin/row/finish).  Also returns
/// everything in the BatchResult for programmatic callers.
BatchResult run_experiment(const ExperimentSpec& spec,
                           const std::vector<RowSink*>& sinks = {});

/// Convenience wrapper: renders a markdown table to stdout (unless
/// spec.print_table is false) and writes spec.csv_path if set.
BatchResult run_experiment_with_default_sinks(const ExperimentSpec& spec);

}  // namespace engine
}  // namespace opindyn

#endif  // OPINDYN_ENGINE_RUNNER_H
