#include "src/support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/support/assert.h"

namespace opindyn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPINDYN_EXPECTS(!headers_.empty(), "table needs at least one column");
}

Table& Table::new_row() {
  OPINDYN_EXPECTS(cells_.empty() || cells_.back().size() == headers_.size(),
                  "previous row is incomplete");
  cells_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& value) {
  OPINDYN_EXPECTS(!cells_.empty(), "call new_row() before add()");
  OPINDYN_EXPECTS(cells_.back().size() < headers_.size(),
                  "row already has all columns");
  cells_.back().push_back(value);
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(double value, int digits) {
  std::ostringstream out;
  out << std::setprecision(digits) << value;
  return add(out.str());
}

Table& Table::add_sci(double value, int digits) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(digits) << value;
  return add(out.str());
}

Table& Table::add_fixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return add(out.str());
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : cells_) {
    emit_row(row);
  }
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_markdown(); }

}  // namespace opindyn
