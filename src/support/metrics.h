// Low-overhead run metrics: named counters, wall-clock timings and
// trace spans, collected into per-worker buffers and folded
// deterministically at batch end.
//
// Design constraints (the ISSUE-6 contract):
//
//  * Near-zero cost when disabled.  Everything keys off a
//    MetricsRegistry pointer that defaults to nullptr: the CellScheduler
//    checks one pointer per replica unit, and library code calls the
//    free functions in namespace `metrics`, which reduce to one
//    thread_local load + branch when no MetricsScope is installed.
//    Nothing is ever recorded per simulation step -- instrumentation
//    granularity is one replica unit / one phase / one cache build, so
//    golden CSV bytes and BENCH throughput are unchanged either way.
//
//  * Deterministic counters.  Counter increments are attributed to
//    per-worker buffers while units run, then fold() merges them into
//    name-sorted totals; sums are order-independent, so the counter
//    section of a run report is byte-identical at any --threads value.
//    Wall-clock data (timings, spans, busy time, gauges) is inherently
//    timing-dependent and is folded into separate sections that the
//    determinism comparison excludes.
//
//  * Labels give per-cell attribution for free.  The scheduler installs
//    a MetricsScope tagged with the submitting batch's label (the
//    runner labels cells "cell/<index>"), so a counter bumped deep in
//    library code (e.g. engine.steps in run_until_converged) lands both
//    in the global total and in that cell's row of the report's
//    per-cell table -- without threading a handle through every layer.
#ifndef OPINDYN_SUPPORT_METRICS_H
#define OPINDYN_SUPPORT_METRICS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace opindyn {

/// One completed trace span (a Chrome trace-event "X" duration slice).
struct TraceSpan {
  std::string name;      // batch label or phase name, e.g. "cell/3"
  std::string category;  // "unit" | "phase" | "graph_build" | ...
  std::int64_t replica = -1;  // unit spans carry their replica index
  std::uint64_t start_us = 0;  // relative to the registry's epoch
  std::uint64_t duration_us = 0;
  int worker = 0;  // stable per-run worker index; filled by fold()
};

/// One worker thread's private buffer.  Never locked: each thread only
/// writes its own buffer, and fold() runs after the pool has drained.
class MetricsBuffer {
 public:
  void count(const std::string& name, std::int64_t delta);
  /// Counts into the (label, name) cell of the per-label table only;
  /// callers that also want the global total call count() themselves.
  void count_labeled(const std::string& label, const std::string& name,
                     std::int64_t delta);
  void add_span(TraceSpan span);
  void add_busy(std::uint64_t us) { busy_us_ += us; }

 private:
  friend class MetricsRegistry;
  std::map<std::string, std::int64_t> counters_;
  // label -> name -> value
  std::map<std::string, std::map<std::string, std::int64_t>> labeled_;
  std::vector<TraceSpan> spans_;
  std::uint64_t busy_us_ = 0;
};

/// Per-worker activity summary (nondeterministic: depends on how units
/// landed on threads).
struct WorkerReport {
  int worker = 0;
  std::int64_t spans = 0;
  std::uint64_t busy_us = 0;
};

/// Everything the registry recorded, merged deterministically: maps are
/// name-sorted, per-worker contributions are summed (order-independent),
/// spans are ordered by (worker, start).
struct FoldedMetrics {
  /// Deterministic at any thread count.
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::map<std::string, std::int64_t>> labeled;
  /// Wall-clock sections, excluded from determinism comparisons.
  std::map<std::string, double> timings_ms;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::uint64_t> label_busy_us;
  std::vector<WorkerReport> workers;
  std::vector<TraceSpan> spans;
};

class MetricsRegistry {
 public:
  /// Construction records the trace epoch: all span timestamps are
  /// microseconds since this instant.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The calling thread's buffer (created on first use; the map lock is
  /// taken once per lookup, not per record, so callers should hold the
  /// reference across a unit).
  MetricsBuffer& buffer();

  /// Microseconds since the registry epoch.
  std::uint64_t now_us() const;

  /// Accumulates a main-thread wall timer (e.g. one runner phase).
  void add_timing(const std::string& name, double ms);
  /// Records a point-in-time observation (e.g. max queue depth).
  void set_gauge(const std::string& name, std::int64_t value);

  /// Merges every buffer.  Call only after all instrumented work has
  /// completed (the runner folds after the scheduler drained).
  FoldedMetrics fold() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  /// Buffers in creation order; worker indices come from this order.
  std::vector<std::pair<std::thread::id, std::unique_ptr<MetricsBuffer>>>
      buffers_;
  std::map<std::string, double> timings_;
  std::map<std::string, std::int64_t> gauges_;
};

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer (and its busy accumulator).  A nullptr registry
/// disables it entirely.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, std::string name,
             std::string category, std::int64_t replica = -1);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::string category_;
  std::int64_t replica_;
  std::uint64_t start_us_ = 0;
};

/// Installs `registry` as the calling thread's metrics sink for the
/// scope's lifetime; counts recorded via metrics::count are tagged with
/// `label`.  Scopes nest (the previous sink is restored on exit); a
/// nullptr registry installs nothing.
class MetricsScope {
 public:
  MetricsScope(MetricsRegistry* registry, const std::string& label);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  bool installed_ = false;
  void* frame_ = nullptr;  // the ThreadSink frame this scope owns
};

namespace metrics {

/// True iff a MetricsScope is active on this thread.
bool active() noexcept;

/// Adds `delta` to the named counter of the active scope's registry
/// (global total + the scope's label row).  Without a scope this is one
/// thread_local load and a branch -- safe to call from library code
/// like run_until_converged without an #ifdef.
void count(const char* name, std::int64_t delta = 1);

}  // namespace metrics
}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_METRICS_H
