// Tiny command-line parsing for the example/bench binaries:
// `--name=value` or `--flag` options plus positional arguments.
#ifndef OPINDYN_SUPPORT_CLI_H
#define OPINDYN_SUPPORT_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opindyn {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  /// The numeric overloads validate the whole value: non-numeric input,
  /// out-of-range values and trailing garbage ("--eps=0.1x") throw
  /// std::runtime_error naming the option, so a CLI main() can catch and
  /// print a one-line diagnostic instead of dying on an uncaught
  /// std::invalid_argument.
  std::int64_t get(const std::string& name, std::int64_t fallback) const;
  double get(const std::string& name, double fallback) const;
  bool get(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

  /// Names of all `--name[=value]` options that were passed, sorted;
  /// lets callers reject unknown flags instead of silently ignoring
  /// typos.
  std::vector<std::string> option_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Strict numeric parsing shared by every user-input surface (CLI
/// options, spec keys, sink columns): the whole value must parse --
/// non-numeric input, out-of-range values and trailing garbage all
/// throw std::runtime_error "<subject>: ..." so callers surface a
/// one-line diagnostic instead of an uncaught std::invalid_argument.
/// `subject` names the input, e.g. "option '--replicas'".
std::int64_t parse_int_value(const std::string& subject,
                             const std::string& value);
double parse_double_value(const std::string& subject,
                          const std::string& value);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidates nearest to `name` by edit distance, closest first and
/// alphabetical within a distance; used for "did you mean" suggestions
/// after a typo'd scenario or flag.  Only candidates within
/// max(2, name.size() / 3) edits qualify, so unrelated names are never
/// suggested.  At most `max_results` are returned.
std::vector<std::string> closest_matches(
    const std::string& name, const std::vector<std::string>& candidates,
    std::size_t max_results = 3);

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_CLI_H
