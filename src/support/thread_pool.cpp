#include "src/support/thread_pool.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    OPINDYN_EXPECTS(!stopping_, "submit() on a stopping ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace opindyn
