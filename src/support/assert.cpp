#include "src/support/assert.h"

#include <sstream>

namespace opindyn {

namespace {
std::string format_message(const char* kind, const char* condition,
                           const char* file, int line,
                           const std::string& message) {
  std::ostringstream out;
  out << kind << " violated: `" << condition << "` at " << file << ":" << line;
  if (!message.empty()) {
    out << " -- " << message;
  }
  return out.str();
}
}  // namespace

ContractError::ContractError(const char* kind, const char* condition,
                             const char* file, int line,
                             const std::string& message)
    : std::logic_error(format_message(kind, condition, file, line, message)) {}

namespace detail {
void contract_failure(const char* kind, const char* condition,
                      const char* file, int line, const std::string& message) {
  throw ContractError(kind, condition, file, line, message);
}
}  // namespace detail

}  // namespace opindyn
