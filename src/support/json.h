// Minimal JSON value model, parser and serialiser -- the shared
// machinery behind the observability outputs (run reports, Chrome trace
// files, BENCH_*.json) and the perf_check regression gate that reads
// them back.  Deliberately small: objects preserve insertion order so
// serialisation is deterministic (two identical builds dump identical
// bytes, which the metrics-determinism tests byte-compare), integers
// are kept exact (counters round-trip without scientific notation), and
// doubles dump with the shortest representation that parses back to the
// same value.
#ifndef OPINDYN_SUPPORT_JSON_H
#define OPINDYN_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace opindyn {
namespace json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered key/value list (not a map): dump order == build
/// order, and `find` does a linear scan (objects here are small).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { null, boolean, integer, number, string, array, object };

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool value) : kind_(Kind::boolean), bool_(value) {}
  Value(double value) : kind_(Kind::number), number_(value) {}
  Value(std::int64_t value) : kind_(Kind::integer), int_(value) {}
  Value(int value) : Value(static_cast<std::int64_t>(value)) {}
  Value(std::uint64_t value)
      : Value(static_cast<std::int64_t>(value)) {}
  Value(std::string value)
      : kind_(Kind::string), string_(std::move(value)) {}
  Value(const char* value) : kind_(Kind::string), string_(value) {}
  Value(Array value) : kind_(Kind::array), array_(std::move(value)) {}
  Value(Object value) : kind_(Kind::object), object_(std::move(value)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::null; }
  bool is_bool() const noexcept { return kind_ == Kind::boolean; }
  /// True for both integer and floating content.
  bool is_number() const noexcept {
    return kind_ == Kind::integer || kind_ == Kind::number;
  }
  bool is_string() const noexcept { return kind_ == Kind::string; }
  bool is_array() const noexcept { return kind_ == Kind::array; }
  bool is_object() const noexcept { return kind_ == Kind::object; }

  /// Typed accessors; each throws std::runtime_error naming the actual
  /// kind on mismatch (perf_check turns these into one-line errors
  /// citing the malformed benchmark file).
  bool as_bool() const;
  double as_double() const;  // accepts integer and number
  std::int64_t as_int() const;  // accepts exact-integral numbers too
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; nullptr when absent or when this is not an
  /// object.
  const Value* find(const std::string& key) const;
  /// Object append-or-replace (makes a null value an empty object
  /// first; throws on other kinds).
  void set(std::string key, Value value);
  /// Array append (makes a null value an empty array first).
  void push_back(Value value);

  /// Serialises this value.  indent < 0 emits the compact one-line
  /// form; indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document.  Throws std::runtime_error with a
/// byte-offset diagnostic on malformed input (including trailing
/// garbage after the document).
Value parse(const std::string& text);

/// Parses the JSON document in the named file.  Throws with the path in
/// the message when the file cannot be read or does not parse.
Value parse_file(const std::string& path);

}  // namespace json
}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_JSON_H
