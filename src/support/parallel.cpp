#include "src/support/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace opindyn {

std::size_t default_parallelism() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& body,
                  std::size_t threads) {
  if (count <= 0) {
    return;
  }
  if (threads == 0) {
    threads = default_parallelism();
  }
  threads = std::min<std::size_t>(threads, static_cast<std::size_t>(count));
  if (threads <= 1) {
    for (std::int64_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::int64_t chunk =
      (count + static_cast<std::int64_t>(threads) - 1) /
      static_cast<std::int64_t>(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    const std::int64_t begin = static_cast<std::int64_t>(w) * chunk;
    const std::int64_t end = std::min<std::int64_t>(begin + chunk, count);
    if (begin >= end) {
      break;
    }
    workers.emplace_back([&, begin, end] {
      try {
        for (std::int64_t i = begin; i < end; ++i) {
          body(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace opindyn
