// Sampling primitives used by the averaging processes.
//
// The NodeModel needs a uniformly random k-subset of a node's neighbour
// list on every step, without replacement.  `sample_without_replacement`
// implements Robert Floyd's algorithm: O(k) expected draws independent of
// the population size, exact uniform-subset semantics.  For the tiny k used
// in practice (k <= 8) membership testing is a linear scan over the output,
// which beats any hash set.
#ifndef OPINDYN_SUPPORT_SAMPLING_H
#define OPINDYN_SUPPORT_SAMPLING_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/support/assert.h"
#include "src/support/rng.h"

namespace opindyn {

/// Writes a uniformly random size-`k` subset of {0, 1, ..., population-1}
/// into `out` (resized to k).  Order of elements is unspecified but the
/// subset is exactly uniform among all C(population, k) subsets.
/// Precondition: 0 <= k <= population.
///
/// Inline: this runs once per NodeModel step, and both the recorded path
/// and the burst kernel must share one definition so their rng draw
/// sequences agree by construction.
inline void sample_without_replacement(Rng& rng, std::int64_t population,
                                       std::int64_t k,
                                       std::vector<std::int32_t>& out) {
  OPINDYN_EXPECTS(k >= 0, "sample size must be non-negative");
  OPINDYN_EXPECTS(k <= population, "sample size exceeds population");
  out.clear();
  out.reserve(static_cast<std::size_t>(k));
  // Floyd's algorithm: for j = population-k .. population-1, draw
  // t uniform in [0, j]; insert t unless already present, else insert j.
  for (std::int64_t j = population - k; j < population; ++j) {
    const auto t = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(static_cast<std::int32_t>(j));
    }
  }
}

/// Returns a uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
std::vector<std::int32_t> random_permutation(Rng& rng, std::int64_t n);

/// Reservoir-samples `k` items uniformly from a stream of `n` indices;
/// used by graph generators that stream candidate edges.
std::vector<std::int64_t> reservoir_sample(Rng& rng, std::int64_t n,
                                           std::int64_t k);

/// Discrete distribution sampling in O(1) via Walker/Vose alias tables.
/// Used for degree-proportional node picks (equivalent to uniform directed
/// arcs) when a process wants node-first sampling.
class AliasTable {
 public:
  /// Builds the table from non-negative weights (not all zero).
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples index i with probability weights[i] / sum(weights).
  std::int64_t sample(Rng& rng) const;

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(probability_.size());
  }

 private:
  std::vector<double> probability_;
  std::vector<std::int64_t> alias_;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_SAMPLING_H
