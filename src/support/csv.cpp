#include "src/support/csv.h"

#include <sstream>
#include <stdexcept>

#include "src/support/assert.h"

namespace opindyn {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted += c;
    }
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), columns_(columns.size()), out_(path) {
  OPINDYN_EXPECTS(!columns.empty(), "CSV needs at least one column");
  if (!out_) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
  std::vector<std::string> escaped;
  escaped.reserve(columns.size());
  for (const auto& c : columns) {
    escaped.push_back(csv_escape(c));
  }
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    out_ << (i > 0 ? "," : "") << escaped[i];
  }
  out_ << "\n";
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  OPINDYN_EXPECTS(values.size() == columns_,
                  "CSV row width does not match header");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i > 0 ? "," : "") << csv_escape(values[i]);
  }
  out_ << "\n";
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> as_text;
  as_text.reserve(values.size());
  for (const double v : values) {
    std::ostringstream s;
    s.precision(12);
    s << v;
    as_text.push_back(s.str());
  }
  write_row(as_text);
}

}  // namespace opindyn
