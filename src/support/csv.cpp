#include "src/support/csv.h"

#include <sstream>
#include <stdexcept>

#include "src/support/assert.h"

namespace opindyn {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted += c;
    }
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  OPINDYN_EXPECTS(!path.empty(), "CSV writer needs a non-empty path");
  if (!out_) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
}

void probe_csv_writable(const std::string& path) {
  OPINDYN_EXPECTS(!path.empty(), "CSV writer needs a non-empty path");
  const std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : CsvWriter(path) {
  write_header(columns);
}

void CsvWriter::check_stream(const char* when) {
  if (!out_) {
    throw std::runtime_error(std::string("CSV write failed (") + when +
                             "): " + path_);
  }
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  OPINDYN_EXPECTS(!columns.empty(), "CSV needs at least one column");
  OPINDYN_EXPECTS(!header_written_, "CSV header already written");
  columns_ = columns.size();
  header_written_ = true;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << (i > 0 ? "," : "") << csv_escape(columns[i]);
  }
  out_ << "\n";
  check_stream("header");
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  OPINDYN_EXPECTS(header_written_, "CSV header not written yet");
  OPINDYN_EXPECTS(values.size() == columns_,
                  "CSV row width does not match header");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i > 0 ? "," : "") << csv_escape(values[i]);
  }
  out_ << "\n";
  check_stream("row");
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> as_text;
  as_text.reserve(values.size());
  for (const double v : values) {
    std::ostringstream s;
    s.precision(12);
    s << v;
    as_text.push_back(s.str());
  }
  write_row(as_text);
}

void CsvWriter::close() {
  if (!out_.is_open()) {
    return;
  }
  out_.flush();
  check_stream("close");
  out_.close();
  check_stream("close");
}

}  // namespace opindyn
