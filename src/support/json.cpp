#include "src/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace opindyn {
namespace json {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::null: return "null";
    case Kind::boolean: return "boolean";
    case Kind::integer: return "integer";
    case Kind::number: return "number";
    case Kind::string: return "string";
    case Kind::array: return "array";
    case Kind::object: return "object";
  }
  return "?";
}

[[noreturn]] void fail_kind(const char* wanted, Kind got) {
  fail(std::string("json: expected ") + wanted + ", found " +
       kind_name(got));
}

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest "%.Ng" rendering that parses back to the same double, so
/// dumps stay human-readable (0.1, not 0.10000000000000001) without
/// losing round-trip exactness.
std::string dump_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan literal; null is the conventional stand-in.
    return "null";
  }
  char buffer[40];
  for (const int precision : {6, 15, 16, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) {
      break;
    }
  }
  return buffer;
}

void dump_value(const Value& value, int indent, int depth,
                std::string& out);

void dump_children(const Value& value, int indent, int depth,
                   std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) *
                     static_cast<std::size_t>(d),
                 ' ');
    }
  };
  if (value.is_array()) {
    const Array& array = value.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) {
        out += pretty ? "," : ", ";
      }
      newline_pad(depth + 1);
      dump_value(array[i], indent, depth + 1, out);
    }
    newline_pad(depth);
    out += ']';
    return;
  }
  const Object& object = value.as_object();
  if (object.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  for (std::size_t i = 0; i < object.size(); ++i) {
    if (i > 0) {
      out += pretty ? "," : ", ";
    }
    newline_pad(depth + 1);
    dump_string(object[i].first, out);
    out += ": ";
    dump_value(object[i].second, indent, depth + 1, out);
  }
  newline_pad(depth);
  out += '}';
}

void dump_value(const Value& value, int indent, int depth,
                std::string& out) {
  switch (value.kind()) {
    case Kind::null: out += "null"; return;
    case Kind::boolean: out += value.as_bool() ? "true" : "false"; return;
    case Kind::integer: out += std::to_string(value.as_int()); return;
    case Kind::number: out += dump_double(value.as_double()); return;
    case Kind::string: dump_string(value.as_string(), out); return;
    case Kind::array:
    case Kind::object: dump_children(value, indent, depth, out); return;
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail_here("trailing content after the JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail_here(const std::string& what) {
    fail("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail_here("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_here(std::string("expected '") + c + "', found '" +
                text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t length = std::string(literal).size();
    if (text_.compare(pos_, length, literal) == 0) {
      pos_ += length;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail_here("invalid token");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail_here("invalid token");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail_here("invalid token");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object object;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(object));
    }
    while (true) {
      if (peek() != '"') {
        fail_here("expected a string object key");
      }
      std::string key = parse_string();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(object));
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail_here("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_here("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail_here("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail_here("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              fail_here("invalid \\u escape digit");
            }
          }
          // Basic-plane code points only (no surrogate pairing): the
          // observability outputs never emit astral characters.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail_here("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      pos_ = start;
      fail_here("invalid token");
    }
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer literal: fall through to double.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail_here("malformed number '" + token + "'");
    }
    return Value(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::boolean) fail_kind("boolean", kind_);
  return bool_;
}

double Value::as_double() const {
  if (kind_ == Kind::integer) return static_cast<double>(int_);
  if (kind_ != Kind::number) fail_kind("number", kind_);
  return number_;
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::integer) return int_;
  if (kind_ == Kind::number && number_ == std::floor(number_) &&
      std::isfinite(number_)) {
    return static_cast<std::int64_t>(number_);
  }
  fail_kind("integer", kind_);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::string) fail_kind("string", kind_);
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::array) fail_kind("array", kind_);
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::object) fail_kind("object", kind_);
  return object_;
}

Array& Value::as_array() {
  if (kind_ != Kind::array) fail_kind("array", kind_);
  return array_;
}

Object& Value::as_object() {
  if (kind_ != Kind::object) fail_kind("object", kind_);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::object) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Value::set(std::string key, Value value) {
  if (kind_ == Kind::null) {
    kind_ = Kind::object;
  }
  if (kind_ != Kind::object) fail_kind("object", kind_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  if (kind_ == Kind::null) {
    kind_ = Kind::array;
  }
  if (kind_ != Kind::array) fail_kind("array", kind_);
  array_.push_back(std::move(value));
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail("cannot open JSON file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const std::runtime_error& error) {
    fail(path + ": " + error.what());
  }
}

}  // namespace json
}  // namespace opindyn
