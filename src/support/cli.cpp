#include "src/support/cli.h"

#include <stdexcept>

namespace opindyn {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "true";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return std::stoll(it->second);
}

double CliArgs::get(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return std::stod(it->second);
}

bool CliArgs::get(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, unused] : options_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

}  // namespace opindyn
