#include "src/support/cli.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace opindyn {

// std::stoll/stod with the error cases turned into one catchable
// std::runtime_error: non-numeric input, values outside the type's
// range (std::out_of_range derives from std::logic_error) and trailing
// garbage ("12x") all throw instead of crashing the binary or silently
// truncating.
std::int64_t parse_int_value(const std::string& subject,
                             const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t parsed = std::stoll(value, &used);
    if (used != value.size()) {
      throw std::runtime_error(subject + ": trailing characters in '" +
                               value + "'");
    }
    return parsed;
  } catch (const std::logic_error&) {
    throw std::runtime_error(subject + ": expected an integer, got '" +
                             value + "'");
  }
}

double parse_double_value(const std::string& subject,
                          const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) {
      throw std::runtime_error(subject + ": trailing characters in '" +
                               value + "'");
    }
    return parsed;
  } catch (const std::logic_error&) {
    throw std::runtime_error(subject + ": expected a number, got '" +
                             value + "'");
  }
}

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "true";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return parse_int_value("option '--" + name + "'", it->second);
}

double CliArgs::get(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return parse_double_value("option '--" + name + "'", it->second);
}

bool CliArgs::get(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, unused] : options_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Two-row dynamic program; rows are distances to prefixes of `b`.
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    prev[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::vector<std::string> closest_matches(
    const std::string& name, const std::vector<std::string>& candidates,
    std::size_t max_results) {
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const std::string& candidate : candidates) {
    const std::size_t distance = edit_distance(name, candidate);
    if (distance <= cutoff) {
      scored.emplace_back(distance, candidate);
    }
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> matches;
  for (const auto& [unused, candidate] : scored) {
    if (matches.size() >= max_results) {
      break;
    }
    matches.push_back(candidate);
  }
  return matches;
}

}  // namespace opindyn
