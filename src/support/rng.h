// Deterministic, fast pseudo-random number generation.
//
// The library uses xoshiro256++ (Blackman & Vigna) seeded through
// splitmix64, which is the recommended seeding procedure for the xoshiro
// family.  Compared to std::mt19937_64 it is ~2x faster and has a tiny
// state, which matters because Monte-Carlo experiments run billions of
// process steps.  Every experiment takes an explicit 64-bit seed so runs
// are exactly reproducible; per-replica streams are derived with
// `Rng::fork`, which walks an independent splitmix64 sequence.
#ifndef OPINDYN_SUPPORT_RNG_H
#define OPINDYN_SUPPORT_RNG_H

#include <array>
#include <cstdint>

namespace opindyn {

/// splitmix64 step: used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  // The per-step draws (raw word, bounded integer, unit double, coin)
  // are defined inline: the burst kernels draw up to k + 1 times per
  // step, and an out-of-line call per draw dominates their loop.

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method, which is unbiased and avoids the modulo.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return 0;
    }
    return next_below_nonzero(bound);
  }

  /// next_below for callers that guarantee bound > 0 -- the burst
  /// kernels, whose bound is a node/arc count checked once per burst.
  /// Identical stream and results; the zero test above is the only
  /// thing skipped (it otherwise re-executes per step inside the hot
  /// loops, as the compiler cannot hoist a branch out of an opaque
  /// reference).
  std::uint64_t next_below_nonzero(std::uint64_t bound) noexcept {
    // Lemire 2019: unbiased bounded integers without division in the
    // common path.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fills out[0..count) with draws uniform in [0, bound), consuming
  /// EXACTLY the stream of `count` sequential next_below(bound) calls
  /// (same words drawn, same rejections).  The burst kernels use this
  /// to split random-index generation from the gather/apply phases: the
  /// rejection threshold is hoisted out of the loop and the compiler
  /// can pipeline the multiply-shift across iterations, which a
  /// one-at-a-time call chain hides.
  void fill_below(std::uint64_t bound, std::uint64_t* out,
                  std::size_t count) noexcept {
    if (bound == 0) {
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = 0;
      }
      return;
    }
    // Same rejection rule as next_below: redraw iff low < threshold.
    // (next_below computes the threshold lazily behind `low < bound`,
    // but threshold < bound, so the consumed stream is identical.)
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto low = static_cast<std::uint64_t>(m);
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
      out[i] = static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() noexcept;

  /// Bernoulli(p).
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derives the i-th independent child stream of this generator's seed.
  /// Deterministic: fork(s, i) always yields the same stream.
  static Rng fork(std::uint64_t seed, std::uint64_t stream_index) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_RNG_H
