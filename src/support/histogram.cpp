#include "src/support/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "src/support/assert.h"

namespace opindyn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OPINDYN_EXPECTS(hi > lo, "histogram range must be non-empty");
  OPINDYN_EXPECTS(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  // NaN first: it compares false against both edges, so without this
  // guard it would fall through to the bin cast below -- undefined
  // behaviour for a NaN-to-integer conversion -- and poison a bin.
  // See the header contract: NaN is counted separately, outside the
  // total()/quantile mass; +-infinity saturates like any other
  // out-of-range sample.
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::int64_t Histogram::count(std::size_t bin) const {
  OPINDYN_EXPECTS(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  OPINDYN_EXPECTS(bin < counts_.size(), "bin index out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  OPINDYN_EXPECTS(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) {
    return lo_;
  }
  // The target rank is taken against total_ (in-range + saturated mass),
  // and the cumulative count starts at the underflow cell -- see the
  // contract in the header: quantiles inside the saturated mass clamp to
  // the matching range edge instead of being silently computed over the
  // in-range bins only.
  const auto target = static_cast<std::int64_t>(
      q * static_cast<double>(total_));
  std::int64_t seen = underflow_;
  if (seen > target) {
    return lo_;  // rank falls into the underflow mass: clamp to lo
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) {
      return 0.5 * (bin_low(b) + bin_high(b));
    }
  }
  return hi_;  // rank falls into the overflow mass (or q == 1): clamp to hi
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::int64_t peak =
      std::max<std::int64_t>(1, *std::max_element(counts_.begin(),
                                                  counts_.end()));
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << std::setw(12) << std::scientific << std::setprecision(2)
        << bin_low(b) << " | " << std::string(bar, '#') << " " << counts_[b]
        << "\n";
  }
  if (underflow_ > 0) {
    out << "underflow: " << underflow_ << "\n";
  }
  if (overflow_ > 0) {
    out << "overflow: " << overflow_ << "\n";
  }
  if (nan_ > 0) {
    out << "nan: " << nan_ << "\n";
  }
  return out.str();
}

}  // namespace opindyn
