#include "src/support/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace opindyn {

namespace {

bool usable(double v, bool log_axis) {
  if (!std::isfinite(v)) {
    return false;
  }
  return !log_axis || v > 0.0;
}

double transform(double v, bool log_axis) {
  return log_axis ? std::log10(v) : v;
}

}  // namespace

std::string ascii_plot(const std::vector<Series>& series,
                       const PlotOptions& options) {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      any = true;
      min_x = std::min(min_x, transform(s.x[i], options.log_x));
      max_x = std::max(max_x, transform(s.x[i], options.log_x));
      min_y = std::min(min_y, transform(s.y[i], options.log_y));
      max_y = std::max(max_y, transform(s.y[i], options.log_y));
    }
  }
  std::ostringstream out;
  if (!options.title.empty()) {
    out << options.title << "\n";
  }
  if (!any) {
    out << "(no plottable points)\n";
    return out.str();
  }
  if (max_x == min_x) {
    max_x = min_x + 1.0;
  }
  if (max_y == min_y) {
    max_y = min_y + 1.0;
  }

  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> canvas(h, std::string(w, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      const double tx = transform(s.x[i], options.log_x);
      const double ty = transform(s.y[i], options.log_y);
      auto col = static_cast<std::size_t>(
          std::llround((tx - min_x) / (max_x - min_x) *
                       static_cast<double>(w - 1)));
      auto row = static_cast<std::size_t>(
          std::llround((ty - min_y) / (max_y - min_y) *
                       static_cast<double>(h - 1)));
      col = std::min(col, w - 1);
      row = std::min(row, h - 1);
      canvas[h - 1 - row][col] = s.marker;
    }
  }

  auto fmt = [&](double v, bool log_axis) {
    std::ostringstream s;
    s << std::setprecision(3) << std::scientific
      << (log_axis ? std::pow(10.0, v) : v);
    return s.str();
  };
  out << options.y_label << (options.log_y ? " (log)" : "") << "\n";
  for (std::size_t r = 0; r < h; ++r) {
    if (r == 0) {
      out << std::setw(11) << fmt(max_y, options.log_y) << " |";
    } else if (r == h - 1) {
      out << std::setw(11) << fmt(min_y, options.log_y) << " |";
    } else {
      out << std::string(11, ' ') << " |";
    }
    out << canvas[r] << "\n";
  }
  out << std::string(12, ' ') << "+" << std::string(w, '-') << "\n";
  out << std::string(13, ' ') << fmt(min_x, options.log_x)
      << std::string(w > 30 ? w - 26 : 4, ' ') << fmt(max_x, options.log_x)
      << "\n";
  out << std::string(13, ' ') << options.x_label
      << (options.log_x ? " (log)" : "") << "\n";
  for (const auto& s : series) {
    out << "  '" << s.marker << "' " << s.label << "\n";
  }
  return out.str();
}

}  // namespace opindyn
