// Sharded replica execution -- the one implementation of the library's
// thread-count-determinism contract.
//
// Monte-Carlo work is always the same shape: run R independent replicas,
// where replica r draws all randomness from the deterministic child
// stream Rng::fork(seed, r), and aggregate a few metrics per replica.
// ReplicaScheduler shards the replica range across a ThreadPool, but
// writes each replica's metrics into its own slot of a preallocated
// buffer and folds the buffer in strict replica order afterwards.
// Because neither the random streams nor the fold order depend on the
// shard boundaries, the aggregated statistics are bit-identical for
// every thread count.  Both the core monte_carlo harness and the
// scenario engine run through this class.
#ifndef OPINDYN_SUPPORT_REPLICA_SCHEDULER_H
#define OPINDYN_SUPPORT_REPLICA_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/thread_pool.h"

namespace opindyn {

/// Derives an independent 64-bit sub-seed from (seed, salt); used to give
/// each sub-experiment of a run (e.g. the voter race vs the averaging
/// race) its own stream family.
std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) noexcept;

class ReplicaScheduler {
 public:
  /// 0 = hardware concurrency.  The pool is spawned lazily on the first
  /// parallel run and reused across work items.
  explicit ReplicaScheduler(std::size_t threads = 0);

  /// Runs body(r, rng, out) for r in [0, replicas); `rng` is
  /// Rng::fork(seed, r) and `out` has `metrics` slots (pre-filled with
  /// NaN).  Returns per-metric statistics folded over replicas in index
  /// order; NaN slots are skipped (use NaN for "no sample this
  /// replica", e.g. a run that hit max_steps).  Bit-identical for every
  /// thread count.
  std::vector<RunningStats> run(
      std::int64_t replicas, std::uint64_t seed, std::size_t metrics,
      const std::function<void(std::int64_t, Rng&, std::span<double>)>& body);

  std::size_t threads() const noexcept { return threads_; }

 private:
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_REPLICA_SCHEDULER_H
