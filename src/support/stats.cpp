#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

namespace opindyn {

void RunningStats::add(double x) noexcept {
  // Welford's update extended to third and fourth central moments
  // (Pebay 2008).
  const std::int64_t n1 = count_;
  count_ += 1;
  const auto n = static_cast<double>(count_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * static_cast<double>(n1);
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double mean = mean_ + delta * nb / n;
  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::population_variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

double RunningStats::mean_ci_halfwidth(double z) const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::variance_ci_halfwidth(double z) const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  // Asymptotic SE of sample variance: sqrt((mu4 - sigma^4) / n).
  const auto n = static_cast<double>(count_);
  const double sigma2 = population_variance();
  const double mu4 = m4_ / n;
  const double se2 = (mu4 - sigma2 * sigma2) / n;
  return se2 > 0.0 ? z * std::sqrt(se2) : 0.0;
}

}  // namespace opindyn
