// Shared bounding policy for the process-lifetime caches (GraphCache,
// SpectrumCache).  Serve mode keeps caches alive across jobs, so they
// need caps; the one-shot runner keeps the unbounded default and
// behaves exactly as before.
#ifndef OPINDYN_SUPPORT_CACHE_LIMITS_H
#define OPINDYN_SUPPORT_CACHE_LIMITS_H

#include <cstddef>
#include <cstdint>

namespace opindyn {

/// LRU eviction caps; 0 means "unlimited" for that dimension.  Eviction
/// never removes the entry being returned by the current request, so a
/// cache whose byte cap is smaller than one resident entry simply holds
/// that single entry.
struct CacheLimits {
  std::size_t max_entries = 0;
  std::uint64_t max_bytes = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_CACHE_LIMITS_H
