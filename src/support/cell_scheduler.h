// Cell-level work scheduling -- the one implementation of the library's
// thread-count-determinism contract.
//
// Monte-Carlo work is always the same shape: a batch ("cell") of R
// independent replicas, where replica r draws all randomness from the
// deterministic child stream Rng::fork(seed, r), and a few metrics (and
// optionally streamed result rows) are collected per replica.  The
// CellScheduler runs *many* such batches over one shared ThreadPool:
// `submit` enqueues a batch's replica units and returns immediately with
// a ReplicaBatch handle, so every cell of a sweep grid is in flight at
// once and small cells no longer leave cores idle.  Each unit writes
// into its own preallocated slot, and folding always happens in strict
// replica order on the caller's thread -- neither the random streams nor
// the fold order depend on shard boundaries, so aggregated statistics
// and streamed rows are bit-identical for every thread count.
//
// Every replica harness goes through this class: the scenario engine's
// batch runner via `submit`, and the benches / examples / tests that
// run one standalone batch via the synchronous `run`.
#ifndef OPINDYN_SUPPORT_CELL_SCHEDULER_H
#define OPINDYN_SUPPORT_CELL_SCHEDULER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/support/metrics.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/thread_pool.h"

namespace opindyn {

class CancelToken;  // see src/service/cancel_token.h

/// Derives an independent 64-bit sub-seed from (seed, salt); used to give
/// each sub-experiment of a run (e.g. the voter race vs the averaging
/// race) its own stream family.
std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) noexcept;

/// One per-replica result row streamed out of a unit body, tagged with
/// the replica that produced it.
struct StreamedRow {
  std::int64_t replica = 0;
  std::vector<std::string> cells;
};

/// Handed to a unit body so it can stream result rows (one per
/// checkpoint, per sample, ...) in addition to its scalar metrics.  Each
/// replica appends to its own buffer, so emission needs no locking and
/// the (replica, emission) order is deterministic.
class RowEmitter {
 public:
  void emit(std::vector<std::string> cells) {
    rows_->push_back(std::move(cells));
  }

 private:
  friend class ReplicaBatch;
  explicit RowEmitter(std::vector<std::vector<std::string>>* rows)
      : rows_(rows) {}
  std::vector<std::vector<std::string>>* rows_;
};

/// Handle to one submitted batch of replica units.  All accessors block
/// until the batch has fully run (and rethrow the first unit exception),
/// so a caller that submits many batches and folds them in batch order
/// observes results independent of completion order.
class ReplicaBatch {
 public:
  /// Unit body: replica index, the replica's forked stream, the metric
  /// slots (pre-filled with NaN = "no sample"), and a row emitter.
  using Body = std::function<void(std::int64_t, Rng&, std::span<double>,
                                  RowEmitter&)>;

  /// True once every unit has run (non-blocking).
  bool done() const;
  /// Blocks until done; rethrows the first unit exception, if any.
  void wait();

  /// Per-metric statistics folded over replicas in index order, skipping
  /// NaN slots.  Blocks; the fold is computed once and cached.
  const std::vector<RunningStats>& stats();
  /// The raw per-replica metric matrix, row-major replicas x metrics
  /// (NaN = no sample).  Blocks.
  const std::vector<double>& samples();
  /// samples()[replica * metrics + metric].
  double sample(std::int64_t replica, std::size_t metric);
  /// All streamed rows in (replica, emission) order.  Blocks.
  /// Consume-on-read: the rows are moved out, so a second call returns
  /// an empty vector (unlike the idempotent stats()/samples()).
  std::vector<StreamedRow> take_streamed_rows();

  std::int64_t replicas() const noexcept { return replicas_; }
  std::size_t metrics() const noexcept { return metric_count_; }

 private:
  friend class CellScheduler;
  ReplicaBatch(std::int64_t replicas, std::uint64_t seed,
               std::size_t metrics, Body body);

  /// Runs units [begin, end); never throws (failures are captured and
  /// rethrown by wait()).
  void run_range(std::int64_t begin, std::int64_t end) noexcept;
  /// The instrumented unit loop body (out of line so the common
  /// metrics-off path stays branch-only).
  void run_unit_instrumented(std::int64_t r);
  void run_unit(std::int64_t r);

  const std::int64_t replicas_;
  const std::size_t metric_count_;
  const std::uint64_t seed_;
  const Body body_;
  /// Observability (all nullptr/empty when metrics are off): the
  /// scheduler's registry at submit time, the submit label that tags
  /// this batch's spans and counters ("cell/3", "prefetch", ...), and
  /// the scheduler's in-flight unit counter (shared so a batch that
  /// outlives its scheduler never writes through a dangling pointer).
  MetricsRegistry* metrics_registry_ = nullptr;
  std::string label_;
  std::shared_ptr<std::atomic<std::int64_t>> inflight_;
  /// Captured from the submitting thread's ambient CancelScope (see
  /// src/service/cancel_token.h); checked before each unit starts and
  /// re-installed around the unit body so nested bursts can poll.
  /// nullptr (no ambient token) keeps the whole path to one branch.
  const CancelToken* cancel_ = nullptr;
  std::vector<double> buffer_;  // replicas x metrics, NaN-filled
  std::vector<std::vector<std::vector<std::string>>> unit_rows_;

  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::int64_t pending_;  // units not yet finished
  std::exception_ptr error_;
  /// Cancellation travels as the token's static reason string, never as
  /// an exception_ptr: wait() throws a fresh CancelledError on the
  /// waiting thread, so no exception object (whose refcount lives in
  /// uninstrumented libstdc++) is ever shared with a pool thread.
  const char* cancel_reason_ = nullptr;
  bool folded_ = false;
  std::vector<RunningStats> stats_;
};

class CellScheduler {
 public:
  /// 0 = hardware concurrency.  The pool is spawned lazily on the first
  /// parallel submission and shared by every batch of this scheduler.
  explicit CellScheduler(std::size_t threads = 0);

  /// Destruction drains the pool, so unit bodies never outlive the
  /// objects a caller keeps alive past the scheduler.
  ~CellScheduler() = default;

  CellScheduler(const CellScheduler&) = delete;
  CellScheduler& operator=(const CellScheduler&) = delete;

  /// Enqueues `replicas` independent units for body(r, rng, out, rows)
  /// and returns immediately.  Unit r draws from Rng::fork(seed, r).
  /// With 1 thread the batch runs inline before returning -- results are
  /// bit-identical either way.
  ///
  /// Safe to call from several threads at once (the serve-mode workers
  /// share one scheduler): the pool is created under a latch and the
  /// submit label is per-thread.  The submitting thread's ambient
  /// CancelToken (if any) is captured onto the batch: remaining units
  /// of a cancelled batch are skipped and wait() throws a
  /// CancelledError carrying the token's reason.
  std::shared_ptr<ReplicaBatch> submit(std::int64_t replicas,
                                       std::uint64_t seed,
                                       std::size_t metrics, ReplicaBatch::Body body);

  /// Synchronous convenience (the historical ReplicaScheduler::run):
  /// submit + wait + fold for bodies without row streaming.
  std::vector<RunningStats> run(
      std::int64_t replicas, std::uint64_t seed, std::size_t metrics,
      const std::function<void(std::int64_t, Rng&, std::span<double>)>& body);

  std::size_t threads() const noexcept { return threads_; }

  /// Observability hooks (see support/metrics.h).  With a registry set,
  /// every replica unit records a trace span named after the submit
  /// label, bumps the scheduler counters, and runs under a MetricsScope
  /// so library-level metrics::count calls are attributed to the label.
  /// nullptr (the default) keeps the whole path to a pointer check.
  void set_metrics(MetricsRegistry* registry) noexcept {
    metrics_registry_ = registry;
  }
  MetricsRegistry* metrics() const noexcept { return metrics_registry_; }
  /// Label stamped on batches submitted from now on BY THIS THREAD (the
  /// runner sets "cell/<index>" around each scenario start and
  /// "prefetch" around the graph prefetch pass).  Per-thread so
  /// concurrent jobs sharing a scheduler never race on the label.
  void set_submit_label(std::string label);

  /// High-water mark of units submitted but not yet finished -- the
  /// queue-depth gauge of the run report.  Timing-dependent, so it
  /// lives outside the deterministic counter section.  Only tracked
  /// while a metrics registry is set.
  std::int64_t max_inflight_units() const noexcept {
    return max_inflight_->load(std::memory_order_relaxed);
  }

 private:
  std::size_t threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  MetricsRegistry* metrics_registry_ = nullptr;
  std::shared_ptr<std::atomic<std::int64_t>> inflight_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
  std::shared_ptr<std::atomic<std::int64_t>> max_inflight_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
};

/// Historical name: the scheduler used to shard only replicas within one
/// cell.  Call sites that never submit whole cells can keep the old name.
using ReplicaScheduler = CellScheduler;

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_CELL_SCHEDULER_H
