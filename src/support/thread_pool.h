// A small fixed-size thread pool.  The Monte-Carlo harness partitions
// replicas across workers; each worker owns its RNG and statistics, so the
// only shared state is the task queue (mutex + condvar, per C++ Core
// Guidelines CP rules: no data is shared without synchronisation).
#ifndef OPINDYN_SUPPORT_THREAD_POOL_H
#define OPINDYN_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace opindyn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).  0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_THREAD_POOL_H
