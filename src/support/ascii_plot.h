// Terminal scatter/line plots.  The offline environment has no plotting
// stack, so every "figure" reproduction renders its series as an ASCII
// chart (log or linear axes) in addition to the markdown table.
#ifndef OPINDYN_SUPPORT_ASCII_PLOT_H
#define OPINDYN_SUPPORT_ASCII_PLOT_H

#include <string>
#include <vector>

namespace opindyn {

struct Series {
  std::string label;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  std::size_t width = 72;
  std::size_t height = 20;
  bool log_x = false;
  bool log_y = false;
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Renders one or more series on a shared canvas with axis annotations.
/// Non-finite or non-positive values (on log axes) are skipped.
std::string ascii_plot(const std::vector<Series>& series,
                       const PlotOptions& options);

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_ASCII_PLOT_H
