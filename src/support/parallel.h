// parallel_for over an index range with static chunking.  Exceptions thrown
// by items are propagated to the caller (first one wins).
#ifndef OPINDYN_SUPPORT_PARALLEL_H
#define OPINDYN_SUPPORT_PARALLEL_H

#include <cstdint>
#include <functional>

namespace opindyn {

/// Runs body(i) for i in [0, count) across `threads` workers (0 = all
/// hardware threads).  Each worker processes a contiguous chunk, so
/// per-item cost should be roughly uniform.  `body` must be safe to call
/// concurrently for distinct i.
void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& body,
                  std::size_t threads = 0);

/// Number of workers parallel_for(threads=0) would use.
std::size_t default_parallelism() noexcept;

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_PARALLEL_H
