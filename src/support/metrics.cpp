#include "src/support/metrics.h"

#include <algorithm>

namespace opindyn {
namespace {

/// The calling thread's active sink, installed by MetricsScope.  One
/// frame per nested scope; metrics::count reads only the innermost.
struct ThreadSink {
  MetricsBuffer* buffer = nullptr;
  std::string label;
  ThreadSink* previous = nullptr;
};

thread_local ThreadSink* t_sink = nullptr;

}  // namespace

void MetricsBuffer::count(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void MetricsBuffer::count_labeled(const std::string& label,
                                  const std::string& name,
                                  std::int64_t delta) {
  labeled_[label][name] += delta;
}

void MetricsBuffer::add_span(TraceSpan span) {
  spans_.push_back(std::move(span));
}

MetricsRegistry::MetricsRegistry()
    : epoch_(std::chrono::steady_clock::now()) {}

MetricsBuffer& MetricsRegistry::buffer() {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, buffer] : buffers_) {
    if (id == self) {
      return *buffer;
    }
  }
  buffers_.emplace_back(self, std::make_unique<MetricsBuffer>());
  return *buffers_.back().second;
}

std::uint64_t MetricsRegistry::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void MetricsRegistry::add_timing(const std::string& name, double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  timings_[name] += ms;
}

void MetricsRegistry::set_gauge(const std::string& name,
                                std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

FoldedMetrics MetricsRegistry::fold() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FoldedMetrics folded;
  folded.timings_ms = timings_;
  folded.gauges = gauges_;
  int worker = 0;
  for (const auto& [id, buffer] : buffers_) {
    for (const auto& [name, value] : buffer->counters_) {
      folded.counters[name] += value;
    }
    for (const auto& [label, counters] : buffer->labeled_) {
      for (const auto& [name, value] : counters) {
        folded.labeled[label][name] += value;
      }
    }
    for (const TraceSpan& span : buffer->spans_) {
      folded.spans.push_back(span);
      folded.spans.back().worker = worker;
      folded.label_busy_us[span.name] += span.duration_us;
    }
    folded.workers.push_back(WorkerReport{
        worker, static_cast<std::int64_t>(buffer->spans_.size()),
        buffer->busy_us_});
    ++worker;
  }
  std::sort(folded.spans.begin(), folded.spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.start_us < b.start_us;
            });
  return folded;
}

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string name,
                       std::string category, std::int64_t replica)
    : registry_(registry),
      name_(std::move(name)),
      category_(std::move(category)),
      replica_(replica) {
  if (registry_ != nullptr) {
    start_us_ = registry_->now_us();
  }
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) {
    return;
  }
  const std::uint64_t end_us = registry_->now_us();
  MetricsBuffer& buffer = registry_->buffer();
  buffer.add_span(TraceSpan{std::move(name_), std::move(category_),
                            replica_, start_us_, end_us - start_us_, 0});
  buffer.add_busy(end_us - start_us_);
}

MetricsScope::MetricsScope(MetricsRegistry* registry,
                           const std::string& label) {
  if (registry == nullptr) {
    return;
  }
  t_sink = new ThreadSink{&registry->buffer(), label, t_sink};
  frame_ = t_sink;
  installed_ = true;
}

MetricsScope::~MetricsScope() {
  if (!installed_) {
    return;
  }
  auto* sink = static_cast<ThreadSink*>(frame_);
  t_sink = sink->previous;
  delete sink;
}

namespace metrics {

bool active() noexcept { return t_sink != nullptr; }

void count(const char* name, std::int64_t delta) {
  ThreadSink* sink = t_sink;
  if (sink == nullptr) {
    return;
  }
  sink->buffer->count(name, delta);
  if (!sink->label.empty()) {
    sink->buffer->count_labeled(sink->label, name, delta);
  }
}

}  // namespace metrics
}  // namespace opindyn
