// Markdown table rendering.  All benches print their results as
// GitHub-flavoured markdown tables so EXPERIMENTS.md can quote the output
// verbatim.
#ifndef OPINDYN_SUPPORT_TABLE_H
#define OPINDYN_SUPPORT_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace opindyn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with `add`.
  Table& new_row();
  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);
  /// Formats with `digits` significant digits (general format).
  Table& add(double value, int digits = 5);
  /// Scientific notation with `digits` digits after the point.
  Table& add_sci(double value, int digits = 3);
  /// Fixed-point with `digits` digits after the point.
  Table& add_fixed(double value, int digits = 3);

  std::size_t rows() const noexcept { return cells_.size(); }

  /// Renders an aligned markdown table.
  std::string to_markdown() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_TABLE_H
