#include "src/support/sampling.h"

#include <algorithm>
#include <numeric>

#include "src/support/assert.h"

namespace opindyn {

std::vector<std::int32_t> random_permutation(Rng& rng, std::int64_t n) {
  OPINDYN_EXPECTS(n >= 0, "permutation size must be non-negative");
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int64_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

std::vector<std::int64_t> reservoir_sample(Rng& rng, std::int64_t n,
                                           std::int64_t k) {
  OPINDYN_EXPECTS(k >= 0 && k <= n, "reservoir size must be within stream");
  std::vector<std::int64_t> reservoir(static_cast<std::size_t>(k));
  std::iota(reservoir.begin(), reservoir.end(), 0);
  for (std::int64_t i = k; i < n; ++i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    if (j < k) {
      reservoir[static_cast<std::size_t>(j)] = i;
    }
  }
  return reservoir;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  OPINDYN_EXPECTS(!weights.empty(), "alias table needs at least one weight");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  OPINDYN_EXPECTS(total > 0.0, "alias table weights must sum to > 0");
  const auto n = weights.size();
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    OPINDYN_EXPECTS(weights[i] >= 0.0, "alias table weights must be >= 0");
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = static_cast<std::int64_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::size_t i : large) {
    probability_[i] = 1.0;
  }
  for (const std::size_t i : small) {
    probability_[i] = 1.0;  // numerical leftovers
  }
}

std::int64_t AliasTable::sample(Rng& rng) const {
  const auto i = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(probability_.size())));
  if (rng.next_double() < probability_[i]) {
    return static_cast<std::int64_t>(i);
  }
  return alias_[i];
}

}  // namespace opindyn
