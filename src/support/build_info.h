// Build identification: which sources, compiler and flags produced this
// binary.  One block reused verbatim by `opindyn version`, the
// `--metrics-json` run report's "build" section, and perf_baseline's
// BENCH_*.json -- so a recorded run or benchmark is always attributable
// to a build.  The values are baked in at CMake configure time (see
// src/CMakeLists.txt); the git hash therefore describes the checkout
// that was CONFIGURED, which can trail the working tree until the next
// cmake run ("-dirty" marks uncommitted changes at configure time).
#ifndef OPINDYN_SUPPORT_BUILD_INFO_H
#define OPINDYN_SUPPORT_BUILD_INFO_H

#include <string>

#include "src/support/json.h"

namespace opindyn {

struct BuildInfo {
  std::string git_hash;    // short hash, "-dirty" suffixed; "unknown"
  std::string compiler;    // e.g. "GNU 13.2.0"
  std::string flags;       // CXX flags incl. the build-type set
  std::string build_type;  // e.g. "Release"
  std::string cxx_standard;
  std::string simd;  // burst-kernel ISA: "avx2" or "scalar"
  bool checked_hot_path = false;  // OPINDYN_CHECKED_HOT_PATH state
};

const BuildInfo& build_info();

/// The shared machine-readable "build" block.
json::Value build_info_json();

/// Multi-line human rendering (the `opindyn version` output).
std::string build_info_text();

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_BUILD_INFO_H
