// Minimal CSV writer for exporting experiment series (one file per figure)
// so the tables can be re-plotted outside this repository.
#ifndef OPINDYN_SUPPORT_CSV_H
#define OPINDYN_SUPPORT_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace opindyn {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; `values.size()` must equal the number of columns.
  void write_row(const std::vector<std::string>& values);
  void write_row(const std::vector<double>& values);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;
};

/// Quotes a CSV field if it contains separators/quotes/newlines.
std::string csv_escape(const std::string& field);

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_CSV_H
