// Minimal CSV writer for exporting experiment series (one file per figure)
// so the tables can be re-plotted outside this repository.
//
// Failure contract: an unopenable path (missing directory, no
// permission) throws at CONSTRUCTION with a one-line error citing the
// path -- never a silently empty run -- and `close()` (called by the
// engine sinks on finish) flushes and rechecks the stream, so a write
// that failed later (disk full, I/O error) also surfaces as an error
// instead of a truncated file and exit 0.
#ifndef OPINDYN_SUPPORT_CSV_H
#define OPINDYN_SUPPORT_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace opindyn {

class CsvWriter {
 public:
  /// Opens `path` for writing (no header yet -- call write_header).
  /// Throws std::runtime_error citing the path if it cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Opens `path` and emits the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Closes the stream, swallowing late I/O errors -- call close()
  /// first when the caller needs them reported.
  ~CsvWriter() = default;

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes the header row; must be called exactly once, before rows.
  void write_header(const std::vector<std::string>& columns);

  /// Writes one row; `values.size()` must equal the number of columns.
  /// Throws std::runtime_error citing the path if the stream failed.
  void write_row(const std::vector<std::string>& values);
  void write_row(const std::vector<double>& values);

  /// Flushes and closes; throws std::runtime_error citing the path if
  /// any buffered write failed (e.g. disk full).  Idempotent.
  void close();

  const std::string& path() const noexcept { return path_; }

 private:
  void check_stream(const char* when);

  std::string path_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
  std::ofstream out_;
};

/// Quotes a CSV field if it contains separators/quotes/newlines.
std::string csv_escape(const std::string& field);

/// Fail-fast writability check WITHOUT truncation: throws the same
/// path-citing std::runtime_error as the CsvWriter constructor if
/// `path` cannot be opened for writing, but leaves an existing file's
/// contents untouched (append-mode probe).  For sinks that only write
/// at finish(): probe at construction, truncate at write time.
void probe_csv_writable(const std::string& path);

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_CSV_H
