// Online statistics (Welford) with exact merging, used by the Monte-Carlo
// harness to accumulate per-thread results without synchronisation and
// combine them afterwards.
#ifndef OPINDYN_SUPPORT_STATS_H
#define OPINDYN_SUPPORT_STATS_H

#include <cstdint>
#include <limits>

namespace opindyn {

/// Numerically stable running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (Chan et al. pairwise
  /// update); associative and exact up to floating point.
  void merge(const RunningStats& other) noexcept;

  std::int64_t count() const noexcept { return count_; }
  double mean() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  /// Population variance (n denominator); 0 for n < 1.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept;

  /// Half-width of a normal-approximation confidence interval for the mean
  /// at the given z (1.96 ~ 95%).
  double mean_ci_halfwidth(double z = 1.96) const noexcept;

  /// Half-width of a normal-approximation CI for the *variance* based on
  /// the asymptotic distribution of the sample variance (requires the 4th
  /// central moment, which we track).
  double variance_ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_STATS_H
