#include "src/support/build_info.h"

#include <sstream>

// The OPINDYN_BUILD_* macros are injected per-source-file by
// src/CMakeLists.txt so editing them never rebuilds the whole library;
// the fallbacks keep non-CMake builds compiling.
#ifndef OPINDYN_BUILD_GIT_HASH
#define OPINDYN_BUILD_GIT_HASH "unknown"
#endif
#ifndef OPINDYN_BUILD_COMPILER
#define OPINDYN_BUILD_COMPILER "unknown"
#endif
#ifndef OPINDYN_BUILD_FLAGS
#define OPINDYN_BUILD_FLAGS ""
#endif
#ifndef OPINDYN_BUILD_TYPE
#define OPINDYN_BUILD_TYPE "unknown"
#endif
#ifndef OPINDYN_BUILD_SIMD
#define OPINDYN_BUILD_SIMD "scalar"
#endif

namespace opindyn {

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_hash = OPINDYN_BUILD_GIT_HASH;
    b.compiler = OPINDYN_BUILD_COMPILER;
    b.flags = OPINDYN_BUILD_FLAGS;
    b.build_type = OPINDYN_BUILD_TYPE;
    b.cxx_standard = std::to_string(__cplusplus);  // e.g. "202002"
    b.simd = OPINDYN_BUILD_SIMD;
#ifdef OPINDYN_CHECKED_HOT_PATH
    b.checked_hot_path = true;
#else
    b.checked_hot_path = false;
#endif
    return b;
  }();
  return info;
}

json::Value build_info_json() {
  const BuildInfo& b = build_info();
  json::Object block;
  block.emplace_back("git_hash", b.git_hash);
  block.emplace_back("compiler", b.compiler);
  block.emplace_back("flags", b.flags);
  block.emplace_back("build_type", b.build_type);
  block.emplace_back("cxx_standard", b.cxx_standard);
  block.emplace_back("simd", b.simd);
  block.emplace_back("checked_hot_path", b.checked_hot_path);
  return json::Value(std::move(block));
}

std::string build_info_text() {
  const BuildInfo& b = build_info();
  std::ostringstream out;
  out << "opindyn build info\n"
      << "  git hash:         " << b.git_hash << "\n"
      << "  compiler:         " << b.compiler << "\n"
      << "  build type:       " << b.build_type << "\n"
      << "  C++ standard:     " << b.cxx_standard << "\n"
      << "  flags:            " << b.flags << "\n"
      << "  burst kernels:    " << b.simd << "\n"
      << "  checked hot path: " << (b.checked_hot_path ? "on" : "off")
      << "\n";
  return out.str();
}

}  // namespace opindyn
