#include "src/support/rng.h"

#include <cmath>

#include "src/support/assert.h"

namespace opindyn {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : state_{} {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::fork(std::uint64_t seed, std::uint64_t stream_index) noexcept {
  // Mix the stream index into the seed through two splitmix64 rounds so
  // that nearby indices produce unrelated streams.
  std::uint64_t s = seed;
  const std::uint64_t base = splitmix64(s);
  std::uint64_t t = base ^ (stream_index * 0xd1342543de82ef95ULL + 1);
  const std::uint64_t child_seed = splitmix64(t);
  return Rng(child_seed);
}

}  // namespace opindyn
