// Fixed-bin histogram for distribution summaries of the convergence value F
// and of hitting times.
#ifndef OPINDYN_SUPPORT_HISTOGRAM_H
#define OPINDYN_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace opindyn {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width cells; out-of-range samples land
  /// in saturating under/overflow cells.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one sample.  Finite out-of-range samples (and +-infinity)
  /// saturate into the under/overflow cells.  NaN carries no position,
  /// so it lands in a dedicated nan_count() cell and is EXCLUDED from
  /// total() and the quantile mass -- it is never cast to a bin index
  /// (that cast is undefined behaviour for NaN).
  void add(double x) noexcept;

  /// Samples with a defined position: in-range + under/overflow, NaN
  /// excluded.
  std::int64_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::int64_t count(std::size_t bin) const;
  std::int64_t underflow() const noexcept { return underflow_; }
  std::int64_t overflow() const noexcept { return overflow_; }
  /// NaN samples routed past the bins (see add()).
  std::int64_t nan_count() const noexcept { return nan_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Approximate quantile from bin midpoints (q in [0,1]), computed over
  /// the FULL mass including the saturating under/overflow cells: the
  /// cumulative count starts at underflow() and ends at total(), so
  /// out-of-range samples shift in-range quantiles exactly as they
  /// should.  A quantile that lands inside the underflow (resp. overflow)
  /// mass saturates to lo (resp. hi) -- the histogram cannot know how far
  /// outside the range those samples fell, so the returned value is a
  /// bound, not an estimate.  Callers that need true tail quantiles must
  /// widen [lo, hi) until overflow() is 0.
  double quantile(double q) const;

  /// Renders a vertical ASCII bar chart, `width` chars for the largest bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t nan_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_SUPPORT_HISTOGRAM_H
