#include "src/support/replica_scheduler.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "src/support/assert.h"
#include "src/support/parallel.h"

namespace opindyn {

std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) noexcept {
  // One splitmix64 step over a salted state: the same mixing the Rng
  // seeding uses, so sub-families are as independent as forked streams.
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

ReplicaScheduler::ReplicaScheduler(std::size_t threads)
    : threads_(threads == 0 ? default_parallelism() : threads) {}

std::vector<RunningStats> ReplicaScheduler::run(
    std::int64_t replicas, std::uint64_t seed, std::size_t metrics,
    const std::function<void(std::int64_t, Rng&, std::span<double>)>& body) {
  OPINDYN_EXPECTS(replicas >= 1, "need at least one replica");
  OPINDYN_EXPECTS(metrics >= 1, "need at least one metric");

  std::vector<double> buffer(
      static_cast<std::size_t>(replicas) * metrics,
      std::numeric_limits<double>::quiet_NaN());
  const auto run_range = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      Rng rng = Rng::fork(seed, static_cast<std::uint64_t>(r));
      body(r, rng,
           std::span<double>(
               buffer.data() + static_cast<std::size_t>(r) * metrics,
               metrics));
    }
  };

  const std::size_t shards =
      std::min<std::size_t>(threads_, static_cast<std::size_t>(replicas));
  if (shards <= 1) {
    run_range(0, replicas);
  } else {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    const std::int64_t chunk =
        (replicas + static_cast<std::int64_t>(shards) - 1) /
        static_cast<std::int64_t>(shards);
    std::vector<std::future<void>> pending;
    pending.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::int64_t begin = static_cast<std::int64_t>(s) * chunk;
      const std::int64_t end = std::min(begin + chunk, replicas);
      if (begin >= end) {
        break;
      }
      pending.push_back(
          pool_->submit([&run_range, begin, end] { run_range(begin, end); }));
    }
    for (std::future<void>& f : pending) {
      f.get();  // rethrows the shard's exception, if any
    }
  }

  std::vector<RunningStats> stats(metrics);
  for (std::int64_t r = 0; r < replicas; ++r) {
    for (std::size_t m = 0; m < metrics; ++m) {
      const double x = buffer[static_cast<std::size_t>(r) * metrics + m];
      if (!std::isnan(x)) {
        stats[m].add(x);
      }
    }
  }
  return stats;
}

}  // namespace opindyn
