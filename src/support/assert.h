// Contract-checking macros in the spirit of the GSL `Expects`/`Ensures`
// (C++ Core Guidelines I.6/I.8).  Violations throw `opindyn::ContractError`
// so that tests can assert on misuse and applications can fail loudly with
// a useful message instead of undefined behaviour.
#ifndef OPINDYN_SUPPORT_ASSERT_H
#define OPINDYN_SUPPORT_ASSERT_H

#include <stdexcept>
#include <string>

namespace opindyn {

/// Thrown when a precondition, postcondition, or internal invariant of the
/// library is violated by the caller or by a library bug.
class ContractError : public std::logic_error {
 public:
  ContractError(const char* kind, const char* condition, const char* file,
                int line, const std::string& message);
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace opindyn

/// Precondition: the caller must guarantee `cond`.
#define OPINDYN_EXPECTS(cond, message)                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::opindyn::detail::contract_failure("precondition", #cond, __FILE__,   \
                                          __LINE__, (message));              \
    }                                                                        \
  } while (false)

/// Postcondition / internal invariant: the library must guarantee `cond`.
#define OPINDYN_ENSURES(cond, message)                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::opindyn::detail::contract_failure("invariant", #cond, __FILE__,      \
                                          __LINE__, (message));              \
    }                                                                        \
  } while (false)

/// Hot-path preconditions (per-step Graph accessors, OpinionState
/// updates): active in unoptimised builds and whenever the build opts
/// back in with -DOPINDYN_CHECKED_HOT_PATH (the sanitizer CI job does),
/// compiled out of plain Release binaries so billion-step inner loops do
/// not pay redundant range checks.
#if !defined(NDEBUG) || defined(OPINDYN_CHECKED_HOT_PATH)
#define OPINDYN_HOT_PATH_CHECKS 1
#else
#define OPINDYN_HOT_PATH_CHECKS 0
#endif

#if OPINDYN_HOT_PATH_CHECKS
#define OPINDYN_HOT_EXPECTS(cond, message) OPINDYN_EXPECTS(cond, message)
#else
#define OPINDYN_HOT_EXPECTS(cond, message) \
  do {                                     \
  } while (false)
#endif

#endif  // OPINDYN_SUPPORT_ASSERT_H
