#include "src/support/cell_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/service/cancel_token.h"
#include "src/support/assert.h"
#include "src/support/parallel.h"

namespace opindyn {

namespace {

// The submit label is per-thread: serve-mode workers share a scheduler
// and each tags its own submissions (see set_submit_label).
thread_local std::string t_submit_label;

}  // namespace

std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) noexcept {
  // One splitmix64 step over a salted state: the same mixing the Rng
  // seeding uses, so sub-families are as independent as forked streams.
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

ReplicaBatch::ReplicaBatch(std::int64_t replicas, std::uint64_t seed,
                           std::size_t metrics, Body body)
    : replicas_(replicas),
      metric_count_(metrics),
      seed_(seed),
      body_(std::move(body)),
      buffer_(static_cast<std::size_t>(replicas) * metrics,
              std::numeric_limits<double>::quiet_NaN()),
      unit_rows_(static_cast<std::size_t>(replicas)),
      pending_(replicas) {}

void ReplicaBatch::run_unit(std::int64_t r) {
  Rng rng = Rng::fork(seed_, static_cast<std::uint64_t>(r));
  RowEmitter emitter(&unit_rows_[static_cast<std::size_t>(r)]);
  body_(r, rng,
        std::span<double>(
            buffer_.data() + static_cast<std::size_t>(r) * metric_count_,
            metric_count_),
        emitter);
}

void ReplicaBatch::run_unit_instrumented(std::int64_t r) {
  MetricsRegistry& registry = *metrics_registry_;
  const std::uint64_t start_us = registry.now_us();
  {
    // Library code below (e.g. run_until_converged) reports through
    // metrics::count; the scope attributes those counts to this batch's
    // label, which is how the run report's per-cell table is built.
    MetricsScope scope(&registry, label_);
    run_unit(r);
  }
  const std::uint64_t end_us = registry.now_us();
  MetricsBuffer& buffer = registry.buffer();
  buffer.add_span(
      TraceSpan{label_, "unit", r, start_us, end_us - start_us, 0});
  buffer.add_busy(end_us - start_us);
  buffer.count("scheduler.units_run", 1);
  if (inflight_ != nullptr) {
    inflight_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void ReplicaBatch::run_range(std::int64_t begin, std::int64_t end) noexcept {
  try {
    // Re-install the submitting thread's cancel token so unit bodies
    // (and the bursts inside them) can poll it; a cancelled batch skips
    // its remaining units and wait() reports a CancelledError.
    const CancelScope cancel_scope(cancel_);
    for (std::int64_t r = begin; r < end; ++r) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        throw CancelledError(cancel_->reason());
      }
      if (metrics_registry_ != nullptr) {
        run_unit_instrumented(r);
      } else {
        run_unit(r);
      }
    }
  } catch (const CancelledError& cancelled) {
    // Data, not exception_ptr (see cancel_reason_ in the header): the
    // CancelledError thrown here dies on this pool thread; wait()
    // recreates it on the waiting thread from the static reason.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (cancel_reason_ == nullptr) {
      cancel_reason_ = cancelled.reason();
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) {
      error_ = std::current_exception();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_ -= end - begin;
    if (pending_ > 0) {
      return;
    }
  }
  all_done_.notify_all();
}

bool ReplicaBatch::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_ == 0;
}

void ReplicaBatch::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    // A real unit failure beats a concurrent cancellation: the caller
    // should report the error, not a misleading "cancelled".
    std::rethrow_exception(error_);
  }
  if (cancel_reason_ != nullptr) {
    throw CancelledError(cancel_reason_);
  }
}

const std::vector<RunningStats>& ReplicaBatch::stats() {
  wait();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!folded_) {
    stats_.assign(metric_count_, RunningStats{});
    for (std::int64_t r = 0; r < replicas_; ++r) {
      for (std::size_t m = 0; m < metric_count_; ++m) {
        const double x =
            buffer_[static_cast<std::size_t>(r) * metric_count_ + m];
        if (!std::isnan(x)) {
          stats_[m].add(x);
        }
      }
    }
    folded_ = true;
  }
  return stats_;
}

const std::vector<double>& ReplicaBatch::samples() {
  wait();
  return buffer_;
}

double ReplicaBatch::sample(std::int64_t replica, std::size_t metric) {
  wait();
  OPINDYN_EXPECTS(replica >= 0 && replica < replicas_,
                  "sample(): replica out of range");
  OPINDYN_EXPECTS(metric < metric_count_, "sample(): metric out of range");
  return buffer_[static_cast<std::size_t>(replica) * metric_count_ + metric];
}

std::vector<StreamedRow> ReplicaBatch::take_streamed_rows() {
  wait();
  std::vector<StreamedRow> rows;
  for (std::int64_t r = 0; r < replicas_; ++r) {
    for (auto& cells : unit_rows_[static_cast<std::size_t>(r)]) {
      rows.push_back(StreamedRow{r, std::move(cells)});
    }
    unit_rows_[static_cast<std::size_t>(r)].clear();
  }
  return rows;
}

CellScheduler::CellScheduler(std::size_t threads)
    : threads_(threads == 0 ? default_parallelism() : threads) {}

void CellScheduler::set_submit_label(std::string label) {
  t_submit_label = std::move(label);
}

std::shared_ptr<ReplicaBatch> CellScheduler::submit(std::int64_t replicas,
                                                    std::uint64_t seed,
                                                    std::size_t metrics,
                                                    ReplicaBatch::Body body) {
  OPINDYN_EXPECTS(replicas >= 1, "need at least one replica");
  OPINDYN_EXPECTS(metrics >= 1, "need at least one metric");
  // make_shared is unavailable for the private constructor.
  std::shared_ptr<ReplicaBatch> batch(
      new ReplicaBatch(replicas, seed, metrics, std::move(body)));
  batch->cancel_ = cancel::current();

  if (metrics_registry_ != nullptr) {
    batch->metrics_registry_ = metrics_registry_;
    batch->label_ = t_submit_label;
    batch->inflight_ = inflight_;
    // A run's submissions happen on one thread, so these counters fold
    // to the same totals at every thread count (the determinism
    // contract); buffer() is per-thread, so concurrent submitters from
    // different jobs never contend either.
    MetricsBuffer& buffer = metrics_registry_->buffer();
    buffer.count("scheduler.batches_submitted", 1);
    buffer.count("scheduler.units_submitted", replicas);
    if (!t_submit_label.empty()) {
      buffer.count_labeled(t_submit_label, "units", replicas);
      buffer.count_labeled(t_submit_label, "batches", 1);
    }
    // Queue-depth high-water mark, observed at submission (worker-side
    // decrements race this, which only ever under-counts the peak).
    const std::int64_t depth =
        inflight_->fetch_add(replicas, std::memory_order_relaxed) +
        replicas;
    std::int64_t seen = max_inflight_->load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_inflight_->compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }

  if (threads_ <= 1) {
    batch->run_range(0, replicas);
    return batch;
  }
  // Latched creation: concurrent first submissions (serve-mode workers
  // sharing one scheduler) must not race the lazy pool spawn.
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(threads_); });
  // Several tasks per thread so many small cells interleave and balance
  // across the pool; the task boundaries never affect the results.
  const std::int64_t max_tasks = static_cast<std::int64_t>(threads_) * 2;
  const std::int64_t tasks = std::min<std::int64_t>(replicas, max_tasks);
  const std::int64_t chunk = (replicas + tasks - 1) / tasks;
  for (std::int64_t begin = 0; begin < replicas; begin += chunk) {
    const std::int64_t end = std::min(begin + chunk, replicas);
    pool_->submit([batch, begin, end] { batch->run_range(begin, end); });
  }
  return batch;
}

std::vector<RunningStats> CellScheduler::run(
    std::int64_t replicas, std::uint64_t seed, std::size_t metrics,
    const std::function<void(std::int64_t, Rng&, std::span<double>)>& body) {
  const auto batch = submit(
      replicas, seed, metrics,
      [&body](std::int64_t r, Rng& rng, std::span<double> out, RowEmitter&) {
        body(r, rng, out);
      });
  return batch->stats();
}

}  // namespace opindyn
