#include "src/graph/layout.h"

#include <algorithm>
#include <numeric>

#include "src/support/assert.h"

namespace opindyn {

GraphLayout GraphLayout::identity(const Graph& graph) {
  GraphLayout layout;
  layout.is_identity_ = true;
  layout.to_internal_.resize(static_cast<std::size_t>(graph.node_count()));
  std::iota(layout.to_internal_.begin(), layout.to_internal_.end(), NodeId{0});
  layout.to_original_ = layout.to_internal_;
  return layout;
}

GraphLayout GraphLayout::degree_sorted(const Graph& graph) {
  if (graph.is_regular()) {
    return identity(graph);
  }
  const auto n = static_cast<std::size_t>(graph.node_count());
  GraphLayout layout;
  layout.to_original_.resize(n);
  std::iota(layout.to_original_.begin(), layout.to_original_.end(), NodeId{0});
  std::stable_sort(layout.to_original_.begin(), layout.to_original_.end(),
                   [&graph](NodeId a, NodeId b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  layout.to_internal_.resize(n);
  bool moved = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const NodeId orig = layout.to_original_[slot];
    layout.to_internal_[static_cast<std::size_t>(orig)] =
        static_cast<NodeId>(slot);
    moved = moved || orig != static_cast<NodeId>(slot);
  }
  if (!moved) {
    layout.is_identity_ = true;
    return layout;
  }
  layout.is_identity_ = false;

  const auto arcs = static_cast<std::size_t>(graph.arc_count());
  const NodeId* adjacency = graph.adjacency_data();
  const NodeId* arc_source = graph.arc_source_data();
  layout.adjacency_internal_.resize(arcs);
  layout.arc_source_internal_.resize(arcs);
  for (std::size_t j = 0; j < arcs; ++j) {
    layout.adjacency_internal_[j] =
        layout.to_internal_[static_cast<std::size_t>(adjacency[j])];
    layout.arc_source_internal_[j] =
        layout.to_internal_[static_cast<std::size_t>(arc_source[j])];
  }
  return layout;
}

void GraphLayout::scatter(std::span<const double> original,
                          std::span<double> internal) const {
  OPINDYN_EXPECTS(original.size() == to_internal_.size() &&
                      internal.size() == to_internal_.size(),
                  "layout scatter size mismatch");
  if (is_identity_) {
    std::copy(original.begin(), original.end(), internal.begin());
    return;
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    internal[static_cast<std::size_t>(to_internal_[i])] = original[i];
  }
}

void GraphLayout::gather(std::span<const double> internal,
                         std::span<double> original) const {
  OPINDYN_EXPECTS(internal.size() == to_internal_.size() &&
                      original.size() == to_internal_.size(),
                  "layout gather size mismatch");
  if (is_identity_) {
    std::copy(internal.begin(), internal.end(), original.begin());
    return;
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = internal[static_cast<std::size_t>(to_internal_[i])];
  }
}

}  // namespace opindyn
