// Elementary graph algorithms needed by the experiments: connectivity,
// BFS distances (the Q-chain's distance classes S_0 / S_1 / S_+ of
// Definition 5.6), diameter, bipartiteness.
#ifndef OPINDYN_GRAPH_ALGORITHMS_H
#define OPINDYN_GRAPH_ALGORITHMS_H

#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

/// True iff the graph is connected (BFS from node 0).
bool is_connected(const Graph& graph);

/// BFS distances from `source`; unreachable nodes get -1.
std::vector<NodeId> bfs_distances(const Graph& graph, NodeId source);

/// All-pairs shortest-path distances via n BFS runs (O(n*m)); row-major
/// n x n matrix.  Intended for the small graphs of the Q-chain experiments.
std::vector<NodeId> all_pairs_distances(const Graph& graph);

/// Largest finite BFS distance over all pairs; -1 if disconnected.
NodeId diameter(const Graph& graph);

/// True iff the graph is bipartite (2-colouring BFS).
bool is_bipartite(const Graph& graph);

/// Number of connected components.
int component_count(const Graph& graph);

/// Sum over u of d_u * value[u] / (2m): the degree-weighted average M from
/// Eq. (1) of the paper, provided here for graph-side consumers.
double degree_weighted_average(const Graph& graph,
                               const std::vector<double>& value);

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_ALGORITHMS_H
