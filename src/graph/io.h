// Graph serialisation: whitespace edge lists (read/write) and Graphviz DOT
// export for visual inspection of small instances.
#ifndef OPINDYN_GRAPH_IO_H
#define OPINDYN_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"

namespace opindyn {

/// Writes "n m" then one "u v" line per undirected edge.
void write_edge_list(const Graph& graph, std::ostream& out);

/// Reads the format written by write_edge_list.
/// Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& in);

/// Graphviz DOT (undirected), optionally labelling nodes with values.
std::string to_dot(const Graph& graph,
                   const std::vector<double>* node_values = nullptr);

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_IO_H
