// Memoised graph construction.  A sweep over model parameters (alpha, k,
// eps, ...) revisits the same generator parameters in cell after cell;
// building the graph once and sharing the immutable result is safe
// because Graph is never mutated after construction (see graph.h).  Keys
// are canonical parameter strings produced by the caller (the scenario
// engine derives them from its GraphSpec), so the cache itself stays
// independent of any particular spec schema.
#ifndef OPINDYN_GRAPH_GRAPH_CACHE_H
#define OPINDYN_GRAPH_GRAPH_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/graph/graph.h"

namespace opindyn {

class GraphCache {
 public:
  /// Returns the cached graph for `key`, building it via `build` on the
  /// first request.  Thread-safe; `build` runs under the cache lock, so
  /// concurrent callers of the same key build once.
  std::shared_ptr<const Graph> get(const std::string& key,
                                   const std::function<Graph()>& build);

  std::size_t size() const;
  /// Requests served from the cache / requests that had to build.
  std::int64_t hits() const;
  std::int64_t misses() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const Graph>> graphs_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_GRAPH_CACHE_H
