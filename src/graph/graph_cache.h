// Memoised graph construction.  A sweep over model parameters (alpha, k,
// eps, ...) revisits the same generator parameters in cell after cell;
// building the graph once and sharing the immutable result is safe
// because Graph is never mutated after construction (see graph.h).  Keys
// are canonical parameter strings produced by the caller (the scenario
// engine derives them from its GraphSpec), so the cache itself stays
// independent of any particular spec schema.
//
// The global mutex only guards the key -> entry map; the build itself
// runs under a per-key once-latch OUTSIDE that lock, so concurrent
// callers needing *different* graphs build in parallel while concurrent
// callers of the *same* key still build exactly once (the latecomers
// block on that key's latch only).
#ifndef OPINDYN_GRAPH_GRAPH_CACHE_H
#define OPINDYN_GRAPH_GRAPH_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/graph/graph.h"

namespace opindyn {

class GraphCache {
 public:
  /// Returns the cached graph for `key`, building it via `build` on the
  /// first request.  Thread-safe; `build` runs outside the cache-wide
  /// lock (per-key latch), so distinct keys build concurrently and one
  /// key builds once.  If `build` throws, the error propagates to every
  /// caller waiting on that key and the next `get` retries the build.
  std::shared_ptr<const Graph> get(const std::string& key,
                                   const std::function<Graph()>& build);

  std::size_t size() const;
  /// Requests served from the cache / requests that had to build.
  std::int64_t hits() const;
  std::int64_t misses() const;

  void clear();

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const Graph> graph;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_GRAPH_CACHE_H
