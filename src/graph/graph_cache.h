// Memoised graph construction.  A sweep over model parameters (alpha, k,
// eps, ...) revisits the same generator parameters in cell after cell;
// building the graph once and sharing the immutable result is safe
// because Graph is never mutated after construction (see graph.h).  Keys
// are canonical parameter strings produced by the caller (the scenario
// engine derives them from its GraphSpec), so the cache itself stays
// independent of any particular spec schema.
//
// The global mutex only guards the key -> entry map; the build itself
// runs under a per-key once-latch OUTSIDE that lock, so concurrent
// callers needing *different* graphs build in parallel while concurrent
// callers of the *same* key still build exactly once (the latecomers
// block on that key's latch only).
//
// The cache can be bounded (CacheLimits): serve mode promotes one
// instance to process lifetime, so entry/byte caps with LRU eviction
// keep a long-running job stream from accumulating every graph it ever
// touched.  Eviction only drops the map entry -- jobs holding the
// shared_ptr keep their graph alive, so an evicted-while-in-use graph
// is merely rebuilt on the next request.  The default (no limits)
// preserves the historical unbounded behaviour of per-batch caches.
#ifndef OPINDYN_GRAPH_GRAPH_CACHE_H
#define OPINDYN_GRAPH_GRAPH_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/graph/graph.h"
#include "src/support/cache_limits.h"

namespace opindyn {

class GraphCache {
 public:
  GraphCache() = default;
  explicit GraphCache(CacheLimits limits) : limits_(limits) {}

  /// Returns the cached graph for `key`, building it via `build` on the
  /// first request.  Thread-safe; `build` runs outside the cache-wide
  /// lock (per-key latch), so distinct keys build concurrently and one
  /// key builds once.  If `build` throws, the error propagates to every
  /// caller waiting on that key and the next `get` retries the build.
  /// With limits set, completing a build may evict least-recently-used
  /// entries (never the one being returned).
  std::shared_ptr<const Graph> get(const std::string& key,
                                   const std::function<Graph()>& build);

  std::size_t size() const;
  /// Requests served from the cache / requests that had to build.
  /// Cumulative over the cache's lifetime (evictions don't subtract).
  std::int64_t hits() const;
  std::int64_t misses() const;
  /// Entries dropped by the LRU bound (0 for an unbounded cache).
  std::int64_t evictions() const;
  /// Bytes held by currently resident (fully built) entries.
  std::uint64_t resident_bytes() const;

  void clear();

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const Graph> graph;  // written under mutex_, read
                                         // after the once-latch
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;
    bool resident = false;  // built AND accounted in resident_bytes_
  };

  /// Drops LRU resident entries (never `keep`) until within limits.
  /// Caller holds mutex_.
  void evict_locked(const Entry* keep);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  CacheLimits limits_;
  std::uint64_t use_counter_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_GRAPH_CACHE_H
