// Immutable undirected graph in compressed-sparse-row (CSR) form.
//
// The averaging processes of the paper only ever need two operations in
// their hot loop: "list the neighbours of u" and "give me the v of a
// uniformly random directed arc".  CSR provides both in O(1)/O(deg):
// `adjacency_[offsets_[u] .. offsets_[u+1])` are u's neighbours, and arc j
// is the pair (arc_source_[j], adjacency_[j]).  Graphs are built once via
// GraphBuilder and never mutated afterwards, so the simulation layer can
// share one Graph across replicas and threads without synchronisation.
//
// The representation is compact: arc offsets are stored as uint32 (node
// ids are already int32), which halves the offsets footprint and keeps a
// 10^7-node graph's CSR cache-friendly.  Construction rejects graphs
// with 2m >= 2^32 directed arcs (a ~17 GiB adjacency array) with a
// one-line error instead of silently truncating indices.
#ifndef OPINDYN_GRAPH_GRAPH_H
#define OPINDYN_GRAPH_GRAPH_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/support/assert.h"

namespace opindyn {

using NodeId = std::int32_t;
using ArcId = std::int64_t;

class Graph {
 public:
  /// Builds a graph from an explicit edge list over nodes {0..n-1}.
  /// Duplicate edges and self-loops are rejected (ContractError).
  Graph(NodeId node_count,
        const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId node_count() const noexcept { return node_count_; }
  /// Number of undirected edges m.
  std::int64_t edge_count() const noexcept { return edge_count_; }
  /// Number of directed arcs (2m).
  ArcId arc_count() const noexcept {
    return static_cast<ArcId>(adjacency_.size());
  }

  /// Degree of u.  Hot-path checked: the range precondition is compiled
  /// out of optimised builds (OPINDYN_HOT_EXPECTS in support/assert.h).
  NodeId degree(NodeId u) const {
    OPINDYN_HOT_EXPECTS(u >= 0 && u < node_count_, "node id out of range");
    return static_cast<NodeId>(offsets_[static_cast<std::size_t>(u) + 1] -
                               offsets_[static_cast<std::size_t>(u)]);
  }
  NodeId min_degree() const noexcept { return min_degree_; }
  NodeId max_degree() const noexcept { return max_degree_; }
  bool is_regular() const noexcept { return min_degree_ == max_degree_; }

  /// Neighbours of u, sorted ascending.  Hot-path checked.
  std::span<const NodeId> neighbors(NodeId u) const {
    OPINDYN_HOT_EXPECTS(u >= 0 && u < node_count_, "node id out of range");
    const auto begin =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
    const auto end =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
    return {adjacency_.data() + begin, end - begin};
  }

  /// i-th neighbour of u (0 <= i < degree(u)).
  NodeId neighbor(NodeId u, NodeId i) const;

  /// True iff {u, v} is an edge (binary search, O(log deg)).
  bool has_edge(NodeId u, NodeId v) const;

  /// Source / target of directed arc j in [0, 2m).  Hot-path checked.
  NodeId arc_source(ArcId j) const {
    OPINDYN_HOT_EXPECTS(j >= 0 && j < arc_count(), "arc id out of range");
    return arc_source_[static_cast<std::size_t>(j)];
  }
  NodeId arc_target(ArcId j) const {
    OPINDYN_HOT_EXPECTS(j >= 0 && j < arc_count(), "arc id out of range");
    return adjacency_[static_cast<std::size_t>(j)];
  }

  /// Stationary probability of the (lazy) random walk at u: d_u / 2m.
  double stationary(NodeId u) const {
    return static_cast<double>(degree(u)) / static_cast<double>(arc_count());
  }

  /// All undirected edges, each once with u < v.
  std::vector<std::pair<NodeId, NodeId>> undirected_edges() const;

  // Raw CSR arrays for the burst kernels (see core/node_model.cpp,
  // core/edge_model.cpp): the kernels stream these through SIMD gathers
  // and must not pay a per-access accessor.  Layout contract:
  //   offsets_data()[u] .. offsets_data()[u+1]  -- u's row (sorted asc),
  //   adjacency_data()[j]                       -- target of arc j,
  //   arc_source_data()[j]                      -- source of arc j.
  const std::uint32_t* offsets_data() const noexcept {
    return offsets_.data();
  }
  const NodeId* adjacency_data() const noexcept { return adjacency_.data(); }
  const NodeId* arc_source_data() const noexcept {
    return arc_source_.data();
  }

  /// Optional human-readable name set by generators ("cycle(16)", ...).
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Approximate heap footprint of the CSR arrays (the cache-accounting
  /// unit for GraphCache's byte cap); deterministic for a given graph.
  std::uint64_t memory_bytes() const noexcept {
    return static_cast<std::uint64_t>(offsets_.size()) * sizeof(std::uint32_t) +
           static_cast<std::uint64_t>(adjacency_.size()) * sizeof(NodeId) +
           static_cast<std::uint64_t>(arc_source_.size()) * sizeof(NodeId) +
           static_cast<std::uint64_t>(name_.size()) + sizeof(Graph);
  }

 private:
  NodeId node_count_ = 0;
  std::int64_t edge_count_ = 0;
  NodeId min_degree_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::uint32_t> offsets_;  // size n+1, compact arc indices
  std::vector<NodeId> adjacency_;    // size 2m, sorted within each row
  std::vector<NodeId> arc_source_;   // size 2m: arc j -> its source node
  std::string name_;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_GRAPH_H
