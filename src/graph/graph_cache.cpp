#include "src/graph/graph_cache.h"

#include <utility>

namespace opindyn {

std::shared_ptr<const Graph> GraphCache::get(
    const std::string& key, const std::function<Graph()>& build) {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      entry = it->second;
    } else {
      ++misses_;
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
    }
  }
  // The build runs here, outside the cache-wide lock: only callers of
  // THIS key serialise on the latch.  A throwing build leaves the latch
  // unset, so call_once rethrows to everyone waiting and the next
  // caller retries.
  std::call_once(entry->once, [&] {
    entry->graph = std::make_shared<const Graph>(build());
  });
  return entry->graph;
}

std::size_t GraphCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::int64_t GraphCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t GraphCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void GraphCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace opindyn
