#include "src/graph/graph_cache.h"

#include <utility>

namespace opindyn {

std::shared_ptr<const Graph> GraphCache::get(
    const std::string& key, const std::function<Graph()>& build) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = graphs_.find(key);
  if (it != graphs_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto graph = std::make_shared<const Graph>(build());
  graphs_.emplace(key, graph);
  return graph;
}

std::size_t GraphCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

std::int64_t GraphCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t GraphCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void GraphCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  graphs_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace opindyn
