#include "src/graph/graph_cache.h"

#include <utility>

namespace opindyn {

std::shared_ptr<const Graph> GraphCache::get(
    const std::string& key, const std::function<Graph()>& build) {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      entry = it->second;
    } else {
      ++misses_;
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
    }
    entry->last_use = ++use_counter_;
  }
  // The build runs here, outside the cache-wide lock: only callers of
  // THIS key serialise on the latch.  A throwing build leaves the latch
  // unset, so call_once rethrows to everyone waiting and the next
  // caller retries.
  std::call_once(entry->once, [&] {
    auto built = std::make_shared<const Graph>(build());
    const std::lock_guard<std::mutex> lock(mutex_);
    entry->graph = std::move(built);
    entry->bytes = entry->graph->memory_bytes();
    // Account the entry only if it still owns its key: a concurrent
    // eviction (or clear) may already have dropped it from the map, in
    // which case the graph lives exactly as long as its holders.
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) {
      entry->resident = true;
      resident_bytes_ += entry->bytes;
      evict_locked(entry.get());
    }
  });
  // Safe without the lock: the once-latch orders this read after the
  // mutex-protected write above.
  return entry->graph;
}

void GraphCache::evict_locked(const Entry* keep) {
  while (true) {
    const bool over_entries =
        limits_.max_entries != 0 && entries_.size() > limits_.max_entries;
    const bool over_bytes =
        limits_.max_bytes != 0 && resident_bytes_ > limits_.max_bytes;
    if (!over_entries && !over_bytes) {
      return;
    }
    // Least-recently-used resident victim; in-flight builds (not yet
    // resident) and the entry being returned are never evicted, so a
    // cap smaller than one graph degenerates to "hold the newest".
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->resident || it->second.get() == keep) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second->last_use < victim->second->last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;
    }
    resident_bytes_ -= victim->second->bytes;
    ++evictions_;
    entries_.erase(victim);
  }
}

std::size_t GraphCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::int64_t GraphCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t GraphCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t GraphCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t GraphCache::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

void GraphCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  resident_bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace opindyn
