#include "src/graph/isoperimetric.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {

std::int64_t cut_size(const Graph& graph, std::uint64_t subset_mask) {
  OPINDYN_EXPECTS(graph.node_count() <= 63, "cut_size needs n <= 63");
  std::int64_t cut = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const bool u_in = (subset_mask >> u) & 1ULL;
    for (const NodeId v : graph.neighbors(u)) {
      if (u < v) {
        const bool v_in = (subset_mask >> v) & 1ULL;
        cut += (u_in != v_in) ? 1 : 0;
      }
    }
  }
  return cut;
}

double isoperimetric_number_exact(const Graph& graph) {
  const NodeId n = graph.node_count();
  OPINDYN_EXPECTS(n <= 24, "exact isoperimetric number limited to n <= 24");
  OPINDYN_EXPECTS(n >= 2, "isoperimetric number needs n >= 2");
  double best = std::numeric_limits<double>::infinity();
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    const int size = std::popcount(mask);
    if (size > n / 2) {
      continue;
    }
    const double ratio = static_cast<double>(cut_size(graph, mask)) /
                         static_cast<double>(size);
    best = std::min(best, ratio);
  }
  return best;
}

double isoperimetric_number_upper_bound(const Graph& graph, Rng& rng,
                                        int trials) {
  const NodeId n = graph.node_count();
  OPINDYN_EXPECTS(n >= 2 && n <= 63, "sweep bound needs 2 <= n <= 63");
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    // BFS sweep from a random root: prefixes of a BFS order are natural
    // low-cut candidates.
    const NodeId root = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    std::vector<NodeId> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<NodeId> queue_storage{root};
    seen[static_cast<std::size_t>(root)] = true;
    for (std::size_t head = 0; head < queue_storage.size(); ++head) {
      const NodeId u = queue_storage[head];
      order.push_back(u);
      for (const NodeId v : graph.neighbors(u)) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          queue_storage.push_back(v);
        }
      }
    }
    std::uint64_t mask = 0;
    for (NodeId i = 0; i < n / 2; ++i) {
      mask |= 1ULL << order[static_cast<std::size_t>(i)];
      const double ratio = static_cast<double>(cut_size(graph, mask)) /
                           static_cast<double>(i + 1);
      best = std::min(best, ratio);
    }
  }
  return best;
}

}  // namespace opindyn
