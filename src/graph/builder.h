// Incremental edge-set builder used by generators and file readers.
// Deduplicates edges, rejects self-loops, and produces an immutable Graph.
//
// Storage is a flat edge vector plus a hash-set membership index, so
// building a 10^7-node graph streams: `reserve` pre-sizes both, and
// generators whose construction cannot emit duplicates (grids, tori,
// streamed attachment) use `add_edge_unchecked` to skip the membership
// index entirely -- Graph's constructor still validates the final edge
// set (range, self-loop and duplicate checks), so the unchecked path
// trades only redundant hashing, never safety.
#ifndef OPINDYN_GRAPH_BUILDER_H
#define OPINDYN_GRAPH_BUILDER_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count);

  /// Pre-sizes the edge storage for `edge_count` edges.
  void reserve(std::int64_t edge_count);

  /// Adds undirected edge {u, v}; returns false if it already exists.
  bool add_edge(NodeId u, NodeId v);

  /// Adds undirected edge {u, v} without consulting or updating the
  /// membership index.  Only for callers that guarantee {u, v} is new;
  /// a violated guarantee is caught by Graph's duplicate check at
  /// build().  After any unchecked add, `has_edge`/`add_edge` see a
  /// stale index, so a builder uses one style or the other.
  void add_edge_unchecked(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  std::int64_t edge_count() const noexcept {
    return static_cast<std::int64_t>(edges_.size());
  }
  NodeId node_count() const noexcept { return node_count_; }

  /// Finalises into an immutable Graph carrying `name`.
  Graph build(std::string name = {}) const;

 private:
  static std::uint64_t key(NodeId u, NodeId v) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  NodeId node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_BUILDER_H
