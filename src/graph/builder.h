// Incremental edge-set builder used by generators and file readers.
// Deduplicates edges, rejects self-loops, and produces an immutable Graph.
#ifndef OPINDYN_GRAPH_BUILDER_H
#define OPINDYN_GRAPH_BUILDER_H

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count);

  /// Adds undirected edge {u, v}; returns false if it already exists.
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  std::int64_t edge_count() const noexcept {
    return static_cast<std::int64_t>(edges_.size());
  }
  NodeId node_count() const noexcept { return node_count_; }

  /// Finalises into an immutable Graph carrying `name`.
  Graph build(std::string name = {}) const;

 private:
  NodeId node_count_;
  std::set<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_BUILDER_H
