#include "src/graph/generators.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "src/graph/algorithms.h"
#include "src/graph/builder.h"
#include "src/support/assert.h"
#include "src/support/sampling.h"

namespace opindyn {
namespace gen {

Graph path(NodeId n) {
  OPINDYN_EXPECTS(n >= 2, "path needs n >= 2");
  GraphBuilder builder(n);
  builder.reserve(n - 1);
  for (NodeId i = 0; i + 1 < n; ++i) {
    builder.add_edge_unchecked(i, i + 1);
  }
  return builder.build("path(" + std::to_string(n) + ")");
}

Graph cycle(NodeId n) {
  OPINDYN_EXPECTS(n >= 3, "cycle needs n >= 3");
  GraphBuilder builder(n);
  builder.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    builder.add_edge_unchecked(i, static_cast<NodeId>((i + 1) % n));
  }
  return builder.build("cycle(" + std::to_string(n) + ")");
}

Graph complete(NodeId n) {
  OPINDYN_EXPECTS(n >= 2, "complete graph needs n >= 2");
  GraphBuilder builder(n);
  builder.reserve(static_cast<std::int64_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
      builder.add_edge_unchecked(u, v);
    }
  }
  return builder.build("complete(" + std::to_string(n) + ")");
}

Graph star(NodeId n) {
  OPINDYN_EXPECTS(n >= 2, "star needs n >= 2");
  GraphBuilder builder(n);
  builder.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) {
    builder.add_edge_unchecked(0, v);
  }
  return builder.build("star(" + std::to_string(n) + ")");
}

Graph double_star(NodeId leaves_per_hub) {
  OPINDYN_EXPECTS(leaves_per_hub >= 1, "double star needs >= 1 leaf per hub");
  const NodeId n = static_cast<NodeId>(2 + 2 * leaves_per_hub);
  GraphBuilder builder(n);
  builder.add_edge(0, 1);
  for (NodeId i = 0; i < leaves_per_hub; ++i) {
    builder.add_edge(0, static_cast<NodeId>(2 + i));
    builder.add_edge(1, static_cast<NodeId>(2 + leaves_per_hub + i));
  }
  return builder.build("double_star(" + std::to_string(leaves_per_hub) + ")");
}

namespace {
NodeId grid_id(NodeId r, NodeId c, NodeId cols) {
  return static_cast<NodeId>(r * cols + c);
}
}  // namespace

Graph grid(NodeId rows, NodeId cols) {
  OPINDYN_EXPECTS(rows >= 1 && cols >= 1 &&
                      static_cast<std::int64_t>(rows) * cols >= 2,
                  "grid needs at least two nodes");
  GraphBuilder builder(static_cast<NodeId>(rows * cols));
  builder.reserve(static_cast<std::int64_t>(rows) * (cols - 1) +
                  static_cast<std::int64_t>(cols) * (rows - 1));
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge_unchecked(grid_id(r, c, cols),
                                   grid_id(r, c + 1, cols));
      }
      if (r + 1 < rows) {
        builder.add_edge_unchecked(grid_id(r, c, cols),
                                   grid_id(r + 1, c, cols));
      }
    }
  }
  return builder.build("grid(" + std::to_string(rows) + "x" +
                       std::to_string(cols) + ")");
}

Graph torus(NodeId rows, NodeId cols) {
  OPINDYN_EXPECTS(rows >= 3 && cols >= 3,
                  "torus needs rows, cols >= 3 for 4-regularity");
  GraphBuilder builder(static_cast<NodeId>(rows * cols));
  builder.reserve(2 * static_cast<std::int64_t>(rows) * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      builder.add_edge_unchecked(
          grid_id(r, c, cols),
          grid_id(r, static_cast<NodeId>((c + 1) % cols), cols));
      builder.add_edge_unchecked(
          grid_id(r, c, cols),
          grid_id(static_cast<NodeId>((r + 1) % rows), c, cols));
    }
  }
  return builder.build("torus(" + std::to_string(rows) + "x" +
                       std::to_string(cols) + ")");
}

Graph hypercube(int dimensions) {
  OPINDYN_EXPECTS(dimensions >= 1 && dimensions <= 20,
                  "hypercube dimension must be in [1, 20]");
  const NodeId n = static_cast<NodeId>(1) << dimensions;
  GraphBuilder builder(n);
  builder.reserve(static_cast<std::int64_t>(n) * dimensions / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (int b = 0; b < dimensions; ++b) {
      const NodeId v = static_cast<NodeId>(u ^ (1 << b));
      if (u < v) {
        builder.add_edge_unchecked(u, v);
      }
    }
  }
  return builder.build("hypercube(" + std::to_string(dimensions) + ")");
}

Graph circulant(NodeId n, const std::vector<NodeId>& strides) {
  OPINDYN_EXPECTS(n >= 3, "circulant needs n >= 3");
  OPINDYN_EXPECTS(!strides.empty(), "circulant needs at least one stride");
  GraphBuilder builder(n);
  builder.reserve(static_cast<std::int64_t>(n) * strides.size());
  for (const NodeId s : strides) {
    OPINDYN_EXPECTS(s >= 1 && s < n, "stride out of range");
    for (NodeId i = 0; i < n; ++i) {
      builder.add_edge(i, static_cast<NodeId>((i + s) % n));
    }
  }
  std::string name = "circulant(" + std::to_string(n) + ";";
  for (std::size_t i = 0; i < strides.size(); ++i) {
    if (i > 0) {
      name += ',';
    }
    name += std::to_string(strides[i]);
  }
  name += ")";
  return builder.build(std::move(name));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  OPINDYN_EXPECTS(a >= 1 && b >= 1, "complete bipartite needs a, b >= 1");
  GraphBuilder builder(static_cast<NodeId>(a + b));
  builder.reserve(static_cast<std::int64_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      builder.add_edge_unchecked(u, static_cast<NodeId>(a + v));
    }
  }
  return builder.build("complete_bipartite(" + std::to_string(a) + "," +
                       std::to_string(b) + ")");
}

Graph binary_tree(NodeId n) {
  OPINDYN_EXPECTS(n >= 2, "binary tree needs n >= 2");
  GraphBuilder builder(n);
  builder.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) {
    builder.add_edge_unchecked(v, static_cast<NodeId>((v - 1) / 2));
  }
  return builder.build("binary_tree(" + std::to_string(n) + ")");
}

Graph petersen() {
  GraphBuilder builder(10);
  for (NodeId i = 0; i < 5; ++i) {
    builder.add_edge(i, static_cast<NodeId>((i + 1) % 5));       // outer C5
    builder.add_edge(static_cast<NodeId>(5 + i),
                     static_cast<NodeId>(5 + (i + 2) % 5));      // inner star
    builder.add_edge(i, static_cast<NodeId>(5 + i));             // spokes
  }
  return builder.build("petersen");
}

Graph barbell(NodeId clique_size, NodeId path_len) {
  OPINDYN_EXPECTS(clique_size >= 3, "barbell needs clique size >= 3");
  OPINDYN_EXPECTS(path_len >= 0, "path length must be >= 0");
  const NodeId n = static_cast<NodeId>(2 * clique_size + path_len);
  GraphBuilder builder(n);
  auto add_clique = [&](NodeId base) {
    for (NodeId u = 0; u < clique_size; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < clique_size; ++v) {
        builder.add_edge(static_cast<NodeId>(base + u),
                         static_cast<NodeId>(base + v));
      }
    }
  };
  add_clique(0);
  add_clique(static_cast<NodeId>(clique_size + path_len));
  // Bridge: last node of clique A -> path -> first node of clique B.
  NodeId prev = static_cast<NodeId>(clique_size - 1);
  for (NodeId i = 0; i < path_len; ++i) {
    const NodeId next = static_cast<NodeId>(clique_size + i);
    builder.add_edge(prev, next);
    prev = next;
  }
  builder.add_edge(prev, static_cast<NodeId>(clique_size + path_len));
  return builder.build("barbell(" + std::to_string(clique_size) + "," +
                       std::to_string(path_len) + ")");
}

Graph lollipop(NodeId clique_size, NodeId path_len) {
  OPINDYN_EXPECTS(clique_size >= 3, "lollipop needs clique size >= 3");
  OPINDYN_EXPECTS(path_len >= 1, "lollipop needs path length >= 1");
  const NodeId n = static_cast<NodeId>(clique_size + path_len);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < clique_size; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < clique_size; ++v) {
      builder.add_edge(u, v);
    }
  }
  NodeId prev = static_cast<NodeId>(clique_size - 1);
  for (NodeId i = 0; i < path_len; ++i) {
    const NodeId next = static_cast<NodeId>(clique_size + i);
    builder.add_edge(prev, next);
    prev = next;
  }
  return builder.build("lollipop(" + std::to_string(clique_size) + "," +
                       std::to_string(path_len) + ")");
}

Graph random_regular(Rng& rng, NodeId n, NodeId d) {
  OPINDYN_EXPECTS(n >= 2 && d >= 1 && d < n, "need 1 <= d < n");
  OPINDYN_EXPECTS((static_cast<std::int64_t>(n) * d) % 2 == 0,
                  "n*d must be even for a d-regular graph");
  // Pairing (configuration) model: create d half-edges ("stubs") per node,
  // pair them via a uniform perfect matching, reject on self-loops,
  // multi-edges, or disconnectedness.  For fixed d the acceptance
  // probability is bounded below by a constant, so this terminates fast.
  const std::int64_t stubs = static_cast<std::int64_t>(n) * d;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const std::vector<std::int32_t> perm = random_permutation(rng, stubs);
    GraphBuilder builder(n);
    builder.reserve(stubs / 2);
    bool simple = true;
    for (std::int64_t i = 0; i < stubs && simple; i += 2) {
      const NodeId u = static_cast<NodeId>(
          perm[static_cast<std::size_t>(i)] / d);
      const NodeId v = static_cast<NodeId>(
          perm[static_cast<std::size_t>(i + 1)] / d);
      if (u == v || builder.has_edge(u, v)) {
        simple = false;
        break;
      }
      builder.add_edge(u, v);
    }
    if (!simple) {
      continue;
    }
    Graph graph = builder.build("random_regular(" + std::to_string(n) + "," +
                                std::to_string(d) + ")");
    if (is_connected(graph)) {
      return graph;
    }
  }
  throw std::runtime_error(
      "random_regular: failed to generate a simple connected graph "
      "(parameters too tight?)");
}

Graph erdos_renyi_connected(Rng& rng, NodeId n, double p, int max_attempts) {
  OPINDYN_EXPECTS(n >= 2, "G(n,p) needs n >= 2");
  OPINDYN_EXPECTS(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder builder(n);
    builder.reserve(static_cast<std::int64_t>(
        p * static_cast<double>(n) * (n - 1) / 2.0));
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
        if (rng.next_bool(p)) {
          builder.add_edge_unchecked(u, v);
        }
      }
    }
    if (builder.edge_count() == 0) {
      continue;
    }
    Graph graph = builder.build("gnp(" + std::to_string(n) + ")");
    if (is_connected(graph)) {
      return graph;
    }
  }
  throw std::runtime_error(
      "erdos_renyi_connected: no connected sample; raise p or attempts");
}

Graph preferential_attachment(Rng& rng, NodeId n, NodeId attach) {
  OPINDYN_EXPECTS(attach >= 1, "attachment count must be >= 1");
  OPINDYN_EXPECTS(n > attach + 1, "need n > attach + 1");
  GraphBuilder builder(n);
  // Unchecked adds throughout: the seed clique enumerates distinct pairs,
  // and each attachment round joins a brand-new node w to `attach`
  // distinct targets, so no duplicate edge can arise.
  const std::int64_t seed_edges =
      static_cast<std::int64_t>(attach + 1) * attach / 2;
  const std::int64_t total_edges =
      seed_edges + static_cast<std::int64_t>(n - attach - 1) * attach;
  builder.reserve(total_edges);
  // Repeated-endpoint list: sampling an element uniformly samples a node
  // proportionally to its current degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2 * total_edges));
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v <= attach; ++v) {
      builder.add_edge_unchecked(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  for (NodeId w = static_cast<NodeId>(attach + 1); w < n; ++w) {
    targets.clear();
    while (static_cast<NodeId>(targets.size()) < attach) {
      const NodeId candidate = endpoints[static_cast<std::size_t>(
          rng.next_below(endpoints.size()))];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (const NodeId t : targets) {
      builder.add_edge_unchecked(w, t);
      endpoints.push_back(w);
      endpoints.push_back(t);
    }
  }
  return builder.build("pref_attach(" + std::to_string(n) + "," +
                       std::to_string(attach) + ")");
}

}  // namespace gen
}  // namespace opindyn
