// Graph families used across the paper's experiments.
//
// Regular families (cycle, complete, torus, hypercube, circulant, random
// d-regular, Petersen) exercise Theorem 2.2(2)/2.4(2) (the concentration
// bounds hold for regular graphs); irregular families (star, double star,
// barbell, lollipop, trees, preferential attachment) exercise the EdgeModel
// results and the degree-weighted martingale of Lemma 4.1.
#ifndef OPINDYN_GRAPH_GENERATORS_H
#define OPINDYN_GRAPH_GENERATORS_H

#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {
namespace gen {

/// Path P_n: 0-1-2-...-(n-1).  n >= 2.
Graph path(NodeId n);

/// Cycle C_n.  n >= 3.  2-regular; lambda_2(L) = 2 - 2cos(2*pi/n).
Graph cycle(NodeId n);

/// Complete graph K_n.  n >= 2.  (n-1)-regular; lambda_2(L) = n.
Graph complete(NodeId n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 are leaves.  n >= 2.
Graph star(NodeId n);

/// Double star: two hubs joined by an edge, each with `leaves` leaves.
Graph double_star(NodeId leaves_per_hub);

/// rows x cols grid with 4-neighbourhoods (no wraparound).
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wraparound grid); 4-regular when rows, cols >= 3.
Graph torus(NodeId rows, NodeId cols);

/// Hypercube Q_d on 2^d nodes; d-regular; lambda_2(L) = 2.
Graph hypercube(int dimensions);

/// Circulant graph: node i adjacent to i +- s (mod n) for each stride s.
/// 2*|strides|-regular if all strides distinct and != n/2.
Graph circulant(NodeId n, const std::vector<NodeId>& strides);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(NodeId a, NodeId b);

/// Complete binary tree with n nodes (heap indexing).
Graph binary_tree(NodeId n);

/// Petersen graph (n=10, 3-regular, diameter 2).
Graph petersen();

/// Barbell: two K_c cliques joined by a path of `path_len` extra nodes
/// (path_len = 0 joins the cliques by a single edge).
Graph barbell(NodeId clique_size, NodeId path_len);

/// Lollipop: K_c clique with a path of `path_len` nodes attached.
Graph lollipop(NodeId clique_size, NodeId path_len);

/// Random d-regular graph via the pairing/configuration model with
/// rejection until simple and connected.  Requires n*d even, d < n.
Graph random_regular(Rng& rng, NodeId n, NodeId d);

/// Erdos-Renyi G(n, p), resampled until connected.  `p` should be above
/// the connectivity threshold (log n / n) or this may loop for a while;
/// gives up after `max_attempts` and throws.
Graph erdos_renyi_connected(Rng& rng, NodeId n, double p,
                            int max_attempts = 1000);

/// Preferential attachment (Barabasi-Albert): starts from a complete graph
/// on `attach + 1` nodes, each new node attaches to `attach` distinct
/// existing nodes chosen proportionally to degree.  Connected by
/// construction; heavy-tailed degrees - the paper's social-network
/// motivation.
Graph preferential_attachment(Rng& rng, NodeId n, NodeId attach);

}  // namespace gen
}  // namespace opindyn

#endif  // OPINDYN_GRAPH_GENERATORS_H
