#include "src/graph/graph.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

Graph::Graph(NodeId node_count,
             const std::vector<std::pair<NodeId, NodeId>>& edges)
    : node_count_(node_count),
      edge_count_(static_cast<std::int64_t>(edges.size())) {
  OPINDYN_EXPECTS(node_count > 0, "graph needs at least one node");
  // Compact-index bound: arc positions are stored as uint32, so the 2m
  // directed arcs must fit.  (2m >= 2^32 means a >16 GiB adjacency
  // array -- reject it loudly rather than truncate.)
  OPINDYN_EXPECTS(2 * static_cast<std::uint64_t>(edges.size()) <
                      (std::uint64_t{1} << 32),
                  "graph exceeds the compact 32-bit arc index (2m >= 2^32)");
  offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);

  for (const auto& [u, v] : edges) {
    OPINDYN_EXPECTS(u >= 0 && u < node_count, "edge endpoint out of range");
    OPINDYN_EXPECTS(v >= 0 && v < node_count, "edge endpoint out of range");
    OPINDYN_EXPECTS(u != v, "self-loops are not allowed");
    ++offsets_[static_cast<std::size_t>(u) + 1];
    ++offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.assign(static_cast<std::size_t>(offsets_.back()), 0);
  arc_source_.assign(adjacency_.size(), 0);

  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)])] =
        v;
    ++cursor[static_cast<std::size_t>(u)];
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)])] =
        u;
    ++cursor[static_cast<std::size_t>(v)];
  }
  min_degree_ = node_count;
  max_degree_ = 0;
  for (NodeId u = 0; u < node_count; ++u) {
    const auto begin =
        adjacency_.begin() + offsets_[static_cast<std::size_t>(u)];
    const auto end =
        adjacency_.begin() + offsets_[static_cast<std::size_t>(u) + 1];
    std::sort(begin, end);
    OPINDYN_EXPECTS(std::adjacent_find(begin, end) == end,
                    "duplicate edges are not allowed");
    const auto deg = static_cast<NodeId>(end - begin);
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
    for (auto it = begin; it != end; ++it) {
      arc_source_[static_cast<std::size_t>(it - adjacency_.begin())] = u;
    }
  }
}

NodeId Graph::neighbor(NodeId u, NodeId i) const {
  const auto row = neighbors(u);
  OPINDYN_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < row.size(),
                  "neighbour index out of range");
  return row[static_cast<std::size_t>(i)];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::undirected_edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(edge_count_));
  for (NodeId u = 0; u < node_count_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) {
        edges.emplace_back(u, v);
      }
    }
  }
  return edges;
}

}  // namespace opindyn
