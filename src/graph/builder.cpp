#include "src/graph/builder.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

GraphBuilder::GraphBuilder(NodeId node_count) : node_count_(node_count) {
  OPINDYN_EXPECTS(node_count > 0, "graph needs at least one node");
}

void GraphBuilder::reserve(std::int64_t edge_count) {
  OPINDYN_EXPECTS(edge_count >= 0, "edge reserve must be non-negative");
  edges_.reserve(static_cast<std::size_t>(edge_count));
  seen_.reserve(static_cast<std::size_t>(edge_count));
}

bool GraphBuilder::add_edge(NodeId u, NodeId v) {
  OPINDYN_EXPECTS(u >= 0 && u < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(v >= 0 && v < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(u != v, "self-loops are not allowed");
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  if (!seen_.insert(key(lo, hi)).second) {
    return false;
  }
  edges_.emplace_back(lo, hi);
  return true;
}

void GraphBuilder::add_edge_unchecked(NodeId u, NodeId v) {
  OPINDYN_EXPECTS(u >= 0 && u < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(v >= 0 && v < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(u != v, "self-loops are not allowed");
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  return seen_.count(key(std::min(u, v), std::max(u, v))) > 0;
}

Graph GraphBuilder::build(std::string name) const {
  Graph graph(node_count_, edges_);
  graph.set_name(std::move(name));
  return graph;
}

}  // namespace opindyn
