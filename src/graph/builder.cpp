#include "src/graph/builder.h"

#include <algorithm>

#include "src/support/assert.h"

namespace opindyn {

GraphBuilder::GraphBuilder(NodeId node_count) : node_count_(node_count) {
  OPINDYN_EXPECTS(node_count > 0, "graph needs at least one node");
}

bool GraphBuilder::add_edge(NodeId u, NodeId v) {
  OPINDYN_EXPECTS(u >= 0 && u < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(v >= 0 && v < node_count_, "edge endpoint out of range");
  OPINDYN_EXPECTS(u != v, "self-loops are not allowed");
  return edges_.emplace(std::min(u, v), std::max(u, v)).second;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  return edges_.count({std::min(u, v), std::max(u, v)}) > 0;
}

Graph GraphBuilder::build(std::string name) const {
  std::vector<std::pair<NodeId, NodeId>> edges(edges_.begin(), edges_.end());
  Graph graph(node_count_, edges);
  graph.set_name(std::move(name));
  return graph;
}

}  // namespace opindyn
