// Optional node reordering for cache locality in the burst kernels.
//
// A GraphLayout is a bijection between "original" node ids (what the
// generator emitted, what CSV rows / initial distributions / spectra
// use) and an "internal" storage order chosen for locality.  The
// degree-sorted layout places high-degree nodes first, so on skewed
// graphs (preferential attachment) the hub values that neighbour
// gathers touch constantly share a handful of cache lines.
//
// Bit-identity contract (see core/node_model.cpp): reordering must not
// change a single emitted byte.  The layout therefore never permutes
// the Graph itself -- rng draws, adjacency rows, and arc indices all
// stay in original order.  Only value *storage* moves: kernels keep a
// mirror of the opinion vector in internal order and translate each
// access through the precomputed arrays below.  Because every
// translated array preserves its original element order, the sequence
// of floating-point operations is unchanged and the results are
// bit-identical by construction.
#ifndef OPINDYN_GRAPH_LAYOUT_H
#define OPINDYN_GRAPH_LAYOUT_H

#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace opindyn {

class GraphLayout {
 public:
  /// Identity layout: internal order == original order.  Kernels treat
  /// this as "no reordering" and skip the mirror entirely.
  static GraphLayout identity(const Graph& graph);

  /// Degree-sorted layout: nodes ordered by descending degree, ties by
  /// ascending original id (deterministic).  Collapses to the identity
  /// on regular graphs, where sorting by degree permutes nothing useful.
  static GraphLayout degree_sorted(const Graph& graph);

  bool is_identity() const noexcept { return is_identity_; }
  NodeId node_count() const noexcept {
    return static_cast<NodeId>(to_internal_.size());
  }

  /// original id -> internal storage slot.
  std::span<const NodeId> to_internal() const noexcept { return to_internal_; }
  /// internal storage slot -> original id.
  std::span<const NodeId> to_original() const noexcept { return to_original_; }

  // Elementwise-translated copies of the Graph's CSR arrays: entry j is
  // the internal slot of the original array's entry j.  Row boundaries
  // and within-row order are untouched, so `offsets_data()[u]` from the
  // *original* graph still delimits u's row here.  Empty spans for the
  // identity layout (kernels use the Graph's own arrays then).
  std::span<const NodeId> adjacency_internal() const noexcept {
    return adjacency_internal_;
  }
  std::span<const NodeId> arc_source_internal() const noexcept {
    return arc_source_internal_;
  }

  /// Scatters `original[i]` into `internal[to_internal(i)]`.  Copies
  /// verbatim for the identity layout.
  void scatter(std::span<const double> original,
               std::span<double> internal) const;
  /// Inverse of scatter.
  void gather(std::span<const double> internal,
              std::span<double> original) const;

 private:
  GraphLayout() = default;

  bool is_identity_ = true;
  std::vector<NodeId> to_internal_;
  std::vector<NodeId> to_original_;
  std::vector<NodeId> adjacency_internal_;
  std::vector<NodeId> arc_source_internal_;
};

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_LAYOUT_H
