#include "src/graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "src/support/assert.h"

namespace opindyn {

std::vector<NodeId> bfs_distances(const Graph& graph, NodeId source) {
  OPINDYN_EXPECTS(source >= 0 && source < graph.node_count(),
                  "BFS source out of range");
  std::vector<NodeId> dist(static_cast<std::size_t>(graph.node_count()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : graph.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            static_cast<NodeId>(dist[static_cast<std::size_t>(u)] + 1);
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& graph) {
  const auto dist = bfs_distances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](NodeId d) { return d < 0; });
}

std::vector<NodeId> all_pairs_distances(const Graph& graph) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  std::vector<NodeId> result(n * n, -1);
  for (NodeId s = 0; s < graph.node_count(); ++s) {
    const auto dist = bfs_distances(graph, s);
    std::copy(dist.begin(), dist.end(),
              result.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(s) * n));
  }
  return result;
}

NodeId diameter(const Graph& graph) {
  NodeId best = 0;
  for (NodeId s = 0; s < graph.node_count(); ++s) {
    const auto dist = bfs_distances(graph, s);
    for (const NodeId d : dist) {
      if (d < 0) {
        return -1;
      }
      best = std::max(best, d);
    }
  }
  return best;
}

bool is_bipartite(const Graph& graph) {
  std::vector<int> color(static_cast<std::size_t>(graph.node_count()), -1);
  for (NodeId start = 0; start < graph.node_count(); ++start) {
    if (color[static_cast<std::size_t>(start)] >= 0) {
      continue;
    }
    color[static_cast<std::size_t>(start)] = 0;
    std::queue<NodeId> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : graph.neighbors(u)) {
        if (color[static_cast<std::size_t>(v)] < 0) {
          color[static_cast<std::size_t>(v)] =
              1 - color[static_cast<std::size_t>(u)];
          frontier.push(v);
        } else if (color[static_cast<std::size_t>(v)] ==
                   color[static_cast<std::size_t>(u)]) {
          return false;
        }
      }
    }
  }
  return true;
}

int component_count(const Graph& graph) {
  std::vector<bool> seen(static_cast<std::size_t>(graph.node_count()), false);
  int components = 0;
  for (NodeId start = 0; start < graph.node_count(); ++start) {
    if (seen[static_cast<std::size_t>(start)]) {
      continue;
    }
    ++components;
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[static_cast<std::size_t>(start)] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : graph.neighbors(u)) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          frontier.push(v);
        }
      }
    }
  }
  return components;
}

double degree_weighted_average(const Graph& graph,
                               const std::vector<double>& value) {
  OPINDYN_EXPECTS(value.size() ==
                      static_cast<std::size_t>(graph.node_count()),
                  "value vector size must equal node count");
  double sum = 0.0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    sum += static_cast<double>(graph.degree(u)) *
           value[static_cast<std::size_t>(u)];
  }
  return sum / static_cast<double>(graph.arc_count());
}

}  // namespace opindyn
