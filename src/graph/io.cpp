#include "src/graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/graph/builder.h"
#include "src/support/assert.h"

namespace opindyn {

void write_edge_list(const Graph& graph, std::ostream& out) {
  out << graph.node_count() << " " << graph.edge_count() << "\n";
  for (const auto& [u, v] : graph.undirected_edges()) {
    out << u << " " << v << "\n";
  }
}

Graph read_edge_list(std::istream& in) {
  NodeId n = 0;
  std::int64_t m = 0;
  if (!(in >> n >> m)) {
    throw std::runtime_error("edge list: missing 'n m' header");
  }
  if (n <= 0 || m < 0) {
    throw std::runtime_error("edge list: invalid header values");
  }
  GraphBuilder builder(n);
  for (std::int64_t i = 0; i < m; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    if (!(in >> u >> v)) {
      throw std::runtime_error("edge list: truncated edge section");
    }
    if (u < 0 || u >= n || v < 0 || v >= n || u == v) {
      throw std::runtime_error("edge list: invalid edge");
    }
    if (!builder.add_edge(u, v)) {
      throw std::runtime_error("edge list: duplicate edge");
    }
  }
  return builder.build("from_edge_list");
}

std::string to_dot(const Graph& graph,
                   const std::vector<double>* node_values) {
  if (node_values != nullptr) {
    OPINDYN_EXPECTS(node_values->size() ==
                        static_cast<std::size_t>(graph.node_count()),
                    "node value vector size mismatch");
  }
  std::ostringstream out;
  out << "graph G {\n";
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    out << "  " << u;
    if (node_values != nullptr) {
      out << " [label=\"" << u << "\\n"
          << (*node_values)[static_cast<std::size_t>(u)] << "\"]";
    }
    out << ";\n";
  }
  for (const auto& [u, v] : graph.undirected_edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace opindyn
