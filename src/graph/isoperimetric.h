// Exact isoperimetric number i(G) = min_{0 < |S| <= n/2} |E(S, V\S)| / |S|
// by subset enumeration (Corollary E.2 relates lambda_2(L) >= i(G)^2 / 2d).
// Exponential in n, so restricted to n <= 24; a randomized sweep provides
// an upper bound for larger graphs.
#ifndef OPINDYN_GRAPH_ISOPERIMETRIC_H
#define OPINDYN_GRAPH_ISOPERIMETRIC_H

#include "src/graph/graph.h"
#include "src/support/rng.h"

namespace opindyn {

/// Exact i(G); requires node_count() <= 24 (2^24 subsets).
double isoperimetric_number_exact(const Graph& graph);

/// Upper bound on i(G) from `trials` random/greedy sweep cuts.
double isoperimetric_number_upper_bound(const Graph& graph, Rng& rng,
                                        int trials = 200);

/// Cut size |E(S, V\S)| for the subset encoded as a bitmask (n <= 63).
std::int64_t cut_size(const Graph& graph, std::uint64_t subset_mask);

}  // namespace opindyn

#endif  // OPINDYN_GRAPH_ISOPERIMETRIC_H
