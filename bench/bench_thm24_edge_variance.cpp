// T24-2 -- Theorem 2.4(2) and the remark after it: in the EdgeModel the
// expected convergence value is the *plain* initial average even for
// irregular graphs (Prop. D.1.i), and for regular graphs
// Var(F) = Theta(||xi||^2/n^2) (identical to the NodeModel at k = 1).
//
// Driver: the engine's `thm24_edge_variance` scenario, which runs both
// models per cell.  Equivalent to
//   opindyn run --scenario=thm24_edge_variance --n=16 --replicas=8000
//       --eps=1e-13 --init=hub_spike --center=none --sweep=graph:star,...
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T24-2: EdgeModel E[F] and Var(F) (Theorem 2.4(2))",
      "8000 replicas, alpha = 0.5, eps = 1e-13.  Part (a): xi(0) = spike "
      "of value n on the highest-degree node (init=hub_spike), so "
      "Avg(0) = 1 while the degree-weighted M(0) differs on irregular "
      "graphs -- the EdgeModel's E[F] must track Avg(0), the "
      "NodeModel's M(0).  Part (b): regular graphs, both variances "
      "match the exact Prop. 5.8 value.");

  std::cout << "## (a) E[F] = Avg(0) on irregular graphs (hub spike)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "thm24_edge_variance";
    spec.graph.n = 16;
    spec.initial.distribution = "hub_spike";
    spec.initial.center = "none";
    spec.model.alpha = 0.5;
    spec.replicas = 8000;
    spec.seed = 13;
    spec.convergence.epsilon = 1e-13;
    spec.sweeps = {{"graph",
                    {"star", "double_star", "lollipop", "pref_attach"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  std::cout << "\n## (b) Var(F) on regular graphs = NodeModel k=1 "
               "value\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "thm24_edge_variance";
    spec.graph.n = 16;
    spec.initial.distribution = "rademacher";
    spec.initial.seed = 3;
    spec.model.alpha = 0.5;
    spec.replicas = 8000;
    spec.seed = 17;
    spec.convergence.epsilon = 1e-13;
    spec.sweeps = {{"graph", {"cycle", "complete", "hypercube"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  bench::print_reading(
      "in (a) the EdgeModel rows track Avg(0) = 1 while the NodeModel "
      "rows track the degree-weighted M(0); in (b) both models' var/exact "
      "sits at ~1.0 -- the EdgeModel is the k = 1 NodeModel in "
      "distribution on regular graphs.");
  return 0;
}
