// T24-2 -- Theorem 2.4(2) and the remark after it: in the EdgeModel the
// expected convergence value is the *plain* initial average even for
// irregular graphs (Prop. D.1.i), and for regular graphs
// Var(F) = Theta(||xi||^2/n^2) (identical to the NodeModel at k = 1).
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T24-2: EdgeModel E[F] and Var(F) (Theorem 2.4(2))",
      "8000 replicas, alpha = 0.5, eps = 1e-13.  xi(0) = spike (value n at "
      "one node, 0 elsewhere) so that Avg(0) = 1 while the degree-weighted "
      "M(0) differs on irregular graphs -- E[F] must track Avg(0).");

  std::cout << "## (a) E[F] = Avg(0) on irregular graphs\n\n";
  Table mean_table({"graph", "Avg(0)", "M(0) degree-weighted",
                    "E[F] measured", "+-CI", "tracks"});
  for (const std::string family :
       {"star", "double_star", "lollipop", "pref_attach"}) {
    const Graph g = bench::make_graph(family, 16);
    // Spike on the *highest-degree* node makes Avg(0) != M(0).
    NodeId hub = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (g.degree(u) > g.degree(hub)) {
        hub = u;
      }
    }
    auto xi = initial::spike(g.node_count(), hub,
                             static_cast<double>(g.node_count()));
    const double avg0 = 1.0;
    double m0 = 0.0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      m0 += g.stationary(u) * xi[static_cast<std::size_t>(u)];
    }

    ModelConfig config;
    config.kind = ModelKind::edge;
    config.alpha = 0.5;
    MonteCarloOptions options;
    options.replicas = 8000;
    options.seed = 13;
    options.convergence.epsilon = 1e-13;
    options.convergence.use_plain_potential = true;
    const MonteCarloResult result = monte_carlo(g, config, xi, options);
    const double mean = result.convergence_value.mean();
    const double ci = result.convergence_value.mean_ci_halfwidth();
    mean_table.new_row()
        .add(g.name())
        .add_fixed(avg0, 4)
        .add_fixed(m0, 4)
        .add_fixed(mean, 4)
        .add_fixed(ci, 4)
        .add(std::abs(mean - avg0) < 4 * ci + 1e-3 ? "Avg(0) OK"
                                                   : "MISMATCH");
  }
  std::cout << mean_table.to_markdown() << "\n";

  std::cout << "## (b) Var(F) on regular graphs = NodeModel k=1 value\n\n";
  Table var_table({"graph", "Var(F) EdgeModel", "Var(F) NodeModel k=1",
                   "Var exact (P5.8)", "edge/exact"});
  Rng init_rng(3);
  for (const std::string family : {"cycle", "complete", "hypercube"}) {
    const Graph g = bench::make_graph(family, 16);
    auto xi = initial::rademacher(init_rng, g.node_count());
    initial::center_plain(xi);

    MonteCarloOptions options;
    options.replicas = 8000;
    options.seed = 17;
    options.convergence.epsilon = 1e-13;

    ModelConfig edge_config;
    edge_config.kind = ModelKind::edge;
    edge_config.alpha = 0.5;
    const MonteCarloResult edge_result =
        monte_carlo(g, edge_config, xi, options);

    ModelConfig node_config;
    node_config.kind = ModelKind::node;
    node_config.alpha = 0.5;
    node_config.k = 1;
    const MonteCarloResult node_result =
        monte_carlo(g, node_config, xi, options);

    const double exact = theory::variance_exact(g, 0.5, 1, xi);
    var_table.new_row()
        .add(g.name())
        .add_sci(edge_result.convergence_value.population_variance(), 3)
        .add_sci(node_result.convergence_value.population_variance(), 3)
        .add_sci(exact, 3)
        .add_fixed(
            edge_result.convergence_value.population_variance() / exact, 3);
  }
  std::cout << var_table.to_markdown() << "\n";
  return 0;
}
