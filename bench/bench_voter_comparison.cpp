// VOTER -- the remark after Theorem 2.2: compared with the voter model's
// O(n / (1 - lambda_2)) expected consensus time, the averaging process
// is faster by ~ Omega(n / log n) when the discrepancy and 1/eps are
// polynomial in n.  The engine's `averaging_vs_voter` scenario races the
// discrete voter model (and its coalescing-walk dual, footnote 2)
// against the NodeModel run to eps = 1/n^2, over a graph x size grid --
// equivalent to
//   opindyn run --scenario=averaging_vs_voter --replicas=30
//       --sweep='graph:complete,cycle,hypercube;n:16,32,64'
#include <iostream>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "VOTER: averaging vs the voter model (Section 2 remark)",
      "Voter: each node holds a distinct opinion, run to consensus.  "
      "NodeModel: xi(0) Rademacher, run to phi <= eps = 1/n^2.  30 voter "
      "runs / 30 averaging runs per graph.");

  engine::ExperimentSpec spec;
  spec.scenario = "averaging_vs_voter";
  spec.initial.distribution = "rademacher";
  spec.initial.seed = 3;
  spec.model.alpha = 0.5;
  spec.model.k = 1;
  spec.replicas = 30;
  spec.seed = 7;
  spec.convergence.max_steps = 500'000'000;
  spec.sweeps = engine::parse_sweeps(
      "graph:complete,cycle,hypercube;n:16,32,64");

  const bench::Stopwatch timer;
  engine::run_experiment_with_default_sinks(spec);
  std::cout << "(grid: " << timer.seconds() << " s)\n\n";
  bench::print_reading(
      "the speed-up grows with n roughly like n/log n (last column), the "
      "paper's stated advantage of averaging over discrete voting.  The "
      "coalescence column matches the voter column (footnote 2: "
      "identical distributions).");
  return 0;
}
