// VOTER -- the remark after Theorem 2.2: compared with the voter model's
// O(n / (1 - lambda_2)) expected consensus time, the averaging process
// is faster by ~ Omega(n / log n) when the discrepancy and 1/eps are
// polynomial in n.  We race the discrete voter model against the
// NodeModel (alpha = 0.5, k = 1) to an eps chosen so eps and K are
// poly(n), and report the measured speed-up alongside n / log n.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/baselines/voter.h"
#include "src/core/coalescing.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/support/stats.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "VOTER: averaging vs the voter model (Section 2 remark)",
      "Voter: each node holds a distinct opinion, run to consensus.  "
      "NodeModel: xi(0) Rademacher, run to phi <= eps = 1/n^2.  30 voter "
      "runs / 30 averaging runs per graph.");

  Table table({"graph", "n", "voter T (mean)", "coalescence T (mean)",
               "averaging T (mean)", "speed-up", "n/log n"});
  for (const std::string family : {"complete", "cycle", "hypercube"}) {
    for (const NodeId n : {16, 32, 64}) {
      const Graph g = bench::make_graph(family, n);
      const auto gn = g.node_count();

      // Voter model runs.
      RunningStats voter_steps;
      std::vector<int> opinions(static_cast<std::size_t>(gn));
      for (NodeId u = 0; u < gn; ++u) {
        opinions[static_cast<std::size_t>(u)] = u;
      }
      for (int r = 0; r < 30; ++r) {
        Rng rng(static_cast<std::uint64_t>(r) + 1000);
        const auto result =
            run_voter_to_consensus(g, opinions, rng, 500'000'000);
        if (result.reached_consensus) {
          voter_steps.add(static_cast<double>(result.steps));
        }
      }

      // Coalescing random walks (footnote 2 duality: same distribution
      // as the voter consensus time).
      RunningStats coalescence_steps;
      for (int r = 0; r < 30; ++r) {
        Rng rng(static_cast<std::uint64_t>(r) + 5000);
        const auto result = run_to_coalescence(g, rng, 500'000'000);
        if (result.coalesced) {
          coalescence_steps.add(static_cast<double>(result.steps));
        }
      }

      // Averaging runs.
      Rng init_rng(3);
      auto xi = initial::rademacher(init_rng, gn);
      initial::center_plain(xi);
      ModelConfig config;
      config.alpha = 0.5;
      config.k = 1;
      MonteCarloOptions options;
      options.replicas = 30;
      options.seed = 7;
      options.convergence.epsilon =
          1.0 / (static_cast<double>(gn) * static_cast<double>(gn));
      const MonteCarloResult averaging = monte_carlo(g, config, xi, options);

      const double speedup = voter_steps.mean() / averaging.steps.mean();
      table.new_row()
          .add(g.name())
          .add(static_cast<std::int64_t>(gn))
          .add_fixed(voter_steps.mean(), 0)
          .add_fixed(coalescence_steps.mean(), 0)
          .add_fixed(averaging.steps.mean(), 0)
          .add_fixed(speedup, 2)
          .add_fixed(static_cast<double>(gn) /
                         std::log(static_cast<double>(gn)),
                     2);
    }
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << "Reading: the speed-up grows with n roughly like n/log n "
               "(last column), the paper's stated advantage of averaging "
               "over discrete voting.  The coalescence column matches the "
               "voter column (footnote 2: identical distributions).\n";
  return 0;
}
