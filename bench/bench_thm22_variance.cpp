// T22-2 -- Theorem 2.2(2): for regular graphs,
//   Var(F) = Theta( ||xi(0)||^2 / n^2 ),
// independent of k and of the graph structure.  Monte-Carlo Var(F) is
// compared against the exact Prop. 5.8 value and the Theta envelope;
// the punchline column n^2 Var/||xi||^2 must land in a narrow band for
// every family and every k.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T22-2: NodeModel Var(F) concentration (Theorem 2.2(2))",
      "Regular graphs, n = 16, Rademacher xi(0) centered (||xi||^2 ~ n), "
      "alpha = 0.5, 8000 replicas to eps = 1e-13.  Paper: Var(F) = "
      "Theta(||xi||^2/n^2) regardless of k and structure; exact value from "
      "Prop. 5.8 via the Lemma 5.7 stationary distribution.");

  const NodeId n = 16;
  Rng init_rng(7);
  auto xi = initial::rademacher(init_rng, n);
  initial::center_plain(xi);
  const double norm = initial::l2_squared(xi);

  struct Case {
    std::string family;
    std::int64_t k;
  };
  const std::vector<Case> cases{
      {"cycle", 1},     {"cycle", 2},         {"complete", 1},
      {"complete", 4},  {"complete", 15},     {"hypercube", 1},
      {"hypercube", 4}, {"random_regular_4", 1}, {"random_regular_4", 3},
      {"torus", 2},
  };

  Table table({"graph", "d", "k", "Var(F) measured", "+-CI",
               "Var exact (P5.8)", "meas/exact", "n^2 Var / ||xi||^2",
               "envelope [lo, hi]"});
  for (const auto& c : cases) {
    const Graph g = bench::make_graph(c.family, n);
    if (c.k > g.min_degree()) {
      continue;
    }
    ModelConfig config;
    config.alpha = 0.5;
    config.k = c.k;
    MonteCarloOptions options;
    options.replicas = 8000;
    options.seed = 11;
    options.convergence.epsilon = 1e-13;
    const MonteCarloResult result = monte_carlo(g, config, xi, options);
    const double measured = result.convergence_value.population_variance();
    const double exact = theory::variance_exact(g, 0.5, c.k, xi);
    const double lo = theory::variance_lower_coeff(g.node_count(),
                                                   g.min_degree(), c.k, 0.5);
    const double hi = theory::variance_upper_coeff(g.node_count(),
                                                   g.min_degree(), c.k, 0.5);
    const double scaled = measured * static_cast<double>(g.node_count()) *
                          static_cast<double>(g.node_count()) / norm;
    table.new_row()
        .add(g.name())
        .add(static_cast<std::int64_t>(g.min_degree()))
        .add(c.k)
        .add_sci(measured, 3)
        .add_sci(result.convergence_value.variance_ci_halfwidth(), 1)
        .add_sci(exact, 3)
        .add_fixed(measured / exact, 3)
        .add_fixed(scaled, 3)
        .add("[" + std::to_string(lo * norm) + ", " +
             std::to_string(hi * norm) + "]");
  }
  std::cout << table.to_markdown() << "\n";
  std::cout
      << "Reading: 'meas/exact' ~ 1.0 everywhere confirms Prop. 5.8; the "
         "'n^2 Var/||xi||^2' column staying within a ~2x band across "
         "cycle/complete/hypercube/random-regular and k = 1..d is the "
         "structure- and k-independence claim of Theorem 2.2(2).\n";
  return 0;
}
