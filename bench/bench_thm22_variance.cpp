// T22-2 -- Theorem 2.2(2): for regular graphs,
//   Var(F) = Theta( ||xi(0)||^2 / n^2 ),
// independent of k and of the graph structure.  The engine's
// `thm22_variance` scenario compares Monte-Carlo Var(F) against the
// exact Prop. 5.8 value and the Theta envelope; the punchline column
// n^2 Var/||xi||^2 must land in a narrow band for every family and k.
// The scenario streams one F per replica, so the distribution shape is
// rendered from the row channel at the end -- exactly what
// `--hist-csv` / `--quantiles` export.
//
// Driver: the scenario engine -- per family, equivalent to
//   opindyn run --scenario=thm22_variance --graph=<family> --n=16
//       --replicas=8000 --eps=1e-13 --sweep=k:... --quantiles=0.5,0.9
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/runner.h"
#include "src/support/histogram.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T22-2: NodeModel Var(F) concentration (Theorem 2.2(2))",
      "Regular graphs, n = 16, Rademacher xi(0) centered (||xi||^2 ~ n), "
      "alpha = 0.5, 8000 replicas to eps = 1e-13.  Paper: Var(F) = "
      "Theta(||xi||^2/n^2) regardless of k and structure; exact value "
      "from Prop. 5.8 via the Lemma 5.7 stationary distribution.");

  struct Grid {
    std::string family;
    std::vector<std::string> ks;
  };
  const std::vector<Grid> grids{
      {"cycle", {"1", "2"}},
      {"complete", {"1", "4", "15"}},
      {"hypercube", {"1", "4"}},
      {"random_regular_4", {"1", "3"}},
      {"torus", {"2"}},
  };

  engine::MemorySink last_rows;
  for (const Grid& grid : grids) {
    engine::ExperimentSpec spec;
    spec.scenario = "thm22_variance";
    spec.graph.family = grid.family;
    spec.graph.n = 16;
    spec.initial.distribution = "rademacher";
    spec.initial.seed = 7;
    spec.model.alpha = 0.5;
    spec.replicas = 8000;
    spec.seed = 11;
    spec.convergence.epsilon = 1e-13;
    spec.sweeps = {{"k", grid.ks}};

    engine::TableSink table(std::cout);
    std::vector<engine::RowSink*> sinks{&table};
    std::vector<engine::RowSink*> row_sinks;
    if (grid.family == "complete") {
      row_sinks.push_back(&last_rows);  // F samples for the histogram
    }
    engine::run_experiment(spec, sinks, row_sinks);
    std::cout << "\n";
  }

  // Distribution of F on complete(16), k = 1, rebuilt from the streamed
  // per-replica channel; the k-label and F columns are resolved by name
  // so prefix changes cannot silently misfilter.
  const auto column_index = [&last_rows](const std::string& name) {
    const auto& columns = last_rows.columns();
    return static_cast<std::size_t>(
        std::find(columns.begin(), columns.end(), name) - columns.begin());
  };
  const std::size_t k_col = column_index("k");
  const std::size_t f_col = column_index("F");
  Histogram hist(-0.2, 0.2, 20);
  for (const std::vector<std::string>& row : last_rows.rows()) {
    if (row[k_col] == "1") {
      hist.add(std::stod(row[f_col]));
    }
  }
  std::cout << "F distribution on complete(16), k = 1 (" << hist.total()
            << " replicas):\n"
            << hist.render(40) << "\n";
  bench::print_reading(
      "'meas/exact' ~ 1.0 everywhere confirms Prop. 5.8; the "
      "'n^2 Var/||xi||^2' column staying within a ~2x band across "
      "cycle/complete/hypercube/random-regular and k = 1..d is the "
      "structure- and k-independence claim of Theorem 2.2(2); the F "
      "histogram is symmetric around Avg(0) = 0.");
  return 0;
}
