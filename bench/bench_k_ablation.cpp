// KABL -- ablation of the sample size k (the remark after Theorem 2.2:
// the detailed bounds scale as (1 + 1/k), so going from k = 1 to k = d
// buys at most a factor ~2).  Also ablates the sampling mode
// (Definition 2.1's without-replacement vs the Appendix-B
// with-replacement analysis variant) to show they are indistinguishable
// in convergence time.
//
// Driver: the scenario engine's `k_ablation` scenario with a
// k x sampling sweep grid -- equivalent to
//   opindyn run --scenario=k_ablation --graph=complete --n=32 --lazy=true
//       --replicas=60 --eps=1e-8 --sweep='k:1,2,...;sampling:without,with'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "KABL: k-dependence ablation (remark after Theorem 2.2)",
      "Complete(32) and random 4-regular(32), alpha = 0.5, eps = 1e-8, "
      "60 replicas.  Theory: Prop. B.1 is an upper bound, so "
      "measured/predicted sits below 1 with graph-dependent slack, but "
      "it should be flat in k; and T(k=1)/T(k=d) should stay within "
      "~2x -- k has a weak effect.");

  for (const std::string family : {"complete", "random_regular_4"}) {
    engine::ExperimentSpec spec;
    spec.scenario = "k_ablation";
    spec.graph.family = family;
    spec.graph.n = 32;
    spec.initial.distribution = "rademacher";
    spec.initial.seed = 3;
    spec.model.alpha = 0.5;
    spec.model.lazy = true;
    spec.replicas = 60;
    spec.seed = 11;
    spec.convergence.epsilon = 1e-8;

    // k = 1, 2, 3, 4, 8, ..., d (the graph's minimum degree).
    const Graph g = engine::build_graph(spec.graph);
    engine::SweepAxis ks{"k", {}};
    for (std::int64_t k = 1; k <= g.min_degree();
         k = (k < 4 ? k + 1 : k * 2)) {
      ks.values.push_back(std::to_string(k));
    }
    if (ks.values.back() != std::to_string(g.min_degree())) {
      ks.values.push_back(std::to_string(g.min_degree()));
    }
    spec.sweeps = {ks, {"sampling", {"without", "with"}}};

    std::cout << "## " << g.name() << " (d = " << g.min_degree() << ")\n\n";
    const bench::Stopwatch timer;
    engine::run_experiment_with_default_sinks(spec);
    std::cout << "(" << g.name() << " grid: " << timer.seconds()
              << " s)\n\n";
  }
  bench::print_reading(
      "measured/predicted is roughly constant across k (the B.1 bound's "
      "slack depends on the graph, not on k), both the measured and the "
      "predicted T vary by at most ~2x between k = 1 and k = d, and the "
      "two sampling modes coincide within CI -- the paper's analysis "
      "variant is harmless.");
  return 0;
}
