// KABL -- ablation of the sample size k (the remark after Theorem 2.2:
// the detailed bounds scale as (1 + 1/k), so going from k = 1 to k = d
// buys at most a factor ~2).  Also ablates the sampling mode
// (Definition 2.1's without-replacement vs the Appendix-B
// with-replacement analysis variant) to show they are indistinguishable
// in convergence time.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/spectral/spectra.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "KABL: k-dependence ablation (remark after Theorem 2.2)",
      "Complete(32) and random 4-regular(32), alpha = 0.5, eps = 1e-8, "
      "60 replicas.  Theory: T(k)/T(infty) tracks the Prop. B.1 factor, "
      "which lies in [1, 2] -- k has a weak effect.");

  const double eps = 1e-8;
  for (const std::string family : {"complete", "random_regular_4"}) {
    const Graph g = bench::make_graph(family, 32);
    const auto spec = lazy_walk_spectrum(g);
    Rng init_rng(3);
    auto xi = initial::rademacher(init_rng, g.node_count());
    initial::center_plain(xi);
    OpinionState probe(g, xi);
    const double phi0 = probe.phi_exact();

    std::cout << "## " << g.name() << " (d = " << g.min_degree() << ")\n\n";
    Table table({"k", "sampling", "T measured", "+-CI",
                 "T predicted (B.1)", "T(k)/T(d)", "B.1 factor ratio"});
    // Reference: largest k.
    const std::int64_t d = g.min_degree();
    double t_at_d = 0.0;
    double pred_at_d = 0.0;
    std::vector<std::int64_t> ks;
    for (std::int64_t k = 1; k <= d; k = (k < 4 ? k + 1 : k * 2)) {
      ks.push_back(k);
    }
    if (ks.back() != d) {
      ks.push_back(d);
    }
    struct RowData {
      std::int64_t k;
      std::string mode;
      double measured;
      double ci;
      double predicted;
    };
    std::vector<RowData> rows;
    for (const std::int64_t k : ks) {
      for (const SamplingMode mode : {SamplingMode::without_replacement,
                                      SamplingMode::with_replacement}) {
        ModelConfig config;
        config.alpha = 0.5;
        config.k = k;
        config.lazy = true;
        config.sampling = mode;
        MonteCarloOptions options;
        options.replicas = 60;
        options.seed = 11;
        options.convergence.epsilon = eps;
        const MonteCarloResult result = monte_carlo(g, config, xi, options);
        const double rho = theory::node_model_rho(spec.lambda2, 0.5, k,
                                                  g.node_count(), true);
        const double predicted = theory::steps_to_epsilon(rho, phi0, eps);
        rows.push_back({k,
                        mode == SamplingMode::without_replacement
                            ? "w/o repl"
                            : "with repl",
                        result.steps.mean(),
                        result.steps.mean_ci_halfwidth(), predicted});
        if (k == d && mode == SamplingMode::without_replacement) {
          t_at_d = result.steps.mean();
          pred_at_d = predicted;
        }
      }
    }
    for (const auto& row : rows) {
      table.new_row()
          .add(row.k)
          .add(row.mode)
          .add_fixed(row.measured, 0)
          .add_fixed(row.ci, 0)
          .add_fixed(row.predicted, 0)
          .add_fixed(row.measured / t_at_d, 3)
          .add_fixed(row.predicted / pred_at_d, 3);
    }
    std::cout << table.to_markdown() << "\n";
  }
  std::cout << "Reading: T(k)/T(d) stays within [1, ~2] and matches the "
               "B.1 factor column; the two sampling modes coincide within "
               "CI -- the paper's analysis variant is harmless.\n";
  return 0;
}
