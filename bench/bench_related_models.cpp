// REL -- the related-work models of Section 3, run side by side with the
// paper's processes on the same input so their trade-offs are visible:
//
//   DeGroot [23]      synchronous, deterministic, full neighbourhood
//                     -> degree-weighted average exactly, Var = 0
//   Friedkin-Johnsen  synchronous with stubborn private opinions
//   [29]              -> persistent disagreement (no consensus at all)
//   Randomized FJ     limited-information variant of [27] (the model the
//   [27]              paper relates its NodeModel to)
//   NodeModel         the paper: unilateral, k-sample, consensus at a
//                     *random* F with E[F] = degree-weighted average
//
// Output: per-model final state summary on the same preferential-
// attachment network and initial opinions.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/degroot.h"
#include "src/core/friedkin_johnsen.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/algorithms.h"
#include "src/support/stats.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "REL: related opinion-dynamics models (Section 3)",
      "Same preferential-attachment network (n = 64) and the same initial "
      "opinions for every model; lambda/alpha = 0.7, k = 2.");

  Rng graph_rng(3);
  const Graph g = gen::preferential_attachment(graph_rng, 64, 2);
  Rng init_rng(5);
  const auto xi = initial::uniform(init_rng, 64, 0.0, 10.0);
  const double weighted = degree_weighted_average(g, xi);
  double plain = 0.0;
  for (const double v : xi) {
    plain += v;
  }
  plain /= 64.0;

  std::cout << "plain Avg(0) = " << plain
            << ", degree-weighted M(0) = " << weighted << "\n\n";

  Table table({"model", "communication", "consensus?", "final spread",
               "mean final value", "sd of F over 50 runs"});

  {
    DeGrootModel degroot(g, xi, /*lazy=*/true);
    while (degroot.discrepancy() > 1e-9 && degroot.rounds() < 100000) {
      degroot.round();
    }
    table.new_row()
        .add("DeGroot")
        .add("all neighbours, sync")
        .add("yes (deterministic)")
        .add_sci(degroot.discrepancy(), 1)
        .add_fixed(degroot.values()[0], 3)
        .add_fixed(0.0, 3);
  }
  {
    FriedkinJohnsen fj(g, xi, 0.7);
    const auto star = fj.equilibrium();
    while (fj.distance_to(star) > 1e-10 && fj.rounds() < 100000) {
      fj.round();
    }
    double lo = star[0];
    double hi = star[0];
    double mean = 0.0;
    for (const double z : star) {
      lo = std::min(lo, z);
      hi = std::max(hi, z);
      mean += z / static_cast<double>(star.size());
    }
    table.new_row()
        .add("Friedkin-Johnsen")
        .add("all neighbours, sync")
        .add("no (stubborn agents)")
        .add_fixed(hi - lo, 3)
        .add_fixed(mean, 3)
        .add_fixed(0.0, 3);
  }
  {
    // Randomized FJ: time-averaged state after burn-in, one run
    // (deterministic equilibrium in expectation).
    RandomizedFJ rfj(g, xi, 0.7, 2);
    Rng rng(7);
    for (int t = 0; t < 200000; ++t) {
      rfj.step(rng);
    }
    double lo = rfj.expressed()[0];
    double hi = rfj.expressed()[0];
    double mean = 0.0;
    for (const double z : rfj.expressed()) {
      lo = std::min(lo, z);
      hi = std::max(hi, z);
      mean += z / 64.0;
    }
    table.new_row()
        .add("Randomized FJ [27]")
        .add("k=2 sampled, unilateral")
        .add("no (stubborn agents)")
        .add_fixed(hi - lo, 3)
        .add_fixed(mean, 3)
        .add("n/a (fluctuates)");
  }
  {
    RunningStats f_values;
    std::int64_t last_steps = 0;
    for (int run = 0; run < 50; ++run) {
      NodeModelParams params;
      params.alpha = 0.7;
      params.k = 2;
      NodeModel model(g, xi, params);
      Rng rng = Rng::fork(11, static_cast<std::uint64_t>(run));
      ConvergenceOptions options;
      options.epsilon = 1e-12;
      const ConvergenceResult result =
          run_until_converged(model, rng, options);
      f_values.add(result.final_value);
      last_steps = result.steps;
    }
    table.new_row()
        .add("NodeModel (this paper)")
        .add("k=2 sampled, unilateral")
        .add("yes (random F)")
        .add_sci(0.0, 1)
        .add_fixed(f_values.mean(), 3)
        .add_fixed(f_values.stddev(), 3);
    std::cout << "NodeModel steps to converge (last run): " << last_steps
              << "\n";
  }
  std::cout << "\n" << table.to_markdown() << "\n";
  std::cout
      << "Reading: DeGroot reaches M(0) deterministically but needs "
         "synchronous full-neighbourhood rounds; FJ never reaches "
         "consensus; the paper's NodeModel gets consensus with the "
         "cheapest communication, paying only a small random deviation "
         "around M(0) (the sd column ~ Theta(||xi||/n)).\n";
  return 0;
}
