// FIG4 -- reproduces Figure 4 (Appendix F): the duality example with
// k = 2 on K3, alpha = 1/2, xi(0) = [6, 8, 9], selection sequence
// chi = ((u1, {u2, u3}), (u2, {u1, u3})).  Paper values:
// xi(1) = [29/4, 8, 9], xi(2) = [29/4, 129/16, 9],
// R(2) = [[1/2, 1/8, 0], [1/4, 9/16, 0], [1/4, 5/16, 1]].
#include <iomanip>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/diffusion.h"
#include "src/core/node_model.h"
#include "src/support/table.h"

namespace {

using namespace opindyn;

void print_matrix(const char* label, const Matrix& m) {
  std::cout << label << " =\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::cout << "    [";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      std::cout << std::setw(9) << std::setprecision(5) << m.at(r, c);
    }
    std::cout << " ]\n";
  }
}

}  // namespace

int main() {
  bench::print_header(
      "FIG4: duality example, k = 2",
      "Averaging on chi vs Diffusion on reversed chi; K3, alpha = 1/2, "
      "k = 2, xi(0) = [6, 8, 9].  Paper values: xi(1) = [29/4, 8, 9], "
      "xi(2) = [29/4, 129/16, 9].");

  const Graph g = gen::complete(3);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 2;
  NodeModel averaging(g, {6.0, 8.0, 9.0}, params);
  const SelectionSequence chi{{0, {1, 2}}, {1, {0, 2}}};

  Table trajectory({"t", "xi_1", "xi_2", "xi_3", "selection"});
  trajectory.new_row().add(std::int64_t{0}).add(6.0).add(8.0).add(9.0).add(
      "-");
  for (std::size_t t = 0; t < chi.size(); ++t) {
    averaging.apply(chi[t]);
    trajectory.new_row()
        .add(static_cast<std::int64_t>(t + 1))
        .add(averaging.state().value(0), 10)
        .add(averaging.state().value(1), 10)
        .add(averaging.state().value(2), 10)
        .add("u" + std::to_string(chi[t].node + 1) + " averages with {u" +
             std::to_string(chi[t].sample[0] + 1) + ", u" +
             std::to_string(chi[t].sample[1] + 1) + "}");
  }
  std::cout << "Averaging Process (forward on chi):\n"
            << trajectory.to_markdown() << "\n";
  std::cout << "Expected xi(2) = [29/4, 129/16, 9] = [7.25, 8.0625, 9]\n\n";

  DiffusionProcess diffusion(g, 0.5);
  diffusion.apply(chi[1]);
  print_matrix("R(1)  [after applying chi(2)]", diffusion.load_matrix());
  diffusion.apply(chi[0]);
  print_matrix("R(2)  [after applying chi(1)]", diffusion.load_matrix());

  const auto w = diffusion.costs({6.0, 8.0, 9.0});
  Table result({"node", "xi(2) averaging", "W(2) diffusion", "|diff|"});
  double max_diff = 0.0;
  for (NodeId u = 0; u < 3; ++u) {
    const double a = averaging.state().value(u);
    const double b = w[static_cast<std::size_t>(u)];
    max_diff = std::max(max_diff, std::abs(a - b));
    result.new_row()
        .add("u" + std::to_string(u + 1))
        .add(a, 10)
        .add(b, 10)
        .add_sci(std::abs(a - b), 2);
  }
  std::cout << "\nDuality check (Proposition 5.1, k = 2):\n"
            << result.to_markdown();
  std::cout << "\nmax |xi(2) - W(2)| = " << max_diff
            << (max_diff < 1e-12 ? "  -> duality holds exactly\n"
                                 : "  -> MISMATCH\n");
  return max_diff < 1e-12 ? 0 : 1;
}
