// FIG4 -- the Appendix-F duality example at k = 2: same identity as
// Fig. 1 but with two sampled neighbours per step, which exercises the
// 1/k load-splitting of the B(t) matrices.  The engine's `duality`
// scenario checks the identity on random sequences; the k sweep shows
// it holds for every sample size the graph supports.
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=duality --graph=complete --n=3 --k=2
//       --replicas=200 --sweep=horizon:2,8,64
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "FIG4: duality example, k = 2 (Proposition 5.1 / Appendix F)",
      "Averaging on chi vs Diffusion on reversed chi; K3, alpha = 1/2, "
      "k = 2, random chi of the swept length (horizon = 2 is the Fig. 4 "
      "setting).  max |xi(T) - W(T)| must be ~1e-16 in every replica.");

  engine::ExperimentSpec spec;
  spec.scenario = "duality";
  spec.graph.family = "complete";
  spec.graph.n = 3;
  spec.initial.distribution = "uniform";
  spec.initial.param_a = 6.0;
  spec.initial.param_b = 9.0;
  spec.initial.center = "none";
  spec.model.alpha = 0.5;
  spec.model.k = 2;
  spec.replicas = 200;
  spec.seed = 4;
  spec.sweeps = {{"horizon", {"2", "8", "64"}}};

  engine::MemorySink rows;
  engine::TableSink table(std::cout);
  std::vector<engine::RowSink*> sinks{&rows, &table};
  engine::run_experiment(spec, sinks);
  std::cout << "\n";

  bool exact = !rows.rows().empty();
  for (const std::vector<std::string>& row : rows.rows()) {
    exact = exact && row.back() == "yes";
  }
  std::cout << (exact ? "duality holds exactly in every configuration\n"
                      : "MISMATCH detected!\n");
  bench::print_reading(
      "splitting the moved load across k = 2 sampled neighbours keeps "
      "the duality exact -- the (1-alpha)/k entries of B(t) are precisely "
      "the transposed averaging weights.");
  return exact ? 0 : 1;
}
