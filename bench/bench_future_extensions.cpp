// FUT -- the paper's Section 6 open problems, answered numerically:
//
//  (1) Higher moments via M-correlated walks: the exact 3-walk joint
//      chain predicts the third central moment of F; compared against
//      Monte Carlo.  (The paper asks whether M-dependent walks can give
//      moments M > 2 -- numerically, they do.)
//
//  (2) Concentration on irregular graphs: the 2-walk chain has no closed
//      form off regular graphs, but its numerical stationary
//      distribution gives exact Var(F) for both models; we tabulate
//      n^2 Var / ||xi||^2 across irregular families to see whether the
//      Theta(||xi||^2/n^2) law survives irregularity.
#include <cmath>
#include <iostream>
#include <span>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/moments.h"
#include "src/support/cell_scheduler.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "FUT: Section 6 future-work directions, numerically",
      "(1) third moment of F from the exact 3-walk chain; "
      "(2) Var(F) on irregular graphs from the numerical 2-walk chain.");

  std::cout << "## (1) third central moment of F (NodeModel, alpha=0.5, "
               "k=1)\n\n";
  Table third({"graph", "xi(0)", "E[F^3] predicted (3-walk chain)",
               "E[F^3] Monte Carlo", "skewness of F"});
  {
    struct Case {
      Graph graph;
      std::vector<double> xi;
      std::string label;
    };
    std::vector<Case> cases;
    cases.push_back({gen::complete(5), {4, -1, -1, -1, -1}, "one high"});
    cases.push_back({gen::complete(5), {-4, 1, 1, 1, 1}, "one low"});
    cases.push_back({gen::cycle(6), {5, -1, -1, -1, -1, -1}, "spiked"});
    for (auto& c : cases) {
      initial::center_plain(c.xi);
      const double predicted = predicted_moment(c.graph, 0.5, 1, c.xi, 3);
      // Monte Carlo third moment on the shared CellScheduler (replica r
      // draws from Rng::fork(3, r), the same streams the old serial
      // loop used, so the numbers are unchanged -- just parallel now).
      ModelConfig config;
      config.alpha = 0.5;
      config.k = 1;
      const std::int64_t replicas = 40000;
      CellScheduler scheduler;
      const auto stats = scheduler.run(
          replicas, 3, 2,
          [&c, &config](std::int64_t, Rng& rng, std::span<double> out) {
            auto process = make_process(c.graph, config, c.xi);
            ConvergenceOptions conv;
            conv.epsilon = 1e-13;
            const ConvergenceResult one =
                run_until_converged(*process, rng, conv);
            out[0] = one.final_value * one.final_value * one.final_value;
            out[1] = one.final_value * one.final_value;
          });
      const double measured3 = stats[0].mean();
      const double sigma = std::sqrt(stats[1].mean());
      third.new_row()
          .add(c.graph.name())
          .add(c.label)
          .add_sci(predicted, 3)
          .add_sci(measured3, 3)
          .add_fixed(predicted / (sigma * sigma * sigma), 3);
    }
  }
  std::cout << third.to_markdown() << "\n";
  std::cout << "Reading: the 3-walk chain nails the sign and magnitude of "
               "the third moment -- M-dependent walks do extend to "
               "higher moments, as the paper conjectures.\n\n";

  std::cout << "## (2) Var(F) on irregular graphs (numerical Q-chain)\n\n";
  Table irregular({"graph", "model", "Var(F) predicted", "Var(F) MC",
                   "MC/pred", "n^2 Var / ||xi||^2"});
  Rng init_rng(9);
  for (const std::string family :
       {"star", "double_star", "lollipop", "binary_tree", "path"}) {
    const Graph g = bench::make_graph(family, 12);
    auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);

    for (const ModelKind kind : {ModelKind::node, ModelKind::edge}) {
      auto centered = xi;
      if (kind == ModelKind::node) {
        initial::center_degree_weighted(g, centered);
      } else {
        initial::center_plain(centered);
      }
      const double predicted =
          kind == ModelKind::node
              ? predicted_variance_any_graph(g, 0.5, 1, centered)
              : predicted_variance_any_graph_edge(g, 0.5, centered);

      ModelConfig config;
      config.kind = kind;
      config.alpha = 0.5;
      config.k = 1;
      // Monte-Carlo Var(F) on the shared CellScheduler, with the same
      // streams (Rng::fork(31, r)) the retired monte_carlo harness
      // assigned, so the table is unchanged.
      CellScheduler scheduler;
      const auto stats = scheduler.run(
          12000, 31, 1,
          [&g, &config, &centered](std::int64_t, Rng& rng,
                                   std::span<double> out) {
            auto process = make_process(g, config, centered);
            ConvergenceOptions conv;
            conv.epsilon = 1e-13;
            out[0] = run_until_converged(*process, rng, conv).final_value;
          });
      const double measured = stats[0].population_variance();
      const double scaled = predicted *
                            static_cast<double>(g.node_count()) *
                            static_cast<double>(g.node_count()) /
                            initial::l2_squared(centered);
      irregular.new_row()
          .add(g.name())
          .add(kind == ModelKind::node ? "NodeModel" : "EdgeModel")
          .add_sci(predicted, 3)
          .add_sci(measured, 3)
          .add_fixed(measured / predicted, 3)
          .add_fixed(scaled, 3);
    }
  }
  std::cout << irregular.to_markdown() << "\n";
  std::cout
      << "Reading: MC/pred ~ 1 everywhere -- the duality machinery gives "
         "exact variances beyond the regular case.  The last column shows "
         "the n^2-scaled variance can move by larger factors on strongly "
         "irregular graphs (the star's hub dominates), quantifying what "
         "an irregular-graph version of Theorem 2.2(2) must contend "
         "with.\n";
  return 0;
}
