// FIG1 -- the Figure 1 duality (Proposition 5.1) at k = 1: the Averaging
// Process run forward on a recorded selection sequence chi and the
// Diffusion Process run on the reversed sequence end in identical
// states.  The paper's worked example uses two fixed steps on K3; the
// engine's `duality` scenario checks the same identity on many random
// sequences per configuration, from two-step sequences (the Fig. 1
// horizon) up to long ones.
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=duality --graph=complete --n=3 --k=1
//       --replicas=200 --sweep=horizon:2,8,64
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "FIG1: duality example, k = 1 (Proposition 5.1)",
      "Averaging on chi vs Diffusion on reversed chi; K3, alpha = 1/2, "
      "k = 1, random chi of the swept length (horizon = 2 is the Fig. 1 "
      "setting).  max |xi(T) - W(T)| must be ~1e-16 in every replica.");

  engine::ExperimentSpec spec;
  spec.scenario = "duality";
  spec.graph.family = "complete";
  spec.graph.n = 3;
  spec.initial.distribution = "uniform";
  spec.initial.param_a = 6.0;  // the Fig. 1 value range xi(0) = [6, 8, 9]
  spec.initial.param_b = 9.0;
  spec.initial.center = "none";
  spec.model.alpha = 0.5;
  spec.model.k = 1;
  spec.replicas = 200;
  spec.seed = 1;
  spec.sweeps = {{"horizon", {"2", "8", "64"}}};

  engine::MemorySink rows;
  engine::TableSink table(std::cout);
  std::vector<engine::RowSink*> sinks{&rows, &table};
  engine::run_experiment(spec, sinks);
  std::cout << "\n";

  bool exact = !rows.rows().empty();
  for (const std::vector<std::string>& row : rows.rows()) {
    exact = exact && row.back() == "yes";
  }
  std::cout << (exact ? "duality holds exactly in every configuration\n"
                      : "MISMATCH detected!\n");
  bench::print_reading(
      "the recorded-sequence duality of Proposition 5.1 is exact (not "
      "approximate): reversing chi and pushing loads instead of pulling "
      "values reproduces xi(T) to machine precision at every horizon.");
  return exact ? 0 : 1;
}
