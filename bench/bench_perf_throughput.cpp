// PERF -- engine microbenchmarks (google-benchmark): steps/second of the
// two processes across graph sizes (single-step recorded path vs the
// ISSUE-5 burst kernel), the cost of extremum tracking, the
// incremental-potential ablation (OpinionState's O(1) accumulators vs a
// naive O(n) recompute per step), and the cell-level scheduling of the
// batch runner (many small cells must scale with the thread count).
// `bench/perf_baseline.cpp` distills the step benchmarks into the
// tracked BENCH_*.json baseline.
#include <benchmark/benchmark.h>

#include "src/core/edge_model.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/engine/runner.h"
#include "src/graph/generators.h"
#include "src/support/rng.h"
#include "src/support/sampling.h"

namespace {

using namespace opindyn;

void BM_NodeModelStep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto k = state.range(1);
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = k;
  NodeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  for (auto _ : state) {
    model.step(rng);
    benchmark::DoNotOptimize(model.state().phi());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeModelStep)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({16384, 1})
    ->Args({16384, 4});

// The burst kernel on the same grid: one virtual call per 4096 steps,
// no per-step allocation or dispatch.  Compare items/sec against
// BM_NodeModelStep for the devirtualization win.
void BM_NodeModelStepBurst(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto k = state.range(1);
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = k;
  NodeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  constexpr std::int64_t kBurst = 4096;
  for (auto _ : state) {
    model.step_burst(rng, kBurst);
    benchmark::DoNotOptimize(model.state().phi());
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_NodeModelStepBurst)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({16384, 1})
    ->Args({16384, 4});

void BM_EdgeModelStep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  EdgeModelParams params;
  params.alpha = 0.5;
  EdgeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  for (auto _ : state) {
    model.step(rng);
    benchmark::DoNotOptimize(model.state().phi());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdgeModelStep)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EdgeModelStepBurst(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  EdgeModelParams params;
  params.alpha = 0.5;
  EdgeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  constexpr std::int64_t kBurst = 4096;
  for (auto _ : state) {
    model.step_burst(rng, kBurst);
    benchmark::DoNotOptimize(model.state().phi());
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_EdgeModelStepBurst)->Arg(64)->Arg(1024)->Arg(16384);

void BM_NodeModelStepWithExtrema(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  params.track_extrema = true;  // ablation: lazy min/max maintenance
  NodeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  for (auto _ : state) {
    model.step(rng);
    benchmark::DoNotOptimize(model.state().discrepancy());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeModelStepWithExtrema)->Arg(1024)->Arg(16384);

// Tracked-extrema burst: K(t) scenarios step in bursts and read the
// discrepancy at check intervals, which is exactly this shape.
void BM_NodeModelBurstWithExtrema(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  params.track_extrema = true;
  NodeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  constexpr std::int64_t kBurst = 4096;
  for (auto _ : state) {
    model.step_burst(rng, kBurst);
    benchmark::DoNotOptimize(model.state().discrepancy());
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_NodeModelBurstWithExtrema)->Arg(1024)->Arg(16384);

// Ablation: what a naive harness would pay if it recomputed phi from
// scratch at every step instead of using the incremental accumulators.
void BM_NaivePhiRecompute(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng graph_rng(1);
  const Graph g = gen::random_regular(graph_rng, n, 4);
  Rng init_rng(2);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  NodeModel model(g, initial::gaussian(init_rng, n, 0.0, 1.0), params);
  Rng rng(3);
  for (auto _ : state) {
    model.step(rng);
    benchmark::DoNotOptimize(model.state().phi_exact());  // O(n) scan
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaivePhiRecompute)->Arg(1024)->Arg(16384);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(12345));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::int32_t> out;
  const auto k = state.range(0);
  for (auto _ : state) {
    sample_without_replacement(rng, 64, k, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(1)->Arg(4)->Arg(16);

// The ISSUE-2 acceptance scenario: a sweep of many small cells (24
// cells x 4 replicas of cycle(24)) through the batch runner.  Before
// the cell scheduler, parallelism lived inside a cell (4 replicas), so
// extra threads were wasted; now all cell x replica units share one
// pool and wall-clock time drops with the thread count.  Also counts
// graph builds: the whole alpha x k grid shares one cached cycle(24).
void BM_EngineManySmallCells(benchmark::State& state) {
  engine::ExperimentSpec spec;
  spec.scenario = "node";
  spec.graph.family = "cycle";
  spec.graph.n = 24;
  spec.replicas = 4;
  spec.seed = 11;
  spec.convergence.epsilon = 1e-8;
  spec.sweeps = engine::parse_sweeps(
      "alpha:0.30,0.33,0.36,0.39,0.42,0.45,0.48,0.51,0.54,0.57,0.60,0.63;"
      "k:1,2");
  spec.print_table = false;
  spec.threads = static_cast<std::size_t>(state.range(0));

  std::int64_t cells = 0;
  std::int64_t graphs_built = 0;
  for (auto _ : state) {
    const engine::BatchResult result = engine::run_experiment(spec);
    benchmark::DoNotOptimize(result.rows.size());
    cells += result.work_items;
    graphs_built += result.graphs_built;
  }
  state.SetItemsProcessed(cells * spec.replicas);
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["graphs_built"] = static_cast<double>(graphs_built);
}
BENCHMARK(BM_EngineManySmallCells)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
