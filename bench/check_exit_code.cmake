# Asserts that a command exits with an exact status code -- ctest's
# WILL_FAIL only distinguishes zero from nonzero, but the perf_check
# exit-code contract (0 pass / 1 regression / 2 usage / 3 broken input)
# is exactly about WHICH nonzero.  Invoked as:
#   cmake -DCOMMAND=<exe> -DARGS=<;-list> -DEXPECTED_CODE=<n>
#         -P check_exit_code.cmake
execute_process(COMMAND ${COMMAND} ${ARGS}
                RESULT_VARIABLE actual
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT actual EQUAL EXPECTED_CODE)
  message(FATAL_ERROR
          "expected exit code ${EXPECTED_CODE}, got '${actual}'\n"
          "stdout:\n${out}\nstderr:\n${err}")
endif()
