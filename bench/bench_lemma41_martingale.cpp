// L41 -- Lemma 4.1: M(t) = sum_u (d_u/2m) xi_u(t) is a martingale under
// the NodeModel (and Avg(t) under the EdgeModel, Prop. D.1.i).
// Two checks:
//  (a) exact one-step drift by full enumeration of the selection
//      distribution: |E[M(t+1)|xi] - M(t)| at machine precision, and the
//      contrast column showing the *plain* average does drift;
//  (b) long-horizon Monte Carlo: E[M(t)] stays at M(0) at t up to 10^5.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/selection.h"
#include "src/graph/algorithms.h"
#include "src/support/table.h"

namespace {

using namespace opindyn;

std::vector<double> apply_update(const std::vector<double>& xi,
                                 const NodeSelection& sel, double alpha) {
  std::vector<double> out = xi;
  double sum = 0.0;
  for (const NodeId v : sel.sample) {
    sum += xi[static_cast<std::size_t>(v)];
  }
  out[static_cast<std::size_t>(sel.node)] =
      alpha * xi[static_cast<std::size_t>(sel.node)] +
      (1.0 - alpha) * sum / static_cast<double>(sel.sample.size());
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "L41: martingale property (Lemma 4.1 / Prop. D.1.i)",
      "(a) one-step drift by exact enumeration; (b) long-run E[M(t)].");

  std::cout << "## (a) exact one-step drift (enumeration, no sampling)\n\n";
  Table table({"graph", "model", "k", "|E[M'] - M| (weighted)",
               "|E[Avg'] - Avg| (plain)"});
  Rng init_rng(3);
  for (const std::string family :
       {"cycle", "star", "lollipop", "pref_attach", "complete"}) {
    const Graph g = bench::make_graph(family, 12);
    const auto xi = initial::gaussian(init_rng, g.node_count(), 1.0, 2.0);
    const double m0 = degree_weighted_average(g, xi);
    double avg0 = 0.0;
    for (const double v : xi) {
      avg0 += v;
    }
    avg0 /= static_cast<double>(g.node_count());

    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
      if (k > g.min_degree()) {
        continue;
      }
      const auto selections = enumerate_node_selections(g, k);
      double m_after = 0.0;
      double avg_after = 0.0;
      for (const auto& ws : selections) {
        const auto next = apply_update(xi, ws.selection, 0.5);
        m_after += ws.probability * degree_weighted_average(g, next);
        double s = 0.0;
        for (const double v : next) {
          s += v;
        }
        avg_after +=
            ws.probability * s / static_cast<double>(g.node_count());
      }
      table.new_row()
          .add(g.name())
          .add("NodeModel")
          .add(k)
          .add_sci(std::abs(m_after - m0), 2)
          .add_sci(std::abs(avg_after - avg0), 2);
    }
    // EdgeModel: plain average is the martingale.
    const auto arcs = enumerate_edge_selections(g);
    double m_after = 0.0;
    double avg_after = 0.0;
    for (const auto& ws : arcs) {
      const auto next = apply_update(xi, ws.selection, 0.5);
      m_after += ws.probability * degree_weighted_average(g, next);
      double s = 0.0;
      for (const double v : next) {
        s += v;
      }
      avg_after += ws.probability * s / static_cast<double>(g.node_count());
    }
    table.new_row()
        .add(g.name())
        .add("EdgeModel")
        .add(std::int64_t{1})
        .add_sci(std::abs(m_after - m0), 2)
        .add_sci(std::abs(avg_after - avg0), 2);
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << "Reading: the NodeModel's weighted column and the "
               "EdgeModel's plain column are ~1e-16 (martingales); the "
               "other columns are visibly nonzero on irregular graphs.\n\n";

  std::cout << "## (b) long-horizon E[M(t)] (NodeModel, star(16), "
               "2000 replicas)\n\n";
  const Graph g = bench::make_graph("star", 16);
  auto xi = initial::spike(16, 0, 16.0);
  const double m0 = degree_weighted_average(g, xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  const std::vector<std::int64_t> checkpoints{0, 100, 1000, 10000, 100000};
  const TrajectoryResult traj =
      monte_carlo_trajectory(g, config, xi, checkpoints, 2000, 5);
  Table drift({"t", "E[M(t)] measured", "+-CI", "M(0)", "Var(M(t))"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    drift.new_row()
        .add(checkpoints[i])
        .add_fixed(traj.martingale[i].mean(), 5)
        .add_fixed(traj.martingale[i].mean_ci_halfwidth(), 5)
        .add_fixed(m0, 5)
        .add_sci(traj.martingale[i].population_variance(), 3);
  }
  std::cout << drift.to_markdown() << "\n";
  std::cout << "Reading: E[M(t)] pinned at M(0) with Var(M(t)) "
               "non-decreasing toward Var(F).\n";
  return 0;
}
