// L41 -- Lemma 4.1: M(t) = sum_u (d_u/2m) xi_u(t) is a martingale under
// the NodeModel (and Avg(t) under the EdgeModel, Prop. D.1.i).  Two
// tables from the engine's `martingale` scenario:
//  (a) exact one-step drift by full enumeration of the selection
//      distribution across graph families and k -- the martingale
//      columns sit at machine precision, the contrast columns are
//      visibly nonzero on irregular graphs;
//  (b) long-horizon Monte Carlo: E[M(t)] pinned at M(0) at t = 10^5.
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=martingale --n=12 --init=gaussian
//       --init-a=1 --init-b=2 --center=none --sweep='graph:...;k:1,2'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "L41: martingale property (Lemma 4.1 / Prop. D.1.i)",
      "(a) one-step drift by exact enumeration; (b) long-run E[M(t)].");

  std::cout << "## (a) exact one-step drift (enumeration, no sampling)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "martingale";
    spec.graph.n = 12;
    spec.initial.distribution = "gaussian";
    spec.initial.param_a = 1.0;
    spec.initial.param_b = 2.0;
    spec.initial.seed = 3;
    spec.initial.center = "none";
    spec.model.alpha = 0.5;
    spec.replicas = 200;
    spec.seed = 9;
    spec.sweeps = {{"graph",
                    {"cycle", "star", "lollipop", "pref_attach",
                     "complete"}},
                   {"k", {"1", "2"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  std::cout << "\nReading: the node model's |E[M']-M| and the edge "
               "model's |E[Avg']-Avg| are ~1e-16 (martingales); the "
               "contrast columns are visibly nonzero on irregular "
               "graphs.  'n/a' marks k above the minimum degree.\n\n";

  std::cout << "## (b) long-horizon E[M(t)] (NodeModel, star(16), "
               "2000 replicas, t = 10^5)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "martingale";
    spec.graph.family = "star";
    spec.graph.n = 16;
    spec.initial.distribution = "spike";
    spec.initial.param_a = 16.0;
    spec.initial.center = "none";
    spec.model.alpha = 0.5;
    spec.model.k = 1;
    spec.replicas = 2000;
    spec.seed = 5;
    spec.horizon = 100000;
    engine::run_experiment_with_default_sinks(spec);
  }
  bench::print_reading(
      "E[M(t)] stays pinned at M(0) after 10^5 steps with Var(M(t)) "
      "grown toward Var(F) -- the Lemma 4.1 martingale in the long run.");
  return 0;
}
