// WHP -- the "w.h.p." in Theorem 2.2(1)/2.4(1): the eps-convergence time
// is not just bounded in expectation, its upper tail is light.  Many
// replicas per configuration; quantiles of T_eps normalised by the
// median stay within a small constant, and a histogram of the
// distribution is rendered.
//
// Driver: the scenario engine's `whp_tail` scenario -- the first
// consumer of per-replica row streaming.  The quantile table comes from
// the aggregate channel; the histogram is rebuilt from the streamed
// per-replica rows, exactly what `--rows-csv` would export:
//   opindyn run --scenario=whp_tail --graph=cycle --n=24
//       --replicas=400 --eps=1e-8 --rows-csv=tail.csv
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"
#include "src/support/histogram.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "WHP: convergence-time tail (the w.h.p. in Theorems 2.2/2.4)",
      "400 replicas per configuration, eps = 1e-8; quantiles of T_eps "
      "normalised by the median.");

  engine::ExperimentSpec spec;
  spec.scenario = "whp_tail";
  spec.graph.family = "cycle";
  spec.graph.n = 24;
  spec.initial.distribution = "rademacher";
  spec.initial.seed = 3;
  spec.model.alpha = 0.5;
  spec.model.k = 1;
  spec.replicas = 400;
  spec.seed = 17;
  spec.convergence.epsilon = 1e-8;
  spec.sweeps = {{"graph", {"cycle", "complete", "star"}}};

  engine::MemorySink rows;
  engine::TableSink table(std::cout);
  std::vector<engine::RowSink*> sinks{&table};
  std::vector<engine::RowSink*> row_sinks{&rows};
  const engine::BatchResult result =
      engine::run_experiment(spec, sinks, row_sinks);
  std::cout << "\n";

  // Histogram of T/median on cycle(24), NodeModel, from the streamed
  // per-replica channel (columns: ..., model, replica, T_eps, T/median).
  Histogram cycle_hist(0.0, 3.0, 24);
  const std::size_t model_col = 4;
  const std::size_t ratio_col = rows.columns().size() - 1;
  for (const std::vector<std::string>& row : rows.rows()) {
    if (row[1] == "cycle(24)" && row[model_col] == "NodeModel") {
      cycle_hist.add(std::stod(row[ratio_col]));
    }
  }
  std::cout << "T_eps / median distribution on cycle(24), NodeModel ("
            << result.replica_rows.size() << " streamed rows total):\n"
            << cycle_hist.render(40) << "\n";
  bench::print_reading(
      "even the worst of 400 runs sits within a small constant (< ~1.5x) "
      "of the median -- the concentration the theorems' w.h.p. "
      "statements promise.  The check-interval granularity makes small "
      "ratios slightly coarse.");
  return 0;
}
