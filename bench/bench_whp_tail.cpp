// WHP -- the "w.h.p." in Theorem 2.2(1)/2.4(1): the eps-convergence time
// is not just bounded in expectation, its upper tail is light.  We run
// many replicas and report quantiles of T_eps normalised by the median:
// the 99th percentile stays within a small constant of the median, and a
// histogram of the distribution is rendered.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/support/histogram.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "WHP: convergence-time tail (the w.h.p. in Theorems 2.2/2.4)",
      "400 replicas per configuration, eps = 1e-8; quantiles of T_eps "
      "normalised by the median.");

  Table table({"graph", "model", "median T", "q90/median", "q99/median",
               "max/median"});
  Histogram* example_histogram = nullptr;
  Histogram cycle_hist(0.0, 3.0, 24);

  for (const std::string family : {"cycle", "complete", "star"}) {
    const Graph g = bench::make_graph(family, 24);
    for (const ModelKind kind : {ModelKind::node, ModelKind::edge}) {
      const auto xi = bench::centered_rademacher(g, 3);

      std::vector<double> times;
      for (int r = 0; r < 400; ++r) {
        ModelConfig config;
        config.kind = kind;
        config.alpha = 0.5;
        config.k = 1;
        Rng rng = Rng::fork(17, static_cast<std::uint64_t>(r));
        auto process = make_process(g, config, xi);
        ConvergenceOptions options;
        options.epsilon = 1e-8;
        options.use_plain_potential = kind == ModelKind::edge;
        const ConvergenceResult result =
            run_until_converged(*process, rng, options);
        times.push_back(static_cast<double>(result.steps));
      }
      std::sort(times.begin(), times.end());
      const double median = times[times.size() / 2];
      const double q90 = times[static_cast<std::size_t>(
          0.90 * static_cast<double>(times.size()))];
      const double q99 = times[static_cast<std::size_t>(
          0.99 * static_cast<double>(times.size()))];
      table.new_row()
          .add(g.name())
          .add(kind == ModelKind::node ? "NodeModel" : "EdgeModel")
          .add_fixed(median, 0)
          .add_fixed(q90 / median, 3)
          .add_fixed(q99 / median, 3)
          .add_fixed(times.back() / median, 3);
      if (family == "cycle" && kind == ModelKind::node) {
        for (const double t : times) {
          cycle_hist.add(t / median);
        }
        example_histogram = &cycle_hist;
      }
    }
  }
  std::cout << table.to_markdown() << "\n";
  if (example_histogram != nullptr) {
    std::cout << "T_eps / median distribution on cycle(24), NodeModel:\n"
              << example_histogram->render(40) << "\n";
  }
  std::cout << "Reading: even the worst of 400 runs sits within a small "
               "constant (< ~1.5x) of the median -- the concentration the "
               "theorems' w.h.p. statements promise.  The check-interval "
               "granularity makes small ratios slightly coarse.\n";
  return 0;
}
