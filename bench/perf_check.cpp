// perf_check -- the CI perf regression gate.
//
// Compares a freshly measured perf_baseline JSON against the checked-in
// reference (BENCH_5.json) and fails when any workload's throughput
// dropped by more than the tolerance:
//
//   perf_check --baseline BENCH_5.json --current fresh.json \
//       [--max-drop 0.15] [--metric burst_sps]
//
// Workloads are matched by identity (model, n, k, track_extrema) -- a
// workload present in the baseline but missing from the current run is
// itself a failure, so the gate cannot be silenced by deleting rows.
// Every workload is printed with its ratio; the exit code is 1 iff any
// regressed beyond --max-drop (default 15%, loose enough for shared CI
// runners, tight enough to catch a real kernel regression).
//
//   perf_check --self-test
//
// runs the comparator against embedded synthetic documents (pass,
// regression, missing-workload) so CTest exercises the gate logic
// without timing anything.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace {

using opindyn::json::Value;

struct WorkloadKey {
  std::string model;
  // Rows before BENCH_7 carried no graph/reorder fields; the defaults
  // make old documents comparable against new ones.
  std::string graph = "random_regular";
  std::int64_t n = 0;
  std::int64_t k = 1;
  bool track_extrema = false;
  bool reorder = false;

  std::string label() const {
    std::ostringstream out;
    out << model << " " << graph << " n=" << n << " k=" << k
        << (track_extrema ? " extrema" : "") << (reorder ? " reorder" : "");
    return out.str();
  }
  bool operator==(const WorkloadKey& other) const {
    return model == other.model && graph == other.graph && n == other.n &&
           k == other.k && track_extrema == other.track_extrema &&
           reorder == other.reorder;
  }
};

WorkloadKey key_of(const Value& row) {
  WorkloadKey key;
  key.model = row.find("model")->as_string();
  if (const Value* graph = row.find("graph")) {
    key.graph = graph->as_string();
  }
  key.n = row.find("n")->as_int();
  if (const Value* k = row.find("k")) {
    key.k = k->as_int();
  }
  if (const Value* extrema = row.find("track_extrema")) {
    key.track_extrema = extrema->as_bool();
  }
  if (const Value* reorder = row.find("reorder")) {
    key.reorder = reorder->as_bool();
  }
  return key;
}

const Value& workloads_of(const Value& doc, const std::string& which) {
  const Value* workloads = doc.find("workloads");
  if (workloads == nullptr || !workloads->is_array()) {
    throw std::runtime_error(which +
                             " document has no \"workloads\" array");
  }
  return *workloads;
}

/// Compares the two parsed documents; prints one line per baseline
/// workload to `out`.  Returns the number of failures (regressions
/// beyond max_drop + workloads missing from `current`).
int compare(const Value& baseline, const Value& current,
            const std::string& metric, double max_drop,
            std::ostream& out) {
  int failures = 0;
  for (const Value& base_row : workloads_of(baseline, "baseline")
                                   .as_array()) {
    const WorkloadKey key = key_of(base_row);
    const Value* base_metric = base_row.find(metric);
    if (base_metric == nullptr) {
      out << "SKIP  " << key.label() << ": baseline row has no \""
          << metric << "\"\n";
      continue;
    }
    const Value* match = nullptr;
    for (const Value& cur_row : workloads_of(current, "current")
                                    .as_array()) {
      if (key_of(cur_row) == key) {
        match = &cur_row;
        break;
      }
    }
    if (match == nullptr || match->find(metric) == nullptr) {
      out << "FAIL  " << key.label()
          << ": missing from the current run\n";
      ++failures;
      continue;
    }
    const double base = base_metric->as_double();
    const double cur = match->find(metric)->as_double();
    const double ratio = base > 0.0 ? cur / base : 0.0;
    const bool regressed = ratio < 1.0 - max_drop;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s  %-24s %s: %.4g -> %.4g (%+.1f%%)\n",
                  regressed ? "FAIL" : "ok  ", key.label().c_str(),
                  metric.c_str(), base, cur, (ratio - 1.0) * 100.0);
    out << line;
    if (regressed) {
      ++failures;
    }
  }
  return failures;
}

int self_test() {
  const char* kBaseline = R"({"workloads": [
    {"model": "node", "n": 1024, "k": 1, "track_extrema": false,
     "burst_sps": 100.0},
    {"model": "node", "n": 1024, "k": 4, "track_extrema": false,
     "burst_sps": 50.0},
    {"model": "edge", "n": 1024, "k": 1, "track_extrema": true,
     "burst_sps": 10.0},
    {"model": "node", "graph": "torus", "n": 2048, "k": 1,
     "burst_sps": 70.0}
  ]})";
  // k=1 within tolerance (-10%), k=4 regressed (-40%), extrema missing,
  // torus row present only under a different graph family (so the
  // graph field is part of the identity and the row counts missing).
  const char* kCurrent = R"({"workloads": [
    {"model": "node", "n": 1024, "k": 1, "track_extrema": false,
     "burst_sps": 90.0},
    {"model": "node", "n": 1024, "k": 4, "track_extrema": false,
     "burst_sps": 30.0},
    {"model": "node", "graph": "pref_attach", "n": 2048, "k": 1,
     "burst_sps": 70.0}
  ]})";
  const Value baseline = opindyn::json::parse(kBaseline);
  const Value current = opindyn::json::parse(kCurrent);

  std::ostringstream sink;
  int rc = 0;
  const auto expect = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "self-test FAILED: " << what << "\n";
      rc = 1;
    }
  };
  expect(compare(baseline, baseline, "burst_sps", 0.15, sink) == 0,
         "identity comparison must pass");
  expect(compare(baseline, current, "burst_sps", 0.15, sink) == 3,
         "one regression + two missing workloads must count 3 failures");
  expect(compare(baseline, current, "burst_sps", 0.5, sink) == 2,
         "with 50% tolerance only the missing workloads must fail");
  if (rc == 0) {
    std::cout << "perf_check self-test passed\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string metric = "burst_sps";
  double max_drop = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--max-drop" && i + 1 < argc) {
      max_drop = std::stod(argv[++i]);
    } else if (arg == "--self-test") {
      return self_test();
    } else {
      std::cerr << "usage: perf_check --baseline FILE --current FILE "
                   "[--metric NAME] [--max-drop FRAC] | --self-test\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "perf_check: --baseline and --current are required "
                 "(or --self-test)\n";
    return 2;
  }
  try {
    const Value baseline = opindyn::json::parse_file(baseline_path);
    const Value current = opindyn::json::parse_file(current_path);
    const int failures =
        compare(baseline, current, metric, max_drop, std::cout);
    if (failures > 0) {
      std::cerr << "perf_check: " << failures << " workload(s) regressed "
                << "more than " << max_drop * 100.0 << "% on " << metric
                << "\n";
      return 1;
    }
    std::cout << "perf_check: all workloads within " << max_drop * 100.0
              << "% of baseline\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "perf_check: " << error.what() << "\n";
    return 1;
  }
}
