// perf_check -- the CI perf regression gate.
//
// Compares a freshly measured perf_baseline JSON against the checked-in
// reference (BENCH_5.json) and fails when any workload's throughput
// dropped by more than the tolerance:
//
//   perf_check --baseline BENCH_5.json --current fresh.json
//       [--max-drop 0.15] [--metric burst_sps]
//
// Workloads are matched by identity (model, n, k, track_extrema) -- a
// workload present in the baseline but missing from the current run is
// itself a failure, so the gate cannot be silenced by deleting rows.
// Every workload is printed with its ratio.
//
// Exit codes distinguish the failure modes so a CI gate's red X is
// diagnosable from the status alone:
//   0  every workload within tolerance
//   1  regression detected (too slow, or a workload went missing)
//   2  usage error (bad flags)
//   3  input error: a baseline/current file is missing, unreadable or
//      unparseable -- a broken *gate*, not a slow *build*
//
//   perf_check --self-test
//
// runs the comparator against embedded synthetic documents (pass,
// regression, missing-workload, unreadable-input) so CTest exercises
// the gate logic -- including the exit-code classification -- without
// timing anything.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace {

using opindyn::json::Value;

struct WorkloadKey {
  std::string model;
  // Rows before BENCH_7 carried no graph/reorder fields; the defaults
  // make old documents comparable against new ones.
  std::string graph = "random_regular";
  std::int64_t n = 0;
  std::int64_t k = 1;
  bool track_extrema = false;
  bool reorder = false;

  std::string label() const {
    std::ostringstream out;
    out << model << " " << graph << " n=" << n << " k=" << k
        << (track_extrema ? " extrema" : "") << (reorder ? " reorder" : "");
    return out.str();
  }
  bool operator==(const WorkloadKey& other) const {
    return model == other.model && graph == other.graph && n == other.n &&
           k == other.k && track_extrema == other.track_extrema &&
           reorder == other.reorder;
  }
};

WorkloadKey key_of(const Value& row) {
  WorkloadKey key;
  key.model = row.find("model")->as_string();
  if (const Value* graph = row.find("graph")) {
    key.graph = graph->as_string();
  }
  key.n = row.find("n")->as_int();
  if (const Value* k = row.find("k")) {
    key.k = k->as_int();
  }
  if (const Value* extrema = row.find("track_extrema")) {
    key.track_extrema = extrema->as_bool();
  }
  if (const Value* reorder = row.find("reorder")) {
    key.reorder = reorder->as_bool();
  }
  return key;
}

const Value& workloads_of(const Value& doc, const std::string& which) {
  const Value* workloads = doc.find("workloads");
  if (workloads == nullptr || !workloads->is_array()) {
    throw std::runtime_error(which +
                             " document has no \"workloads\" array");
  }
  return *workloads;
}

/// Compares the two parsed documents; prints one line per baseline
/// workload to `out`.  Returns the number of failures (regressions
/// beyond max_drop + workloads missing from `current`).
int compare(const Value& baseline, const Value& current,
            const std::string& metric, double max_drop,
            std::ostream& out) {
  int failures = 0;
  for (const Value& base_row : workloads_of(baseline, "baseline")
                                   .as_array()) {
    const WorkloadKey key = key_of(base_row);
    const Value* base_metric = base_row.find(metric);
    if (base_metric == nullptr) {
      out << "SKIP  " << key.label() << ": baseline row has no \""
          << metric << "\"\n";
      continue;
    }
    const Value* match = nullptr;
    for (const Value& cur_row : workloads_of(current, "current")
                                    .as_array()) {
      if (key_of(cur_row) == key) {
        match = &cur_row;
        break;
      }
    }
    if (match == nullptr || match->find(metric) == nullptr) {
      out << "FAIL  " << key.label()
          << ": missing from the current run\n";
      ++failures;
      continue;
    }
    const double base = base_metric->as_double();
    const double cur = match->find(metric)->as_double();
    const double ratio = base > 0.0 ? cur / base : 0.0;
    const bool regressed = ratio < 1.0 - max_drop;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s  %-24s %s: %.4g -> %.4g (%+.1f%%)\n",
                  regressed ? "FAIL" : "ok  ", key.label().c_str(),
                  metric.c_str(), base, cur, (ratio - 1.0) * 100.0);
    out << line;
    if (regressed) {
      ++failures;
    }
  }
  return failures;
}

/// Loads + compares + reports; returns the process exit code (0 pass,
/// 1 regression, 3 input error).  Out of line from main so the
/// self-test can assert the exit-code classification directly.
int run_gate(const std::string& baseline_path,
             const std::string& current_path, const std::string& metric,
             double max_drop, std::ostream& out, std::ostream& err) {
  Value baseline;
  Value current;
  // Input problems (missing file, bad JSON, wrong schema) are exit 3:
  // the gate itself is broken and no statement about performance was
  // made.  Naming the offending file keeps the red X diagnosable.
  try {
    baseline = opindyn::json::parse_file(baseline_path);
    workloads_of(baseline, "baseline");
  } catch (const std::exception& error) {
    err << "perf_check: baseline unusable (" << baseline_path
        << "): " << error.what() << "\n";
    return 3;
  }
  try {
    current = opindyn::json::parse_file(current_path);
    workloads_of(current, "current");
  } catch (const std::exception& error) {
    err << "perf_check: current run unusable (" << current_path
        << "): " << error.what() << "\n";
    return 3;
  }
  const int failures = compare(baseline, current, metric, max_drop, out);
  if (failures > 0) {
    err << "perf_check: " << failures << " workload(s) regressed "
        << "more than " << max_drop * 100.0 << "% on " << metric << "\n";
    return 1;
  }
  out << "perf_check: all workloads within " << max_drop * 100.0
      << "% of baseline\n";
  return 0;
}

int self_test() {
  const char* kBaseline = R"({"workloads": [
    {"model": "node", "n": 1024, "k": 1, "track_extrema": false,
     "burst_sps": 100.0},
    {"model": "node", "n": 1024, "k": 4, "track_extrema": false,
     "burst_sps": 50.0},
    {"model": "edge", "n": 1024, "k": 1, "track_extrema": true,
     "burst_sps": 10.0},
    {"model": "node", "graph": "torus", "n": 2048, "k": 1,
     "burst_sps": 70.0}
  ]})";
  // k=1 within tolerance (-10%), k=4 regressed (-40%), extrema missing,
  // torus row present only under a different graph family (so the
  // graph field is part of the identity and the row counts missing).
  const char* kCurrent = R"({"workloads": [
    {"model": "node", "n": 1024, "k": 1, "track_extrema": false,
     "burst_sps": 90.0},
    {"model": "node", "n": 1024, "k": 4, "track_extrema": false,
     "burst_sps": 30.0},
    {"model": "node", "graph": "pref_attach", "n": 2048, "k": 1,
     "burst_sps": 70.0}
  ]})";
  const Value baseline = opindyn::json::parse(kBaseline);
  const Value current = opindyn::json::parse(kCurrent);

  std::ostringstream sink;
  int rc = 0;
  const auto expect = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "self-test FAILED: " << what << "\n";
      rc = 1;
    }
  };
  expect(compare(baseline, baseline, "burst_sps", 0.15, sink) == 0,
         "identity comparison must pass");
  expect(compare(baseline, current, "burst_sps", 0.15, sink) == 3,
         "one regression + two missing workloads must count 3 failures");
  expect(compare(baseline, current, "burst_sps", 0.5, sink) == 2,
         "with 50% tolerance only the missing workloads must fail");
  // The exit-code classification: input errors are 3 (broken gate),
  // never 1 (regression) -- a CI job must be able to tell the two
  // apart from the status alone.
  std::ostringstream err;
  expect(run_gate("/nonexistent/baseline.json", "/nonexistent/cur.json",
                  "burst_sps", 0.15, sink, err) == 3,
         "a missing baseline must exit 3, not 1");
  expect(err.str().find("baseline unusable") != std::string::npos,
         "the input error must name the unusable side");
  if (rc == 0) {
    std::cout << "perf_check self-test passed\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string metric = "burst_sps";
  double max_drop = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--max-drop" && i + 1 < argc) {
      try {
        max_drop = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "perf_check: --max-drop needs a number, got '"
                  << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--self-test") {
      return self_test();
    } else {
      std::cerr << "usage: perf_check --baseline FILE --current FILE "
                   "[--metric NAME] [--max-drop FRAC] | --self-test\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "perf_check: --baseline and --current are required "
                 "(or --self-test)\n";
    return 2;
  }
  return run_gate(baseline_path, current_path, metric, max_drop, std::cout,
                  std::cerr);
}
