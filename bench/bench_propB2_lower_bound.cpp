// PB2 -- Proposition B.2 (tightness of the convergence bounds): with the
// adversarial initial state xi(0) = n * f_2 the expected convergence time
// matches the upper bound up to constants:
//   NodeModel:  T = Omega( n log(n ||xi||^2 / eps) / ((1-a)(1-l2(P))) )
//   EdgeModel:  T = Omega( m log(n ||xi||^2 / eps) / ((1-a) l2(L)) ).
// We compare measured T_eps for the eigenvector start against both the
// Omega expression and the matching upper bound -- the sandwich ratio
// must be Theta(1).
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/spectral/spectra.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "PB2: lower bound via f_2 initial states (Proposition B.2)",
      "xi(0) = n * f_2, eps = 1e-8, lazy NodeModel / plain EdgeModel, 30 "
      "replicas.  'lower scale' is the Omega() expression; measured / "
      "lower must be Theta(1) (and >= ~1 after constant calibration), "
      "i.e. the eigenvector start certifies the upper bound is tight.");

  const double eps = 1e-8;

  std::cout << "## NodeModel, xi(0) = n * f2(P)\n\n";
  Table node_table({"graph", "n", "1-l2(P)", "T measured", "lower scale",
                    "upper (B.1 pred)", "meas/lower", "meas/upper"});
  for (const std::string family : {"cycle", "complete", "torus"}) {
    for (const NodeId n : {16, 32}) {
      const Graph g = bench::make_graph(family, n);
      const auto spec = lazy_walk_spectrum(g);
      const auto xi = initial::scaled_eigenvector(
          spec.f2, static_cast<double>(g.node_count()));

      ModelConfig config;
      config.alpha = 0.5;
      config.k = 1;
      config.lazy = true;
      MonteCarloOptions options;
      options.replicas = 30;
      options.seed = 3;
      options.convergence.epsilon = eps;
      const MonteCarloResult result = monte_carlo(g, config, xi, options);

      const double lower =
          static_cast<double>(g.node_count()) *
          std::log(static_cast<double>(g.node_count()) *
                   initial::l2_squared(xi) / eps) /
          ((1.0 - 0.5) * spec.gap);
      OpinionState probe(g, xi);
      const double rho = theory::node_model_rho(spec.lambda2, 0.5, 1,
                                                g.node_count(), true);
      const double upper =
          theory::steps_to_epsilon(rho, probe.phi_exact(), eps);
      node_table.new_row()
          .add(g.name())
          .add(static_cast<std::int64_t>(g.node_count()))
          .add_sci(spec.gap, 2)
          .add_fixed(result.steps.mean(), 0)
          .add_fixed(lower, 0)
          .add_fixed(upper, 0)
          .add_fixed(result.steps.mean() / lower, 3)
          .add_fixed(result.steps.mean() / upper, 3);
    }
  }
  std::cout << node_table.to_markdown() << "\n";

  std::cout << "## EdgeModel, xi(0) = n * f2(L)\n\n";
  Table edge_table({"graph", "n", "m", "l2(L)", "T measured",
                    "lower scale", "meas/lower"});
  for (const std::string family : {"cycle", "star", "barbell"}) {
    for (const NodeId n : {16, 32}) {
      const Graph g = bench::make_graph(family, n);
      const auto lap = laplacian_spectrum(g);
      const auto xi = initial::scaled_eigenvector(
          lap.f2, static_cast<double>(g.node_count()));

      ModelConfig config;
      config.kind = ModelKind::edge;
      config.alpha = 0.5;
      MonteCarloOptions options;
      options.replicas = 30;
      options.seed = 5;
      options.convergence.epsilon = eps;
      options.convergence.use_plain_potential = true;
      const MonteCarloResult result = monte_carlo(g, config, xi, options);

      const double lower =
          static_cast<double>(g.edge_count()) *
          std::log(static_cast<double>(g.node_count()) *
                   initial::l2_squared(xi) / eps) /
          ((1.0 - 0.5) * lap.lambda2);
      edge_table.new_row()
          .add(g.name())
          .add(static_cast<std::int64_t>(g.node_count()))
          .add(g.edge_count())
          .add_sci(lap.lambda2, 2)
          .add_fixed(result.steps.mean(), 0)
          .add_fixed(lower, 0)
          .add_fixed(result.steps.mean() / lower, 3);
    }
  }
  std::cout << edge_table.to_markdown() << "\n";
  std::cout << "Reading: the meas/lower ratios sit in a narrow constant "
               "band per model (the Omega() hides an absolute constant); "
               "flatness across families and sizes is the tightness "
               "claim.\n";
  return 0;
}
