// PB2 -- Proposition B.2 (tightness of the convergence bounds): with the
// adversarial initial state xi(0) = n * f_2 the expected convergence time
// matches the upper bound up to constants:
//   NodeModel:  T = Omega( n log(n ||xi||^2 / eps) / ((1-a)(1-l2(P))) )
//   EdgeModel:  T = Omega( m log(n ||xi||^2 / eps) / ((1-a) l2(L)) ).
// The engine's `propB2_node` / `propB2_edge` scenarios compare measured
// T_eps for the eigenvector start (the f2_walk / f2_laplacian initial
// distributions) against the Omega expression and, for the NodeModel,
// the matching upper bound -- the sandwich ratio must be Theta(1).
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=propB2_node --init=f2_walk --center=none
//       --lazy=true --eps=1e-8 --replicas=30
//       --sweep='graph:cycle,complete,torus;n:16,32'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "PB2: lower bound via f_2 initial states (Proposition B.2)",
      "xi(0) = n * f_2, eps = 1e-8, lazy NodeModel / plain EdgeModel, 30 "
      "replicas.  'lower scale' is the Omega() expression; measured / "
      "lower must be Theta(1) (and >= ~1 after constant calibration), "
      "i.e. the eigenvector start certifies the upper bound is tight.");

  std::cout << "## NodeModel, xi(0) = n * f2(P)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "propB2_node";
    spec.initial.distribution = "f2_walk";  // param_a = 0 -> beta = n
    spec.initial.center = "none";
    spec.model.alpha = 0.5;
    spec.model.k = 1;
    spec.model.lazy = true;
    spec.replicas = 30;
    spec.seed = 3;
    spec.convergence.epsilon = 1e-8;
    spec.sweeps = {{"graph", {"cycle", "complete", "torus"}},
                   {"n", {"16", "32"}}};
    engine::run_experiment_with_default_sinks(spec);
  }

  std::cout << "\n## EdgeModel, xi(0) = n * f2(L)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "propB2_edge";
    spec.initial.distribution = "f2_laplacian";
    spec.initial.center = "none";
    spec.model.alpha = 0.5;
    spec.replicas = 30;
    spec.seed = 5;
    spec.convergence.epsilon = 1e-8;
    spec.sweeps = {{"graph", {"cycle", "star", "barbell"}},
                   {"n", {"16", "32"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  bench::print_reading(
      "the meas/lower ratios sit in a narrow constant band per model "
      "(the Omega() hides an absolute constant); flatness across "
      "families and sizes is the tightness claim.");
  return 0;
}
