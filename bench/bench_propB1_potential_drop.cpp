// PB1 -- Proposition B.1: the one-step potential drop of the lazy
// NodeModel satisfies
//   E[phi(t+1) | xi(t)] <= (1 - rho) phi(t),
//   rho = (1-a)(1-l2)[2a + (1-a)(1+l2)(1-1/k)] / (2n).
// We measure the *exact* one-step drop by enumerating the selection
// distribution for both the worst case xi = f_2 (where the bound should
// be near-tight) and random states (where it is conservative).
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/selection.h"
#include "src/core/theory.h"
#include "src/spectral/spectra.h"
#include "src/support/table.h"

namespace {

using namespace opindyn;

// Exact E[phi'] for the (non-lazy) NodeModel by enumeration.
double exact_expected_phi(const Graph& g, const std::vector<double>& xi,
                          double alpha, std::int64_t k) {
  const auto selections = enumerate_node_selections(g, k);
  double expected = 0.0;
  for (const auto& ws : selections) {
    std::vector<double> next = xi;
    double sum = 0.0;
    for (const NodeId v : ws.selection.sample) {
      sum += xi[static_cast<std::size_t>(v)];
    }
    next[static_cast<std::size_t>(ws.selection.node)] =
        alpha * xi[static_cast<std::size_t>(ws.selection.node)] +
        (1.0 - alpha) * sum /
            static_cast<double>(ws.selection.sample.size());
    // phi of next.
    double wsum = 0.0;
    double wsq = 0.0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      const double pi = g.stationary(u);
      wsum += pi * next[static_cast<std::size_t>(u)];
      wsq += pi * next[static_cast<std::size_t>(u)] *
             next[static_cast<std::size_t>(u)];
    }
    expected += ws.probability * (wsq - wsum * wsum);
  }
  return expected;
}

}  // namespace

int main() {
  bench::print_header(
      "PB1: one-step potential contraction (Proposition B.1)",
      "Exact E[phi'] by enumeration vs the Prop. B.1 bound (1 - rho) phi, "
      "non-lazy normalisation (rho without the /2).  'slack' = measured "
      "drop / bound drop: >= 1 everywhere; for xi = f_2 it settles at a "
      "stable ~2 (the constant the lazy-spectrum accounting gives away), "
      "confirming the rate's dependence on (1 - lambda_2) is exact.");

  Table table({"graph", "alpha", "k", "state", "phi(xi)",
               "E[phi'] exact", "bound (1-rho) phi", "slack"});
  bool bound_ok = true;
  for (const std::string family : {"cycle", "complete", "petersen_like",
                                   "hypercube"}) {
    const Graph g = family == "petersen_like"
                        ? gen::petersen()
                        : bench::make_graph(family, 10);
    const auto spec = lazy_walk_spectrum(g);
    for (const double alpha : {0.3, 0.5, 0.8}) {
      for (const std::int64_t k :
           {std::int64_t{1}, std::int64_t{g.min_degree()}}) {
        const double rho = theory::node_model_rho(spec.lambda2, alpha, k,
                                                  g.node_count(), false);
        // State 1: the second eigenvector (worst case).
        // State 2: random Gaussian (typical case).
        Rng rng(41);
        std::vector<std::pair<std::string, std::vector<double>>> states;
        states.emplace_back("f2(P)", spec.f2);
        auto random_state =
            initial::gaussian(rng, g.node_count(), 0.0, 1.0);
        initial::center_degree_weighted(g, random_state);
        states.emplace_back("random", random_state);

        for (const auto& [label, xi] : states) {
          OpinionState probe(g, xi);
          const double phi0 = probe.phi_exact();
          const double expected = exact_expected_phi(g, xi, alpha, k);
          const double bound = (1.0 - rho) * phi0;
          const double slack = (phi0 - expected) / (phi0 - bound);
          bound_ok = bound_ok && expected <= bound + 1e-12;
          table.new_row()
              .add(g.name())
              .add(alpha, 2)
              .add(k)
              .add(label)
              .add_sci(phi0, 3)
              .add_sci(expected, 3)
              .add_sci(bound, 3)
              .add_fixed(slack, 3);
        }
      }
    }
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << (bound_ok ? "Bound verified: E[phi'] <= (1-rho) phi in "
                           "every configuration; the f2 slack is a flat "
                           "~2.1, i.e. the (1 - lambda_2) rate is exact "
                           "up to that constant.\n"
                         : "BOUND VIOLATED somewhere!\n");
  return bound_ok ? 0 : 1;
}
