// PB1 -- Proposition B.1: the one-step potential drop of the lazy
// NodeModel satisfies
//   E[phi(t+1) | xi(t)] <= (1 - rho) phi(t),
//   rho = (1-a)(1-l2)[2a + (1-a)(1+l2)(1-1/k)] / (2n).
// The engine's `propB1_drop` scenario measures the *exact* one-step
// drop by enumerating the selection distribution for both the worst
// case xi = f_2 (where the bound should be near-tight) and a random
// state (where it is conservative) -- two rows per cell.
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=propB1_drop --n=10
//       --sweep='graph:cycle,complete,petersen,hypercube;alpha:0.3,0.5,0.8;k:1,2'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "PB1: one-step potential contraction (Proposition B.1)",
      "Exact E[phi'] by enumeration vs the Prop. B.1 bound (1 - rho) phi, "
      "non-lazy normalisation (rho without the /2).  'slack' = measured "
      "drop / bound drop: >= 1 everywhere; for xi = f_2 it settles at a "
      "stable ~2 (the constant the lazy-spectrum accounting gives away), "
      "confirming the rate's dependence on (1 - lambda_2) is exact.");

  engine::ExperimentSpec spec;
  spec.scenario = "propB1_drop";
  spec.graph.n = 10;
  spec.seed = 41;
  spec.sweeps = {{"graph", {"cycle", "complete", "petersen", "hypercube"}},
                 {"alpha", {"0.3", "0.5", "0.8"}},
                 {"k", {"1", "2"}}};

  engine::MemorySink rows;
  engine::TableSink table(std::cout);
  std::vector<engine::RowSink*> sinks{&rows, &table};
  engine::run_experiment(spec, sinks);
  std::cout << "\n";

  bool bound_ok = !rows.rows().empty();
  for (const std::vector<std::string>& row : rows.rows()) {
    bound_ok = bound_ok && row.back() == "yes";
  }
  std::cout << (bound_ok ? "Bound verified: E[phi'] <= (1-rho) phi in "
                           "every configuration; the f2 slack is a flat "
                           "~2, i.e. the (1 - lambda_2) rate is exact "
                           "up to that constant.\n"
                         : "BOUND VIOLATED somewhere!\n");
  return bound_ok ? 0 : 1;
}
