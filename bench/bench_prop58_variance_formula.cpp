// P58 -- Proposition 5.8: for regular graphs and Avg(0) = 0 the limiting
// variance of Avg(t) equals (to +-1/n^5)
//   (mu0 - mu+) sum_u xi_u^2 + (mu1 - mu+) sum_{(u,v) in E+} xi_u xi_v.
// The formula depends on xi(0) only through the norm and the
// neighbour-correlation term -- so it distinguishes *how the same values
// are placed on the graph*.  We test four placements of the same value
// multiset on a cycle (alternating / blocked / random / smooth) plus
// other families, against Monte-Carlo variance.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/support/table.h"

namespace {

using namespace opindyn;

double run_mc_variance(const Graph& g, const std::vector<double>& xi,
                       std::int64_t k, double alpha, double* ci) {
  ModelConfig config;
  config.alpha = alpha;
  config.k = k;
  MonteCarloOptions options;
  options.replicas = 12000;
  options.seed = 23;
  options.convergence.epsilon = 1e-13;
  const MonteCarloResult result = monte_carlo(g, config, xi, options);
  *ci = result.convergence_value.variance_ci_halfwidth();
  return result.convergence_value.population_variance();
}

}  // namespace

int main() {
  bench::print_header(
      "P58: exact variance formula (Proposition 5.8)",
      "Monte-Carlo Var(F) vs the closed-form mu-expression; 12000 "
      "replicas, alpha = 0.5.  Placements of the same +-1 multiset on "
      "C_16 give different neighbour correlations and the formula must "
      "track each.");

  const NodeId n = 16;
  Table table({"graph", "placement", "k", "sum xi^2",
               "sum_{E+} xi_u xi_v", "Var exact (P5.8)", "Var measured",
               "+-CI", "meas/exact"});

  // Four placements of eight +1's and eight -1's on the cycle.
  const Graph cycle = bench::make_graph("cycle", n);
  std::vector<std::pair<std::string, std::vector<double>>> placements;
  placements.emplace_back("alternating", initial::alternating(n));
  {
    std::vector<double> blocked(n, 1.0);
    for (NodeId u = n / 2; u < n; ++u) {
      blocked[static_cast<std::size_t>(u)] = -1.0;
    }
    placements.emplace_back("two blocks", blocked);
  }
  {
    Rng rng(9);
    std::vector<double> shuffled = initial::alternating(n);
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(shuffled[i], shuffled[j]);
    }
    initial::center_plain(shuffled);
    placements.emplace_back("random placement", shuffled);
  }

  for (const auto& [name, xi] : placements) {
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
      const double exact = theory::variance_exact(cycle, 0.5, k, xi);
      double ci = 0.0;
      const double measured = run_mc_variance(cycle, xi, k, 0.5, &ci);
      table.new_row()
          .add(cycle.name())
          .add(name)
          .add(k)
          .add_fixed(initial::l2_squared(xi), 1)
          .add_fixed(theory::directed_edge_correlation(cycle, xi), 1)
          .add_sci(exact, 3)
          .add_sci(measured, 3)
          .add_sci(ci, 1)
          .add_fixed(measured / exact, 3);
    }
  }

  // Other regular families with Gaussian initials.
  Rng init_rng(31);
  for (const std::string family : {"complete", "hypercube",
                                   "random_regular_4"}) {
    const Graph g = bench::make_graph(family, n);
    auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
    initial::center_plain(xi);
    const double exact = theory::variance_exact(g, 0.5, 1, xi);
    double ci = 0.0;
    const double measured = run_mc_variance(g, xi, 1, 0.5, &ci);
    table.new_row()
        .add(g.name())
        .add("gaussian")
        .add(std::int64_t{1})
        .add_fixed(initial::l2_squared(xi), 1)
        .add_fixed(theory::directed_edge_correlation(g, xi), 1)
        .add_sci(exact, 3)
        .add_sci(measured, 3)
        .add_sci(ci, 1)
        .add_fixed(measured / exact, 3);
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << "Reading: meas/exact ~ 1.0 in every row; note how the "
               "alternating placement (negative edge correlation) has "
               "strictly larger variance than the blocked placement of "
               "the same values -- exactly as the (mu1 - mu+) < 0 term "
               "predicts.\n";
  return 0;
}
