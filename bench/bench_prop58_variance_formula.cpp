// P58 -- Proposition 5.8: for regular graphs and Avg(0) = 0 the limiting
// variance of Avg(t) equals (to +-1/n^5)
//   (mu0 - mu+) sum_u xi_u^2 + (mu1 - mu+) sum_{(u,v) in E+} xi_u xi_v.
// The formula depends on xi(0) only through the norm and the
// neighbour-correlation term -- so it distinguishes *how the same values
// are placed on the graph*.  The engine's `prop58_variance` scenario is
// driven over placements of the same +-1 multiset on C_16 (alternating
// vs two blocks, via the init sweep) plus other families with Gaussian
// initials.
//
// Driver: the scenario engine -- equivalent to
//   opindyn run --scenario=prop58_variance --graph=cycle --n=16
//       --replicas=12000 --eps=1e-13 --center=none
//       --sweep='init:alternating,blocks;k:1,2'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "P58: exact variance formula (Proposition 5.8)",
      "Monte-Carlo Var(F) vs the closed-form mu-expression; 12000 "
      "replicas, alpha = 0.5.  Placements of the same +-1 multiset on "
      "C_16 give different neighbour correlations and the formula must "
      "track each.");

  std::cout << "## (a) placements of eight +1's and eight -1's on "
               "cycle(16)\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "prop58_variance";
    spec.graph.family = "cycle";
    spec.graph.n = 16;
    spec.initial.center = "none";  // both placements are already balanced
    spec.model.alpha = 0.5;
    spec.replicas = 12000;
    spec.seed = 23;
    spec.convergence.epsilon = 1e-13;
    spec.sweeps = {{"init", {"alternating", "blocks"}},
                   {"k", {"1", "2"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  std::cout << "\n## (b) other regular families, Gaussian xi(0) "
               "centered\n\n";
  {
    engine::ExperimentSpec spec;
    spec.scenario = "prop58_variance";
    spec.graph.n = 16;
    spec.initial.distribution = "gaussian";
    spec.initial.param_b = 1.0;
    spec.initial.seed = 31;
    spec.initial.center = "plain";
    spec.model.alpha = 0.5;
    spec.model.k = 1;
    spec.replicas = 12000;
    spec.seed = 23;
    spec.convergence.epsilon = 1e-13;
    spec.sweeps = {{"graph",
                    {"complete", "hypercube", "random_regular_4"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  bench::print_reading(
      "meas/exact ~ 1.0 in every row; note how the alternating placement "
      "(negative edge correlation) has strictly larger variance than the "
      "blocked placement of the same values -- exactly as the "
      "(mu1 - mu+) < 0 term predicts.");
  return 0;
}
