// GOSSIP -- the "price of simplicity" framing of Section 1: a
// coordinated pairwise-averaging gossip (both endpoints of a random edge
// average -- doubly stochastic updates) converges to the exact initial
// average with Var(F) = 0, while the unilateral NodeModel/EdgeModel pay
// Var(F) = Theta(||xi||^2/n^2) for their simpler communication.
//
// Driver: the engine's `gossip_vs_unilateral` scenario (three rows per
// graph: gossip / NodeModel / EdgeModel, with the Prop. 5.8 predicted
// variance alongside) -- equivalent to
//   opindyn run --scenario=gossip_vs_unilateral --n=16 --replicas=4000
//       --eps=1e-13 --init-seed=5 --sweep=graph:cycle,complete,torus
#include <iostream>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "GOSSIP: price of simplicity (Section 1)",
      "Same graphs, same Rademacher xi(0) (centered), 4000 replicas each. "
      "Coordinated gossip preserves Avg exactly (Var = 0); the unilateral "
      "models pay Theta(||xi||^2/n^2) variance but need no coordination.");

  engine::ExperimentSpec spec;
  spec.scenario = "gossip_vs_unilateral";
  spec.graph.n = 16;
  spec.initial.distribution = "rademacher";
  spec.initial.seed = 5;
  spec.model.alpha = 0.5;
  spec.model.k = 1;
  spec.replicas = 4000;
  spec.seed = 101;
  spec.convergence.epsilon = 1e-13;
  spec.sweeps = engine::parse_sweeps("graph:cycle,complete,torus");

  const bench::Stopwatch timer;
  engine::run_experiment_with_default_sinks(spec);
  std::cout << "(grid: " << timer.seconds() << " s)\n\n";
  bench::print_reading(
      "gossip's Var(F) column is ~1e-30 (exact average); the unilateral "
      "models' variance matches the Prop 5.8 prediction -- that gap is "
      "the price of unilateral simplicity.");
  return 0;
}
