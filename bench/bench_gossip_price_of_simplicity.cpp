// GOSSIP -- the "price of simplicity" framing of Section 1: a
// coordinated pairwise-averaging gossip (both endpoints of a random edge
// average -- doubly stochastic updates) converges to the exact initial
// average with Var(F) = 0, while the unilateral NodeModel/EdgeModel pay
// Var(F) = Theta(||xi||^2/n^2) for their simpler communication.
#include <iostream>

#include "bench/bench_common.h"
#include "src/baselines/gossip.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/support/stats.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "GOSSIP: price of simplicity (Section 1)",
      "Same graphs, same Rademacher xi(0) (centered), 4000 replicas each. "
      "Coordinated gossip preserves Avg exactly (Var = 0); the unilateral "
      "models pay Theta(||xi||^2/n^2) variance but need no coordination.");

  Table table({"graph", "protocol", "E[F]", "Var(F)", "steps to eps",
               "coordinated?"});
  for (const std::string family : {"cycle", "complete", "torus"}) {
    const Graph g = bench::make_graph(family, 16);
    Rng init_rng(5);
    auto xi = initial::rademacher(init_rng, g.node_count());
    initial::center_plain(xi);

    // Coordinated gossip.
    RunningStats gossip_f;
    RunningStats gossip_steps;
    for (int r = 0; r < 4000; ++r) {
      Rng rng = Rng::fork(99, static_cast<std::uint64_t>(r));
      const GossipRunResult result =
          run_gossip_to_convergence(g, xi, rng, 1e-13, 100'000'000);
      gossip_f.add(result.final_value);
      gossip_steps.add(static_cast<double>(result.steps));
    }
    table.new_row()
        .add(g.name())
        .add("pairwise gossip")
        .add_sci(gossip_f.mean(), 2)
        .add_sci(gossip_f.population_variance(), 2)
        .add_fixed(gossip_steps.mean(), 0)
        .add("yes");

    // Unilateral NodeModel and EdgeModel.
    for (const ModelKind kind : {ModelKind::node, ModelKind::edge}) {
      ModelConfig config;
      config.kind = kind;
      config.alpha = 0.5;
      config.k = 1;
      MonteCarloOptions options;
      options.replicas = 4000;
      options.seed = 101;
      options.convergence.epsilon = 1e-13;
      const MonteCarloResult result = monte_carlo(g, config, xi, options);
      table.new_row()
          .add(g.name())
          .add(kind == ModelKind::node ? "NodeModel" : "EdgeModel")
          .add_sci(result.convergence_value.mean(), 2)
          .add_sci(result.convergence_value.population_variance(), 2)
          .add_fixed(result.steps.mean(), 0)
          .add("no");
    }
    // Theory line for reference.
    std::cout << g.name() << ": Prop 5.8 predicted unilateral Var(F) = "
              << theory::variance_exact(g, 0.5, 1, xi) << "\n";
  }
  std::cout << "\n" << table.to_markdown() << "\n";
  std::cout << "Reading: gossip's Var(F) column is ~1e-30 (exact "
               "average); the unilateral models' variance matches the "
               "Prop 5.8 prediction -- that gap is the price of "
               "unilateral simplicity.\n";
  return 0;
}
