// Shared helpers for the experiment benches: named graph construction and
// a consistent header format so EXPERIMENTS.md can quote outputs verbatim.
#ifndef OPINDYN_BENCH_BENCH_COMMON_H
#define OPINDYN_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>

#include "src/graph/generators.h"
#include "src/support/rng.h"

namespace opindyn {
namespace bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n# " << experiment_id << "\n";
  std::cout << claim << "\n\n";
}

/// Builds one of the named graph families used across benches.
inline Graph make_graph(const std::string& family, NodeId n,
                        std::uint64_t seed = 4242) {
  Rng rng(seed);
  if (family == "cycle") return gen::cycle(n);
  if (family == "path") return gen::path(n);
  if (family == "complete") return gen::complete(n);
  if (family == "star") return gen::star(n);
  if (family == "binary_tree") return gen::binary_tree(n);
  if (family == "hypercube") {
    int d = 0;
    while ((NodeId{1} << (d + 1)) <= n) {
      ++d;
    }
    return gen::hypercube(d);
  }
  if (family == "torus") {
    NodeId side = 3;
    while ((side + 1) * (side + 1) <= n) {
      ++side;
    }
    return gen::torus(side, side);
  }
  if (family == "random_regular_4") return gen::random_regular(rng, n, 4);
  if (family == "pref_attach") return gen::preferential_attachment(rng, n, 2);
  if (family == "double_star") return gen::double_star((n - 2) / 2);
  if (family == "barbell") return gen::barbell(n / 2, n - 2 * (n / 2));
  if (family == "lollipop") return gen::lollipop(n / 2, n - n / 2);
  throw std::runtime_error("unknown graph family: " + family);
}

}  // namespace bench
}  // namespace opindyn

#endif  // OPINDYN_BENCH_BENCH_COMMON_H
