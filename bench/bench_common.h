// Shared harness for the experiment benches: consistent headers/footers
// (EXPERIMENTS.md quotes outputs verbatim), named graph construction
// (delegated to the scenario engine so benches and `opindyn` agree on
// family names), the centered initial states nearly every bench uses,
// and a wall-clock stopwatch for the timing reports.
#ifndef OPINDYN_BENCH_BENCH_COMMON_H
#define OPINDYN_BENCH_BENCH_COMMON_H

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/initial_values.h"
#include "src/engine/experiment_spec.h"
#include "src/graph/generators.h"
#include "src/support/rng.h"

namespace opindyn {
namespace bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n# " << experiment_id << "\n";
  std::cout << claim << "\n\n";
}

/// The "Reading:" footer that interprets a bench's table.
inline void print_reading(const std::string& text) {
  std::cout << "Reading: " << text << "\n";
}

/// Builds one of the named graph families used across benches (same
/// names as `opindyn --graph=`).
inline Graph make_graph(const std::string& family, NodeId n,
                        std::uint64_t seed = 4242) {
  engine::GraphSpec spec;
  spec.family = family;
  spec.n = n;
  spec.seed = seed;
  return engine::build_graph(spec);
}

/// The canonical bench initial state: Rademacher xi(0) centered so
/// Avg(0) = 0 (the Section-4 analysis assumption).
inline std::vector<double> centered_rademacher(const Graph& graph,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xi = initial::rademacher(rng, graph.node_count());
  initial::center_plain(xi);
  return xi;
}

/// Wall-clock stopwatch for throughput/timing reports.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace opindyn

#endif  // OPINDYN_BENCH_BENCH_COMMON_H
