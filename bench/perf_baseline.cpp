// perf_baseline -- the tracked steps/sec baseline behind BENCH_*.json.
//
// Times the two averaging processes on random 4-regular graphs through
// both stepping paths -- the recorded single-step path (one virtual
// step_recorded per step, allocating its NodeSelection) and the ISSUE-5
// burst kernel (one virtual step_burst per 4096 steps, allocation-free)
// -- plus the tracked-extrema variant, and emits one JSON document:
//
//   perf_baseline --out BENCH_5.json [--min-time 0.3]
//
// Each workload row also carries the pre-PR-5 reference throughput for
// this container (measured from the seed build's bench_perf_throughput
// at PR 5; the pre_pr_sps column of kWorkloads below) and the
// resulting speedup, so
// the checked-in BENCH_5.json documents the kernel's win and gives
// future PRs a number to beat.  Ratios against the reference are only
// meaningful on the machine the reference was measured on; re-measure
// both sides when moving hardware (see README "Performance").
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/edge_model.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/node_model.h"
#include "src/graph/generators.h"
#include "src/support/build_info.h"
#include "src/support/json.h"
#include "src/support/rng.h"

namespace {

using namespace opindyn;

constexpr std::int64_t kBurst = 4096;

struct Workload {
  ModelKind kind = ModelKind::node;
  NodeId n = 0;
  std::int64_t k = 1;
  bool track_extrema = false;
  /// Steps/sec of the same workload on the pre-PR-5 seed build (0 = not
  /// measured); single-step path, per-step discrepancy reads when
  /// track_extrema.
  double pre_pr_sps = 0.0;
};

// Pre-PR-5 reference: seed-build bench_perf_throughput on this
// container (Release, one core), items_per_second of BM_NodeModelStep /
// BM_EdgeModelStep / BM_NodeModelStepWithExtrema.
const Workload kWorkloads[] = {
    {ModelKind::node, 1024, 1, false, 17.45e6},
    {ModelKind::node, 1024, 4, false, 10.28e6},
    {ModelKind::node, 16384, 1, false, 18.45e6},
    {ModelKind::node, 16384, 4, false, 10.34e6},
    {ModelKind::edge, 1024, 1, false, 19.86e6},
    {ModelKind::edge, 16384, 1, false, 18.53e6},
    {ModelKind::node, 1024, 1, true, 7.71e6},
    {ModelKind::node, 16384, 1, true, 2.34e6},
};

std::unique_ptr<AveragingProcess> build_process(const Workload& w,
                                                const Graph& g) {
  Rng init_rng(2);
  auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  if (w.kind == ModelKind::node) {
    NodeModelParams params;
    params.alpha = 0.5;
    params.k = w.k;
    params.track_extrema = w.track_extrema;
    return std::make_unique<NodeModel>(g, std::move(xi), params);
  }
  EdgeModelParams params;
  params.alpha = 0.5;
  params.track_extrema = w.track_extrema;
  return std::make_unique<EdgeModel>(g, std::move(xi), params);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Steps/sec of the recorded single-step path.  Tracked-extrema runs
/// read the discrepancy every step (the pre-kernel K(t) workload shape).
double measure_single(const Workload& w, const Graph& g, double min_time) {
  auto process = build_process(w, g);
  Rng rng(3);
  volatile double sink = 0.0;
  std::int64_t steps = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (std::int64_t i = 0; i < kBurst; ++i) {
      process->step(rng);
      if (w.track_extrema) {
        sink = process->state().discrepancy();
      }
    }
    steps += kBurst;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  (void)sink;
  return static_cast<double>(steps) / elapsed;
}

/// Steps/sec of the burst kernel.  Tracked-extrema runs read the
/// discrepancy once per burst (the check-interval shape of a scenario).
double measure_burst(const Workload& w, const Graph& g, double min_time) {
  auto process = build_process(w, g);
  Rng rng(3);
  volatile double sink = 0.0;
  std::int64_t steps = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    process->step_burst(rng, kBurst);
    if (w.track_extrema) {
      sink = process->state().discrepancy();
    } else {
      sink = process->state().phi();
    }
    steps += kBurst;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  (void)sink;
  return static_cast<double>(steps) / elapsed;
}

std::string json_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  double min_time = 0.3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_time = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: perf_baseline [--out FILE] [--min-time SEC]\n";
      return 1;
    }
  }

  json::Object doc;
  doc.emplace_back("bench", "BENCH_5");
  doc.emplace_back(
      "description",
      "steps/sec of the averaging-process stepping paths on random "
      "4-regular graphs (single = recorded per-step path, burst = "
      "ISSUE-5 zero-allocation kernel); pre_pr_sps is the seed-build "
      "reference for this container");
  doc.emplace_back(
      "regenerate",
      "cmake -B build -S . && cmake --build build --target perf_baseline "
      "&& build/bench/perf_baseline --out BENCH_5.json");
  doc.emplace_back("build", build_info_json());
  doc.emplace_back("burst_steps", kBurst);
  json::Array workloads;
  for (const Workload& w : kWorkloads) {
    Rng graph_rng(1);
    const Graph g = gen::random_regular(graph_rng, w.n, 4);
    const double single = measure_single(w, g, min_time);
    const double burst = measure_burst(w, g, min_time);
    json::Object row;
    row.emplace_back("model",
                     w.kind == ModelKind::node ? "node" : "edge");
    row.emplace_back("n", static_cast<std::int64_t>(w.n));
    row.emplace_back("k", w.k);
    row.emplace_back("track_extrema", w.track_extrema);
    row.emplace_back("single_step_sps", single);
    row.emplace_back("burst_sps", burst);
    row.emplace_back("burst_over_single", burst / single);
    if (w.pre_pr_sps > 0.0) {
      row.emplace_back("pre_pr_sps", w.pre_pr_sps);
      row.emplace_back("burst_over_pre_pr", burst / w.pre_pr_sps);
    }
    workloads.push_back(json::Value(std::move(row)));
    std::cerr << (w.kind == ModelKind::node ? "node" : "edge") << " n="
              << w.n << " k=" << w.k
              << (w.track_extrema ? " extrema" : "") << ": single "
              << json_number(single / 1e6) << " M/s, burst "
              << json_number(burst / 1e6) << " M/s ("
              << json_number(burst / single) << "x)\n";
  }
  doc.emplace_back("workloads", std::move(workloads));
  const std::string text = json::Value(std::move(doc)).dump(2) + "\n";

  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "perf_baseline: cannot open " << out_path << "\n";
      return 1;
    }
    out << text;
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
