// perf_baseline -- the tracked steps/sec baseline behind BENCH_*.json.
//
// Times the two averaging processes through both stepping paths -- the
// recorded single-step path (one virtual step_recorded per step,
// allocating its NodeSelection) and the chunked burst kernel (one
// virtual step_burst per 4096 steps, allocation-free) -- and emits one
// JSON document:
//
//   perf_baseline --out BENCH_8.json [--min-time 0.3]
//
// The workload matrix covers every devirtualized kernel variant (node
// k in {1, 4, 8}, edge, tracked extrema for both models), the
// irregular-topology path and the degree-sorted reorder mirror on a
// preferential-attachment graph, an n-scaling curve per model on tori
// from 1k to 10M nodes (the compact-graph milestone; deterministic
// 4-regular, so the curve isolates memory behaviour from graph
// randomness), and one row per generalized model kind (voter, gossip,
// weighted_median, hegselmann_krause) so every burst kernel in the
// family is gated.  The model name is part of the perf_check workload
// identity.
//
// Reference columns:
//   pre_pr_sps  -- seed-build single-step throughput on this container
//                  (bench_perf_throughput at PR 5), where measured.
//   bench5_sps  -- the checked-in BENCH_5.json burst_sps for the same
//                  workload, i.e. the PR-5 kernel this one replaces.
// Ratios against them are only meaningful on the machine the reference
// was measured on; re-measure both sides when moving hardware (see
// README "Performance").  The build object records compiler, flags and
// the burst-kernel ISA (portable vs avx2), so a BENCH document is
// self-describing about which kernels produced it.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/edge_model.h"
#include "src/core/gossip_model.h"
#include "src/core/hegselmann_krause_model.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/node_model.h"
#include "src/core/voter_model.h"
#include "src/core/weighted_median_model.h"
#include "src/graph/generators.h"
#include "src/support/build_info.h"
#include "src/support/json.h"
#include "src/support/rng.h"

namespace {

using namespace opindyn;

constexpr std::int64_t kBurst = 4096;

struct Workload {
  ModelKind kind = ModelKind::node;
  /// random_regular (d = 4) | torus (largest square <= n) | pref_attach
  /// (attach = 2, heavy-tailed degrees).
  const char* graph = "random_regular";
  NodeId n = 0;
  std::int64_t k = 1;
  bool track_extrema = false;
  /// Degree-sorted value mirror inside bursts (non-identity only on
  /// the irregular families).
  bool reorder = false;
  /// Steps/sec of the same workload on the pre-PR-5 seed build (0 = not
  /// measured); single-step path, per-step discrepancy reads when
  /// track_extrema.
  double pre_pr_sps = 0.0;
  /// burst_sps of the same workload in the checked-in BENCH_5.json
  /// (0 = workload not present there).
  double bench5_sps = 0.0;
  /// Node-model neighbour sampling.  The k = 8 row runs WITH
  /// replacement: without-replacement needs min_degree >= k, and the
  /// configuration model's whole-graph rejection makes a simple
  /// 8-regular graph unreachable at this n (acceptance ~ e^{-(d^2-1)/4}).
  SamplingMode sampling = SamplingMode::without_replacement;
};

// Pre-PR-5 reference: seed-build bench_perf_throughput on this
// container (Release, one core).  BENCH_5 reference: the checked-in
// BENCH_5.json burst_sps column.
const Workload kWorkloads[] = {
    // The original BENCH_5 matrix (random 4-regular graphs).
    {ModelKind::node, "random_regular", 1024, 1, false, false, 17.45e6,
     118.944e6},
    {ModelKind::node, "random_regular", 1024, 4, false, false, 10.28e6,
     47.7216e6},
    {ModelKind::node, "random_regular", 16384, 1, false, false, 18.45e6,
     89.8955e6},
    {ModelKind::node, "random_regular", 16384, 4, false, false, 10.34e6,
     37.8529e6},
    {ModelKind::edge, "random_regular", 1024, 1, false, false, 19.86e6,
     233.021e6},
    {ModelKind::edge, "random_regular", 16384, 1, false, false, 18.53e6,
     179.784e6},
    {ModelKind::node, "random_regular", 1024, 1, true, false, 7.71e6,
     128.184e6},
    {ModelKind::node, "random_regular", 16384, 1, true, false, 2.34e6,
     92.4238e6},
    // Remaining devirtualized kernel variants: the k = 8 fused draw
    // (with replacement -- see Workload::sampling) and the
    // tracked-extrema edge rows.
    {ModelKind::node, "random_regular", 16384, 8, false, false, 0.0, 0.0,
     SamplingMode::with_replacement},
    {ModelKind::edge, "random_regular", 1024, 1, true},
    {ModelKind::edge, "random_regular", 16384, 1, true},
    // Irregular topology (CSR offsets + per-node pi) and the
    // degree-sorted reorder mirror, on a heavy-tailed graph.
    {ModelKind::node, "pref_attach", 16384, 1},
    {ModelKind::node, "pref_attach", 16384, 1, false, true},
    {ModelKind::edge, "pref_attach", 16384, 1},
    {ModelKind::edge, "pref_attach", 16384, 1, false, true},
    // n-scaling curve per model: tori from 1k to 10M nodes (sides
    // 32, 128, 362, 1024, 3162).
    {ModelKind::node, "torus", 1024},
    {ModelKind::node, "torus", 131044},
    {ModelKind::node, "torus", 1048576},
    {ModelKind::node, "torus", 9998244},
    {ModelKind::edge, "torus", 1024},
    {ModelKind::edge, "torus", 131044},
    {ModelKind::edge, "torus", 1048576},
    {ModelKind::edge, "torus", 9998244},
    // The generalized model family (one gated row per burst kernel).
    {ModelKind::voter, "random_regular", 16384},
    {ModelKind::gossip, "random_regular", 16384},
    {ModelKind::weighted_median, "random_regular", 1024},
    {ModelKind::weighted_median, "random_regular", 16384},
    {ModelKind::weighted_median, "random_regular", 16384, 4},
    {ModelKind::weighted_median, "pref_attach", 16384},
    {ModelKind::hegselmann_krause, "random_regular", 16384},
};

Graph build_bench_graph(const Workload& w) {
  const std::string family = w.graph;
  if (family == "random_regular") {
    Rng graph_rng(1);
    return gen::random_regular(graph_rng, w.n, 4);
  }
  if (family == "torus") {
    const auto side =
        static_cast<NodeId>(std::llround(std::sqrt(static_cast<double>(w.n))));
    return gen::torus(side, side);
  }
  if (family == "pref_attach") {
    Rng graph_rng(1);
    return gen::preferential_attachment(graph_rng, w.n, 2);
  }
  std::cerr << "perf_baseline: unknown graph family " << family << "\n";
  std::exit(1);
}

std::unique_ptr<AveragingProcess> build_process(const Workload& w,
                                                const Graph& g) {
  Rng init_rng(2);
  auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  switch (w.kind) {
    case ModelKind::node: {
      NodeModelParams params;
      params.alpha = 0.5;
      params.k = w.k;
      params.sampling = w.sampling;
      params.track_extrema = w.track_extrema;
      params.reorder = w.reorder;
      return std::make_unique<NodeModel>(g, std::move(xi), params);
    }
    case ModelKind::edge: {
      EdgeModelParams params;
      params.alpha = 0.5;
      params.track_extrema = w.track_extrema;
      params.reorder = w.reorder;
      return std::make_unique<EdgeModel>(g, std::move(xi), params);
    }
    case ModelKind::voter:
      // Gaussian values are pairwise distinct, so the id bookkeeping
      // stays busy for the whole measurement window (consensus on
      // n = 16k takes ~n^2 steps, far beyond a rep).
      return std::make_unique<VoterModel>(g, std::move(xi));
    case ModelKind::gossip:
      return std::make_unique<GossipModel>(g, std::move(xi));
    case ModelKind::weighted_median: {
      WeightedMedianParams params;
      params.k = w.k;
      params.sampling = w.sampling;
      params.track_extrema = w.track_extrema;
      return std::make_unique<WeightedMedianModel>(g, std::move(xi),
                                                   params);
    }
    case ModelKind::hegselmann_krause: {
      HegselmannKrauseParams params;
      params.confidence = 0.25;
      params.track_extrema = w.track_extrema;
      return std::make_unique<HegselmannKrauseModel>(g, std::move(xi),
                                                     params);
    }
    default:
      std::cerr << "perf_baseline: unsupported model kind\n";
      std::exit(1);
  }
}

// Each workload is timed as best-of-kReps repetitions of >= min_time
// seconds.  The max (not the mean) is recorded: this container shares
// its core with co-tenants whose bursts depress a continuous mean by
// up to 30%, while the best rep approximates the unloaded capability of
// the machine -- which is what a regression gate should compare
// against, and what a fresh run can actually reproduce.
constexpr int kReps = 6;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Steps/sec of the recorded single-step path.  Tracked-extrema runs
/// read the discrepancy every step (the pre-kernel K(t) workload shape).
double measure_single(const Workload& w, const Graph& g, double min_time) {
  auto process = build_process(w, g);
  Rng rng(3);
  volatile double sink = 0.0;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::int64_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      for (std::int64_t i = 0; i < kBurst; ++i) {
        process->step(rng);
        if (w.track_extrema) {
          sink = process->state().discrepancy();
        }
      }
      steps += kBurst;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(steps) / elapsed);
  }
  (void)sink;
  return best;
}

/// Steps/sec of the burst kernel.  Tracked-extrema runs read the
/// discrepancy once per burst (the check-interval shape of a scenario).
double measure_burst(const Workload& w, const Graph& g, double min_time) {
  auto process = build_process(w, g);
  Rng rng(3);
  volatile double sink = 0.0;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::int64_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      process->step_burst(rng, kBurst);
      if (w.track_extrema) {
        sink = process->state().discrepancy();
      } else {
        sink = process->state().phi();
      }
      steps += kBurst;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(steps) / elapsed);
  }
  (void)sink;
  return best;
}

std::string json_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  double min_time = 0.3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_time = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: perf_baseline [--out FILE] [--min-time SEC]\n";
      return 1;
    }
  }

  json::Object doc;
  doc.emplace_back("bench", "BENCH_8");
  doc.emplace_back(
      "description",
      "steps/sec of the averaging-process stepping paths (single = "
      "recorded per-step path, burst = chunked batched-rng kernel) over "
      "every devirtualized kernel variant, the reorder mirror, an "
      "n-scaling curve to 10M nodes, and the generalized model family "
      "(voter, gossip, weighted_median, hegselmann_krause); pre_pr_sps / "
      "bench5_sps are the seed-build and BENCH_5 kernel references for "
      "this container");
  doc.emplace_back(
      "regenerate",
      "cmake -B build -S . && cmake --build build --target perf_baseline "
      "&& build/bench/perf_baseline --min-time 0.5 --out BENCH_8.json");
  doc.emplace_back("build", build_info_json());
  doc.emplace_back("burst_steps", kBurst);
  doc.emplace_back("measure",
                   "best of " + std::to_string(kReps) +
                       " repetitions, each >= min_time seconds");
  json::Array workloads;
  // Consecutive workloads over the same topology share one build (the
  // graph is immutable; process state is rebuilt per measurement).
  std::string cached_key;
  std::unique_ptr<Graph> cached_graph;
  for (const Workload& w : kWorkloads) {
    const std::string key =
        std::string(w.graph) + "/" + std::to_string(w.n);
    if (cached_key != key) {
      cached_graph = std::make_unique<Graph>(build_bench_graph(w));
      cached_key = key;
    }
    const Graph& g = *cached_graph;
    const double single = measure_single(w, g, min_time);
    const double burst = measure_burst(w, g, min_time);
    json::Object row;
    row.emplace_back("model", model_kind_name(w.kind));
    row.emplace_back("graph", w.graph);
    row.emplace_back("n", static_cast<std::int64_t>(w.n));
    row.emplace_back("k", w.k);
    row.emplace_back("sampling",
                     w.sampling == SamplingMode::without_replacement
                         ? "without_replacement"
                         : "with_replacement");
    row.emplace_back("track_extrema", w.track_extrema);
    row.emplace_back("reorder", w.reorder);
    row.emplace_back("single_step_sps", single);
    row.emplace_back("burst_sps", burst);
    row.emplace_back("burst_over_single", burst / single);
    if (w.pre_pr_sps > 0.0) {
      row.emplace_back("pre_pr_sps", w.pre_pr_sps);
      row.emplace_back("burst_over_pre_pr", burst / w.pre_pr_sps);
    }
    if (w.bench5_sps > 0.0) {
      row.emplace_back("bench5_sps", w.bench5_sps);
      row.emplace_back("burst_over_bench5", burst / w.bench5_sps);
    }
    workloads.push_back(json::Value(std::move(row)));
    std::cerr << model_kind_name(w.kind) << " "
              << w.graph << " n=" << w.n << " k=" << w.k
              << (w.sampling == SamplingMode::with_replacement ? " withrep"
                                                               : "")
              << (w.track_extrema ? " extrema" : "")
              << (w.reorder ? " reorder" : "") << ": single "
              << json_number(single / 1e6) << " M/s, burst "
              << json_number(burst / 1e6) << " M/s ("
              << json_number(burst / single) << "x)\n";
  }
  doc.emplace_back("workloads", std::move(workloads));
  const std::string text = json::Value(std::move(doc)).dump(2) + "\n";

  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "perf_baseline: cannot open " << out_path << "\n";
      return 1;
    }
    out << text;
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
