// L57 -- Lemma 5.7: the Q-chain (two correlated walks) on d-regular
// graphs has the exact three-value stationary distribution
//   mu_0 = 2k(d-1) ell,  mu_1 = (d-1) gamma ell,  mu_+ = (d gamma - 2 a k) ell
// with gamma = k(1+a) - (1-a).  The engine's `qchain` scenario builds
// the exact n^2-state transition matrix per cell and reports the closed
// form's stationarity residual, the deviation from the power-iteration
// stationary vector, and the normalisation identity.
//
// Driver: the scenario engine -- per family, equivalent to
//   opindyn run --scenario=qchain --graph=<family> --n=<n>
//       --sweep='k:...;alpha:...'
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "L57: Q-chain stationary distribution (Lemma 5.7)",
      "Exact transition matrices from the walk semantics (Eqs. 14-21); "
      "closed form must satisfy mu Q = mu to machine precision.");

  struct Grid {
    std::string family;
    NodeId n;
    std::vector<std::string> ks;
    std::vector<std::string> alphas;
  };
  const std::vector<Grid> grids{
      {"cycle", 8, {"1", "2"}, {"0.25", "0.5"}},
      {"complete", 6, {"1", "3", "5"}, {"0.5", "0.9"}},
      {"hypercube", 8, {"1", "3"}, {"0.3", "0.5"}},
      {"torus", 9, {"2", "4"}, {"0.4", "0.6"}},
      {"random_regular_4", 12, {"1", "4"}, {"0.2", "0.5"}},
  };

  bool all_good = true;
  for (const Grid& grid : grids) {
    engine::ExperimentSpec spec;
    spec.scenario = "qchain";
    spec.graph.family = grid.family;
    spec.graph.n = grid.n;
    spec.seed = 7;
    spec.sweeps = {{"k", grid.ks}, {"alpha", grid.alphas}};

    engine::MemorySink rows;
    engine::TableSink table(std::cout);
    std::vector<engine::RowSink*> sinks{&rows, &table};
    engine::run_experiment(spec, sinks);
    std::cout << "\n";

    // Scenario columns end with: ..., ||muQ - mu||_inf,
    // max |closed - power|, norm identity.
    for (const std::vector<std::string>& row : rows.rows()) {
      const double residual = std::stod(row[row.size() - 3]);
      const double max_dev = std::stod(row[row.size() - 2]);
      all_good = all_good && residual < 1e-13 && max_dev < 1e-7;
    }
  }
  std::cout << (all_good
                    ? "Lemma 5.7 verified: closed form is stationary to "
                      "machine precision on every case.\n"
                    : "MISMATCH detected -- closed form is not stationary "
                      "somewhere!\n");
  return all_good ? 0 : 1;
}
