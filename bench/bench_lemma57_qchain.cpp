// L57 -- Lemma 5.7: the Q-chain (two correlated walks) on d-regular
// graphs has the exact three-value stationary distribution
//   mu_0 = 2k(d-1) ell,  mu_1 = (d-1) gamma ell,  mu_+ = (d gamma - 2 a k) ell
// with gamma = k(1+a) - (1-a).  For each (graph, k, alpha) we build the
// exact n^2-state transition matrix and report
//   * the closed form's stationarity residual ||mu Q - mu||_inf,
//   * the max deviation from the power-iteration stationary vector,
//   * the normalisation identity n mu0 + nd mu1 + n(n-d-1) mu+ = 1.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/qchain.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "L57: Q-chain stationary distribution (Lemma 5.7)",
      "Exact transition matrices from the walk semantics (Eqs. 14-21); "
      "closed form must satisfy mu Q = mu to machine precision.");

  struct Case {
    std::string family;
    NodeId n;
    std::int64_t k;
    double alpha;
  };
  const std::vector<Case> cases{
      {"cycle", 8, 1, 0.5},    {"cycle", 8, 2, 0.25},
      {"cycle", 12, 2, 0.75},  {"complete", 6, 1, 0.5},
      {"complete", 6, 3, 0.5}, {"complete", 6, 5, 0.9},
      {"hypercube", 8, 1, 0.5},{"hypercube", 8, 3, 0.3},
      {"torus", 9, 2, 0.6},    {"torus", 9, 4, 0.4},
      {"random_regular_4", 12, 1, 0.5},
      {"random_regular_4", 12, 4, 0.2},
  };

  Table table({"graph", "k", "alpha", "mu0", "mu1", "mu+",
               "||muQ - mu||_inf", "max |closed - power|", "norm identity"});
  bool all_good = true;
  for (const auto& c : cases) {
    const Graph g = bench::make_graph(c.family, c.n);
    if (c.k > g.min_degree()) {
      continue;
    }
    QChain chain(g, c.alpha, c.k);
    const auto values = q_stationary_closed_form(
        g.node_count(), g.min_degree(), c.k, c.alpha);
    const double residual = chain.closed_form_residual();
    const auto numerical = chain.numerical_stationary(1e-13, 4000000);
    const auto closed = chain.closed_form_stationary();
    double max_dev = 0.0;
    for (std::size_t s = 0; s < closed.size(); ++s) {
      max_dev = std::max(max_dev,
                         std::abs(closed[s] - numerical.distribution[s]));
    }
    const double d = g.min_degree();
    const double norm_identity =
        g.node_count() * values.mu0 + g.node_count() * d * values.mu1 +
        g.node_count() * (g.node_count() - d - 1) * values.mu_plus;
    all_good = all_good && residual < 1e-13 && max_dev < 1e-7;
    table.new_row()
        .add(g.name())
        .add(c.k)
        .add(c.alpha, 2)
        .add_sci(values.mu0, 4)
        .add_sci(values.mu1, 4)
        .add_sci(values.mu_plus, 4)
        .add_sci(residual, 2)
        .add_sci(max_dev, 2)
        .add_fixed(norm_identity, 12);
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << (all_good
                    ? "Lemma 5.7 verified: closed form is stationary to "
                      "machine precision on every case.\n"
                    : "MISMATCH detected -- closed form is not stationary "
                      "somewhere!\n");
  return all_good ? 0 : 1;
}
