// T24-1 -- Theorem 2.4(1): EdgeModel eps-convergence time is
//   T = O( m log(n ||xi(0)||^2 / eps) / lambda_2(L) ).
// Emphasis on irregular graphs (star, double star, barbell, lollipop,
// preferential attachment), where the EdgeModel genuinely differs from
// the NodeModel; regular controls included.  'T predicted' inverts the
// exact Prop. D.1(ii) per-step contraction of phi_V.
//
// Driver: the engine's `thm24_edge_convergence` scenario -- the
// Laplacian eigensolve of every cell runs on the pool next to the
// replicas.  Equivalent to
//   opindyn run --scenario=thm24_edge_convergence --n=24 --replicas=30
//       --eps=1e-8 --init=uniform --init-a=-1 --init-b=1
//       --sweep=graph:star,double_star,barbell,...
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T24-1: EdgeModel convergence time (Theorem 2.4(1))",
      "EdgeModel, uniform xi(0) centered, eps = 1e-8 on phi_V.  "
      "'T predicted' = exact Prop. D.1(ii) contraction inverted; "
      "'theorem scale' = m log(n||xi||^2/eps)/lambda2(L).");

  engine::ExperimentSpec spec;
  spec.scenario = "thm24_edge_convergence";
  spec.graph.n = 24;
  spec.initial.distribution = "uniform";
  spec.initial.param_a = -1.0;
  spec.initial.param_b = 1.0;
  spec.initial.seed = 5;
  spec.initial.center = "plain";
  spec.model.alpha = 0.5;
  spec.replicas = 30;
  spec.seed = 77;
  spec.convergence.epsilon = 1e-8;
  spec.sweeps = {{"graph",
                  {"star", "double_star", "barbell", "lollipop",
                   "pref_attach", "binary_tree", "cycle", "complete"}}};

  const bench::Stopwatch timer;
  engine::run_experiment_with_default_sinks(spec);
  std::cout << "(grid: " << timer.seconds() << " s)\n\n";

  bench::print_reading(
      "measured/predicted stays O(1) (and <= ~1, the prediction being an "
      "upper bound) across irregular and regular families alike; the "
      "theorem column dominates everywhere.");
  return 0;
}
