// T24-1 -- Theorem 2.4(1): EdgeModel eps-convergence time is
//   T = O( m log(n ||xi(0)||^2 / eps) / lambda_2(L) ).
// Emphasis on irregular graphs (star, double star, barbell, lollipop,
// preferential attachment), where the EdgeModel genuinely differs from
// the NodeModel; regular controls included.  'predicted' inverts the
// exact Prop. D.1(ii) per-step contraction of phi_V.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/spectral/spectra.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;
}  // namespace

int main() {
  bench::print_header(
      "T24-1: EdgeModel convergence time (Theorem 2.4(1))",
      "EdgeModel, uniform xi(0) centered, eps = 1e-8 on phi_V.  "
      "'predicted' = exact Prop. D.1(ii) contraction inverted; 'theorem' = "
      "m log(n||xi||^2/eps)/lambda2(L).");

  const double eps = 1e-8;
  Table table({"graph", "n", "m", "lambda2(L)", "T measured", "+-CI",
               "T predicted (D.1)", "theorem scale", "meas/pred"});
  for (const std::string family :
       {"star", "double_star", "barbell", "lollipop", "pref_attach",
        "binary_tree", "cycle", "complete"}) {
    const Graph g = bench::make_graph(family, 24);
    const double lambda2 = laplacian_spectrum(g).lambda2;
    Rng init_rng(5);
    auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
    initial::center_plain(xi);

    ModelConfig config;
    config.kind = ModelKind::edge;
    config.alpha = 0.5;
    MonteCarloOptions options;
    options.replicas = 30;
    options.seed = 77;
    options.convergence.epsilon = eps;
    options.convergence.use_plain_potential = true;
    const MonteCarloResult result = monte_carlo(g, config, xi, options);

    OpinionState probe(g, xi);
    const double rho =
        theory::edge_model_rho(lambda2, 0.5, g.edge_count(), false);
    const double predicted =
        theory::steps_to_epsilon(rho, probe.phi_plain_exact(), eps);
    const double theorem = theory::edge_convergence_bound(
        g.node_count(), g.edge_count(), initial::l2_squared(xi), eps,
        lambda2);
    table.new_row()
        .add(g.name())
        .add(static_cast<std::int64_t>(g.node_count()))
        .add(g.edge_count())
        .add_sci(lambda2, 3)
        .add_fixed(result.steps.mean(), 0)
        .add_fixed(result.steps.mean_ci_halfwidth(), 0)
        .add_fixed(predicted, 0)
        .add_fixed(theorem, 0)
        .add_fixed(result.steps.mean() / predicted, 3);
  }
  std::cout << table.to_markdown() << "\n";
  std::cout << "Reading: measured/predicted stays O(1) (and <= ~1, the "
               "prediction being an upper bound) across irregular and "
               "regular families alike; the theorem column dominates "
               "everywhere.\n";
  return 0;
}
