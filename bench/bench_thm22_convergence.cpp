// T22-1 -- Theorem 2.2(1): NodeModel eps-convergence time is
//   T = O( n log(n ||xi(0)||^2 / eps) / (1 - lambda_2(P)) )   w.h.p.
// for the lazy model, P the lazy random-walk matrix.
//
// Three tables:
//  (a) graph-family sweep at fixed n: measured mean T_eps vs the exact
//      per-step prediction from Prop. B.1 and vs the Theorem's scale.
//      The measured/predicted ratio must stay O(1) across families.
//  (b) size sweep on cycle & complete: the ratio stays flat as n grows
//      (the bound captures the true growth rate).
//  (c) k sweep: the weak (1 + 1/k) dependence noted after Theorem 2.2.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/initial_values.h"
#include "src/core/montecarlo.h"
#include "src/core/theory.h"
#include "src/spectral/spectra.h"
#include "src/support/table.h"

namespace {

using namespace opindyn;

struct Row {
  std::string label;
  double measured;
  double ci;
  double predicted;
  double theorem_scale;
};

Row run_case(const Graph& g, double alpha, std::int64_t k, double eps,
             std::int64_t replicas, std::uint64_t seed) {
  const auto spec = lazy_walk_spectrum(g);
  const auto xi = bench::centered_rademacher(g, seed);

  ModelConfig config;
  config.alpha = alpha;
  config.k = k;
  config.lazy = true;
  MonteCarloOptions options;
  options.replicas = replicas;
  options.seed = seed;
  options.convergence.epsilon = eps;
  const MonteCarloResult result = monte_carlo(g, config, xi, options);

  OpinionState probe(g, xi);
  const double rho =
      theory::node_model_rho(spec.lambda2, alpha, k, g.node_count(), true);
  Row row;
  row.label = g.name();
  row.measured = result.steps.mean();
  row.ci = result.steps.mean_ci_halfwidth();
  row.predicted = theory::steps_to_epsilon(rho, probe.phi_exact(), eps);
  row.theorem_scale = theory::node_convergence_bound(
      g.node_count(), initial::l2_squared(xi), eps, spec.lambda2);
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "T22-1: NodeModel convergence time (Theorem 2.2(1))",
      "Lazy NodeModel, Rademacher xi(0) centered, eps = 1e-8.  "
      "'predicted' = exact Prop. B.1 contraction inverted; "
      "'theorem' = n log(n||xi||^2/eps)/(1-lambda2(P)).  The bound is an "
      "upper bound: measured/predicted must be O(1) and <= ~1.");

  const double eps = 1e-8;
  const std::int64_t replicas = 30;

  std::cout << "## (a) graph families, n ~ 32, k = 1\n\n";
  Table table({"graph", "alpha", "1-l2(P)", "T measured", "+-CI",
               "T predicted (B.1)", "theorem scale", "meas/pred"});
  for (const std::string family :
       {"cycle", "complete", "hypercube", "torus", "random_regular_4",
        "star", "binary_tree", "path"}) {
    const Graph g = bench::make_graph(family, 32);
    const auto spec = lazy_walk_spectrum(g);
    for (const double alpha : {0.3, 0.5, 0.8}) {
      const Row row = run_case(g, alpha, 1, eps, replicas, 1000);
      table.new_row()
          .add(row.label)
          .add(alpha, 2)
          .add_sci(spec.gap, 2)
          .add_fixed(row.measured, 0)
          .add_fixed(row.ci, 0)
          .add_fixed(row.predicted, 0)
          .add_fixed(row.theorem_scale, 0)
          .add_fixed(row.measured / row.predicted, 3);
    }
  }
  std::cout << table.to_markdown() << "\n";

  std::cout << "## (b) size sweep (alpha = 0.5, k = 1): ratio stays flat\n\n";
  Table sizes({"graph", "n", "T measured", "T predicted (B.1)",
               "meas/pred"});
  for (const std::string family : {"cycle", "complete"}) {
    for (const NodeId n : {16, 24, 32, 48, 64}) {
      const Graph g = bench::make_graph(family, n);
      const Row row = run_case(g, 0.5, 1, eps, replicas, 2000);
      sizes.new_row()
          .add(row.label)
          .add(static_cast<std::int64_t>(n))
          .add_fixed(row.measured, 0)
          .add_fixed(row.predicted, 0)
          .add_fixed(row.measured / row.predicted, 3);
    }
  }
  std::cout << sizes.to_markdown() << "\n";

  std::cout << "## (c) k sweep on random 4-regular graph (alpha = 0.5): "
               "weak (1 + 1/k) dependence\n\n";
  Table ks({"graph", "k", "T measured", "T predicted (B.1)", "meas/pred"});
  const Graph rr = bench::make_graph("random_regular_4", 32);
  for (const std::int64_t k : {1, 2, 3, 4}) {
    const Row row = run_case(rr, 0.5, k, eps, replicas, 3000);
    ks.new_row()
        .add(row.label)
        .add(k)
        .add_fixed(row.measured, 0)
        .add_fixed(row.predicted, 0)
        .add_fixed(row.measured / row.predicted, 3);
  }
  std::cout << ks.to_markdown() << "\n";
  return 0;
}
