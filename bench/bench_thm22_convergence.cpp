// T22-1 -- Theorem 2.2(1): NodeModel eps-convergence time is
//   T = O( n log(n ||xi(0)||^2 / eps) / (1 - lambda_2(P)) )   w.h.p.
// for the lazy model, P the lazy random-walk matrix.
//
// Three tables:
//  (a) graph-family sweep at fixed n: measured mean T_eps vs the exact
//      per-step prediction from Prop. B.1 and vs the Theorem's scale.
//      The measured/predicted ratio must stay O(1) across families.
//  (b) size sweep on cycle & complete: the ratio stays flat as n grows
//      (the bound captures the true growth rate).
//  (c) k sweep: the weak (1 + 1/k) dependence noted after Theorem 2.2.
//
// Driver: the scenario engine's `thm22_convergence` scenario, so every
// (cell x replica) unit of a sweep runs concurrently and the spectral
// predictions are computed on the pool -- equivalent to
//   opindyn run --scenario=thm22_convergence --lazy=true --eps=1e-8
//       --replicas=30 --sweep='graph:cycle,complete,...;alpha:0.3,0.5,0.8'
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/engine/runner.h"

namespace {

using namespace opindyn;

engine::ExperimentSpec base_spec(std::uint64_t seed) {
  engine::ExperimentSpec spec;
  spec.scenario = "thm22_convergence";
  spec.initial.distribution = "rademacher";
  spec.initial.seed = seed;
  spec.model.alpha = 0.5;
  spec.model.k = 1;
  spec.model.lazy = true;  // the variant Prop. B.1 is stated for
  spec.replicas = 30;
  spec.seed = seed;
  spec.convergence.epsilon = 1e-8;
  return spec;
}

}  // namespace

int main() {
  bench::print_header(
      "T22-1: NodeModel convergence time (Theorem 2.2(1))",
      "Lazy NodeModel, Rademacher xi(0) centered, eps = 1e-8.  "
      "'T predicted' = exact Prop. B.1 contraction inverted; "
      "'theorem scale' = n log(n||xi||^2/eps)/(1-lambda2(P)).  The bound "
      "is an upper bound: meas/pred must be O(1) and <= ~1.");

  std::cout << "## (a) graph families, n ~ 32, alpha sweep, k = 1\n\n";
  {
    engine::ExperimentSpec spec = base_spec(1000);
    spec.graph.n = 32;
    spec.sweeps = {{"graph",
                    {"cycle", "complete", "hypercube", "torus",
                     "random_regular_4", "star", "binary_tree", "path"}},
                   {"alpha", {"0.3", "0.5", "0.8"}}};
    const bench::Stopwatch timer;
    engine::run_experiment_with_default_sinks(spec);
    std::cout << "(grid: " << timer.seconds() << " s)\n\n";
  }

  std::cout << "## (b) size sweep (alpha = 0.5, k = 1): ratio stays "
               "flat\n\n";
  {
    engine::ExperimentSpec spec = base_spec(2000);
    spec.sweeps = {{"graph", {"cycle", "complete"}},
                   {"n", {"16", "24", "32", "48", "64"}}};
    engine::run_experiment_with_default_sinks(spec);
    std::cout << "\n";
  }

  std::cout << "## (c) k sweep on random 4-regular(32) (alpha = 0.5): "
               "weak (1 + 1/k) dependence\n\n";
  {
    engine::ExperimentSpec spec = base_spec(3000);
    spec.graph.family = "random_regular_4";
    spec.graph.n = 32;
    spec.sweeps = {{"k", {"1", "2", "3", "4"}}};
    engine::run_experiment_with_default_sinks(spec);
  }
  bench::print_reading(
      "meas/pred stays O(1) (and <= ~1) across families, flat in n on "
      "cycle and complete, and flat in k -- the Theorem 2.2(1) scale "
      "tracks the measured growth everywhere.");
  return 0;
}
