// CE2 -- Corollary E.2:
//  (i)   lambda_2(L) >= i(G)^2 / (2 d_max)  (isoperimetric lower bound),
//        checked with the *exact* isoperimetric number on small graphs;
//  (ii)  Var(M(t))  <= t (d_max K / 2m)^2    (NodeModel, early-time),
//  (iii) Var(Avg(t)) <= t K^2 / n^2          (EdgeModel, early-time),
//        checked against Monte-Carlo trajectories.
#include <iostream>
#include <span>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/theory.h"
#include "src/graph/isoperimetric.h"
#include "src/spectral/spectra.h"
#include "src/support/cell_scheduler.h"
#include "src/support/table.h"

namespace {
using namespace opindyn;

/// Var(M(t)) at fixed checkpoints over `replicas` runs, on the shared
/// CellScheduler (replica r draws from Rng::fork(seed, r) -- the same
/// streams the retired monte_carlo_trajectory harness used, so the
/// reported numbers are unchanged; the martingale samples consume no
/// randomness, only the steps do).
std::vector<RunningStats> martingale_at_checkpoints(
    const Graph& g, const ModelConfig& config,
    const std::vector<double>& xi,
    const std::vector<std::int64_t>& checkpoints, std::int64_t replicas,
    std::uint64_t seed) {
  CellScheduler scheduler;
  return scheduler.run(
      replicas, seed, checkpoints.size(),
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(g, config, xi);
        for (std::size_t c = 0; c < checkpoints.size(); ++c) {
          while (process->time() < checkpoints[c]) {
            process->step(rng);
          }
          out[c] = config.kind == ModelKind::edge
                       ? process->state().average()
                       : process->state().weighted_average();
        }
      });
}
}  // namespace

int main() {
  bench::print_header(
      "CE2: Corollary E.2 bounds",
      "(i) Cheeger-style spectral bound with exact i(G); "
      "(ii)/(iii) early-time variance envelopes, 4000 replicas.");

  std::cout << "## (i) lambda2(L) >= i(G)^2 / (2 d_max)\n\n";
  Table cheeger({"graph", "i(G) exact", "d_max", "bound i^2/(2 d_max)",
                 "lambda2(L)", "holds"});
  bool all_hold = true;
  for (const std::string family :
       {"cycle", "complete", "star", "path", "hypercube", "barbell",
        "lollipop", "binary_tree"}) {
    const Graph g = bench::make_graph(family, 16);
    const double ig = isoperimetric_number_exact(g);
    const double bound =
        theory::cheeger_lambda2_lower_bound(ig, g.max_degree());
    const double lambda2 = laplacian_spectrum(g).lambda2;
    const bool holds = lambda2 + 1e-12 >= bound;
    all_hold = all_hold && holds;
    cheeger.new_row()
        .add(g.name())
        .add_fixed(ig, 4)
        .add(static_cast<std::int64_t>(g.max_degree()))
        .add_sci(bound, 3)
        .add_sci(lambda2, 3)
        .add(holds ? "yes" : "NO");
  }
  std::cout << cheeger.to_markdown() << "\n";

  std::cout << "## (ii) NodeModel: Var(M(t)) <= t (d_max K / 2m)^2\n\n";
  const Graph g = bench::make_graph("lollipop", 16);
  Rng init_rng(3);
  auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
  initial::center_degree_weighted(g, xi);
  OpinionState probe(g, xi);
  const double k_discrepancy = probe.discrepancy();

  ModelConfig node_config;
  node_config.alpha = 0.5;
  node_config.k = 1;
  const std::vector<std::int64_t> checkpoints{16, 64, 256, 1024, 4096};
  const std::vector<RunningStats> node_traj =
      martingale_at_checkpoints(g, node_config, xi, checkpoints, 4000, 7);
  Table var_m({"t", "Var(M(t)) measured", "bound t (d_max K/2m)^2",
               "ratio"});
  bool env_ok = true;
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    const double measured = node_traj[i].population_variance();
    const double bound = theory::node_var_m_time_bound(
        checkpoints[i], k_discrepancy, g.max_degree(), g.edge_count());
    env_ok = env_ok && measured <= bound;
    var_m.new_row()
        .add(checkpoints[i])
        .add_sci(measured, 3)
        .add_sci(bound, 3)
        .add_fixed(measured / bound, 4);
  }
  std::cout << var_m.to_markdown() << "\n";

  std::cout << "## (iii) EdgeModel: Var(Avg(t)) <= t K^2 / n^2\n\n";
  ModelConfig edge_config;
  edge_config.kind = ModelKind::edge;
  edge_config.alpha = 0.5;
  auto xi_edge = xi;
  initial::center_plain(xi_edge);
  OpinionState probe_edge(g, xi_edge);
  const double k_edge = probe_edge.discrepancy();
  const std::vector<RunningStats> edge_traj = martingale_at_checkpoints(
      g, edge_config, xi_edge, checkpoints, 4000, 9);
  Table var_avg({"t", "Var(Avg(t)) measured", "bound t K^2/n^2", "ratio"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    const double measured = edge_traj[i].population_variance();
    const double bound = theory::edge_var_avg_time_bound(
        checkpoints[i], k_edge, g.node_count());
    env_ok = env_ok && measured <= bound;
    var_avg.new_row()
        .add(checkpoints[i])
        .add_sci(measured, 3)
        .add_sci(bound, 3)
        .add_fixed(measured / bound, 4);
  }
  std::cout << var_avg.to_markdown() << "\n";
  std::cout << ((all_hold && env_ok)
                    ? "All Corollary E.2 bounds hold.\n"
                    : "BOUND VIOLATION detected!\n");
  return (all_hold && env_ok) ? 0 : 1;
}
