#include "src/spectral/power_iteration.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(PowerIteration, TwoStateChainClosedForm) {
  // P = [[1-a, a], [b, 1-b]] has stationary (b, a)/(a+b).
  const double a = 0.3;
  const double b = 0.1;
  Matrix p(2, 2);
  p.at(0, 0) = 1 - a;
  p.at(0, 1) = a;
  p.at(1, 0) = b;
  p.at(1, 1) = 1 - b;
  const auto result = stationary_distribution(p);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.distribution[0], b / (a + b), 1e-10);
  EXPECT_NEAR(result.distribution[1], a / (a + b), 1e-10);
  EXPECT_LT(result.residual, 1e-12);
}

TEST(PowerIteration, LazyWalkStationaryIsDegreeProportional) {
  const Graph g = gen::lollipop(4, 3);
  const Matrix p = lazy_walk_matrix(g);
  const auto result = stationary_distribution(p);
  ASSERT_TRUE(result.converged);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_NEAR(result.distribution[static_cast<std::size_t>(u)],
                g.stationary(u), 1e-9);
  }
}

TEST(PowerIteration, DistributionSumsToOne) {
  const Graph g = gen::petersen();
  const auto result = stationary_distribution(lazy_walk_matrix(g));
  double total = 0.0;
  for (const double x : result.distribution) {
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PowerIteration, RejectsNonStochastic) {
  Matrix bad(2, 2, 0.3);
  EXPECT_THROW(stationary_distribution(bad), ContractError);
}

TEST(PowerIteration, NonReversibleChain) {
  // A 3-cycle with drift: pi exists though detailed balance fails.
  Matrix p(3, 3, 0.0);
  p.at(0, 1) = 0.9;
  p.at(0, 0) = 0.1;
  p.at(1, 2) = 0.9;
  p.at(1, 1) = 0.1;
  p.at(2, 0) = 0.9;
  p.at(2, 2) = 0.1;
  const auto result = stationary_distribution(p);
  ASSERT_TRUE(result.converged);
  for (const double x : result.distribution) {
    EXPECT_NEAR(x, 1.0 / 3.0, 1e-10);  // symmetric drift -> uniform
  }
}

}  // namespace
}  // namespace opindyn
