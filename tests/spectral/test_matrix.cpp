#include "src/spectral/matrix.h"

#include <gtest/gtest.h>

#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(Matrix, IdentityAndIndexing) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i.rows(), 3u);
  EXPECT_EQ(i.cols(), 3u);
  EXPECT_DOUBLE_EQ(i.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i.at(0, 1), 0.0);
  EXPECT_THROW(i.at(3, 0), ContractError);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a.at(r, c) = v++;
    }
  }
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      b.at(r, c) = v++;
    }
  }
  const Matrix ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(ab.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(ab.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(ab.at(1, 1), 154.0);
}

TEST(Matrix, MatrixVectorAndVectorMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const std::vector<double> x{1.0, -1.0};
  const auto ax = a.multiply(x);
  EXPECT_DOUBLE_EQ(ax[0], -1.0);
  EXPECT_DOUBLE_EQ(ax[1], -1.0);
  const auto xa = a.left_multiply(x);
  EXPECT_DOUBLE_EQ(xa[0], -2.0);
  EXPECT_DOUBLE_EQ(xa[1], -2.0);
}

TEST(Matrix, TransposeAndDefects) {
  Matrix a(2, 2);
  a.at(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(a.symmetry_defect(), 5.0);
  const Matrix at = a.transposed();
  EXPECT_DOUBLE_EQ(at.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(at.at(0, 1), 0.0);

  Matrix p(2, 2);
  p.at(0, 0) = 0.25;
  p.at(0, 1) = 0.75;
  p.at(1, 0) = 0.5;
  p.at(1, 1) = 0.5;
  EXPECT_NEAR(p.stochasticity_defect(), 0.0, 1e-15);
  p.at(1, 1) = 0.6;
  EXPECT_NEAR(p.stochasticity_defect(), 0.1, 1e-12);
}

TEST(Matrix, FrobeniusDistance) {
  const Matrix a = Matrix::identity(2);
  Matrix b = Matrix::identity(2);
  b.at(0, 1) = 3.0;
  b.at(1, 0) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_distance(b), 5.0);
}

TEST(VectorOps, NormDotScaleAxpy) {
  std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
  scale(v, 2.0);
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  std::vector<double> y{1.0, 1.0};
  axpy(0.5, v, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_THROW(dot(v, std::vector<double>{1.0}), ContractError);
}

}  // namespace
}  // namespace opindyn
