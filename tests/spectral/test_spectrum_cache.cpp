// SpectrumCache / GraphSpectra: one eigensolve per graph and spectrum
// kind, lazily and under concurrency; shared records per cache key; the
// memoised values match the direct solvers bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/spectral/spectrum_cache.h"

namespace opindyn {
namespace {

TEST(GraphSpectra, SolvesEachKindLazilyAndOnce) {
  GraphSpectra spectra(std::make_shared<const Graph>(gen::cycle(8)));
  EXPECT_EQ(spectra.solves(), 0);  // nothing solved until asked

  const WalkSpectrum& walk = spectra.walk();
  EXPECT_EQ(spectra.solves(), 1);
  const LaplacianSpectrum& laplacian = spectra.laplacian();
  EXPECT_EQ(spectra.solves(), 2);

  // Repeat accesses are memo hits, never new solves.
  EXPECT_EQ(&spectra.walk(), &walk);
  EXPECT_EQ(&spectra.laplacian(), &laplacian);
  EXPECT_EQ(spectra.solves(), 2);
  EXPECT_EQ(spectra.hits(), 2);
}

TEST(GraphSpectra, ValuesMatchTheDirectSolvers) {
  const auto graph = std::make_shared<const Graph>(gen::petersen());
  GraphSpectra spectra(graph);
  const WalkSpectrum direct_walk = lazy_walk_spectrum(*graph);
  const LaplacianSpectrum direct_lap = laplacian_spectrum(*graph);
  // The record runs the identical deterministic solver, so the values
  // are bitwise equal -- the cache can never change golden outputs.
  EXPECT_EQ(spectra.walk().lambda2, direct_walk.lambda2);
  EXPECT_EQ(spectra.walk().f2, direct_walk.f2);
  EXPECT_EQ(spectra.laplacian().lambda2, direct_lap.lambda2);
  EXPECT_EQ(spectra.laplacian().f2, direct_lap.f2);
}

TEST(GraphSpectra, ConcurrentAccessorsSolveExactlyOnce) {
  GraphSpectra spectra(std::make_shared<const Graph>(gen::complete(24)));
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&spectra] {
      // Latecomers block on the once-latch and then read the memo.
      EXPECT_GT(spectra.walk().lambda2, 0.0);
      EXPECT_GT(spectra.laplacian().lambda2, 0.0);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(spectra.solves(), 2);
  EXPECT_EQ(spectra.hits(), 14);  // 8 accesses per kind, 1 solve each
}

TEST(SpectrumCache, SharesOneRecordPerKey) {
  SpectrumCache cache;
  const auto cycle = std::make_shared<const Graph>(gen::cycle(8));
  const auto star = std::make_shared<const Graph>(gen::star(8));

  const auto a = cache.get("cycle;8", cycle);
  const auto b = cache.get("cycle;8", cycle);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  const auto c = cache.get("star;8", star);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);

  // get() never solves anything; only accessor use does.
  EXPECT_EQ(cache.eigensolves(), 0);
  a->walk();
  b->walk();  // same record: second access is a spectrum hit
  c->laplacian();
  EXPECT_EQ(cache.eigensolves(), 2);
  EXPECT_EQ(cache.spectrum_hits(), 1);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.eigensolves(), 0);
  // Records already handed out survive a clear (shared ownership).
  EXPECT_EQ(a->graph().node_count(), 8);
}


TEST(SpectrumCache, EntryCapEvictsLeastRecentlyUsedRecord) {
  SpectrumCache cache(CacheLimits{2, 0});
  const auto a =
      cache.get("c8", std::make_shared<const Graph>(gen::cycle(8)));
  a->walk();  // one eigensolve lives in this record
  cache.get("c12", std::make_shared<const Graph>(gen::cycle(12)));
  // Touch "c8" so "c12" is the LRU victim.
  cache.get("c8", std::make_shared<const Graph>(gen::cycle(8)));
  cache.get("c16", std::make_shared<const Graph>(gen::cycle(16)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  // Eviction retires the record but never loses the cumulative solve
  // counters, and holders keep the record alive.
  EXPECT_EQ(cache.eigensolves(), 1);
  EXPECT_EQ(a->graph().node_count(), 8);

  const std::int64_t misses_before = cache.misses();
  cache.get("c12", std::make_shared<const Graph>(gen::cycle(12)));
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(SpectrumCache, ByteCapCountsSolvedSpectraLazily) {
  // Records grow when a spectrum is actually solved, so the byte cap
  // must be re-evaluated against current record sizes on admission.
  // Measure two fully-solved records to pick a cap that holds either
  // one alone but not both together.
  GraphSpectra probe8(std::make_shared<const Graph>(gen::cycle(8)));
  probe8.walk();
  probe8.laplacian();
  GraphSpectra probe32(std::make_shared<const Graph>(gen::cycle(32)));
  probe32.walk();
  probe32.laplacian();
  const std::uint64_t cap =
      probe8.memory_bytes() + probe32.memory_bytes() - 1;

  SpectrumCache cache(CacheLimits{0, cap});
  const auto a =
      cache.get("c8", std::make_shared<const Graph>(gen::cycle(8)));
  const std::uint64_t empty_bytes = cache.resident_bytes();
  ASSERT_GT(empty_bytes, 0u);
  a->walk();
  a->laplacian();
  EXPECT_GT(cache.resident_bytes(), empty_bytes);
  const auto b =
      cache.get("c32", std::make_shared<const Graph>(gen::cycle(32)));
  b->walk();
  b->laplacian();
  EXPECT_EQ(cache.evictions(), 0);  // nothing admitted since the growth

  // This admission sees the grown total and evicts the LRU record a.
  cache.get("c12", std::make_shared<const Graph>(gen::cycle(12)));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_LE(cache.resident_bytes(), cap);
  // The retired record keeps its cumulative counters in the cache
  // totals and stays usable through the holder's pointer.
  EXPECT_EQ(cache.eigensolves(), 4);
  EXPECT_EQ(a->graph().node_count(), 8);
}

TEST(SpectrumCache, ByteCapEnforcedOnHitsWithoutNewAdmissions) {
  // A warm serve process can keep hitting the same keys while lazy
  // solves grow resident bytes past the cap; enforcement must not wait
  // for a new key to arrive.
  GraphSpectra probe8(std::make_shared<const Graph>(gen::cycle(8)));
  probe8.walk();
  probe8.laplacian();
  GraphSpectra probe32(std::make_shared<const Graph>(gen::cycle(32)));
  probe32.walk();
  probe32.laplacian();
  const std::uint64_t cap =
      probe8.memory_bytes() + probe32.memory_bytes() - 1;

  SpectrumCache cache(CacheLimits{0, cap});
  const auto a =
      cache.get("c8", std::make_shared<const Graph>(gen::cycle(8)));
  const auto b =
      cache.get("c32", std::make_shared<const Graph>(gen::cycle(32)));
  a->walk();
  a->laplacian();
  b->walk();
  b->laplacian();
  EXPECT_EQ(cache.evictions(), 0);  // growth alone never evicts

  // A plain hit on the warm key sees the grown total; the hit record
  // is pinned, so the LRU record a is the victim.
  cache.get("c32", std::make_shared<const Graph>(gen::cycle(32)));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_LE(cache.resident_bytes(), cap);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(a->graph().node_count(), 8);
}

}  // namespace
}  // namespace opindyn
