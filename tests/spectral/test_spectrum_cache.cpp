// SpectrumCache / GraphSpectra: one eigensolve per graph and spectrum
// kind, lazily and under concurrency; shared records per cache key; the
// memoised values match the direct solvers bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/spectral/spectrum_cache.h"

namespace opindyn {
namespace {

TEST(GraphSpectra, SolvesEachKindLazilyAndOnce) {
  GraphSpectra spectra(std::make_shared<const Graph>(gen::cycle(8)));
  EXPECT_EQ(spectra.solves(), 0);  // nothing solved until asked

  const WalkSpectrum& walk = spectra.walk();
  EXPECT_EQ(spectra.solves(), 1);
  const LaplacianSpectrum& laplacian = spectra.laplacian();
  EXPECT_EQ(spectra.solves(), 2);

  // Repeat accesses are memo hits, never new solves.
  EXPECT_EQ(&spectra.walk(), &walk);
  EXPECT_EQ(&spectra.laplacian(), &laplacian);
  EXPECT_EQ(spectra.solves(), 2);
  EXPECT_EQ(spectra.hits(), 2);
}

TEST(GraphSpectra, ValuesMatchTheDirectSolvers) {
  const auto graph = std::make_shared<const Graph>(gen::petersen());
  GraphSpectra spectra(graph);
  const WalkSpectrum direct_walk = lazy_walk_spectrum(*graph);
  const LaplacianSpectrum direct_lap = laplacian_spectrum(*graph);
  // The record runs the identical deterministic solver, so the values
  // are bitwise equal -- the cache can never change golden outputs.
  EXPECT_EQ(spectra.walk().lambda2, direct_walk.lambda2);
  EXPECT_EQ(spectra.walk().f2, direct_walk.f2);
  EXPECT_EQ(spectra.laplacian().lambda2, direct_lap.lambda2);
  EXPECT_EQ(spectra.laplacian().f2, direct_lap.f2);
}

TEST(GraphSpectra, ConcurrentAccessorsSolveExactlyOnce) {
  GraphSpectra spectra(std::make_shared<const Graph>(gen::complete(24)));
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&spectra] {
      // Latecomers block on the once-latch and then read the memo.
      EXPECT_GT(spectra.walk().lambda2, 0.0);
      EXPECT_GT(spectra.laplacian().lambda2, 0.0);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(spectra.solves(), 2);
  EXPECT_EQ(spectra.hits(), 14);  // 8 accesses per kind, 1 solve each
}

TEST(SpectrumCache, SharesOneRecordPerKey) {
  SpectrumCache cache;
  const auto cycle = std::make_shared<const Graph>(gen::cycle(8));
  const auto star = std::make_shared<const Graph>(gen::star(8));

  const auto a = cache.get("cycle;8", cycle);
  const auto b = cache.get("cycle;8", cycle);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  const auto c = cache.get("star;8", star);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);

  // get() never solves anything; only accessor use does.
  EXPECT_EQ(cache.eigensolves(), 0);
  a->walk();
  b->walk();  // same record: second access is a spectrum hit
  c->laplacian();
  EXPECT_EQ(cache.eigensolves(), 2);
  EXPECT_EQ(cache.spectrum_hits(), 1);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.eigensolves(), 0);
  // Records already handed out survive a clear (shared ownership).
  EXPECT_EQ(a->graph().node_count(), 8);
}

}  // namespace
}  // namespace opindyn
