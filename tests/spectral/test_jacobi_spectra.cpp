#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/graph/generators.h"
#include "src/spectral/jacobi.h"
#include "src/spectral/lanczos.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

constexpr double pi = std::numbers::pi;

TEST(Jacobi, DiagonalMatrixIsItsOwnSpectrum) {
  Matrix a(3, 3, 0.0);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = -1.0;
  a.at(2, 2) = 2.0;
  const auto eig = jacobi_eigen(a);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Jacobi, TwoByTwoClosedForm) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-13);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-13);
}

TEST(Jacobi, EigenvectorsSatisfyDefinitionAndOrthonormality) {
  const Graph g = gen::petersen();
  const Matrix l = laplacian_matrix(g);
  const auto eig = jacobi_eigen(l);
  const std::size_t n = l.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const auto lv = l.multiply(eig.vectors[k]);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(lv[i], eig.values[k] * eig.vectors[k][i], 1e-9);
    }
    EXPECT_NEAR(norm2(eig.vectors[k]), 1.0, 1e-10);
    for (std::size_t j = k + 1; j < n; ++j) {
      EXPECT_NEAR(dot(eig.vectors[k], eig.vectors[j]), 0.0, 1e-9);
    }
  }
}

TEST(Jacobi, RejectsAsymmetric) {
  Matrix a(2, 2, 0.0);
  a.at(0, 1) = 1.0;
  EXPECT_THROW(jacobi_eigen(a), ContractError);
}

TEST(LaplacianSpectrum, CycleClosedForm) {
  // lambda_j(L) of C_n = 2 - 2 cos(2 pi j / n).
  for (const NodeId n : {5, 8, 12}) {
    const auto spec = laplacian_spectrum(gen::cycle(n));
    EXPECT_NEAR(spec.values.front(), 0.0, 1e-10);
    EXPECT_NEAR(spec.lambda2, 2.0 - 2.0 * std::cos(2.0 * pi / n), 1e-10);
    EXPECT_NEAR(spec.values.back(),
                n % 2 == 0 ? 4.0
                           : 2.0 - 2.0 * std::cos(pi * (n - 1) / n),
                1e-9);
  }
}

TEST(LaplacianSpectrum, CompleteGraphClosedForm) {
  // K_n: eigenvalues 0 and n (n-1 times).
  const auto spec = laplacian_spectrum(gen::complete(7));
  EXPECT_NEAR(spec.values.front(), 0.0, 1e-10);
  for (std::size_t i = 1; i < spec.values.size(); ++i) {
    EXPECT_NEAR(spec.values[i], 7.0, 1e-10);
  }
}

TEST(LaplacianSpectrum, StarClosedForm) {
  // S_n (n nodes): eigenvalues 0, 1 (n-2 times), n.
  const auto spec = laplacian_spectrum(gen::star(8));
  EXPECT_NEAR(spec.values[0], 0.0, 1e-10);
  EXPECT_NEAR(spec.lambda2, 1.0, 1e-10);
  EXPECT_NEAR(spec.values.back(), 8.0, 1e-10);
}

TEST(LaplacianSpectrum, HypercubeClosedForm) {
  // Q_d: eigenvalues 2i with multiplicity C(d, i); lambda2 = 2.
  const auto spec = laplacian_spectrum(gen::hypercube(3));
  EXPECT_NEAR(spec.lambda2, 2.0, 1e-10);
  EXPECT_NEAR(spec.values.back(), 6.0, 1e-10);
}

TEST(LaplacianSpectrum, PathClosedForm) {
  // P_n: lambda_2 = 2 - 2 cos(pi / n).
  const auto spec = laplacian_spectrum(gen::path(10));
  EXPECT_NEAR(spec.lambda2, 2.0 - 2.0 * std::cos(pi / 10.0), 1e-10);
}

TEST(WalkSpectrum, LazyWalkTopEigenvalueIsOne) {
  for (const auto& g :
       {gen::cycle(9), gen::complete(6), gen::star(7), gen::petersen()}) {
    const auto spec = lazy_walk_spectrum(g);
    EXPECT_NEAR(spec.values.back(), 1.0, 1e-10) << g.name();
    EXPECT_GT(spec.gap, 0.0) << g.name();
    // Lazy walk spectrum lies in [0, 1].
    EXPECT_GE(spec.values.front(), -1e-10) << g.name();
  }
}

TEST(WalkSpectrum, RegularGraphRelationToLaplacian) {
  // For d-regular graphs: 1 - lambda2(P_lazy) = lambda2(L) / (2d)
  // (the factor-d remark after Theorem 2.4).
  for (const auto& g : {gen::cycle(10), gen::complete(8), gen::hypercube(3),
                        gen::petersen(), gen::torus(3, 4)}) {
    ASSERT_TRUE(g.is_regular());
    const double d = g.min_degree();
    const auto walk = lazy_walk_spectrum(g);
    const auto lap = laplacian_spectrum(g);
    EXPECT_NEAR(walk.gap, lap.lambda2 / (2.0 * d), 1e-9) << g.name();
  }
}

TEST(WalkSpectrum, F2IsAnEigenvectorOfP) {
  const Graph g = gen::cycle(7);
  const auto spec = lazy_walk_spectrum(g);
  const Matrix p = lazy_walk_matrix(g);
  const auto pf = p.multiply(spec.f2);
  for (std::size_t i = 0; i < pf.size(); ++i) {
    EXPECT_NEAR(pf[i], spec.lambda2 * spec.f2[i], 1e-9);
  }
  // Normalised under <.,.>_pi.
  double pi_norm = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    pi_norm += g.stationary(u) * spec.f2[static_cast<std::size_t>(u)] *
               spec.f2[static_cast<std::size_t>(u)];
  }
  EXPECT_NEAR(pi_norm, 1.0, 1e-10);
}

TEST(WalkMatrix, RowStochastic) {
  for (const auto& g : {gen::star(6), gen::lollipop(4, 3)}) {
    EXPECT_NEAR(walk_matrix(g).stochasticity_defect(), 0.0, 1e-12);
    EXPECT_NEAR(lazy_walk_matrix(g).stochasticity_defect(), 0.0, 1e-12);
  }
}

TEST(Lanczos, MatchesJacobiLambda2OnMediumGraphs) {
  // Full-dimension Krylov spaces: Lanczos with complete
  // reorthogonalisation is then an exact tridiagonalisation.
  for (const auto& g : {gen::cycle(64), gen::torus(6, 6),
                        gen::complete_bipartite(10, 14)}) {
    const double dense = laplacian_spectrum(g).lambda2;
    const double sparse = laplacian_lambda2_lanczos(
        g, static_cast<std::size_t>(g.node_count()));
    EXPECT_NEAR(sparse, dense, 1e-7) << g.name();
  }
}

TEST(Lanczos, PartialKrylovUpperBoundsLambda2) {
  // With a truncated Krylov space the smallest Ritz value can only
  // overestimate lambda_2 (min-max), and on an expander-like graph (good
  // separation) it should already be close.
  const Graph g = gen::hypercube(7);  // n = 128, lambda2(L) = 2, isolated
  const double expected = 2.0;
  const double computed = laplacian_lambda2_lanczos(g, 40);
  EXPECT_GE(computed + 1e-9, expected);
  EXPECT_NEAR(computed, expected, 0.02);
}

TEST(Lanczos, LargeCycleFullDimensionIsExact) {
  const Graph g = gen::cycle(300);
  const double expected = 2.0 - 2.0 * std::cos(2.0 * pi / 300.0);
  const double computed = laplacian_lambda2_lanczos(g, 300);
  EXPECT_NEAR(computed, expected, expected * 1e-6);
}

class SpectrumSizes : public ::testing::TestWithParam<NodeId> {};

TEST_P(SpectrumSizes, CycleLambda2MatchesClosedFormAcrossSizes) {
  const NodeId n = GetParam();
  const auto spec = laplacian_spectrum(gen::cycle(n));
  EXPECT_NEAR(spec.lambda2, 2.0 - 2.0 * std::cos(2.0 * pi / n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpectrumSizes,
                         ::testing::Values(3, 4, 6, 9, 16, 25, 40));

}  // namespace
}  // namespace opindyn
