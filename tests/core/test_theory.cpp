#include "src/core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/initial_values.h"
#include "src/graph/generators.h"
#include "src/graph/isoperimetric.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(Theory, EdgeCorrelationAndLaplacianForm) {
  const Graph g = gen::path(3);  // edges {0,1}, {1,2}
  const std::vector<double> xi{1.0, 2.0, 3.0};
  // Directed arcs: (0,1),(1,0),(1,2),(2,1): 2*(1*2) + 2*(2*3) = 16.
  EXPECT_DOUBLE_EQ(theory::directed_edge_correlation(g, xi), 16.0);
  // xi^T L xi = (1-2)^2 + (2-3)^2 = 2.
  EXPECT_DOUBLE_EQ(theory::laplacian_quadratic_form(g, xi), 2.0);
}

TEST(Theory, StepsToEpsilonInvertsGeometricDecay) {
  const double rho = 0.01;
  const double phi0 = 100.0;
  const double eps = 1e-6;
  const double t = theory::steps_to_epsilon(rho, phi0, eps);
  EXPECT_NEAR(std::pow(1.0 - rho, t) * phi0, eps, eps * 1e-6);
  EXPECT_DOUBLE_EQ(theory::steps_to_epsilon(rho, 1.0, 2.0), 0.0);
  EXPECT_THROW(theory::steps_to_epsilon(0.0, 1.0, 0.5), ContractError);
}

TEST(Theory, NodeRhoFormulaAndLazyHalving) {
  const double l2 = 0.9;
  const double full =
      theory::node_model_rho(l2, 0.5, 2, 100, /*lazy=*/false);
  const double lazy = theory::node_model_rho(l2, 0.5, 2, 100, /*lazy=*/true);
  EXPECT_DOUBLE_EQ(lazy, full / 2.0);
  // Hand evaluation: (1-a)(1-l2)[2a + (1-a)(1+l2)(1-1/k)]/n
  // = 0.5*0.1*[1 + 0.5*1.9*0.5]/100 = 0.05*(1.475)/100.
  EXPECT_NEAR(full, 0.05 * 1.475 / 100.0, 1e-15);
  // k = 1 drops the second term entirely.
  EXPECT_NEAR(theory::node_model_rho(l2, 0.5, 1, 100, false),
              0.05 * 1.0 / 100.0, 1e-15);
}

TEST(Theory, EdgeRhoFormula) {
  EXPECT_DOUBLE_EQ(theory::edge_model_rho(2.0, 0.5, 10, false), 0.05);
  EXPECT_DOUBLE_EQ(theory::edge_model_rho(2.0, 0.5, 10, true), 0.025);
}

TEST(Theory, ConvergenceBoundsGrowWithSizeAndShrinkingGap) {
  const double small_gap =
      theory::node_convergence_bound(100, 100.0, 1e-6, 0.99);
  const double large_gap =
      theory::node_convergence_bound(100, 100.0, 1e-6, 0.5);
  EXPECT_GT(small_gap, large_gap);
  const double larger_n =
      theory::node_convergence_bound(200, 100.0, 1e-6, 0.99);
  EXPECT_GT(larger_n, small_gap);
  const double edge_bound =
      theory::edge_convergence_bound(16, 16, 16.0, 1e-6, 0.5);
  EXPECT_GT(edge_bound, 0.0);
}

TEST(Theory, VarianceEnvelopeOrderingAndScale) {
  // upper >= exact(any xi) >= lower * ||xi||^2, and both coeffs are
  // Theta(1/n^2).
  for (const std::int64_t n : {10, 20, 40}) {
    for (const std::int64_t d : {2, 4}) {
      for (const std::int64_t k : {std::int64_t{1}, d}) {
        for (const double alpha : {0.25, 0.5, 0.75}) {
          const double hi = theory::variance_upper_coeff(n, d, k, alpha);
          const double lo = theory::variance_lower_coeff(n, d, k, alpha);
          EXPECT_GE(hi, lo);
          EXPECT_GE(lo, -1e-15);
          const double scaled_hi =
              hi * static_cast<double>(n) * static_cast<double>(n);
          EXPECT_GT(scaled_hi, 0.05);
          EXPECT_LT(scaled_hi, 10.0);
        }
      }
    }
  }
}

TEST(Theory, VarianceLowerCoeffDegeneratesExactlyAtKEqualsD) {
  // lower = 2(1-alpha)(d-k) ell: zero iff k = d.
  EXPECT_NEAR(theory::variance_lower_coeff(12, 3, 3, 0.5), 0.0, 1e-15);
  EXPECT_GT(theory::variance_lower_coeff(12, 3, 2, 0.5), 0.0);
}

TEST(Theory, VarianceExactRespectsEnvelope) {
  Rng rng(3);
  for (const auto& g : {gen::cycle(12), gen::petersen(), gen::torus(3, 4),
                        gen::complete(8)}) {
    const auto d = g.min_degree();
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{d}}) {
      for (const double alpha : {0.3, 0.7}) {
        auto xi = initial::gaussian(rng, g.node_count(), 0.0, 1.0);
        initial::center_plain(xi);
        const double exact = theory::variance_exact(g, alpha, k, xi);
        const double norm = initial::l2_squared(xi);
        const double hi =
            theory::variance_upper_coeff(g.node_count(), d, k, alpha);
        const double lo =
            theory::variance_lower_coeff(g.node_count(), d, k, alpha);
        EXPECT_LE(exact, hi * norm + 1e-12) << g.name();
        EXPECT_GE(exact, lo * norm - 1e-12) << g.name();
        EXPECT_GT(exact, 0.0) << g.name();
      }
    }
  }
}

TEST(Theory, VarianceExactIndependentOfStructureForSameSpectralData) {
  // Theorem 2.2(2)'s punchline: for the same centered xi multiset, the
  // variance on the cycle and on the complete graph agree up to
  // constants.  Compare n * n * Var / ||xi||^2 across graphs.
  Rng rng(5);
  const NodeId n = 16;
  auto xi = initial::rademacher(rng, n);
  initial::center_plain(xi);
  const double norm = initial::l2_squared(xi);
  const double cycle_var =
      theory::variance_exact(gen::cycle(n), 0.5, 1, xi) / norm * n * n;
  const double complete_var =
      theory::variance_exact(gen::complete(n), 0.5, 1, xi) / norm * n * n;
  EXPECT_GT(cycle_var, 0.1);
  EXPECT_GT(complete_var, 0.1);
  EXPECT_LT(cycle_var / complete_var, 4.0);
  EXPECT_GT(cycle_var / complete_var, 0.25);
}

TEST(Theory, CheegerBoundHoldsOnSmallGraphs) {
  // Corollary E.2(i): lambda_2(L) >= i(G)^2 / (2 d_max).
  for (const auto& g : {gen::cycle(10), gen::complete(8), gen::star(9),
                        gen::path(12), gen::petersen(), gen::hypercube(3),
                        gen::lollipop(5, 4), gen::barbell(4, 2)}) {
    const double lambda2 = laplacian_spectrum(g).lambda2;
    const double i_g = isoperimetric_number_exact(g);
    const double bound =
        theory::cheeger_lambda2_lower_bound(i_g, g.max_degree());
    EXPECT_GE(lambda2 + 1e-12, bound) << g.name();
    EXPECT_GT(bound, 0.0) << g.name();
  }
}

TEST(Theory, TimeDependentVarianceBounds) {
  EXPECT_DOUBLE_EQ(theory::edge_var_avg_time_bound(100, 2.0, 10), 4.0);
  EXPECT_DOUBLE_EQ(theory::node_var_m_time_bound(100, 2.0, 3, 15), 4.0);
  EXPECT_DOUBLE_EQ(theory::edge_var_avg_time_bound(0, 5.0, 10), 0.0);
}

TEST(Theory, VarianceExactRejectsIrregular) {
  const Graph g = gen::star(6);
  const std::vector<double> xi(6, 0.0);
  EXPECT_THROW(theory::variance_exact(g, 0.5, 1, xi), ContractError);
}

}  // namespace
}  // namespace opindyn
