// A numerically-discovered answer to the paper's Section 6 question
// "is it possible to bound the concentration ... for irregular graphs?":
//
//   CONJECTURE (verified numerically here): for the EdgeModel on ANY
//   connected graph, with Avg(0) = 0,
//       Var(F) = (1 - alpha) ||xi(0)||^2 / ( n (alpha n + 1 - alpha) ).
//
// For d-regular graphs this is exactly the Prop. 5.8 value at k = 1
// (where mu_1 = mu_+ makes the edge-correlation term vanish after the
// algebra); the surprise is that the numerical Q-chain stationary
// distribution reproduces it on stars, lollipops, trees, and
// preferential-attachment graphs too -- the EdgeModel's limiting
// variance appears to be completely structure-independent.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/initial_values.h"
#include "src/core/moments.h"
#include "src/core/theory.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace {

double conjectured_edge_variance(NodeId n, double alpha,
                                 double xi_norm_sq) {
  const auto nd = static_cast<double>(n);
  return (1.0 - alpha) * xi_norm_sq / (nd * (alpha * nd + 1.0 - alpha));
}

class EdgeVarianceConjecture : public ::testing::TestWithParam<double> {};

TEST_P(EdgeVarianceConjecture, HoldsOnRegularGraphsViaClosedForm) {
  const double alpha = GetParam();
  Rng rng(3);
  for (const auto& g : {gen::cycle(12), gen::complete(9),
                        gen::petersen()}) {
    auto xi = initial::gaussian(rng, g.node_count(), 0.0, 1.0);
    initial::center_plain(xi);
    const double closed = theory::variance_exact(g, alpha, 1, xi);
    const double conjectured = conjectured_edge_variance(
        g.node_count(), alpha, initial::l2_squared(xi));
    EXPECT_NEAR(closed, conjectured, std::abs(conjectured) * 1e-10)
        << g.name();
  }
}

TEST_P(EdgeVarianceConjecture, HoldsOnIrregularGraphsViaNumericalQChain) {
  const double alpha = GetParam();
  Rng rng(5);
  Rng graph_rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(gen::star(8));
  graphs.push_back(gen::double_star(3));
  graphs.push_back(gen::lollipop(4, 4));
  graphs.push_back(gen::binary_tree(9));
  graphs.push_back(gen::path(10));
  graphs.push_back(gen::preferential_attachment(graph_rng, 10, 2));
  for (const auto& g : graphs) {
    auto xi = initial::gaussian(rng, g.node_count(), 0.0, 1.0);
    initial::center_plain(xi);
    const double numerical = predicted_variance_any_graph_edge(g, alpha, xi);
    const double conjectured = conjectured_edge_variance(
        g.node_count(), alpha, initial::l2_squared(xi));
    EXPECT_NEAR(numerical, conjectured, std::abs(conjectured) * 1e-6)
        << g.name() << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, EdgeVarianceConjecture,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.9));

TEST(EdgeVarianceConjecture, NodeModelDoesNotShareTheProperty) {
  // Control: the NodeModel's variance on the star differs from the
  // regular-graph value (its martingale weights the hub by 1/2), so the
  // structure-independence really is an EdgeModel phenomenon.
  const Graph g = gen::star(8);
  Rng rng(9);
  auto xi = initial::gaussian(rng, 8, 0.0, 1.0);
  initial::center_degree_weighted(g, xi);
  const double node_var = predicted_variance_any_graph(g, 0.5, 1, xi);
  const double conjectured =
      conjectured_edge_variance(8, 0.5, initial::l2_squared(xi));
  EXPECT_GT(std::abs(node_var - conjectured),
            std::abs(conjectured) * 0.2);
}

}  // namespace
}  // namespace opindyn
