// run_until_converged contracts plus replica-level Monte-Carlo checks of
// E[F] / Var(F) against the paper's martingale and Prop. 5.8 values.
// Replica batches run on the engine's CellScheduler via the shared
// tests/replica_harness.h helper (the retired core/montecarlo harness
// used the same streams, so the statistical expectations are
// unchanged).
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/model.h"
#include "src/core/theory.h"
#include "src/graph/generators.h"
#include "src/spectral/spectra.h"
#include "src/support/assert.h"
#include "src/support/cell_scheduler.h"
#include "tests/replica_harness.h"

namespace opindyn {
namespace {

using test_support::ReplicaSummary;
using test_support::run_replicas;

TEST(Convergence, ReachesEpsilonAndReportsCommonValue) {
  const Graph g = gen::complete(16);
  Rng init_rng(1);
  auto xi = initial::uniform(init_rng, 16, -1.0, 1.0);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  NodeModel model(g, xi, params);
  Rng rng(2);
  ConvergenceOptions options;
  options.epsilon = 1e-16;
  const ConvergenceResult result = run_until_converged(model, rng, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.final_phi, options.epsilon);
  EXPECT_GT(result.steps, 0);
  // All node values agree with the reported F to ~sqrt(eps/pi_min).
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_NEAR(model.state().value(u), result.final_value, 1e-6);
  }
}

TEST(Convergence, AlreadyConvergedStopsImmediately) {
  const Graph g = gen::cycle(8);
  NodeModelParams params;
  NodeModel model(g, initial::constant(8, 3.0), params);
  Rng rng(3);
  ConvergenceOptions options;
  options.epsilon = 1e-12;
  const ConvergenceResult result = run_until_converged(model, rng, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.steps, 0);
  EXPECT_DOUBLE_EQ(result.final_value, 3.0);
}

TEST(Convergence, MaxStepsCapsWork) {
  const Graph g = gen::cycle(64);
  Rng init_rng(4);
  NodeModelParams params;
  NodeModel model(g, initial::rademacher(init_rng, 64), params);
  Rng rng(5);
  ConvergenceOptions options;
  options.epsilon = 1e-30;  // unreachable
  options.max_steps = 1000;
  const ConvergenceResult result = run_until_converged(model, rng, options);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.steps, 1000 + 64);
}

TEST(Convergence, PlainPotentialModeUsesPhiV) {
  const Graph g = gen::star(10);
  Rng init_rng(6);
  EdgeModelParams params;
  params.alpha = 0.5;
  EdgeModel model(g, initial::uniform(init_rng, 10, 0.0, 1.0), params);
  Rng rng(7);
  ConvergenceOptions options;
  options.epsilon = 1e-14;
  options.use_plain_potential = true;
  const ConvergenceResult result = run_until_converged(model, rng, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(model.state().phi_plain_exact(), options.epsilon);
}

TEST(MonteCarlo, MeanOfFMatchesMartingaleExpectation) {
  // E[F] = M(0) for the NodeModel (Lemma 4.1): run on an irregular graph
  // with xi(0) chosen so Avg(0) != M(0), and check the MC mean picks M(0).
  const Graph g = gen::star(8);  // hub 0
  std::vector<double> xi(8, 0.0);
  xi[0] = 7.0;  // Avg(0) = 7/8; M(0) = (7*7)/(2*7) = 3.5
  const double m0 = 7.0 * 7.0 / 14.0;

  ModelConfig config;
  config.kind = ModelKind::node;
  config.alpha = 0.5;
  config.k = 1;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-14;
  const ReplicaSummary result =
      run_replicas(g, config, xi, 4000, 11, convergence);
  EXPECT_EQ(result.value.count(), 4000);
  EXPECT_EQ(result.diverged, 0);
  EXPECT_NEAR(result.value.mean(), m0,
              4.0 * result.value.mean_ci_halfwidth());
  // And NOT the plain average.
  EXPECT_GT(std::abs(result.value.mean() - 7.0 / 8.0), 0.5);
}

TEST(MonteCarlo, EdgeModelMeanOfFIsPlainAverageEvenIrregular) {
  const Graph g = gen::star(8);
  std::vector<double> xi(8, 0.0);
  xi[0] = 7.0;  // Avg(0) = 7/8
  ModelConfig config;
  config.kind = ModelKind::edge;
  config.alpha = 0.5;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-14;
  const ReplicaSummary result =
      run_replicas(g, config, xi, 4000, 13, convergence);
  EXPECT_NEAR(result.value.mean(), 7.0 / 8.0,
              4.0 * result.value.mean_ci_halfwidth());
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  const Graph g = gen::cycle(12);
  Rng init_rng(8);
  auto xi = initial::rademacher(init_rng, 12);
  initial::center_plain(xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-12;
  const ReplicaSummary serial =
      run_replicas(g, config, xi, 64, 17, convergence, 1);
  const ReplicaSummary parallel =
      run_replicas(g, config, xi, 64, 17, convergence, 4);
  EXPECT_EQ(serial.value.count(), parallel.value.count());
  EXPECT_NEAR(serial.value.mean(), parallel.value.mean(), 1e-12);
  EXPECT_NEAR(serial.value.variance(), parallel.value.variance(), 1e-12);
  EXPECT_NEAR(serial.steps.mean(), parallel.steps.mean(), 1e-9);
}

TEST(MonteCarlo, VarianceOfFMatchesProp58OnCycle) {
  // The flagship quantitative check: MC Var(F) against the exact Prop 5.8
  // value on a small cycle.
  const Graph g = gen::cycle(8);
  Rng init_rng(9);
  auto xi = initial::rademacher(init_rng, 8);
  initial::center_plain(xi);
  const double predicted = theory::variance_exact(g, 0.5, 1, xi);

  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-13;
  const ReplicaSummary result =
      run_replicas(g, config, xi, 20000, 19, convergence);
  const double measured = result.value.population_variance();
  EXPECT_NEAR(measured, predicted,
              4.0 * result.value.variance_ci_halfwidth() + 1e-4);
}

TEST(MonteCarlo, TrajectoryTracksMartingaleAndPhiDecay) {
  const Graph g = gen::complete(12);
  Rng init_rng(10);
  auto xi = initial::gaussian(init_rng, 12, 0.0, 1.0);
  initial::center_plain(xi);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 2;
  // Metric layout per replica: (M(t), phi(t)) per checkpoint.
  const std::vector<std::int64_t> checkpoints{0, 50, 200, 1000, 4000};
  CellScheduler scheduler;
  const std::vector<RunningStats> stats = scheduler.run(
      500, 21, checkpoints.size() * 2,
      [&](std::int64_t, Rng& rng, std::span<double> out) {
        auto process = make_process(g, config, xi);
        for (std::size_t c = 0; c < checkpoints.size(); ++c) {
          while (process->time() < checkpoints[c]) {
            process->step(rng);
          }
          out[2 * c] = process->state().weighted_average();
          out[2 * c + 1] = process->state().phi_exact();
        }
      });
  // M(t) is a martingale: mean stays at M(0) = Avg(0) = 0.
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    EXPECT_NEAR(stats[2 * c].mean(), 0.0,
                4.0 * stats[2 * c].mean_ci_halfwidth() + 1e-3);
  }
  // Var(M(t)) is non-decreasing in t (stated after Prop. 5.8); allow
  // sampling noise at the later checkpoint's CI scale.
  for (std::size_t c = 1; c < checkpoints.size(); ++c) {
    const double slack =
        3.0 * stats[2 * c].variance_ci_halfwidth() + 1e-4;
    EXPECT_GE(stats[2 * c].population_variance() + slack,
              stats[2 * (c - 1)].population_variance());
  }
  // phi decays.
  EXPECT_LT(stats[2 * (checkpoints.size() - 1) + 1].mean(),
            stats[1].mean() * 1e-2);
}

TEST(MonteCarlo, SchedulerRejectsDegenerateBatches) {
  CellScheduler scheduler(1);
  const auto noop = [](std::int64_t, Rng&, std::span<double>) {};
  EXPECT_THROW(scheduler.run(0, 1, 1, noop), ContractError);
  EXPECT_THROW(scheduler.run(4, 1, 0, noop), ContractError);
}

}  // namespace
}  // namespace opindyn
