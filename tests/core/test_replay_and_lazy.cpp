// Replay determinism and lazy-variant properties: recorded selection
// sequences fully determine the trajectory (the foundation of the
// duality machinery), including no-op lazy steps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/diffusion.h"
#include "src/core/edge_model.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(Replay, RecordedSequenceReproducesTrajectoryExactly) {
  const Graph g = gen::petersen();
  Rng init_rng(1);
  const auto xi = initial::gaussian(init_rng, 10, 0.0, 1.0);
  NodeModelParams params;
  params.alpha = 0.35;
  params.k = 2;

  NodeModel original(g, xi, params);
  Rng rng(7);
  SelectionSequence chi;
  for (int t = 0; t < 500; ++t) {
    chi.push_back(original.step_recorded(rng));
  }

  NodeModel replayed(g, xi, params);
  for (const auto& sel : chi) {
    replayed.apply(sel);
  }
  EXPECT_EQ(replayed.time(), original.time());
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_DOUBLE_EQ(replayed.state().value(u), original.state().value(u));
  }
}

TEST(Replay, EdgeModelSequenceReplaysExactly) {
  const Graph g = gen::lollipop(4, 3);
  Rng init_rng(2);
  const auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
  EdgeModelParams params;
  params.alpha = 0.6;

  EdgeModel original(g, xi, params);
  Rng rng(9);
  SelectionSequence chi;
  for (int t = 0; t < 300; ++t) {
    chi.push_back(original.step_recorded(rng));
  }
  EdgeModel replayed(g, xi, params);
  for (const auto& sel : chi) {
    replayed.apply(sel);
  }
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_DOUBLE_EQ(replayed.state().value(u), original.state().value(u));
  }
}

TEST(LazyDuality, DualityHoldsWithNoopStepsInTheSequence) {
  // The lazy variant records no-op selections; the diffusion replay must
  // treat them as identity matrices and the duality still holds.
  const Graph g = gen::cycle(9);
  Rng init_rng(3);
  const auto xi = initial::gaussian(init_rng, 9, 0.0, 2.0);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  params.lazy = true;

  NodeModel averaging(g, xi, params);
  Rng rng(11);
  SelectionSequence chi;
  int noops = 0;
  for (int t = 0; t < 400; ++t) {
    chi.push_back(averaging.step_recorded(rng));
    noops += chi.back().is_noop() ? 1 : 0;
  }
  ASSERT_GT(noops, 100);  // the lazy coin actually fired

  DiffusionProcess diffusion(g, 0.5);
  diffusion.apply_reversed(chi);
  const auto w = diffusion.costs(xi);
  for (NodeId u = 0; u < 9; ++u) {
    EXPECT_NEAR(w[static_cast<std::size_t>(u)],
                averaging.state().value(u), 1e-10);
  }
  EXPECT_EQ(diffusion.time(), 400);
}

TEST(LazyDuality, LazyAndEagerReachSameStateOnEffectiveSubsequence) {
  // Filtering the no-ops out of a lazy run and applying the remainder to
  // an eager process yields the identical end state.
  const Graph g = gen::complete(6);
  Rng init_rng(4);
  const auto xi = initial::gaussian(init_rng, 6, 0.0, 1.0);
  NodeModelParams lazy_params;
  lazy_params.alpha = 0.4;
  lazy_params.k = 2;
  lazy_params.lazy = true;
  NodeModel lazy_model(g, xi, lazy_params);
  Rng rng(13);
  SelectionSequence effective;
  for (int t = 0; t < 600; ++t) {
    const auto sel = lazy_model.step_recorded(rng);
    if (!sel.is_noop()) {
      effective.push_back(sel);
    }
  }
  NodeModelParams eager_params = lazy_params;
  eager_params.lazy = false;
  NodeModel eager_model(g, xi, eager_params);
  for (const auto& sel : effective) {
    eager_model.apply(sel);
  }
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_DOUBLE_EQ(eager_model.state().value(u),
                     lazy_model.state().value(u));
  }
}

TEST(Diffusion, NoopSelectionIsIdentity) {
  const Graph g = gen::path(4);
  DiffusionProcess diffusion(g, 0.5);
  const Matrix before = diffusion.load_matrix();
  diffusion.apply(NodeSelection{});
  EXPECT_EQ(diffusion.time(), 1);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().frobenius_distance(before), 0.0);
}

TEST(Diffusion, RejectsBadSelections) {
  const Graph g = gen::path(4);
  DiffusionProcess diffusion(g, 0.5);
  EXPECT_THROW(diffusion.apply(NodeSelection{0, {3}}), ContractError);
  EXPECT_THROW(diffusion.apply(NodeSelection{7, {1}}), ContractError);
}

TEST(Diffusion, CommodityLoadsAreDistributions) {
  const Graph g = gen::torus(3, 3);
  NodeModelParams params;
  params.alpha = 0.25;
  params.k = 3;
  NodeModel model(g, std::vector<double>(9, 0.0), params);
  Rng rng(15);
  DiffusionProcess diffusion(g, 0.25);
  for (int t = 0; t < 200; ++t) {
    diffusion.apply(model.step_recorded(rng));
  }
  for (NodeId u = 0; u < 9; ++u) {
    const auto load = diffusion.commodity_load(u);
    double total = 0.0;
    for (const double x : load) {
      EXPECT_GE(x, -1e-12);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
  }
}

}  // namespace
}  // namespace opindyn
