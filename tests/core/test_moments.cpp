// Tests for the Section 6 "future work" extensions: the r-walk joint
// chain, numerical Var(F) on arbitrary (incl. irregular) graphs, and the
// third moment of F.
#include "src/core/moments.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/convergence.h"
#include "src/core/initial_values.h"
#include "src/core/qchain.h"
#include "src/core/theory.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"
#include "tests/replica_harness.h"

namespace opindyn {
namespace {

TEST(JointWalkChain, TwoWalkNodeChainEqualsQChain) {
  // The generic r = 2 construction must reproduce the dedicated QChain
  // transition matrix entry for entry.
  for (const auto& g : {gen::cycle(6), gen::petersen()}) {
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
      if (k > g.min_degree()) {
        continue;
      }
      ModelConfig config;
      config.alpha = 0.4;
      config.k = k;
      const JointWalkChain generic(g, config, 2);
      const QChain dedicated(g, 0.4, k);
      EXPECT_LT(
          generic.transition().frobenius_distance(dedicated.transition()),
          1e-12)
          << g.name() << " k=" << k;
    }
  }
}

TEST(JointWalkChain, SingleWalkStationaryIsUniformOnRegularGraphs) {
  // One walk under the NodeModel law: stationary distribution is uniform
  // on regular graphs.
  const Graph g = gen::cycle(8);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  const JointWalkChain chain(g, config, 1);
  const auto mu = chain.stationary();
  ASSERT_TRUE(mu.converged);
  for (const double x : mu.distribution) {
    EXPECT_NEAR(x, 1.0 / 8.0, 1e-9);
  }
}

TEST(JointWalkChain, RowStochasticForEdgeModelToo) {
  const Graph g = gen::star(5);
  ModelConfig config;
  config.kind = ModelKind::edge;
  config.alpha = 0.3;
  const JointWalkChain chain(g, config, 2);
  EXPECT_LT(chain.transition().stochasticity_defect(), 1e-11);
  const auto mu = chain.stationary();
  EXPECT_TRUE(mu.converged);
}

TEST(Moments, VarianceAnyGraphMatchesClosedFormOnRegularGraphs) {
  Rng rng(3);
  for (const auto& g : {gen::cycle(10), gen::complete(7),
                        gen::petersen()}) {
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
      if (k > g.min_degree()) {
        continue;
      }
      auto xi = initial::gaussian(rng, g.node_count(), 0.0, 1.0);
      initial::center_plain(xi);
      const double numerical =
          predicted_variance_any_graph(g, 0.5, k, xi);
      const double closed = theory::variance_exact(g, 0.5, k, xi);
      EXPECT_NEAR(numerical, closed, 1e-8) << g.name() << " k=" << k;
    }
  }
}

TEST(Moments, IrregularVarianceMatchesMonteCarlo) {
  // The open-problem case: star graph, NodeModel.  The numerical Q-chain
  // prediction must match Monte Carlo.
  const Graph g = gen::star(6);
  std::vector<double> xi{0.0, 5.0, -1.0, 2.0, -3.0, -3.0};
  initial::center_degree_weighted(g, xi);
  const double predicted = predicted_variance_any_graph(g, 0.5, 1, xi);
  EXPECT_GT(predicted, 0.0);

  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-13;
  const RunningStats f =
      test_support::run_replicas(g, config, xi, 20000, 5, convergence)
          .value;
  EXPECT_NEAR(f.population_variance(), predicted,
              4.0 * f.variance_ci_halfwidth() + 1e-3);
}

TEST(Moments, EdgeModelIrregularVarianceMatchesMonteCarlo) {
  const Graph g = gen::star(6);
  std::vector<double> xi{0.0, 5.0, -1.0, 2.0, -3.0, -3.0};
  initial::center_plain(xi);
  const double predicted = predicted_variance_any_graph_edge(g, 0.5, xi);
  EXPECT_GT(predicted, 0.0);

  ModelConfig config;
  config.kind = ModelKind::edge;
  config.alpha = 0.5;
  ConvergenceOptions convergence;
  convergence.epsilon = 1e-13;
  convergence.use_plain_potential = true;
  const RunningStats f =
      test_support::run_replicas(g, config, xi, 20000, 7, convergence)
          .value;
  EXPECT_NEAR(f.population_variance(), predicted,
              4.0 * f.variance_ci_halfwidth() + 1e-3);
}

TEST(Moments, ThirdMomentMatchesMonteCarloOnSmallGraph) {
  // Asymmetric initial values give F a skewed distribution; the 3-walk
  // chain predicts E[(F - E F)^3].
  const Graph g = gen::complete(5);
  std::vector<double> xi{4.0, -1.0, -1.0, -1.0, -1.0};
  initial::center_plain(xi);  // already centered; no-op safety
  const double predicted = predicted_moment(g, 0.5, 1, xi, 3);

  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  // Monte-Carlo estimate of E[F^3] with a self-calibrated error bar:
  // se^2 = (E[F^6] - E[F^3]^2) / R, both moments estimated empirically
  // (F^3 is heavy-tailed for spiked initials, so sigma^3-based bars
  // undercover).
  double sum3 = 0.0;
  double sum6 = 0.0;
  const int replicas = 60000;
  for (int r = 0; r < replicas; ++r) {
    Rng rng = Rng::fork(11, static_cast<std::uint64_t>(r));
    auto process = make_process(g, config, xi);
    ConvergenceOptions conv;
    conv.epsilon = 1e-13;
    const ConvergenceResult one = run_until_converged(*process, rng, conv);
    const double f = one.final_value;
    const double f3 = f * f * f;
    sum3 += f3;
    sum6 += f3 * f3;
  }
  const double measured3 = sum3 / replicas;
  const double m6 = sum6 / replicas;
  const double se =
      std::sqrt(std::max(0.0, m6 - measured3 * measured3) /
                static_cast<double>(replicas));
  EXPECT_NEAR(measured3, predicted, 5.0 * se + 1e-4);
  // The skew should be visibly positive (one node starts far above).
  EXPECT_GT(predicted, 0.0);
}

TEST(Moments, RejectsOversizedStateSpace) {
  const Graph g = gen::cycle(40);
  ModelConfig config;
  config.alpha = 0.5;
  config.k = 1;
  EXPECT_THROW(JointWalkChain(g, config, 3), ContractError);  // 64000 states
}

}  // namespace
}  // namespace opindyn
