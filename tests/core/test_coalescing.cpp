// Coalescing random walks and the classical voter duality (footnote 2):
// the voting time and the coalescence time have the same distribution.
#include "src/core/coalescing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/voter_model.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"
#include "src/support/stats.h"

namespace opindyn {
namespace {

TEST(CoalescingWalks, StartsWithOneWalkPerNode) {
  const Graph g = gen::cycle(7);
  CoalescingWalks walks(g);
  EXPECT_EQ(walks.cluster_count(), 7);
  EXPECT_FALSE(walks.coalesced());
  for (NodeId u = 0; u < 7; ++u) {
    EXPECT_EQ(walks.walks_at(u), 1);
  }
}

TEST(CoalescingWalks, TotalWalkCountIsConserved) {
  const Graph g = gen::petersen();
  CoalescingWalks walks(g);
  Rng rng(3);
  for (int t = 0; t < 5000; ++t) {
    walks.step(rng);
    std::int64_t total = 0;
    int occupied = 0;
    for (NodeId u = 0; u < 10; ++u) {
      total += walks.walks_at(u);
      occupied += walks.walks_at(u) > 0 ? 1 : 0;
    }
    ASSERT_EQ(total, 10);
    ASSERT_EQ(occupied, walks.cluster_count());
  }
}

TEST(CoalescingWalks, ClusterCountIsMonotoneNonIncreasing) {
  const Graph g = gen::complete(12);
  CoalescingWalks walks(g);
  Rng rng(5);
  int previous = walks.cluster_count();
  while (!walks.coalesced()) {
    walks.step(rng);
    ASSERT_LE(walks.cluster_count(), previous);
    previous = walks.cluster_count();
  }
  EXPECT_EQ(walks.cluster_count(), 1);
}

TEST(CoalescingWalks, EventuallyCoalescesOnEveryFamily) {
  Rng rng(7);
  for (const auto& g : {gen::cycle(8), gen::star(8), gen::path(8),
                        gen::complete(8)}) {
    const CoalescenceResult result =
        run_to_coalescence(g, rng, 100'000'000);
    EXPECT_TRUE(result.coalesced) << g.name();
    EXPECT_GT(result.steps, 0) << g.name();
  }
}

TEST(VoterDuality, CoalescenceTimeMatchesVoterConsensusTimeDistribution) {
  // Footnote 2: identical distributions.  Compare means and variances on
  // a complete graph and a cycle with all-distinct initial opinions.
  for (const auto& g : {gen::complete(10), gen::cycle(9)}) {
    RunningStats voter_times;
    RunningStats coalescence_times;
    std::vector<int> opinions(static_cast<std::size_t>(g.node_count()));
    for (NodeId u = 0; u < g.node_count(); ++u) {
      opinions[static_cast<std::size_t>(u)] = u;
    }
    constexpr int trials = 1500;
    for (int t = 0; t < trials; ++t) {
      Rng rng_v = Rng::fork(100, static_cast<std::uint64_t>(t));
      const auto voter =
          run_voter_to_consensus(g, opinions, rng_v, 100'000'000);
      ASSERT_TRUE(voter.reached_consensus);
      voter_times.add(static_cast<double>(voter.steps));

      Rng rng_c = Rng::fork(200, static_cast<std::uint64_t>(t));
      const auto coalescence = run_to_coalescence(g, rng_c, 100'000'000);
      ASSERT_TRUE(coalescence.coalesced);
      coalescence_times.add(static_cast<double>(coalescence.steps));
    }
    // Means within joint 4-sigma.
    const double joint_se =
        std::sqrt(std::pow(voter_times.mean_ci_halfwidth() / 1.96, 2) +
                  std::pow(coalescence_times.mean_ci_halfwidth() / 1.96, 2));
    EXPECT_NEAR(voter_times.mean(), coalescence_times.mean(),
                4.0 * joint_se)
        << g.name();
    // Standard deviations within 15% (distributional match, coarse).
    EXPECT_NEAR(voter_times.stddev() / coalescence_times.stddev(), 1.0,
                0.15)
        << g.name();
  }
}

TEST(CoalescingWalks, RejectsIsolatedNodes) {
  const Graph g(2, {});  // two isolated nodes
  EXPECT_THROW(CoalescingWalks{g}, ContractError);
}

}  // namespace
}  // namespace opindyn
