#include "src/core/initial_values.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(InitialValues, ConstantAndSpike) {
  const auto c = initial::constant(5, 3.0);
  for (const double v : c) {
    EXPECT_DOUBLE_EQ(v, 3.0);
  }
  const auto s = initial::spike(5, 2, 7.0);
  EXPECT_DOUBLE_EQ(s[2], 7.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(initial::l2_squared(s), 49.0);
}

TEST(InitialValues, RademacherIsPlusMinusOne) {
  Rng rng(3);
  const auto r = initial::rademacher(rng, 1000);
  int plus = 0;
  for (const double v : r) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    plus += v > 0 ? 1 : 0;
  }
  EXPECT_NEAR(plus, 500, 80);
  EXPECT_DOUBLE_EQ(initial::l2_squared(r), 1000.0);
}

TEST(InitialValues, UniformRangeAndGaussianMoments) {
  Rng rng(5);
  const auto u = initial::uniform(rng, 10000, 2.0, 4.0);
  double sum = 0.0;
  for (const double v : u) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 3.0, 0.03);

  const auto gauss = initial::gaussian(rng, 10000, -1.0, 2.0);
  double gsum = 0.0;
  double gsq = 0.0;
  for (const double v : gauss) {
    gsum += v;
    gsq += (v + 1.0) * (v + 1.0);
  }
  EXPECT_NEAR(gsum / 10000.0, -1.0, 0.08);
  EXPECT_NEAR(gsq / 10000.0, 4.0, 0.15);
}

TEST(InitialValues, AlternatingAndRamp) {
  const auto alt = initial::alternating(6);
  EXPECT_DOUBLE_EQ(alt[0], 1.0);
  EXPECT_DOUBLE_EQ(alt[1], -1.0);
  EXPECT_DOUBLE_EQ(alt[5], -1.0);
  const auto r = initial::ramp(5, 8.0);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[4], 8.0);
  EXPECT_DOUBLE_EQ(r[2], 4.0);
}

TEST(InitialValues, CenterPlainZeroesAverage) {
  Rng rng(7);
  auto v = initial::uniform(rng, 100, 5.0, 9.0);
  initial::center_plain(v);
  double sum = 0.0;
  for (const double x : v) {
    sum += x;
  }
  EXPECT_NEAR(sum, 0.0, 1e-10);
}

TEST(InitialValues, CenterDegreeWeightedZeroesM) {
  const Graph g = gen::lollipop(5, 4);
  Rng rng(9);
  auto v = initial::gaussian(rng, g.node_count(), 2.0, 1.0);
  initial::center_degree_weighted(g, v);
  EXPECT_NEAR(degree_weighted_average(g, v), 0.0, 1e-12);
}

TEST(InitialValues, ScaledEigenvector) {
  const std::vector<double> f2{0.5, -0.5, 0.0};
  const auto scaled = initial::scaled_eigenvector(f2, 4.0);
  EXPECT_DOUBLE_EQ(scaled[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], -2.0);
  EXPECT_DOUBLE_EQ(scaled[2], 0.0);
}

TEST(InitialValues, Validation) {
  Rng rng(1);
  EXPECT_THROW(initial::constant(0, 1.0), ContractError);
  EXPECT_THROW(initial::spike(3, 3, 1.0), ContractError);
  EXPECT_THROW(initial::ramp(1, 1.0), ContractError);
  std::vector<double> empty;
  EXPECT_THROW(initial::center_plain(empty), ContractError);
}

}  // namespace
}  // namespace opindyn
