// Exact verification of Lemma 4.1 (the martingale property of
// M(t) = sum_u (d_u/2m) xi_u and of Avg(t) in the EdgeModel) and of the
// exact one-step second-moment identities behind Prop. B.1 / Prop. D.1,
// by *full enumeration* of the one-step distribution -- no sampling noise,
// tolerances are pure floating point.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/edge_model.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/core/selection.h"
#include "src/core/theory.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace {

// Applies `selection` to a copy of xi under the NodeModel rule.
std::vector<double> apply_node_update(const std::vector<double>& xi,
                                      const NodeSelection& sel,
                                      double alpha) {
  std::vector<double> out = xi;
  double sum = 0.0;
  for (const NodeId v : sel.sample) {
    sum += xi[static_cast<std::size_t>(v)];
  }
  out[static_cast<std::size_t>(sel.node)] =
      alpha * xi[static_cast<std::size_t>(sel.node)] +
      (1.0 - alpha) * sum / static_cast<double>(sel.sample.size());
  return out;
}

struct MartingaleCase {
  std::string graph_name;
  Graph graph;
  std::int64_t k;
  double alpha;
};

std::vector<MartingaleCase> martingale_cases() {
  Rng rng(99);
  std::vector<MartingaleCase> cases;
  cases.push_back({"complete(5)", gen::complete(5), 2, 0.3});
  cases.push_back({"complete(5)", gen::complete(5), 4, 0.7});
  cases.push_back({"cycle(7)", gen::cycle(7), 1, 0.5});
  cases.push_back({"cycle(7)", gen::cycle(7), 2, 0.25});
  cases.push_back({"petersen", gen::petersen(), 3, 0.6});
  cases.push_back({"star(6)", gen::star(6), 1, 0.5});
  cases.push_back({"lollipop(4,3)", gen::lollipop(4, 3), 1, 0.4});
  cases.push_back(
      {"random_regular(10,4)", gen::random_regular(rng, 10, 4), 3, 0.8});
  return cases;
}

TEST(Lemma41, NodeModelDegreeWeightedAverageIsMartingale) {
  Rng rng(1);
  for (const auto& c : martingale_cases()) {
    const auto xi =
        initial::gaussian(rng, c.graph.node_count(), 1.0, 2.0);
    const double m_before = degree_weighted_average(c.graph, xi);
    const auto selections = enumerate_node_selections(c.graph, c.k);
    double m_after = 0.0;
    for (const auto& ws : selections) {
      const auto next = apply_node_update(xi, ws.selection, c.alpha);
      m_after += ws.probability * degree_weighted_average(c.graph, next);
    }
    EXPECT_NEAR(m_after, m_before, 1e-12)
        << c.graph_name << " k=" << c.k << " alpha=" << c.alpha;
  }
}

TEST(Lemma41, NodeModelPlainAverageIsNotAMartingaleOnIrregularGraphs) {
  // Sanity check that the *degree weighting* is necessary: on a star the
  // plain average drifts in one step for an asymmetric state.
  const Graph g = gen::star(5);
  const std::vector<double> xi{10.0, 0.0, 0.0, 0.0, 0.0};
  const auto selections = enumerate_node_selections(g, 1);
  double avg_after = 0.0;
  for (const auto& ws : selections) {
    const auto next = apply_node_update(xi, ws.selection, 0.5);
    double sum = 0.0;
    for (const double v : next) {
      sum += v;
    }
    avg_after += ws.probability * sum / 5.0;
  }
  EXPECT_GT(std::abs(avg_after - 2.0), 1e-3);
}

TEST(PropD1i, EdgeModelPlainAverageIsMartingaleEvenOnIrregularGraphs) {
  Rng rng(2);
  for (const auto* name : {"star", "lollipop", "double_star", "pref"}) {
    Graph g = std::string(name) == "star"          ? gen::star(7)
              : std::string(name) == "lollipop"    ? gen::lollipop(4, 3)
              : std::string(name) == "double_star" ? gen::double_star(3)
                                                   : gen::preferential_attachment(rng, 12, 2);
    const auto xi = initial::gaussian(rng, g.node_count(), -1.0, 3.0);
    double avg_before = 0.0;
    for (const double v : xi) {
      avg_before += v;
    }
    avg_before /= static_cast<double>(g.node_count());
    const auto selections = enumerate_edge_selections(g);
    double avg_after = 0.0;
    for (const auto& ws : selections) {
      const auto next = apply_node_update(xi, ws.selection, 0.35);
      double sum = 0.0;
      for (const double v : next) {
        sum += v;
      }
      avg_after += ws.probability * sum / static_cast<double>(g.node_count());
    }
    EXPECT_NEAR(avg_after, avg_before, 1e-12) << name;
  }
}

TEST(PropB1, ExactOneStepPiNormIdentityWithReplacement) {
  // Eq. (39):  E||xi'||_pi^2 = ||xi||_pi^2
  //   - (2 a(1-a)/n) <xi,(I-P)xi>_pi - ((1-a)^2/n)(1-1/k) <xi,(I-P^2)xi>_pi
  // verified against full enumeration of (u, ordered k-tuple).
  Rng rng(3);
  for (const auto& c : martingale_cases()) {
    if (c.k > 3) {
      continue;  // with-replacement enumeration is d^k, keep it small
    }
    const auto xi = initial::gaussian(rng, c.graph.node_count(), 0.0, 1.0);
    const auto selections =
        enumerate_node_selections_with_replacement(c.graph, c.k);
    double expected_norm = 0.0;
    for (const auto& ws : selections) {
      const auto next = apply_node_update(xi, ws.selection, c.alpha);
      double pi_norm = 0.0;
      for (NodeId u = 0; u < c.graph.node_count(); ++u) {
        pi_norm += c.graph.stationary(u) *
                   next[static_cast<std::size_t>(u)] *
                   next[static_cast<std::size_t>(u)];
      }
      expected_norm += ws.probability * pi_norm;
    }
    const double predicted = theory::expected_pi_norm_sq_after_step(
        c.graph, xi, c.alpha, c.k, SamplingMode::with_replacement);
    EXPECT_NEAR(expected_norm, predicted, 1e-12)
        << c.graph_name << " k=" << c.k;
  }
}

TEST(PropB1, ExactOneStepPiNormIdentityWithoutReplacement) {
  Rng rng(4);
  for (const auto& c : martingale_cases()) {
    const auto xi = initial::gaussian(rng, c.graph.node_count(), 0.0, 1.0);
    const auto selections = enumerate_node_selections(c.graph, c.k);
    double expected_norm = 0.0;
    for (const auto& ws : selections) {
      const auto next = apply_node_update(xi, ws.selection, c.alpha);
      double pi_norm = 0.0;
      for (NodeId u = 0; u < c.graph.node_count(); ++u) {
        pi_norm += c.graph.stationary(u) *
                   next[static_cast<std::size_t>(u)] *
                   next[static_cast<std::size_t>(u)];
      }
      expected_norm += ws.probability * pi_norm;
    }
    const double predicted = theory::expected_pi_norm_sq_after_step(
        c.graph, xi, c.alpha, c.k, SamplingMode::without_replacement);
    EXPECT_NEAR(expected_norm, predicted, 1e-12)
        << c.graph_name << " k=" << c.k;
  }
}

TEST(PropD1ii, ExactOneStepSumSqIdentityEdgeModel) {
  // Eq. (57): E sum (xi'_x)^2 = sum xi_x^2 - (a(1-a)/m) xi^T L xi.
  Rng rng(5);
  for (const double alpha : {0.2, 0.5, 0.8}) {
    for (const auto& g :
         {gen::star(6), gen::cycle(7), gen::barbell(4, 2),
          gen::complete(5)}) {
      const auto xi = initial::gaussian(rng, g.node_count(), 0.5, 2.0);
      const auto selections = enumerate_edge_selections(g);
      double expected_sum_sq = 0.0;
      for (const auto& ws : selections) {
        const auto next = apply_node_update(xi, ws.selection, alpha);
        double s = 0.0;
        for (const double v : next) {
          s += v * v;
        }
        expected_sum_sq += ws.probability * s;
      }
      const double predicted =
          theory::expected_sum_sq_after_step_edge(g, xi, alpha);
      EXPECT_NEAR(expected_sum_sq, predicted, 1e-11) << g.name();
    }
  }
}

TEST(Lemma41, EmpiricalLongRunDriftIsSmall) {
  // Complementary empirical check: over 10^5 steps, M(t) stays a
  // mean-zero random walk whose step sizes are bounded; its drift from
  // M(0) is far below the initial discrepancy.
  const Graph g = gen::lollipop(6, 5);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  Rng init_rng(6);
  auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
  initial::center_degree_weighted(g, xi);
  NodeModel model(g, xi, params);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    model.step(rng);
  }
  EXPECT_LT(std::abs(model.state().weighted_average()), 0.5);
}

}  // namespace
}  // namespace opindyn
