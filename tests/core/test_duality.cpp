// Proposition 5.1 / Lemma 5.2: run the Averaging Process on a recorded
// selection sequence chi and the Diffusion Process on the reversed
// sequence; the end states must agree exactly (up to floating point).
// Also replicates Fig. 1 (k=1) and Fig. 4 (k=2) with the exact rational
// values printed in the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/diffusion.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/graph/generators.h"

namespace opindyn {
namespace {

TEST(Duality, Figure1ExactValues) {
  // K3, alpha = 1/2, k = 1, xi(0) = [6, 8, 9].
  // t=1: u1 averages with u2 -> xi = [7, 8, 9]
  // t=2: u2 averages with u1 -> xi = [7, 15/2, 9]
  const Graph g = gen::complete(3);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  NodeModel averaging(g, {6.0, 8.0, 9.0}, params);
  SelectionSequence chi;
  chi.push_back({0, {1}});
  chi.push_back({1, {0}});
  for (const auto& sel : chi) {
    averaging.apply(sel);
  }
  EXPECT_DOUBLE_EQ(averaging.state().value(0), 7.0);
  EXPECT_DOUBLE_EQ(averaging.state().value(1), 7.5);
  EXPECT_DOUBLE_EQ(averaging.state().value(2), 9.0);

  // Diffusion on the reversed sequence.  The paper walks through the
  // intermediate load vectors: after step 1 (selection chi(2) = (u2,u1)),
  // commodity u2's load is [1/2, 1/2, 0]; after step 2 it is [1/4, 3/4, 0]
  // ... wait, the paper tracks R columns; we check the R matrix entries
  // of Fig. 1 directly.
  DiffusionProcess diffusion(g, 0.5);
  diffusion.apply(chi[1]);  // reversed order: chi(2) first
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(1, 1), 0.5);
  diffusion.apply(chi[0]);
  // R(2) from Fig. 1: [[1/2, 1/4, 0], [1/2, 3/4, 0], [0, 0, 1]].
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(1, 1), 0.75);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(2, 2), 1.0);

  const auto w = diffusion.costs({6.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(w[0], 7.0);
  EXPECT_DOUBLE_EQ(w[1], 7.5);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(Duality, Figure4ExactValuesK2) {
  // K3, alpha = 1/2, k = 2:
  // t=1: u1 averages with {u2,u3} -> xi1 = 29/4
  // t=2: u2 averages with {u1,u3} -> xi2 = 129/16
  const Graph g = gen::complete(3);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 2;
  NodeModel averaging(g, {6.0, 8.0, 9.0}, params);
  SelectionSequence chi;
  chi.push_back({0, {1, 2}});
  chi.push_back({1, {0, 2}});
  for (const auto& sel : chi) {
    averaging.apply(sel);
  }
  EXPECT_DOUBLE_EQ(averaging.state().value(0), 29.0 / 4.0);
  EXPECT_DOUBLE_EQ(averaging.state().value(1), 129.0 / 16.0);
  EXPECT_DOUBLE_EQ(averaging.state().value(2), 9.0);

  DiffusionProcess diffusion(g, 0.5);
  diffusion.apply_reversed(chi);
  // R(2) from Fig. 4:
  // [[1/2, 1/8, 0], [1/4, 9/16, 0], [1/4, 5/16, 1]].
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(0, 1), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(1, 0), 0.25);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(1, 1), 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(2, 0), 0.25);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(2, 1), 5.0 / 16.0);
  EXPECT_DOUBLE_EQ(diffusion.load_matrix().at(2, 2), 1.0);

  const auto w = diffusion.costs({6.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(w[0], 29.0 / 4.0);
  EXPECT_DOUBLE_EQ(w[1], 129.0 / 16.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(Duality, ForwardSequenceDoesNotReproduceXi) {
  // Proposition 5.1's remark: running both processes *forward* on the
  // same chi generally breaks the identity -- reversal is essential.
  const Graph g = gen::complete(3);
  NodeModelParams params;
  params.alpha = 0.5;
  params.k = 1;
  NodeModel averaging(g, {6.0, 8.0, 9.0}, params);
  SelectionSequence chi{{0, {1}}, {1, {2}}, {2, {0}}};
  for (const auto& sel : chi) {
    averaging.apply(sel);
  }
  DiffusionProcess forward(g, 0.5);
  forward.apply_sequence(chi);
  const auto w = forward.costs({6.0, 8.0, 9.0});
  double diff = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    diff = std::max(diff, std::abs(w[i] - averaging.state().value(
                                              static_cast<NodeId>(i))));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Duality, LoadConservationPerCommodity) {
  // Columns of R(t) are probability vectors: each commodity's total load
  // stays exactly 1.
  const Graph g = gen::petersen();
  Rng rng(3);
  NodeModelParams params;
  params.alpha = 0.25;
  params.k = 2;
  NodeModel model(g, std::vector<double>(10, 0.0), params);
  SelectionSequence chi;
  for (int i = 0; i < 500; ++i) {
    chi.push_back(model.step_recorded(rng));
  }
  DiffusionProcess diffusion(g, 0.25);
  diffusion.apply_reversed(chi);
  for (const double s : diffusion.column_sums()) {
    EXPECT_NEAR(s, 1.0, 1e-10);
  }
}

struct DualityParam {
  const char* graph;
  double alpha;
  std::int64_t k;
  std::int64_t steps;
};

class DualitySweep : public ::testing::TestWithParam<DualityParam> {};

TEST_P(DualitySweep, AveragingEqualsReversedDiffusion) {
  const auto p = GetParam();
  Rng graph_rng(41);
  Graph g = std::string(p.graph) == "cycle"      ? gen::cycle(12)
            : std::string(p.graph) == "complete" ? gen::complete(8)
            : std::string(p.graph) == "petersen" ? gen::petersen()
            : std::string(p.graph) == "torus"    ? gen::torus(3, 4)
            : std::string(p.graph) == "star"     ? gen::star(9)
                                                 : gen::random_regular(
                                                       graph_rng, 10, 4);
  if (p.k > g.min_degree()) {
    GTEST_SKIP() << "k exceeds min degree for this graph";
  }
  Rng init_rng(17);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 5.0);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const DualityCheck check =
        run_averaging_and_dual(g, xi, p.alpha, p.k, p.steps, seed);
    EXPECT_LT(check.max_difference, 1e-9)
        << p.graph << " alpha=" << p.alpha << " k=" << p.k
        << " steps=" << p.steps << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphAlphaKSteps, DualitySweep,
    ::testing::Values(DualityParam{"cycle", 0.5, 1, 50},
                      DualityParam{"cycle", 0.3, 2, 200},
                      DualityParam{"complete", 0.5, 3, 100},
                      DualityParam{"complete", 0.9, 7, 400},
                      DualityParam{"petersen", 0.25, 2, 300},
                      DualityParam{"petersen", 0.75, 3, 64},
                      DualityParam{"torus", 0.5, 4, 250},
                      DualityParam{"star", 0.5, 1, 150},
                      DualityParam{"random_regular", 0.4, 2, 500}));

}  // namespace
}  // namespace opindyn
