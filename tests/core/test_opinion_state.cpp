#include "src/core/opinion_state.h"

#include <gtest/gtest.h>

#include "src/core/initial_values.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

TEST(OpinionState, TracksAveragesExactly) {
  const Graph g = gen::star(4);  // degrees 3,1,1,1; 2m = 6
  OpinionState state(g, {6.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(state.average(), 1.5);
  EXPECT_DOUBLE_EQ(state.weighted_average(), 3.0);
  state.set_value(1, 6.0);
  EXPECT_DOUBLE_EQ(state.average(), 3.0);
  EXPECT_DOUBLE_EQ(state.weighted_average(), 4.0);
}

TEST(OpinionState, PhiMatchesPairwiseDefinition) {
  // phi = (1/2) sum_{u,v} pi_u pi_v (xi_u - xi_v)^2  (Eq. 3).
  const Graph g = gen::lollipop(4, 2);
  Rng rng(5);
  const auto xi = initial::gaussian(rng, g.node_count(), 0.0, 2.0);
  OpinionState state(g, xi);
  double pairwise = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const double diff = xi[static_cast<std::size_t>(u)] -
                          xi[static_cast<std::size_t>(v)];
      pairwise += 0.5 * g.stationary(u) * g.stationary(v) * diff * diff;
    }
  }
  EXPECT_NEAR(state.phi(), pairwise, 1e-12);
  EXPECT_NEAR(state.phi_exact(), pairwise, 1e-12);
}

TEST(OpinionState, PhiPlainMatchesDefinition) {
  // phi_V = (1/2n) sum_{x,y} (xi_x - xi_y)^2 (Prop. D.1).
  const Graph g = gen::cycle(6);
  const std::vector<double> xi{1.0, -2.0, 3.0, 0.5, 0.0, -1.0};
  OpinionState state(g, xi);
  double pairwise = 0.0;
  for (const double a : xi) {
    for (const double b : xi) {
      pairwise += (a - b) * (a - b);
    }
  }
  pairwise /= 2.0 * 6.0;
  EXPECT_NEAR(state.phi_plain(), pairwise, 1e-12);
  EXPECT_NEAR(state.phi_plain_exact(), pairwise, 1e-12);
}

TEST(OpinionState, IncrementalMatchesRecomputeAfterManyUpdates) {
  const Graph g = gen::cycle(32);
  Rng rng(7);
  OpinionState state(g, initial::uniform(rng, 32, -1.0, 1.0));
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(32));
    state.set_value(u, rng.next_double(-1.0, 1.0));
  }
  const double incremental_phi = state.phi();
  const double incremental_avg = state.average();
  const double incremental_m = state.weighted_average();
  state.recompute();
  EXPECT_NEAR(state.phi(), incremental_phi, 1e-9);
  EXPECT_NEAR(state.average(), incremental_avg, 1e-11);
  EXPECT_NEAR(state.weighted_average(), incremental_m, 1e-11);
}

TEST(OpinionState, ExtremaTrackingMatchesScan) {
  const Graph g = gen::cycle(16);
  Rng rng(11);
  OpinionState tracked(g, initial::uniform(rng, 16, 0.0, 1.0),
                       /*track_extrema=*/true);
  OpinionState scanned(g, tracked.values(), /*track_extrema=*/false);
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(16));
    const double x = rng.next_double(-3.0, 3.0);
    tracked.set_value(u, x);
    scanned.set_value(u, x);
    ASSERT_DOUBLE_EQ(tracked.min_value(), scanned.min_value());
    ASSERT_DOUBLE_EQ(tracked.max_value(), scanned.max_value());
    ASSERT_DOUBLE_EQ(tracked.discrepancy(), scanned.discrepancy());
  }
}

TEST(OpinionState, PhiExactStaysAccurateNearConvergence) {
  // Near-converged values: fast phi suffers cancellation; exact does not.
  const Graph g = gen::complete(8);
  std::vector<double> xi(8, 1000.0);
  xi[0] = 1000.0 + 1e-9;
  OpinionState state(g, xi);
  // True phi = pi0 (1-pi0) * (1e-9)^2 with pi uniform 1/8.  The offset
  // 1e-9 on a base of 1000 is itself only representable to ~1e-13
  // absolute (double spacing at 1e3), so allow ~1e-3 relative slack;
  // the point is that the S2 - S1^2 form would be off by *ten orders of
  // magnitude* here while the centered form is at representation error.
  const double expected = (1.0 / 8.0) * (7.0 / 8.0) * 1e-18;
  EXPECT_NEAR(state.phi_exact(), expected, expected * 1e-3);
}

TEST(OpinionState, RejectsMismatchedSizesAndBadIndices) {
  const Graph g = gen::cycle(4);
  EXPECT_THROW(OpinionState(g, {1.0, 2.0}), ContractError);
#if OPINDYN_HOT_PATH_CHECKS
  // value/set_value range checks are hot-path-only (see support/assert.h).
  OpinionState state(g, {1.0, 2.0, 3.0, 4.0});
  EXPECT_THROW(state.value(4), ContractError);
  EXPECT_THROW(state.set_value(-1, 0.0), ContractError);
#endif
}

TEST(OpinionState, L2SquaredTracked) {
  const Graph g = gen::cycle(3);
  OpinionState state(g, {1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(state.l2_squared(), 9.0);
  state.set_value(0, 0.0);
  EXPECT_DOUBLE_EQ(state.l2_squared(), 8.0);
}

}  // namespace
}  // namespace opindyn
