// ISSUE-5 regression suite for the burst stepping kernel: step_burst(n)
// must consume exactly the rng draw sequence of n single step() calls
// and leave bit-identical state, for both models and every sampling
// variant -- and therefore the engine's golden CSVs (captured from the
// pre-kernel build) must stay byte-identical at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/edge_model.h"
#include "src/core/initial_values.h"
#include "src/core/node_model.h"
#include "src/engine/runner.h"
#include "src/graph/generators.h"
#include "src/graph/layout.h"
#include "src/support/rng.h"

namespace opindyn {
namespace {

// Burst split with a zero-length burst, tiny bursts, and one large
// remainder -- exercises every chunking pattern a harness produces.
void run_in_bursts(AveragingProcess& process, Rng& rng,
                   std::int64_t total) {
  process.step_burst(rng, 0);
  process.step_burst(rng, 1);
  process.step_burst(rng, 7);
  process.step_burst(rng, 100);
  process.step_burst(rng, total - 108);
}

template <typename Process>
void expect_bit_identical(const Process& single, const Process& burst) {
  ASSERT_EQ(single.time(), burst.time());
  const std::vector<double>& a = single.state().values();
  const std::vector<double>& b = burst.state().values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    // Bitwise equality, not EXPECT_NEAR: the kernel performs the exact
    // arithmetic of apply_update.
    ASSERT_EQ(a[u], b[u]) << "value diverged at node " << u;
  }
  EXPECT_EQ(single.state().phi(), burst.state().phi());
  EXPECT_EQ(single.state().phi_plain(), burst.state().phi_plain());
  EXPECT_EQ(single.state().weighted_average(),
            burst.state().weighted_average());
  EXPECT_EQ(single.state().l2_squared(), burst.state().l2_squared());
}

TEST(StepBurst, NodeModelMatchesSingleStepsForEveryVariant) {
  Rng graph_rng(101);
  const Graph g = gen::random_regular(graph_rng, 24, 5);
  Rng init_rng(7);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  constexpr std::int64_t kTotal = 600;
  for (const bool lazy : {false, true}) {
    for (const SamplingMode sampling :
         {SamplingMode::without_replacement,
          SamplingMode::with_replacement}) {
      for (const std::int64_t k : {std::int64_t{1}, std::int64_t{4}}) {
        NodeModelParams params;
        params.alpha = 0.45;
        params.k = k;
        params.lazy = lazy;
        params.sampling = sampling;
        NodeModel single(g, xi, params);
        NodeModel burst(g, xi, params);
        Rng rng_single(9001);
        Rng rng_burst(9001);
        for (std::int64_t i = 0; i < kTotal; ++i) {
          single.step(rng_single);
        }
        run_in_bursts(burst, rng_burst, kTotal);
        SCOPED_TRACE("lazy=" + std::to_string(lazy) + " k=" +
                     std::to_string(k) + " with_replacement=" +
                     std::to_string(sampling ==
                                    SamplingMode::with_replacement));
        expect_bit_identical(single, burst);
        // Same number of raw draws consumed: the streams stay in
        // lockstep after the runs.
        EXPECT_EQ(rng_single(), rng_burst());
      }
    }
  }
}

TEST(StepBurst, EdgeModelMatchesSingleSteps) {
  const Graph g = gen::lollipop(6, 6);  // irregular: degree spread matters
  Rng init_rng(13);
  const auto xi = initial::uniform(init_rng, g.node_count(), -2.0, 2.0);
  constexpr std::int64_t kTotal = 600;
  for (const bool lazy : {false, true}) {
    EdgeModelParams params;
    params.alpha = 0.6;
    params.lazy = lazy;
    EdgeModel single(g, xi, params);
    EdgeModel burst(g, xi, params);
    Rng rng_single(42);
    Rng rng_burst(42);
    for (std::int64_t i = 0; i < kTotal; ++i) {
      single.step(rng_single);
    }
    run_in_bursts(burst, rng_burst, kTotal);
    SCOPED_TRACE("lazy=" + std::to_string(lazy));
    expect_bit_identical(single, burst);
    EXPECT_EQ(rng_single(), rng_burst());
  }
}

// Heavy-tailed degrees exercise the irregular-topology kernels (CSR
// offsets + per-node pi) that the regular grid above never reaches;
// the odd step total leaves a remainder at every chunk and unroll
// width.
TEST(StepBurst, NodeModelIrregularGraphMatchesSingleSteps) {
  Rng graph_rng(23);
  const Graph g = gen::preferential_attachment(graph_rng, 40, 2);
  ASSERT_FALSE(g.is_regular());
  Rng init_rng(11);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  constexpr std::int64_t kTotal = 601;
  for (const SamplingMode sampling :
       {SamplingMode::without_replacement,
        SamplingMode::with_replacement}) {
    for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2}}) {
      for (const bool track : {false, true}) {
        NodeModelParams params;
        params.alpha = 0.35;
        params.k = k;
        params.sampling = sampling;
        params.track_extrema = track;
        NodeModel single(g, xi, params);
        NodeModel burst(g, xi, params);
        Rng rng_single(607);
        Rng rng_burst(607);
        for (std::int64_t i = 0; i < kTotal; ++i) {
          single.step(rng_single);
        }
        burst.step_burst(rng_burst, 493);
        burst.step_burst(rng_burst, kTotal - 493);
        SCOPED_TRACE("k=" + std::to_string(k) + " with_replacement=" +
                     std::to_string(sampling ==
                                    SamplingMode::with_replacement) +
                     " track=" + std::to_string(track));
        expect_bit_identical(single, burst);
        EXPECT_EQ(single.state().discrepancy(),
                  burst.state().discrepancy());
        EXPECT_EQ(rng_single(), rng_burst());
      }
    }
  }
}

// The degree-sorted mirror must not change a single bit: draws stay in
// original id space, only value storage is permuted, and the emitted
// values come back through the inverse permutation.
TEST(StepBurst, ReorderedMirrorIsBitIdenticalForBothModels) {
  Rng graph_rng(29);
  const Graph g = gen::preferential_attachment(graph_rng, 48, 2);
  // The permutation must be real, or this test collapses to plain ==.
  ASSERT_FALSE(GraphLayout::degree_sorted(g).is_identity());
  Rng init_rng(17);
  const auto xi = initial::uniform(init_rng, g.node_count(), -1.0, 1.0);
  constexpr std::int64_t kTotal = 700;
  {
    NodeModelParams params;
    params.alpha = 0.4;
    params.k = 2;
    NodeModelParams reorder_params = params;
    reorder_params.reorder = true;
    NodeModel plain(g, xi, params);
    NodeModel mirrored(g, xi, reorder_params);
    Rng rng_plain(88);
    Rng rng_mirror(88);
    run_in_bursts(plain, rng_plain, kTotal);
    run_in_bursts(mirrored, rng_mirror, kTotal);
    expect_bit_identical(plain, mirrored);
    EXPECT_EQ(rng_plain(), rng_mirror());
  }
  {
    EdgeModelParams params;
    params.alpha = 0.55;
    params.track_extrema = true;
    EdgeModelParams reorder_params = params;
    reorder_params.reorder = true;
    EdgeModel plain(g, xi, params);
    EdgeModel mirrored(g, xi, reorder_params);
    Rng rng_plain(89);
    Rng rng_mirror(89);
    run_in_bursts(plain, rng_plain, kTotal);
    run_in_bursts(mirrored, rng_mirror, kTotal);
    expect_bit_identical(plain, mirrored);
    EXPECT_EQ(plain.state().discrepancy(), mirrored.state().discrepancy());
    EXPECT_EQ(rng_plain(), rng_mirror());
  }
}

// k outside the specialised set {1, 2, 3, 4, 8} routes to the generic
// per-step loop, which must honour the same stream contract.
TEST(StepBurst, GenericKFallbackMatchesSingleSteps) {
  Rng graph_rng(31);
  const Graph g = gen::random_regular(graph_rng, 32, 6);
  Rng init_rng(19);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  constexpr std::int64_t kTotal = 600;
  for (const SamplingMode sampling :
       {SamplingMode::without_replacement,
        SamplingMode::with_replacement}) {
    NodeModelParams params;
    params.alpha = 0.5;
    params.k = 5;
    params.sampling = sampling;
    NodeModel single(g, xi, params);
    NodeModel burst(g, xi, params);
    Rng rng_single(404);
    Rng rng_burst(404);
    for (std::int64_t i = 0; i < kTotal; ++i) {
      single.step(rng_single);
    }
    run_in_bursts(burst, rng_burst, kTotal);
    SCOPED_TRACE("with_replacement=" +
                 std::to_string(sampling ==
                                SamplingMode::with_replacement));
    expect_bit_identical(single, burst);
    EXPECT_EQ(rng_single(), rng_burst());
  }
}

TEST(StepBurst, LazyExtremaMatchScanUnderBurstStepping) {
  Rng graph_rng(5);
  const Graph g = gen::random_regular(graph_rng, 32, 4);
  Rng init_rng(3);
  const auto xi = initial::gaussian(init_rng, g.node_count(), 0.0, 1.0);
  NodeModelParams tracked_params;
  tracked_params.alpha = 0.5;
  tracked_params.k = 2;
  tracked_params.track_extrema = true;
  NodeModelParams scan_params = tracked_params;
  scan_params.track_extrema = false;
  NodeModel tracked(g, xi, tracked_params);
  NodeModel scanned(g, xi, scan_params);
  Rng rng_tracked(77);
  Rng rng_scanned(77);
  for (int chunk = 0; chunk < 40; ++chunk) {
    tracked.step_burst(rng_tracked, 25);
    scanned.step_burst(rng_scanned, 25);
    ASSERT_EQ(tracked.state().min_value(), scanned.state().min_value());
    ASSERT_EQ(tracked.state().max_value(), scanned.state().max_value());
    ASSERT_EQ(tracked.state().discrepancy(),
              scanned.state().discrepancy());
  }
}

// ---- engine goldens (captured from the pre-kernel seed build) --------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr const char kWhpTailAggregateGolden[] =
    "scenario,graph,n,replicas,alpha,model,median T,q90/median,"
    "q99/median,max/median\n"
    "whp_tail,cycle(12),12,16,0.3,NodeModel,948,1.237,1.313,1.313\n"
    "whp_tail,cycle(12),12,16,0.3,EdgeModel,1029,1.324,1.391,1.391\n"
    "whp_tail,cycle(12),12,16,0.5,NodeModel,1152,1.211,1.331,1.331\n"
    "whp_tail,cycle(12),12,16,0.5,EdgeModel,1269,1.208,1.310,1.310\n";

constexpr const char kWhpTailRowsGolden[] =
    R"(scenario,graph,n,replicas,alpha,model,replica,T_eps,T/median
whp_tail,cycle(12),12,16,0.3,NodeModel,0,1035,1.0918
whp_tail,cycle(12),12,16,0.3,NodeModel,1,1110,1.1709
whp_tail,cycle(12),12,16,0.3,NodeModel,2,735,0.7753
whp_tail,cycle(12),12,16,0.3,NodeModel,3,948,1.0000
whp_tail,cycle(12),12,16,0.3,NodeModel,4,855,0.9019
whp_tail,cycle(12),12,16,0.3,NodeModel,5,777,0.8196
whp_tail,cycle(12),12,16,0.3,NodeModel,6,1038,1.0949
whp_tail,cycle(12),12,16,0.3,NodeModel,7,1173,1.2373
whp_tail,cycle(12),12,16,0.3,NodeModel,8,996,1.0506
whp_tail,cycle(12),12,16,0.3,NodeModel,9,588,0.6203
whp_tail,cycle(12),12,16,0.3,NodeModel,10,672,0.7089
whp_tail,cycle(12),12,16,0.3,NodeModel,11,1245,1.3133
whp_tail,cycle(12),12,16,0.3,NodeModel,12,735,0.7753
whp_tail,cycle(12),12,16,0.3,NodeModel,13,1068,1.1266
whp_tail,cycle(12),12,16,0.3,NodeModel,14,753,0.7943
whp_tail,cycle(12),12,16,0.3,NodeModel,15,741,0.7816
whp_tail,cycle(12),12,16,0.3,EdgeModel,0,1362,1.3236
whp_tail,cycle(12),12,16,0.3,EdgeModel,1,1029,1.0000
whp_tail,cycle(12),12,16,0.3,EdgeModel,2,783,0.7609
whp_tail,cycle(12),12,16,0.3,EdgeModel,3,903,0.8776
whp_tail,cycle(12),12,16,0.3,EdgeModel,4,1200,1.1662
whp_tail,cycle(12),12,16,0.3,EdgeModel,5,1056,1.0262
whp_tail,cycle(12),12,16,0.3,EdgeModel,6,1278,1.2420
whp_tail,cycle(12),12,16,0.3,EdgeModel,7,780,0.7580
whp_tail,cycle(12),12,16,0.3,EdgeModel,8,1245,1.2099
whp_tail,cycle(12),12,16,0.3,EdgeModel,9,1431,1.3907
whp_tail,cycle(12),12,16,0.3,EdgeModel,10,831,0.8076
whp_tail,cycle(12),12,16,0.3,EdgeModel,11,888,0.8630
whp_tail,cycle(12),12,16,0.3,EdgeModel,12,936,0.9096
whp_tail,cycle(12),12,16,0.3,EdgeModel,13,1146,1.1137
whp_tail,cycle(12),12,16,0.3,EdgeModel,14,807,0.7843
whp_tail,cycle(12),12,16,0.3,EdgeModel,15,1026,0.9971
whp_tail,cycle(12),12,16,0.5,NodeModel,0,1533,1.3307
whp_tail,cycle(12),12,16,0.5,NodeModel,1,1299,1.1276
whp_tail,cycle(12),12,16,0.5,NodeModel,2,999,0.8672
whp_tail,cycle(12),12,16,0.5,NodeModel,3,1230,1.0677
whp_tail,cycle(12),12,16,0.5,NodeModel,4,1152,1.0000
whp_tail,cycle(12),12,16,0.5,NodeModel,5,1257,1.0911
whp_tail,cycle(12),12,16,0.5,NodeModel,6,903,0.7839
whp_tail,cycle(12),12,16,0.5,NodeModel,7,1395,1.2109
whp_tail,cycle(12),12,16,0.5,NodeModel,8,1146,0.9948
whp_tail,cycle(12),12,16,0.5,NodeModel,9,921,0.7995
whp_tail,cycle(12),12,16,0.5,NodeModel,10,717,0.6224
whp_tail,cycle(12),12,16,0.5,NodeModel,11,1287,1.1172
whp_tail,cycle(12),12,16,0.5,NodeModel,12,1212,1.0521
whp_tail,cycle(12),12,16,0.5,NodeModel,13,1104,0.9583
whp_tail,cycle(12),12,16,0.5,NodeModel,14,921,0.7995
whp_tail,cycle(12),12,16,0.5,NodeModel,15,1056,0.9167
whp_tail,cycle(12),12,16,0.5,EdgeModel,0,1662,1.3097
whp_tail,cycle(12),12,16,0.5,EdgeModel,1,1269,1.0000
whp_tail,cycle(12),12,16,0.5,EdgeModel,2,1182,0.9314
whp_tail,cycle(12),12,16,0.5,EdgeModel,3,534,0.4208
whp_tail,cycle(12),12,16,0.5,EdgeModel,4,1533,1.2080
whp_tail,cycle(12),12,16,0.5,EdgeModel,5,1347,1.0615
whp_tail,cycle(12),12,16,0.5,EdgeModel,6,1095,0.8629
whp_tail,cycle(12),12,16,0.5,EdgeModel,7,1149,0.9054
whp_tail,cycle(12),12,16,0.5,EdgeModel,8,1488,1.1726
whp_tail,cycle(12),12,16,0.5,EdgeModel,9,1350,1.0638
whp_tail,cycle(12),12,16,0.5,EdgeModel,10,1506,1.1868
whp_tail,cycle(12),12,16,0.5,EdgeModel,11,1191,0.9385
whp_tail,cycle(12),12,16,0.5,EdgeModel,12,1173,0.9243
whp_tail,cycle(12),12,16,0.5,EdgeModel,13,1482,1.1678
whp_tail,cycle(12),12,16,0.5,EdgeModel,14,1236,0.9740
whp_tail,cycle(12),12,16,0.5,EdgeModel,15,1089,0.8582
)";

constexpr const char kThm22ConvergenceGolden[] =
    "scenario,graph,n,replicas,alpha,1-l2(P),T measured,+-CI(T),"
    "T predicted (B.1),theorem scale,meas/pred\n"
    "thm22_convergence,cycle(12),12,8,0.4,6.70e-02,1140,105,5139,3360,"
    "0.222\n"
    "thm22_convergence,cycle(12),12,8,0.6,6.70e-02,1502,138,5139,3360,"
    "0.292\n";

TEST(StepBurst, WhpTailGoldenCsvBytesSurviveTheKernelSwap) {
  engine::ExperimentSpec spec;
  spec.scenario = "whp_tail";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 16;
  spec.seed = 5;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = engine::parse_sweeps("alpha:0.3,0.5");
  spec.print_table = false;
  // reorder=true must leave every emitted byte untouched (the mirror
  // contract), at every thread count.
  for (const bool reorder : {false, true}) {
    spec.model.reorder = reorder;
    for (const std::size_t threads : {1, 4, 8}) {
      spec.threads = threads;
      const std::string base = ::testing::TempDir() + "burst_whp_" +
                               std::to_string(threads) +
                               (reorder ? "_r" : "");
      {
        engine::CsvSink csv(base + ".csv");
        engine::CsvSink rows_csv(base + "_rows.csv");
        std::vector<engine::RowSink*> sinks{&csv};
        std::vector<engine::RowSink*> row_sinks{&rows_csv};
        engine::run_experiment(spec, sinks, row_sinks);
      }
      EXPECT_EQ(read_file(base + ".csv"), kWhpTailAggregateGolden)
          << "threads=" << threads << " reorder=" << reorder;
      EXPECT_EQ(read_file(base + "_rows.csv"), kWhpTailRowsGolden)
          << "threads=" << threads << " reorder=" << reorder;
      std::remove((base + ".csv").c_str());
      std::remove((base + "_rows.csv").c_str());
    }
  }
}

TEST(StepBurst, Thm22ConvergenceGoldenCsvBytesSurviveTheKernelSwap) {
  engine::ExperimentSpec spec;
  spec.scenario = "thm22_convergence";
  spec.graph.family = "cycle";
  spec.graph.n = 12;
  spec.replicas = 8;
  spec.seed = 9;
  spec.convergence.epsilon = 1e-6;
  spec.sweeps = engine::parse_sweeps("alpha:0.4,0.6");
  spec.print_table = false;
  for (const std::size_t threads : {1, 4, 8}) {
    spec.threads = threads;
    const std::string path = ::testing::TempDir() + "burst_thm22_" +
                             std::to_string(threads) + ".csv";
    {
      engine::CsvSink csv(path);
      std::vector<engine::RowSink*> sinks{&csv};
      engine::run_experiment(spec, sinks);
    }
    EXPECT_EQ(read_file(path), kThm22ConvergenceGolden)
        << "threads=" << threads;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace opindyn
