#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/core/edge_model.h"
#include "src/core/node_model.h"
#include "src/core/selection.h"
#include "src/graph/generators.h"
#include "src/support/assert.h"

namespace opindyn {
namespace {

TEST(SelectionEnumeration, NodeSelectionsSumToOne) {
  const Graph g = gen::petersen();  // 3-regular
  for (const std::int64_t k : {1, 2, 3}) {
    const auto selections = enumerate_node_selections(g, k);
    double total = 0.0;
    for (const auto& ws : selections) {
      EXPECT_EQ(static_cast<std::int64_t>(ws.selection.sample.size()), k);
      total += ws.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(SelectionEnumeration, CountsMatchBinomials) {
  const Graph g = gen::complete(5);  // every node has degree 4
  EXPECT_EQ(enumerate_node_selections(g, 2).size(), 5u * 6u);   // C(4,2)=6
  EXPECT_EQ(enumerate_node_selections(g, 4).size(), 5u * 1u);   // C(4,4)=1
  EXPECT_EQ(enumerate_node_selections_with_replacement(g, 2).size(),
            5u * 16u);  // 4^2
}

TEST(SelectionEnumeration, EdgeSelectionsAreAllArcs) {
  const Graph g = gen::star(5);
  const auto selections = enumerate_edge_selections(g);
  EXPECT_EQ(selections.size(), 8u);  // 2m
  double total = 0.0;
  for (const auto& ws : selections) {
    EXPECT_EQ(ws.selection.sample.size(), 1u);
    EXPECT_TRUE(
        g.has_edge(ws.selection.node, ws.selection.sample.front()));
    total += ws.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NodeModel, UpdateRuleMatchesDefinition21) {
  // Fixed selection on a triangle: xi_0 <- a xi_0 + (1-a)(xi_1+xi_2)/2.
  const Graph g = gen::complete(3);
  NodeModelParams params;
  params.alpha = 0.25;
  params.k = 2;
  NodeModel model(g, {8.0, 2.0, 4.0}, params);
  model.apply(NodeSelection{0, {1, 2}});
  EXPECT_DOUBLE_EQ(model.state().value(0), 0.25 * 8.0 + 0.75 * 3.0);
  EXPECT_DOUBLE_EQ(model.state().value(1), 2.0);
  EXPECT_DOUBLE_EQ(model.state().value(2), 4.0);
  EXPECT_EQ(model.time(), 1);
}

TEST(NodeModel, StepSamplesOnlyNeighboursWithoutReplacement) {
  const Graph g = gen::cycle(8);
  NodeModelParams params;
  params.k = 2;
  NodeModel model(g, std::vector<double>(8, 0.0), params);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const NodeSelection sel = model.step_recorded(rng);
    ASSERT_EQ(sel.sample.size(), 2u);
    EXPECT_NE(sel.sample[0], sel.sample[1]);
    for (const NodeId v : sel.sample) {
      EXPECT_TRUE(g.has_edge(sel.node, v));
    }
  }
}

TEST(NodeModel, NodeChoiceIsUniform) {
  const Graph g = gen::cycle(5);
  NodeModelParams params;
  NodeModel model(g, std::vector<double>(5, 0.0), params);
  Rng rng(5);
  std::map<NodeId, int> counts;
  constexpr int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    ++counts[model.step_recorded(rng).node];
  }
  for (const auto& [node, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.01) << node;
  }
}

TEST(NodeModel, LazyStepsAreHalfNoops) {
  const Graph g = gen::cycle(6);
  NodeModelParams params;
  params.lazy = true;
  NodeModel model(g, std::vector<double>(6, 0.0), params);
  Rng rng(7);
  int noops = 0;
  constexpr int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    noops += model.step_recorded(rng).is_noop() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(noops) / draws, 0.5, 0.02);
  EXPECT_EQ(model.time(), draws);  // lazy steps still advance time
}

TEST(NodeModel, RejectsKAboveMinDegree) {
  const Graph g = gen::star(5);  // leaves have degree 1
  NodeModelParams params;
  params.k = 2;
  EXPECT_THROW(NodeModel(g, std::vector<double>(5, 0.0), params),
               ContractError);
  params.sampling = SamplingMode::with_replacement;
  // With replacement only needs degree >= 1.
  NodeModel ok(g, std::vector<double>(5, 0.0), params);
  Rng rng(1);
  ok.step(rng);
}

TEST(NodeModel, RejectsInvalidAlpha) {
  const Graph g = gen::cycle(4);
  NodeModelParams params;
  params.alpha = 1.0;
  EXPECT_THROW(NodeModel(g, std::vector<double>(4, 0.0), params),
               ContractError);
  params.alpha = -0.1;
  EXPECT_THROW(NodeModel(g, std::vector<double>(4, 0.0), params),
               ContractError);
}

TEST(NodeModel, ValuesStayWithinInitialHull) {
  // Each update is a convex combination, so values never escape
  // [min xi(0), max xi(0)].
  const Graph g = gen::petersen();
  NodeModelParams params;
  params.alpha = 0.3;
  params.k = 2;
  params.track_extrema = true;
  NodeModel model(g, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, params);
  Rng rng(11);
  double previous_discrepancy = model.state().discrepancy();
  for (int i = 0; i < 20000; ++i) {
    model.step(rng);
    EXPECT_GE(model.state().min_value(), 0.0 - 1e-12);
    EXPECT_LE(model.state().max_value(), 9.0 + 1e-12);
    // The discrepancy max-min is non-increasing (Section 1 argument).
    const double k_now = model.state().discrepancy();
    ASSERT_LE(k_now, previous_discrepancy + 1e-12);
    previous_discrepancy = k_now;
  }
}

TEST(EdgeModel, UpdateRuleMatchesDefinition23) {
  const Graph g = gen::path(3);
  EdgeModelParams params;
  params.alpha = 0.5;
  EdgeModel model(g, {6.0, 8.0, 9.0}, params);
  model.apply(NodeSelection{0, {1}});
  EXPECT_DOUBLE_EQ(model.state().value(0), 7.0);
  EXPECT_DOUBLE_EQ(model.state().value(1), 8.0);
}

TEST(EdgeModel, ArcChoiceIsUniformOverDirectedEdges) {
  // On a star with 3 leaves there are 6 arcs; hub-as-source arcs should
  // appear with probability 1/6 each, leaf-as-source likewise.
  const Graph g = gen::star(4);
  EdgeModelParams params;
  EdgeModel model(g, std::vector<double>(4, 0.0), params);
  Rng rng(13);
  std::map<std::pair<NodeId, NodeId>, int> counts;
  constexpr int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const auto sel = model.step_recorded(rng);
    ++counts[{sel.node, sel.sample.front()}];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [arc, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 6.0, 0.01);
  }
}

TEST(EdgeModel, EquivalentToNodeModelK1OnRegularGraphs) {
  // Same seed, same graph: the two processes have identical one-step
  // *distributions* on regular graphs.  Check distributional equality via
  // the empirical frequency of (node, neighbour) selections.
  const Graph g = gen::cycle(5);
  NodeModelParams np;
  np.alpha = 0.5;
  np.k = 1;
  EdgeModelParams ep;
  ep.alpha = 0.5;
  NodeModel node_model(g, std::vector<double>(5, 0.0), np);
  EdgeModel edge_model(g, std::vector<double>(5, 0.0), ep);
  Rng rng_a(17);
  Rng rng_b(23);
  std::map<std::pair<NodeId, NodeId>, double> freq_node;
  std::map<std::pair<NodeId, NodeId>, double> freq_edge;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const auto a = node_model.step_recorded(rng_a);
    const auto b = edge_model.step_recorded(rng_b);
    freq_node[{a.node, a.sample.front()}] += 1.0 / draws;
    freq_edge[{b.node, b.sample.front()}] += 1.0 / draws;
  }
  ASSERT_EQ(freq_node.size(), freq_edge.size());
  for (const auto& [arc, f] : freq_node) {
    EXPECT_NEAR(f, freq_edge.at(arc), 0.01);
  }
}

TEST(Process, ApplyRejectsNonNeighbourSample) {
  const Graph g = gen::path(4);  // 0-1-2-3
  NodeModelParams params;
  NodeModel model(g, std::vector<double>(4, 0.0), params);
  EXPECT_THROW(model.apply(NodeSelection{0, {3}}), ContractError);
}

}  // namespace
}  // namespace opindyn
